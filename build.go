package rac

import (
	"fmt"
	"time"
)

// SystemSpec declares a system to tune, in one struct that covers every
// backend the commands expose. racagent, racsim and racd all build their
// systems through BuildSystem instead of each carrying its own copy of the
// backend switch.
type SystemSpec struct {
	// Backend selects the system kind: "sim" (discrete-time simulator, the
	// default), "analytic" (MVA queueing surface), or "live" (real in-process
	// HTTP stack plus load generator).
	Backend string
	// Space defaults to DefaultSpace().
	Space *Space
	// Initial is the starting configuration; nil means the space default.
	Initial Config
	// Context sets the workload and VM level the system starts in.
	Context Context
	// Seed drives every stream the backend consumes (simulation, noise,
	// load-generator arrivals, fault schedule).
	Seed uint64

	// SettleSeconds and MeasureSeconds override the sim backend's virtual
	// measurement windows when positive.
	SettleSeconds  float64
	MeasureSeconds float64
	// NoiseSigma adds lognormal measurement noise (analytic backend).
	NoiseSigma float64
	// AdmitConcurrency and AdmitQueue set the sim backend's SLO admission
	// gate when the Space does not already carry the admission parameters
	// (the lattice wins when it does). Zero both disables the gate.
	// AdmitEpoch sets the gate's adaptive epoch in requests (0 = static).
	AdmitConcurrency int
	AdmitQueue       int
	AdmitEpoch       int

	// Addr is the live backend's listen address; empty means an ephemeral
	// localhost port.
	Addr string
	// Interval overrides the live backend's wall-clock measurement interval
	// when positive.
	Interval time.Duration
	// Load carries the live backend's load-generator options. BaseURL is
	// filled in from the started server; a zero Workload inherits
	// Context.Workload and a zero Seed inherits Seed. Set Rate to drive the
	// open-loop engine instead of closed-loop browsers.
	Load LoadOptions
	// Trace, when non-nil, is attached to the live server's admin endpoints
	// and handed to the fault layer.
	Trace *Trace

	// Capacity wraps the backend in the elastic capacity decorator, making
	// the VM level an actuator: lattice CapacityLevel moves (CapacitySpace)
	// become scale requests, and with CapacityFastPath the saturation
	// analyzer scales between the agent's retrains. The decorator sits under
	// the fault layer, so injected faults disturb the capacity controller
	// exactly as they disturb the agent.
	Capacity bool
	// CapacityInitial is the starting capacity ordinal (1 = Level-3 … 3 =
	// Level-1); 0 starts at the backend's Context level.
	CapacityInitial int
	// CapacityDelay is the scale-up provisioning delay in measurement
	// intervals (scale-downs always apply on the next interval).
	CapacityDelay int
	// CapacityFastPath enables analyzer-driven scaling between retrains.
	CapacityFastPath bool
	// CapacityAnalyzer calibrates saturation detection; the zero value uses
	// DefaultCapacityConfig(2.0).
	CapacityAnalyzer CapacityConfig
	// CapacityOnScale observes applied scales (old, new ordinal) — callers
	// use it for per-level policy warm starts.
	CapacityOnScale func(oldOrdinal, newOrdinal int)

	// FaultsPath wraps the system in the fault-injection layer with the JSON
	// scenario at this path. Faults does the same with an already-loaded
	// scenario and takes precedence.
	FaultsPath string
	Faults     *FaultScenario
	// Telemetry receives the fault and capacity layers' instruments. The live
	// backend defaults to the server's own registry so everything lands on
	// /metrics.
	Telemetry *Telemetry
}

// BuiltSystem is BuildSystem's result: the System to hand to an agent plus
// the backend-specific artifacts callers need for printing, stats and
// shutdown. Fields are nil when the backend does not produce them.
type BuiltSystem struct {
	// System is the tuning target — the fault-wrapped system when a scenario
	// was configured, the bare backend otherwise.
	System System
	// Live, Server and Driver are set for backend "live". The server is
	// started; the caller owns its shutdown.
	Live   *LiveSystem
	Server *LiveServer
	Driver *LoadDriver
	// Addr is the live server's listen address ("host:port").
	Addr string
	// Capacity is the elastic capacity decorator when one was configured.
	Capacity *CapacitySystem
	// Faulty is the fault-injection layer when one was configured.
	Faulty *FaultySystem
}

// BuildSystem constructs a system backend from one declarative spec — the
// shared path behind racagent's live stack, racsim's fault replay and racd's
// live tenants.
func BuildSystem(spec SystemSpec) (*BuiltSystem, error) {
	space := spec.Space
	if space == nil {
		space = DefaultSpace()
	}
	initial := spec.Initial
	if initial == nil {
		initial = space.DefaultConfig()
	}

	built := &BuiltSystem{}
	switch spec.Backend {
	case "", "sim":
		sys, err := NewSimulatedSystem(SimulatedOptions{
			Space:            space,
			Initial:          initial,
			Context:          spec.Context,
			Seed:             spec.Seed,
			SettleSeconds:    spec.SettleSeconds,
			MeasureSeconds:   spec.MeasureSeconds,
			AdmitConcurrency: spec.AdmitConcurrency,
			AdmitQueue:       spec.AdmitQueue,
			AdmitEpoch:       spec.AdmitEpoch,
		})
		if err != nil {
			return nil, err
		}
		built.System = sys
	case "analytic":
		sys, err := NewAnalyticSystem(AnalyticOptions{
			Space:      space,
			Initial:    initial,
			Context:    spec.Context,
			Seed:       spec.Seed,
			NoiseSigma: spec.NoiseSigma,
		})
		if err != nil {
			return nil, err
		}
		built.System = sys
	case "live":
		if err := buildLive(spec, space, initial, built); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("rac: unknown backend %q (want sim, analytic or live)", spec.Backend)
	}

	// The capacity decorator wraps the bare backend; the fault layer (below)
	// wraps the decorator, so injected apply/measure faults hit the capacity
	// controller the same way they hit the agent.
	if spec.Capacity {
		scalable, ok := built.System.(CapacityScalable)
		if !ok {
			return nil, fmt.Errorf("rac: backend %q cannot scale capacity", spec.Backend)
		}
		tel := spec.Telemetry
		if tel == nil && built.Server != nil {
			tel = built.Server.Telemetry()
		}
		capSys, err := WrapCapacity(scalable, CapacityOptions{
			Initial:        spec.CapacityInitial,
			ProvisionDelay: spec.CapacityDelay,
			Analyzer:       spec.CapacityAnalyzer,
			FastPath:       spec.CapacityFastPath,
			OnScale:        spec.CapacityOnScale,
			Telemetry:      tel,
			Trace:          spec.Trace,
		})
		if err != nil {
			return nil, err
		}
		built.Capacity = capSys
		built.System = capSys
	}

	if spec.Faults != nil || spec.FaultsPath != "" {
		sc := spec.Faults
		if sc == nil {
			loaded, err := LoadFaultScenario(spec.FaultsPath)
			if err != nil {
				return nil, err
			}
			sc = &loaded
		}
		tel := spec.Telemetry
		if tel == nil && built.Server != nil {
			tel = built.Server.Telemetry()
		}
		faulty, err := NewFaultySystem(built.System, FaultOptions{
			Scenario:  *sc,
			Seed:      spec.Seed,
			Telemetry: tel,
			Trace:     spec.Trace,
		})
		if err != nil {
			return nil, err
		}
		built.Faulty = faulty
		built.System = faulty
	}
	return built, nil
}

// buildLive boots the real stack: server, load driver, System adapter.
func buildLive(spec SystemSpec, space *Space, initial Config, built *BuiltSystem) error {
	params, err := ParamsFromConfig(space, initial)
	if err != nil {
		return err
	}
	server, err := NewLiveServer(params, spec.Context.Level)
	if err != nil {
		return err
	}
	listen := spec.Addr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := server.Start(listen)
	if err != nil {
		return err
	}
	if spec.Trace != nil {
		server.SetTrace(spec.Trace)
	}

	lo := spec.Load
	lo.BaseURL = "http://" + addr
	if lo.Workload == (Workload{}) {
		lo.Workload = spec.Context.Workload
	}
	if lo.Seed == 0 {
		lo.Seed = spec.Seed
	}
	driver, err := NewLoadDriverOptions(lo)
	if err != nil {
		return err
	}
	driver.SetTelemetry(server.Telemetry())

	live, err := NewLiveSystem(space, server, driver, initial)
	if err != nil {
		return err
	}
	if spec.Interval > 0 {
		live.Interval = spec.Interval
	}
	built.System = live
	built.Live = live
	built.Server = server
	built.Driver = driver
	built.Addr = addr
	return nil
}
