// Benchmarks regenerating the paper's evaluation. One benchmark per figure
// (quick-fidelity mode; run cmd/racbench for the full-fidelity tables), plus
// micro-benchmarks of the core machinery and ablation benches for the design
// choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem
package rac_test

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"github.com/rac-project/rac"
	"github.com/rac-project/rac/internal/bench"
	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/queueing"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// benchFigure runs one figure generation per iteration in quick mode.
func benchFigure(b *testing.B, gen func(h *bench.Harness) (*bench.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := bench.New(bench.Options{Seed: uint64(i + 1), Quick: true})
		fig, err := gen(h)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// Paper Figure 1: cross-workload best-configuration matrix.
func BenchmarkFig01CrossWorkload(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig01)
}

// Paper Figure 2: MaxClients sweep per VM level.
func BenchmarkFig02MaxClients(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig02)
}

// Paper Figure 3: cross-VM-level best-configuration matrix.
func BenchmarkFig03CrossVM(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig03)
}

// Paper Figure 4: concavity and regression fit.
func BenchmarkFig04Regression(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig04)
}

// Paper Figure 5: RAC vs static default vs trial-and-error across contexts.
func BenchmarkFig05Policies(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig05)
}

// Paper Figure 6: online learning on/off.
func BenchmarkFig06OnlineLearning(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig06)
}

// Paper Figures 7(a)/(b): policy initialization on/off.
func BenchmarkFig07PolicyInit(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig07)
}

// Paper Figure 8: online exploration-rate sweep.
func BenchmarkFig08Exploration(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig08)
}

// Paper Figures 9(a)/(b): static vs adaptive initial policy.
func BenchmarkFig09StaticVsAdaptive(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig09)
}

// Paper Figure 10: initialization strategies under context changes.
func BenchmarkFig10InitStrategies(b *testing.B) {
	benchFigure(b, (*bench.Harness).Fig10)
}

// BenchmarkFig05Training isolates the policy-training share of Figure 5: the
// store over the three schedule contexts plus the initial policy, on a fresh
// harness each iteration so nothing is served from the policy cache. This is
// the number `make bench-train` pins in BENCH_train.json and the
// bench-train-smoke gate guards against regressions.
func BenchmarkFig05Training(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(bench.Options{Seed: uint64(i + 1), Quick: true})
		var ctxs []system.Context
		for _, name := range []string{"context-1", "context-2", "context-3"} {
			ctx, err := system.ContextByName(name)
			if err != nil {
				b.Fatal(err)
			}
			ctxs = append(ctxs, ctx)
		}
		store, err := h.Store(ctxs...)
		if err != nil {
			b.Fatal(err)
		}
		if store.Len() != len(ctxs) {
			b.Fatalf("store has %d policies, want %d", store.Len(), len(ctxs))
		}
		if _, err := h.Policy(ctxs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the machinery.

func BenchmarkQTableUpdate(b *testing.B) {
	q := mdp.NewQTable(17, 0)
	learner, err := mdp.NewLearner(q, mdp.DefaultOnline(), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	states := make([]string, 64)
	for i := range states {
		states[i] = "state-" + strconv.Itoa(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := states[i%len(states)]
		next := states[(i+1)%len(states)]
		learner.UpdateSARSA(s, i%17, 1.5, next, (i+3)%17)
	}
}

func BenchmarkExactMVA(b *testing.B) {
	stations := []queueing.Station{
		{Name: "web", Demand: 0.011, Rate: queueing.MultiServer(2)},
		{Name: "appdb", Demand: 0.019, Rate: queueing.MultiServer(3)},
		{Name: "disk", Demand: 0.03},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.Solve(200, 12, stations); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxMVA(b *testing.B) {
	stations := []queueing.Station{
		{Name: "web", Demand: 0.011, Rate: queueing.MultiServer(2)},
		{Name: "appdb", Demand: 0.019, Rate: queueing.MultiServer(3)},
		{Name: "disk", Demand: 0.03},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.SolveApprox(800, 12, stations); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWebsiteSurface(b *testing.B) {
	cal := webtier.DefaultCalibration()
	params := webtier.DefaultParams()
	w := tpcw.Workload{Mix: tpcw.Ordering, Clients: 800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.SolveWebsite(cal, params, w, vmenv.Level3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMinute measures simulating one virtual minute of the
// 800-browser testbed.
func BenchmarkSimulatorMinute(b *testing.B) {
	m, err := webtier.New(webtier.Options{
		Workload: tpcw.Workload{Mix: tpcw.Ordering, Clients: 800},
		AppLevel: vmenv.Level1,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Warmup(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyInitialization(b *testing.B) {
	space := config.Default()
	ctx, err := system.ContextByName("context-2")
	if err != nil {
		b.Fatal(err)
	}
	analytic, err := system.NewAnalytic(system.AnalyticOptions{Space: space, Context: ctx})
	if err != nil {
		b.Fatal(err)
	}
	sampler := func(cfg config.Config) (float64, error) {
		if err := analytic.Apply(context.Background(), cfg); err != nil {
			return 0, err
		}
		m, err := analytic.Measure(context.Background())
		if err != nil {
			return 0, err
		}
		return m.MeanRT, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LearnPolicy("bench", space, sampler, core.InitOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAgentIteration measures one full online iteration (reconfigure,
// measure a 5-minute virtual interval, retrain) on the simulated testbed.
func BenchmarkAgentIteration(b *testing.B) {
	ctx, err := system.ContextByName("context-2")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := system.NewSimulated(system.SimulatedOptions{Context: ctx, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := core.NewAgent(sys, core.AgentOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations: design choices called out in DESIGN.md.

// BenchmarkAblationSwitchThreshold probes the stability/adaptability
// trade-off of s_thr (paper §4.3): each run tunes through a context change
// with a different switch threshold and reports the mean post-change
// response time as a custom metric.
func BenchmarkAblationSwitchThreshold(b *testing.B) {
	for _, sthr := range []int{2, 5, 8} {
		b.Run(fmt.Sprintf("sthr=%d", sthr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.New(bench.Options{Seed: uint64(i + 1), Quick: true})
				ctx1, _ := system.ContextByName("context-1")
				ctx3, _ := system.ContextByName("context-3")
				store, err := h.Store(ctx1, ctx3)
				if err != nil {
					b.Fatal(err)
				}
				initial := store.ByName("context-1")
				opts := core.DefaultOptions()
				opts.SwitchThreshold = sthr
				mk := func(sys system.System) (core.Tuner, error) {
					return core.NewAgent(sys, core.AgentOptions{
						Options: opts,
						Policy:  initial,
						Store:   store,
						Seed:    uint64(i + 1),
					})
				}
				results, err := h.RunSchedule(mk, []bench.Phase{
					{Context: ctx1, Iterations: 6},
					{Context: ctx3, Iterations: 10},
				}, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				var post float64
				for _, r := range results[6:] {
					post += r.MeanRT
				}
				b.ReportMetric(post/10, "postRT-s")
			}
		})
	}
}

// BenchmarkAblationBatchEpsilon probes the batch-training exploration rate
// (paper §5.5 uses 0.1).
func BenchmarkAblationBatchEpsilon(b *testing.B) {
	for _, eps := range []float64{0.02, 0.1, 0.3} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.New(bench.Options{Seed: uint64(i + 1), Quick: true})
				ctx, _ := system.ContextByName("context-3")
				policy, err := h.Policy(ctx)
				if err != nil {
					b.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.Batch.Epsilon = eps
				mk := func(sys system.System) (core.Tuner, error) {
					return core.NewAgent(sys, core.AgentOptions{
						Options: opts,
						Policy:  policy,
						Seed:    uint64(i + 1),
					})
				}
				results, err := h.RunSchedule(mk, []bench.Phase{{Context: ctx, Iterations: 10}}, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				var mean float64
				for _, r := range results {
					mean += r.MeanRT
				}
				b.ReportMetric(mean/float64(len(results)), "meanRT-s")
			}
		})
	}
}

// BenchmarkAblationBackends compares the simulated and analytic measurement
// backends on the same configuration.
func BenchmarkAblationBackends(b *testing.B) {
	ctx, err := system.ContextByName("context-2")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("simulated", func(b *testing.B) {
		sys, err := rac.NewSimulatedSystem(rac.SimulatedOptions{Context: ctx, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Measure(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analytic", func(b *testing.B) {
		sys, err := rac.NewAnalyticSystem(rac.AnalyticOptions{Context: ctx, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Measure(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
