// Live tuning: the RAC agent against a *real* HTTP system. The program
// starts the in-process three-tier bookstore (package httpd) on a loopback
// port, drives TPC-W-style load at it with real HTTP clients, and lets the
// agent tune MaxClients, thread pools, keep-alive and session timeouts from
// response times alone — the paper's non-intrusive deployment, compressed
// 100× in time so it finishes in under a minute.
//
//	go run ./examples/livetuning
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/rac-project/rac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A deliberately poor starting configuration: a tiny worker pool that
	// queues the 60-browser population.
	space := rac.DefaultSpace()
	start := space.DefaultConfig()
	start = start.With(space, rac.MaxClients, 50)
	start = start.With(space, rac.MaxThreads, 50)
	params, err := rac.ParamsFromConfig(space, start)
	if err != nil {
		return err
	}

	server, err := rac.NewLiveServer(params, rac.Level2)
	if err != nil {
		return err
	}
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	fmt.Printf("three-tier bookstore serving on http://%s\n", addr)

	driver, err := rac.NewLoadDriver("http://"+addr, rac.Workload{Mix: rac.Shopping, Clients: 60}, 21)
	if err != nil {
		return err
	}
	live, err := rac.NewLiveSystem(space, server, driver, start)
	if err != nil {
		return err
	}
	live.Interval = 1500 * time.Millisecond

	agent, err := rac.NewAgent(live, rac.AgentOptions{Seed: 2})
	if err != nil {
		return err
	}

	fmt.Println("\niter   rt(paper-s)  X(req/s)  action")
	for i := 1; i <= 20; i++ {
		step, err := agent.Step(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("%4d  %11.3f  %8.1f  %s\n",
			i, step.MeanRT, step.Throughput, step.Action.Describe(space))
	}
	fmt.Printf("\nfinal config: %s\n", agent.Config().Format(space))
	st := server.Stats()
	fmt.Printf("server stats: served=%d rejected=%d sessions=%d\n", st.Served, st.Rejected, st.Sessions)
	return nil
}
