// Dynamic workload: the paper's §5.2 scenario. The website starts under the
// shopping mix (context-1); at iteration 20 the traffic abruptly becomes
// ordering-dominated (context-2). The RAC agent detects the change through
// consecutive reward violations and switches to the matching initial policy;
// a static-default configuration is run alongside for comparison.
//
//	go run ./examples/dynamicworkload
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/rac-project/rac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx1, err := rac.ContextByName("context-1")
	if err != nil {
		return err
	}
	ctx2, err := rac.ContextByName("context-2")
	if err != nil {
		return err
	}

	// Learn one initial policy per context (offline, from the analytic
	// surface) and put both in the store for adaptive switching.
	space := rac.DefaultSpace()
	store := rac.NewPolicyStore()
	var initial *rac.Policy
	for _, ctx := range []rac.Context{ctx1, ctx2} {
		analytic, err := rac.NewAnalyticSystem(rac.AnalyticOptions{Context: ctx, Space: space})
		if err != nil {
			return err
		}
		p, err := rac.LearnPolicy(ctx.Name, space, rac.SystemSampler(analytic), rac.InitOptions{})
		if err != nil {
			return err
		}
		store.Add(p)
		if ctx.Name == ctx1.Name {
			initial = p
		}
	}

	newSys := func(seed uint64) (*rac.SimulatedSystem, error) {
		return rac.NewSimulatedSystem(rac.SimulatedOptions{
			Space:          space,
			Context:        ctx1,
			Seed:           seed,
			SettleSeconds:  20,
			MeasureSeconds: 120,
		})
	}
	racSys, err := newSys(11)
	if err != nil {
		return err
	}
	staticSys, err := newSys(11)
	if err != nil {
		return err
	}

	agent, err := rac.NewAgent(racSys, rac.AgentOptions{Policy: initial, Store: store, Seed: 3})
	if err != nil {
		return err
	}
	static, err := rac.NewStaticAgent(staticSys, rac.DefaultOptions())
	if err != nil {
		return err
	}

	fmt.Println("iter   RAC(s)  static(s)  note")
	const (
		total    = 40
		changeAt = 20
	)
	for i := 1; i <= total; i++ {
		note := ""
		if i == changeAt {
			// The operator changes the traffic on both systems.
			if err := rac.ApplyContext(racSys, ctx2); err != nil {
				return err
			}
			if err := rac.ApplyContext(staticSys, ctx2); err != nil {
				return err
			}
			note = "→ traffic changed to ordering mix"
		}
		a, err := agent.Step(context.Background())
		if err != nil {
			return err
		}
		s, err := static.Step(context.Background())
		if err != nil {
			return err
		}
		if a.Switched {
			note = fmt.Sprintf("RAC switched to policy %q", a.PolicyName)
		}
		fmt.Printf("%4d  %6.3f  %9.3f  %s\n", i, a.MeanRT, s.MeanRT, note)
	}
	fmt.Printf("\nRAC final config: %s\n", agent.Config().Format(space))
	return nil
}
