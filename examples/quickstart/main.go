// Quickstart: tune the simulated three-tier website with the RAC agent.
//
// The program builds the paper's testbed in context-2 (ordering mix on a
// Level-1 VM), learns an initial policy from the analytic surface, and runs
// 25 online iterations — the paper's convergence budget — printing the
// response time and the action taken at each step.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/rac-project/rac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, err := rac.ContextByName("context-2")
	if err != nil {
		return err
	}
	sys, err := rac.NewSimulatedSystem(rac.SimulatedOptions{
		Context:        ctx,
		Seed:           1,
		SettleSeconds:  20,
		MeasureSeconds: 120,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tuning %s, starting from the Table 1 defaults\n", ctx)
	fmt.Printf("initial config: %s\n\n", sys.Config().Format(sys.Space()))

	// Policy initialization (paper Algorithm 2) from the fast analytic
	// surface; rac.SystemSampler(sys) would sample the simulator instead,
	// like the paper's offline data collection.
	analytic, err := rac.NewAnalyticSystem(rac.AnalyticOptions{Context: ctx})
	if err != nil {
		return err
	}
	policy, err := rac.LearnPolicy(ctx.Name, sys.Space(), rac.SystemSampler(analytic), rac.InitOptions{})
	if err != nil {
		return err
	}

	agent, err := rac.NewAgent(sys, rac.AgentOptions{Policy: policy, Seed: 7})
	if err != nil {
		return err
	}

	var first, best float64
	for i := 0; i < 25; i++ {
		step, err := agent.Step(context.Background())
		if err != nil {
			return err
		}
		if i == 0 {
			first, best = step.MeanRT, step.MeanRT
		}
		if step.MeanRT < best {
			best = step.MeanRT
		}
		fmt.Printf("iter %2d  rt=%6.3fs  reward=%+6.3f  %s\n",
			step.Iteration, step.MeanRT, step.Reward, step.Action.Describe(sys.Space()))
	}
	fmt.Printf("\nfinal config:  %s\n", agent.Config().Format(sys.Space()))
	fmt.Printf("first-iteration rt %.3fs, best observed %.3fs\n", first, best)
	return nil
}
