// VM scaling: the paper's second dynamic. The website runs the ordering mix
// while the app/db VM is reallocated from Level-1 down to Level-3 and back —
// the configuration that was right for the strong VM is wrong for the weak
// one (paper §2.2 and Fig. 3), and the RAC agent re-tunes after each
// reallocation.
//
//	go run ./examples/vmscaling
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/rac-project/rac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx2, err := rac.ContextByName("context-2") // ordering on Level-1
	if err != nil {
		return err
	}
	ctx3, err := rac.ContextByName("context-3") // ordering on Level-3
	if err != nil {
		return err
	}

	space := rac.DefaultSpace()
	store := rac.NewPolicyStore()
	var initial *rac.Policy
	for _, ctx := range []rac.Context{ctx2, ctx3} {
		analytic, err := rac.NewAnalyticSystem(rac.AnalyticOptions{Context: ctx, Space: space})
		if err != nil {
			return err
		}
		p, err := rac.LearnPolicy(ctx.Name, space, rac.SystemSampler(analytic), rac.InitOptions{})
		if err != nil {
			return err
		}
		store.Add(p)
		if initial == nil {
			initial = p
		}
	}

	sys, err := rac.NewSimulatedSystem(rac.SimulatedOptions{
		Space:          space,
		Context:        ctx2,
		Seed:           5,
		SettleSeconds:  20,
		MeasureSeconds: 120,
	})
	if err != nil {
		return err
	}
	agent, err := rac.NewAgent(sys, rac.AgentOptions{Policy: initial, Store: store, Seed: 13})
	if err != nil {
		return err
	}

	schedule := map[int]rac.Level{
		16: rac.Level3, // resources reclaimed by the cloud operator
		32: rac.Level1, // and handed back
	}
	fmt.Println("iter   rt(s)   level    note")
	for i := 1; i <= 48; i++ {
		note := ""
		if level, ok := schedule[i]; ok {
			if err := sys.SetAppLevel(level); err != nil {
				return err
			}
			note = "→ VM reallocated to " + level.Name
		}
		step, err := agent.Step(context.Background())
		if err != nil {
			return err
		}
		if step.Switched {
			note = fmt.Sprintf("RAC switched to policy %q", step.PolicyName)
		}
		fmt.Printf("%4d  %6.3f  %-8s %s\n", i, step.MeanRT, sys.AppLevel().Name, note)
	}
	fmt.Printf("\nfinal config: %s\n", agent.Config().Format(space))
	return nil
}
