# Tier-1 gate: everything `make check` runs must pass before a PR lands.
GO ?= go

.PHONY: check fmt vet vet-faults build test race bench bench-telemetry bench-load bench-train bench-train-smoke bench-fleet bench-fleet-smoke faults-smoke fleet-smoke fleet-scale-smoke loadgen-smoke workload-smoke admission-smoke capacity-smoke

check: fmt vet vet-faults build race fleet-smoke fleet-scale-smoke loadgen-smoke workload-smoke bench-train-smoke bench-fleet-smoke admission-smoke capacity-smoke

# fmt fails (listing the offending files) when anything is not gofmt-clean.
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The fault layer's Apply/Measure interpose on every agent step; dead branches
# there would silently skip injections, so it also gets the unreachable-code
# analyzer (not part of vet's default set).
vet-faults:
	$(GO) vet -unreachable ./internal/faults/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# internal/bench alone runs ~10 min under the race detector, right at go
# test's default -timeout; the explicit budget keeps the gate from flaking
# at that boundary on loaded machines.
race:
	$(GO) test -race -timeout 30m ./...

# Quick benchmark pass over every package: one iteration per benchmark with
# allocation stats, summarised into BENCH_quick.json via cmd/benchjson. The
# two-step form keeps go test's exit code (a failing benchmark fails the
# target before any JSON is written).
bench:
	@$(GO) test -run xxx -bench . -benchmem -benchtime 1x ./... > BENCH_quick.txt || \
		{ cat BENCH_quick.txt; rm -f BENCH_quick.txt; exit 1; }
	@cat BENCH_quick.txt
	$(GO) run ./cmd/benchjson BENCH_quick.txt -o BENCH_quick.json
	@echo "wrote BENCH_quick.json"

# The telemetry hot path must stay allocation-free; see internal/telemetry.
bench-telemetry:
	$(GO) test -run xxx -bench . -benchmem ./internal/telemetry/

# The data-plane acceptance benchmark: sustained throughput of the seed
# closed-loop browser driver versus the sharded open-loop engine against the
# same live stack, summarised into BENCH_load.json (compare the req/s
# metrics). Same two-step form as `make bench`.
bench-load:
	@$(GO) test -run xxx -bench Sustained -benchtime 5x ./internal/loadgen/ > BENCH_load.txt || \
		{ cat BENCH_load.txt; rm -f BENCH_load.txt; exit 1; }
	@cat BENCH_load.txt
	$(GO) run ./cmd/benchjson BENCH_load.txt -o BENCH_load.json
	@echo "wrote BENCH_load.json"

# The policy-training acceptance benchmark: quick-mode Figure-5 policy
# training (BenchmarkFig05Training — the store over the schedule contexts
# plus the initial policy, nothing served from the policy cache), pinned in
# the committed BENCH_train.json. Regenerate after intentional performance
# changes; bench-train-smoke gates `make check` against the committed
# numbers. Same two-step form as `make bench`.
bench-train:
	@$(GO) test -run xxx -bench Fig05Training -benchtime 3x . > BENCH_train.txt || \
		{ cat BENCH_train.txt; rm -f BENCH_train.txt; exit 1; }
	@cat BENCH_train.txt
	$(GO) run ./cmd/benchjson BENCH_train.txt -o BENCH_train.json
	@echo "wrote BENCH_train.json"

# Regression gate on policy-training speed: one iteration of the training
# benchmark must stay within 2x of the committed BENCH_train.json baseline
# (benchjson -compare fails the target past that ratio).
bench-train-smoke:
	@$(GO) test -run xxx -bench Fig05Training -benchtime 1x . > BENCH_train_smoke.txt || \
		{ cat BENCH_train_smoke.txt; rm -f BENCH_train_smoke.txt; exit 1; }
	@$(GO) run ./cmd/benchjson BENCH_train_smoke.txt -compare BENCH_train.json -maxratio 2 && \
		rm -f BENCH_train_smoke.txt || { rm -f BENCH_train_smoke.txt; exit 1; }

# One-iteration smoke of both load-generator benchmarks: catches a data-plane
# regression (engine deadlock, accounting panic) without the full bench-load
# run, so it is cheap enough for `make check`.
loadgen-smoke:
	$(GO) test -run xxx -bench Sustained -benchtime 1x ./internal/loadgen/

# End-to-end smoke of the fault-injection path: live server, scripted faults,
# resilient agent — a crash or hang here means the recovery loop regressed.
faults-smoke:
	$(GO) run ./cmd/racagent -faults examples/faults_basic.json -quick

# End-to-end smoke of the workload engine: every shipped scenario file must
# parse and compile, and the two-phase ramp scenario replays end to end on the
# simulated backend. Short measurement windows keep it cheap enough for
# `make check`.
workload-smoke:
	$(GO) run ./cmd/racsim -validate-scenarios examples/scenarios
	$(GO) run ./cmd/racsim -scenario examples/scenarios/ramp.json -warmup 30 -interval 60

# End-to-end smoke of the SLO admission gate: the gated-vs-ungated overload
# figure must generate cleanly and the gate must actually reject under the
# flash crowd (the figure errors if a variant fails to run). Quick mode keeps
# it under a second.
admission-smoke:
	$(GO) run ./cmd/racbench -fig overload -quick

# End-to-end smoke of the elastic capacity controller: the capacity-aware vs
# static-peak flash-crowd figure must generate cleanly, which exercises the
# saturation analyzer, the fast scale path and per-level warm starts. Quick
# mode keeps it under a second.
capacity-smoke:
	$(GO) run ./cmd/racbench -fig flashcrowd-capacity -quick

# End-to-end smoke of the multi-tenant control plane: racd boots two
# simulated tenants, exercises the admin API, drains with final checkpoints,
# then boots a second fleet over the same directory and verifies both tenants
# warm-restart from disk (cmd/racd -selfcheck). Part of `make check` because
# the checkpoint/restore path only fails visibly across a process restart.
fleet-smoke:
	$(GO) run ./cmd/racd -selfcheck

# Production-scale smoke of the sharded control plane: 2000 analytic tenants
# bulk-admitted through the versioned admin API, paginated back out, stepped
# for several rounds. The selfcheck fails on unbounded memory per tenant or
# round latency that grows as state accumulates — the two ways a fleet-wide
# bottleneck shows up first.
fleet-scale-smoke:
	$(GO) run ./cmd/racd -selfcheck -tenants 2000

# The fleet-scale acceptance benchmark: rounds/sec and bytes/tenant at 100,
# 1k and 10k tenants, pinned in the committed BENCH_fleet.json. bytes/tenant
# must fall with fleet size (shared Q-structure amortizes); regenerate after
# intentional changes. Same two-step form as `make bench`.
bench-fleet:
	@$(GO) test -run xxx -bench FleetScale -benchtime 3x ./internal/fleet/ > BENCH_fleet.txt || \
		{ cat BENCH_fleet.txt; rm -f BENCH_fleet.txt; exit 1; }
	@cat BENCH_fleet.txt
	$(GO) run ./cmd/benchjson BENCH_fleet.txt -o BENCH_fleet.json
	@echo "wrote BENCH_fleet.json"

# Regression gate on control-plane round throughput: the 100-tenant scale
# benchmark must stay within 3x of the committed BENCH_fleet.json baseline
# (generous ratio — one-iteration runs are noisy; the 10k sizes run only in
# the full bench-fleet).
bench-fleet-smoke:
	@$(GO) test -run xxx -bench 'FleetScale(100|1000)$$' -benchtime 1x ./internal/fleet/ > BENCH_fleet_smoke.txt || \
		{ cat BENCH_fleet_smoke.txt; rm -f BENCH_fleet_smoke.txt; exit 1; }
	@$(GO) run ./cmd/benchjson BENCH_fleet_smoke.txt -compare BENCH_fleet.json -maxratio 3 && \
		rm -f BENCH_fleet_smoke.txt || { rm -f BENCH_fleet_smoke.txt; exit 1; }
