# Tier-1 gate: everything `make check` runs must pass before a PR lands.
GO ?= go

.PHONY: check fmt vet build test race bench-telemetry

check: fmt vet build race

# fmt fails (listing the offending files) when anything is not gofmt-clean.
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The telemetry hot path must stay allocation-free; see internal/telemetry.
bench-telemetry:
	$(GO) test -run xxx -bench . -benchmem ./internal/telemetry/
