package faults

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/parallel"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"empty", Scenario{}},
		{"named seeded", Scenario{Name: "burst", Seed: 42}},
		{"scripted windows", Scenario{Rules: []Rule{
			{Kind: ApplyError, From: 5, To: 8},
			{Kind: CapacityDrop, From: 22, To: 28, Magnitude: 2},
		}}},
		{"stochastic open-ended", Scenario{Name: "noisy", Seed: 9, Rules: []Rule{
			{Kind: MeasureNoise, Probability: 0.3, Magnitude: 0.5},
			{Kind: MeasureOutlier, Probability: 0.05},
		}}},
		{"every kind", Scenario{Rules: func() []Rule {
			var rs []Rule
			for i, k := range Kinds() {
				rs = append(rs, Rule{Kind: k, From: i + 1, To: i + 2})
			}
			return rs
		}()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.sc.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.sc) {
				t.Fatalf("round trip:\n got  %+v\n want %+v", got, tc.sc)
			}
		})
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown kind", `{"rules":[{"kind":"disk-full"}]}`, "unknown kind"},
		{"unknown field", `{"rules":[],"jitter":1}`, "decode scenario"},
		{"bad probability", `{"rules":[{"kind":"latency-spike","probability":1.5}]}`, "probability"},
		{"inverted window", `{"rules":[{"kind":"apply-error","from":9,"to":3}]}`, "before it starts"},
		{"negative magnitude", `{"rules":[{"kind":"latency-spike","magnitude":-2}]}`, "negative magnitude"},
		{"burst fraction", `{"rules":[{"kind":"error-burst","magnitude":1.5}]}`, "fraction"},
		{"garbage", `{"rules":`, "decode scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRuleWindowAndDefaults(t *testing.T) {
	cases := []struct {
		rule     Rule
		interval int
		active   bool
	}{
		{Rule{Kind: LatencySpike}, 1, true},                  // zero window = always
		{Rule{Kind: LatencySpike}, 999, true},                // open-ended
		{Rule{Kind: LatencySpike, From: 3}, 2, false},        // before start
		{Rule{Kind: LatencySpike, From: 3}, 3, true},         // inclusive start
		{Rule{Kind: LatencySpike, From: 3, To: 5}, 5, true},  // inclusive end
		{Rule{Kind: LatencySpike, From: 3, To: 5}, 6, false}, // past end
	}
	for _, tc := range cases {
		if got := tc.rule.activeAt(tc.interval); got != tc.active {
			t.Errorf("%+v activeAt(%d) = %v, want %v", tc.rule, tc.interval, got, tc.active)
		}
	}
	defaults := map[Kind]float64{
		LatencySpike: 4, ErrorBurst: 0.6, CapacityDrop: 1, MeasureNoise: 0.2, MeasureOutlier: 10,
	}
	for k, want := range defaults {
		if got := (Rule{Kind: k}).magnitude(); got != want {
			t.Errorf("%s default magnitude = %v, want %v", k, got, want)
		}
	}
	if got := (Rule{Kind: LatencySpike, Magnitude: 7}).magnitude(); got != 7 {
		t.Errorf("explicit magnitude ignored: %v", got)
	}
}

func TestLastScheduled(t *testing.T) {
	sc := Scenario{Rules: []Rule{
		{Kind: LatencySpike, From: 1, To: 18},
		{Kind: MeasureOutlier, Probability: 0.1}, // open-ended: ignored
		{Kind: CapacityDrop, From: 22, To: 28},
	}}
	if got := sc.LastScheduled(); got != 28 {
		t.Fatalf("LastScheduled = %d, want 28", got)
	}
	if got := (Scenario{}).LastScheduled(); got != 0 {
		t.Fatalf("empty LastScheduled = %d, want 0", got)
	}
}

func TestExampleScenarioLoads(t *testing.T) {
	sc, err := LoadFile(filepath.Join("..", "..", "examples", "faults_basic.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rules) == 0 {
		t.Fatal("shipped example scenario has no rules")
	}
	if sc.LastScheduled() == 0 {
		t.Fatal("shipped example scenario is entirely open-ended; recovery would be unobservable")
	}
}

// TestDeterminismAcrossProcs replays the same stochastic scenario on many
// systems fanned out through internal/parallel at Procs=1 and Procs=8 and
// requires identical injection logs — the PR 2 determinism contract extended
// to the fault layer.
func TestDeterminismAcrossProcs(t *testing.T) {
	sc := Scenario{Name: "stochastic", Seed: 77, Rules: []Rule{
		{Kind: ApplyError, Probability: 0.3},
		{Kind: LatencySpike, Probability: 0.4, Magnitude: 3},
		{Kind: MeasureNoise, Probability: 0.5},
		{Kind: MeasureOutlier, Probability: 0.1},
		{Kind: ErrorBurst, From: 4, To: 9, Probability: 0.5},
	}}
	const replicas = 12

	run := func(procs int) [][]Injection {
		t.Helper()
		logs, err := parallel.Map(parallel.Options{Procs: procs}, replicas, func(i int) ([]Injection, error) {
			s, err := New(newFlatSystem(), Options{Scenario: sc, Seed: uint64(i)})
			if err != nil {
				return nil, err
			}
			for iv := 0; iv < 30; iv++ {
				s.Apply(context.Background(), s.Space().DefaultConfig()) // may transiently fail: ignore
				s.Measure(context.Background())
			}
			return s.Injected(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return logs
	}

	serial, wide := run(1), run(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("fault sequences differ between Procs=1 and Procs=8")
	}
	// Replicas with different seeds must not share a fault sequence, or the
	// seed is not reaching the RNG.
	if reflect.DeepEqual(serial[0], serial[1]) {
		t.Fatal("distinct seeds produced identical fault sequences")
	}
}
