package faults

import (
	"context"
	"fmt"
	"testing"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// flatSystem is a minimal deterministic System + Adjustable: constant
// response time, so every perturbation is exactly attributable to the
// injected fault.
type flatSystem struct {
	space   *config.Space
	cfg     config.Config
	level   vmenv.Level
	work    tpcw.Workload
	applies int
}

func newFlatSystem() *flatSystem {
	space := config.Default()
	return &flatSystem{
		space: space,
		cfg:   space.DefaultConfig(),
		level: vmenv.Level1,
		work:  tpcw.Workload{Mix: tpcw.Shopping, Clients: 100},
	}
}

func (f *flatSystem) Space() *config.Space  { return f.space }
func (f *flatSystem) Config() config.Config { return f.cfg.Clone() }

func (f *flatSystem) Apply(ctx context.Context, cfg config.Config) error {
	if err := f.space.Validate(cfg); err != nil {
		return err
	}
	f.cfg = cfg.Clone()
	f.applies++
	return nil
}

func (f *flatSystem) Measure(ctx context.Context) (system.Metrics, error) {
	return system.Metrics{MeanRT: 1, P95RT: 2, Throughput: 100, Completed: 1000, IntervalSeconds: 300}, nil
}

func (f *flatSystem) SetWorkload(w tpcw.Workload) error   { f.work = w; return nil }
func (f *flatSystem) SetAppLevel(level vmenv.Level) error { f.level = level; return nil }
func (f *flatSystem) Workload() tpcw.Workload             { return f.work }
func (f *flatSystem) AppLevel() vmenv.Level               { return f.level }

var (
	_ system.System     = (*flatSystem)(nil)
	_ system.Adjustable = (*flatSystem)(nil)
)

func wrap(t *testing.T, inner system.System, sc Scenario, seed uint64) *System {
	t.Helper()
	s, err := New(inner, Options{Scenario: sc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestApplyErrorIsTransient(t *testing.T) {
	inner := newFlatSystem()
	s := wrap(t, inner, Scenario{Rules: []Rule{{Kind: ApplyError, From: 1, To: 1}}}, 1)
	err := s.Apply(context.Background(), inner.space.DefaultConfig())
	if err == nil {
		t.Fatal("scripted apply-error did not fire")
	}
	if !system.IsTransient(err) {
		t.Fatalf("injected apply error not transient: %v", err)
	}
	if inner.applies != 0 {
		t.Fatal("failed apply reached the inner system")
	}
	// After the window the apply goes through.
	if _, err := s.Measure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(context.Background(), inner.space.DefaultConfig()); err != nil {
		t.Fatalf("apply after fault window: %v", err)
	}
}

func TestApplyIgnoredShadowsConfig(t *testing.T) {
	inner := newFlatSystem()
	s := wrap(t, inner, Scenario{Rules: []Rule{{Kind: ApplyIgnored, From: 1, To: 1}}}, 1)
	want := inner.space.DefaultConfig().With(inner.space, config.MaxClients, 300)
	if err := s.Apply(context.Background(), want); err != nil {
		t.Fatalf("apply-ignored must report success: %v", err)
	}
	if inner.applies != 0 {
		t.Fatal("ignored apply reconfigured the inner system")
	}
	// The caller sees its requested config; the inner system kept the old one.
	if got, _ := s.Config().Get(s.Space(), config.MaxClients); got != 300 {
		t.Fatalf("Config() = %d, want the shadowed 300", got)
	}
	if got, _ := s.ActualConfig().Get(s.Space(), config.MaxClients); got == 300 {
		t.Fatal("ActualConfig() shows the ignored value")
	}
	// A later successful apply clears the shadow.
	if _, err := s.Measure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	if inner.applies != 1 {
		t.Fatal("post-window apply did not reach the inner system")
	}
	if got, _ := s.ActualConfig().Get(s.Space(), config.MaxClients); got != 300 {
		t.Fatal("shadow not cleared after a real apply")
	}
}

func TestMeasureFaultsLoseIntervals(t *testing.T) {
	for _, kind := range []Kind{MeasureError, MeasureTimeout} {
		s := wrap(t, newFlatSystem(), Scenario{Rules: []Rule{{Kind: kind, From: 2, To: 2}}}, 1)
		if _, err := s.Measure(context.Background()); err != nil {
			t.Fatalf("%s: interval 1 failed: %v", kind, err)
		}
		if _, err := s.Measure(context.Background()); err == nil || !system.IsTransient(err) {
			t.Fatalf("%s: interval 2 err = %v, want transient", kind, err)
		}
		if _, err := s.Measure(context.Background()); err != nil {
			t.Fatalf("%s: interval 3 failed: %v", kind, err)
		}
		if s.Intervals() != 3 {
			t.Fatalf("%s: %d intervals elapsed, want 3 (lost intervals still count)", kind, s.Intervals())
		}
	}
}

func TestLatencySpikeAndOutlierScaleRT(t *testing.T) {
	s := wrap(t, newFlatSystem(), Scenario{Rules: []Rule{
		{Kind: LatencySpike, From: 1, To: 1, Magnitude: 6},
		{Kind: MeasureOutlier, From: 2, To: 2},
	}}, 1)
	m, err := s.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanRT != 6 || m.P95RT != 12 {
		t.Fatalf("spike x6: rt=%v p95=%v", m.MeanRT, m.P95RT)
	}
	m, err = s.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanRT != 10 { // default outlier magnitude
		t.Fatalf("outlier: rt=%v, want 10", m.MeanRT)
	}
	m, _ = s.Measure(context.Background())
	if m.MeanRT != 1 {
		t.Fatalf("after windows: rt=%v, want clean 1", m.MeanRT)
	}
}

func TestErrorBurstMovesCompletionsToErrors(t *testing.T) {
	s := wrap(t, newFlatSystem(), Scenario{Rules: []Rule{
		{Kind: ErrorBurst, From: 1, To: 1, Magnitude: 0.7},
	}}, 1)
	m, err := s.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 700 || m.Completed != 300 {
		t.Fatalf("burst 0.7: errors=%d completed=%d", m.Errors, m.Completed)
	}
	if m.Throughput <= 29 || m.Throughput >= 31 {
		t.Fatalf("burst throughput %v, want ~30", m.Throughput)
	}
}

func TestMeasureNoisePerturbsDeterministically(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Kind: MeasureNoise, From: 1}}}
	run := func() []float64 {
		s := wrap(t, newFlatSystem(), sc, 9)
		var rts []float64
		for i := 0; i < 5; i++ {
			m, err := s.Measure(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			rts = append(rts, m.MeanRT)
		}
		return rts
	}
	a, b := run(), run()
	varies := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise not reproducible: %v vs %v", a, b)
		}
		if a[i] != 1 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("noise rule never perturbed the measurement")
	}
}

func TestCapacityDropDegradesAndRestores(t *testing.T) {
	inner := newFlatSystem()
	s := wrap(t, inner, Scenario{Rules: []Rule{{Kind: CapacityDrop, From: 2, To: 3}}}, 1)
	if _, err := s.Measure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if inner.level != vmenv.Level1 {
		t.Fatal("capacity dropped before its window")
	}
	s.Measure(context.Background())
	if inner.level != vmenv.Level2 {
		t.Fatalf("interval 2: level %v, want degraded Level-2", inner.level)
	}
	s.Measure(context.Background())
	if inner.level != vmenv.Level2 {
		t.Fatalf("interval 3: level %v, want still degraded", inner.level)
	}
	s.Measure(context.Background())
	if inner.level != vmenv.Level1 {
		t.Fatalf("interval 4: level %v, want restored Level-1", inner.level)
	}
	// Two transitions in the log: drop and restore.
	drops := 0
	for _, inj := range s.Injected() {
		if inj.Kind == CapacityDrop {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("%d capacity-drop log entries, want 2 (enter + restore)", drops)
	}
}

func TestCapacityDropHoldsDriverReallocation(t *testing.T) {
	inner := newFlatSystem()
	s := wrap(t, inner, Scenario{Rules: []Rule{{Kind: CapacityDrop, From: 1, To: 2}}}, 1)
	s.Measure(context.Background())
	if inner.level != vmenv.Level2 {
		t.Fatalf("level %v, want degraded", inner.level)
	}
	// The driver reallocates mid-drop: the fault keeps squatting, the new
	// level becomes the restore target.
	if err := s.SetAppLevel(vmenv.Level3); err != nil {
		t.Fatal(err)
	}
	if inner.level != vmenv.Level2 {
		t.Fatal("driver reallocation overrode an active capacity fault")
	}
	s.Measure(context.Background())
	s.Measure(context.Background())
	if inner.level != vmenv.Level3 {
		t.Fatalf("restored %v, want the driver's Level-3", inner.level)
	}
}

func TestProbabilisticRuleFiresSometimes(t *testing.T) {
	s := wrap(t, newFlatSystem(), Scenario{Rules: []Rule{
		{Kind: LatencySpike, Probability: 0.5, Magnitude: 2},
	}}, 3)
	fired, clean := 0, 0
	for i := 0; i < 200; i++ {
		m, err := s.Measure(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if m.MeanRT > 1 {
			fired++
		} else {
			clean++
		}
	}
	if fired < 60 || clean < 60 {
		t.Fatalf("p=0.5 rule fired %d/200", fired)
	}
	if len(s.Injected()) != fired {
		t.Fatalf("log has %d entries, %d faults fired", len(s.Injected()), fired)
	}
}

func TestInjectionsReachTelemetryAndTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(16)
	inner := newFlatSystem()
	s, err := New(inner, Options{
		Scenario:  Scenario{Rules: []Rule{{Kind: LatencySpike, From: 1, To: 2}}},
		Telemetry: reg,
		Trace:     trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Measure(context.Background())
	s.Measure(context.Background())
	snap := reg.Snapshot()
	found := false
	for _, m := range snap.Counters {
		if m.Name == "faults_injected_total" && m.Labels["kind"] == string(LatencySpike) {
			found = true
			if m.Value != 2 {
				t.Fatalf("counter = %v, want 2", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("faults_injected_total not in telemetry snapshot")
	}
	evs := trace.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("%d trace events, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind != telemetry.KindFault || ev.Fault != string(LatencySpike) {
			t.Fatalf("trace event %+v", ev)
		}
	}
}

func TestNonAdjustableInnerSkipsCapacityRules(t *testing.T) {
	inner := newFlatSystem()
	// Hide the Adjustable half behind a plain System.
	type bare struct{ system.System }
	s := wrap(t, bare{inner}, Scenario{Rules: []Rule{{Kind: CapacityDrop, From: 1}}}, 1)
	if _, err := s.Measure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if inner.level != vmenv.Level1 {
		t.Fatal("capacity rule reached a non-adjustable system")
	}
	if err := s.SetAppLevel(vmenv.Level2); err == nil {
		t.Fatal("SetAppLevel on a non-adjustable inner accepted")
	}
	if err := s.SetWorkload(tpcw.Workload{Mix: tpcw.Ordering, Clients: 5}); err == nil {
		t.Fatal("SetWorkload on a non-adjustable inner accepted")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := New(newFlatSystem(), Options{Scenario: Scenario{Rules: []Rule{{Kind: "nope"}}}}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func ExampleSystem() {
	inner := newFlatSystem()
	s, _ := New(inner, Options{Scenario: Scenario{
		Rules: []Rule{{Kind: LatencySpike, From: 1, To: 1, Magnitude: 3}},
	}})
	m, _ := s.Measure(context.Background())
	fmt.Printf("rt=%.0f injections=%d\n", m.MeanRT, len(s.Injected()))
	// Output: rt=3 injections=1
}
