// Package faults is the repository's fault model: a deterministic,
// RNG-seeded fault-injection layer that wraps any system.System and subjects
// its consumers to the failures a live auto-configuration loop must survive —
// reconfigurations that error or silently do not take, lost or wedged
// measurement intervals, latency spikes, request-error bursts, transient
// capacity degradation, and noisy or outlier measurements.
//
// Faults are scheduled declaratively: a Scenario is a list of Rules, each
// naming a fault Kind, the measurement-interval window it is active in, an
// optional per-call probability (omitted = fires every time) and a
// kind-specific magnitude. Scenarios serialize to JSON so experiments ship
// them as files (see examples/faults_basic.json). All randomness flows
// through one sim.RNG stream derived from the scenario and wrapper seeds, so
// a replay is byte-identical for any GOMAXPROCS or worker-pool width — the
// same determinism contract as internal/parallel.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Kind names an injectable fault type.
type Kind string

// The fault taxonomy. Apply-side faults fire on System.Apply, measure-side
// faults on System.Measure.
const (
	// ApplyError makes Apply return a transient error (the reconfiguration
	// RPC failed and says so).
	ApplyError Kind = "apply-error"
	// ApplyIgnored makes Apply report success without reconfiguring — the
	// config silently did not take, the worst reconfiguration failure mode.
	ApplyIgnored Kind = "apply-ignored"
	// MeasureError makes Measure return a transient error (the interval's
	// data was lost).
	MeasureError Kind = "measure-error"
	// MeasureTimeout makes Measure return a transient deadline error (the
	// monitor wedged).
	MeasureTimeout Kind = "measure-timeout"
	// LatencySpike multiplies the measured MeanRT and P95RT by Magnitude
	// (default 4): a transient slowdown the system did not cause itself.
	LatencySpike Kind = "latency-spike"
	// ErrorBurst converts a Magnitude fraction (default 0.6) of the
	// interval's completions into errors, slashing throughput — the paper's
	// SLA-violating transient of Algorithm 3 pushed to the failure regime.
	ErrorBurst Kind = "error-burst"
	// CapacityDrop degrades the VM allocation by Magnitude levels (default
	// 1) while the rule is active and restores it after — a VM-level change
	// the driver did not announce. Requires the wrapped system to implement
	// system.Adjustable; otherwise the rule is skipped.
	CapacityDrop Kind = "capacity-drop"
	// MeasureNoise multiplies MeanRT and P95RT by a log-normal factor with
	// sigma Magnitude (default 0.2): measurement jitter.
	MeasureNoise Kind = "measure-noise"
	// MeasureOutlier multiplies MeanRT and P95RT by Magnitude (default 10):
	// a wild mismeasurement that should be rejected, not learned from.
	MeasureOutlier Kind = "measure-outlier"
)

// Kinds returns every fault kind, in taxonomy order.
func Kinds() []Kind {
	return []Kind{
		ApplyError, ApplyIgnored, MeasureError, MeasureTimeout,
		LatencySpike, ErrorBurst, CapacityDrop, MeasureNoise, MeasureOutlier,
	}
}

// valid reports whether k names a known fault kind.
func (k Kind) valid() bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// Rule schedules one fault kind over a window of measurement intervals.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind `json:"kind"`
	// From is the first measurement interval (1-based) the rule is active
	// in; 0 means 1.
	From int `json:"from,omitempty"`
	// To is the last active interval; 0 means open-ended.
	To int `json:"to,omitempty"`
	// Probability is the per-call chance the active rule fires; 0 means it
	// fires on every call while active (a scripted, non-stochastic fault).
	Probability float64 `json:"probability,omitempty"`
	// Magnitude is the kind-specific intensity; 0 uses the kind's default
	// (see the Kind constants).
	Magnitude float64 `json:"magnitude,omitempty"`
}

// activeAt reports whether the rule covers the given 1-based interval.
func (r Rule) activeAt(interval int) bool {
	from := r.From
	if from < 1 {
		from = 1
	}
	return interval >= from && (r.To == 0 || interval <= r.To)
}

// magnitude returns the rule's intensity, falling back to the kind default.
func (r Rule) magnitude() float64 {
	if r.Magnitude > 0 {
		return r.Magnitude
	}
	switch r.Kind {
	case LatencySpike:
		return 4
	case ErrorBurst:
		return 0.6
	case CapacityDrop:
		return 1
	case MeasureNoise:
		return 0.2
	case MeasureOutlier:
		return 10
	default:
		return 0
	}
}

// Validate checks the rule.
func (r Rule) Validate() error {
	if !r.Kind.valid() {
		return fmt.Errorf("faults: unknown kind %q", r.Kind)
	}
	if r.From < 0 || r.To < 0 {
		return fmt.Errorf("faults: %s: negative interval window [%d,%d]", r.Kind, r.From, r.To)
	}
	if r.To != 0 && r.To < r.From {
		return fmt.Errorf("faults: %s: window ends (%d) before it starts (%d)", r.Kind, r.To, r.From)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("faults: %s: probability %v outside [0,1]", r.Kind, r.Probability)
	}
	if r.Magnitude < 0 {
		return fmt.Errorf("faults: %s: negative magnitude %v", r.Kind, r.Magnitude)
	}
	if r.Kind == ErrorBurst && r.Magnitude > 1 {
		return fmt.Errorf("faults: error-burst magnitude %v is a fraction, must be ≤ 1", r.Magnitude)
	}
	return nil
}

// Scenario is a declarative, replayable fault schedule.
type Scenario struct {
	// Name labels the scenario in figures and logs.
	Name string `json:"name,omitempty"`
	// Seed salts the injection RNG stream, so two scenarios with identical
	// rules can still fire differently.
	Seed uint64 `json:"seed,omitempty"`
	// Rules are the scheduled faults; order is part of the contract (rules
	// draw from the RNG in order, so reordering changes the replay).
	Rules []Rule `json:"rules"`
}

// Validate checks every rule.
func (s Scenario) Validate() error {
	for i, r := range s.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// LastScheduled returns the largest bounded rule end, or 0 when every rule is
// open-ended (or there are none). Experiment drivers use it to size runs so
// recovery after the final fault window is observable.
func (s Scenario) LastScheduled() int {
	last := 0
	for _, r := range s.Rules {
		if r.To > last {
			last = r.To
		}
	}
	return last
}

// Load reads and validates a JSON scenario.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("faults: decode scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadFile reads and validates a JSON scenario from a file.
func LoadFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("faults: %s: %w", path, err)
	}
	return s, nil
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
