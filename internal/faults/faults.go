package faults

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// Injection records one fired fault for the replay log.
type Injection struct {
	// Interval is the 1-based measurement interval the fault hit (for apply
	// faults, the upcoming interval).
	Interval int `json:"interval"`
	// Kind is the fault that fired.
	Kind Kind `json:"kind"`
	// Detail is kind-specific context (magnitude, restored level, …).
	Detail string `json:"detail,omitempty"`
}

// Options configure a fault-injecting wrapper.
type Options struct {
	// Scenario is the fault schedule; an empty scenario injects nothing.
	Scenario Scenario
	// Seed is mixed with Scenario.Seed into the injection RNG stream.
	Seed uint64
	// Telemetry, when non-nil, receives a faults_injected_total counter per
	// fired kind.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives one "fault" event per injection, so
	// injected faults are visible in the same decision trace as the agent's
	// recovery actions.
	Trace *telemetry.Trace
}

// System wraps a system.System and injects the scenario's faults into Apply
// and Measure. It also implements system.Adjustable, forwarding to the inner
// system when it is adjustable (capacity-drop rules need that control
// surface).
//
// The wrapper is as deterministic as its inputs: every stochastic decision
// draws from one sim.RNG stream in rule order, so the injected sequence is a
// pure function of (scenario, seed, call sequence) — independent of
// GOMAXPROCS and of any worker pool the experiment fans out on.
//
// Like the systems it wraps, a System is driven from one goroutine at a time.
type System struct {
	inner system.System
	adj   system.Adjustable // nil when inner is not adjustable
	sc    Scenario
	rng   *sim.RNG

	intervals int           // measurement intervals elapsed (including lost ones)
	shadow    config.Config // config the caller believes applied after apply-ignored
	dropped   bool          // capacity currently degraded by a capacity-drop rule
	saved     vmenv.Level   // level to restore when the drop window ends

	log   []Injection
	reg   *telemetry.Registry
	trace *telemetry.Trace
}

var (
	_ system.System     = (*System)(nil)
	_ system.Adjustable = (*System)(nil)
)

// New wraps sys with the scenario in opts.
func New(sys system.System, opts Options) (*System, error) {
	if sys == nil {
		return nil, errors.New("faults: nil system")
	}
	if err := opts.Scenario.Validate(); err != nil {
		return nil, err
	}
	adj, _ := sys.(system.Adjustable)
	return &System{
		inner: sys,
		adj:   adj,
		sc:    opts.Scenario,
		rng:   sim.NewRNG(opts.Seed ^ opts.Scenario.Seed ^ 0xFA17),
		reg:   opts.Telemetry,
		trace: opts.Trace,
	}, nil
}

// Scenario returns the schedule the wrapper replays.
func (s *System) Scenario() Scenario { return s.sc }

// Inner returns the wrapped system. Restore paths use it to re-apply a
// checkpointed configuration without routing through the injection layer
// (which would consume scheduled faults and RNG draws that belong to the
// resumed run).
func (s *System) Inner() system.System { return s.inner }

// Injected returns a copy of the fired-fault log, in injection order.
func (s *System) Injected() []Injection {
	out := make([]Injection, len(s.log))
	copy(out, s.log)
	return out
}

// Intervals returns how many measurement intervals have elapsed, counting
// intervals lost to injected measurement faults.
func (s *System) Intervals() int { return s.intervals }

// upcoming is the 1-based interval the next Measure call records.
func (s *System) upcoming() int { return s.intervals + 1 }

// fires decides whether an active rule fires on this call. Scripted rules
// (Probability 0) always fire; stochastic rules draw one uniform variate, so
// the RNG advances identically on fire and on miss.
func (s *System) fires(r Rule) bool {
	if !r.activeAt(s.upcoming()) {
		return false
	}
	if r.Probability == 0 {
		return true
	}
	return s.rng.Bool(r.Probability)
}

// inject records a fired fault in the log, telemetry and trace.
func (s *System) inject(k Kind, detail string) {
	s.log = append(s.log, Injection{Interval: s.upcoming(), Kind: k, Detail: detail})
	if s.reg != nil {
		s.reg.Counter("faults_injected_total",
			"Faults fired by the injection layer, by kind.",
			telemetry.Labels{"kind": string(k)}).Inc()
	}
	if s.trace != nil {
		s.trace.Add(telemetry.Event{
			Kind:      telemetry.KindFault,
			Iteration: s.upcoming(),
			Fault:     string(k),
			Detail:    detail,
		})
	}
}

// Space returns the inner configuration space.
func (s *System) Space() *config.Space { return s.inner.Space() }

// Config returns the configuration the caller believes is applied: after an
// apply-ignored fault it is the caller's requested config, not the inner
// system's actual one — that is the point of the fault.
func (s *System) Config() config.Config {
	if s.shadow != nil {
		return s.shadow.Clone()
	}
	return s.inner.Config()
}

// ActualConfig returns the configuration actually applied to the inner
// system, for tests and diagnostics (agents must not call it).
func (s *System) ActualConfig() config.Config { return s.inner.Config() }

// Apply forwards the reconfiguration, unless an apply-side rule fires first:
// apply-error returns a transient error, apply-ignored reports success while
// leaving the inner system unchanged.
func (s *System) Apply(ctx context.Context, cfg config.Config) error {
	for _, r := range s.sc.Rules {
		switch r.Kind {
		case ApplyError:
			if s.fires(r) {
				s.inject(ApplyError, "reconfiguration failed")
				return system.Transient(fmt.Errorf("faults: injected apply error at interval %d", s.upcoming()))
			}
		case ApplyIgnored:
			if s.fires(r) {
				s.inject(ApplyIgnored, "reconfiguration silently ignored")
				if err := s.inner.Space().Validate(cfg); err != nil {
					return err
				}
				s.shadow = cfg.Clone()
				return nil
			}
		}
	}
	if err := s.inner.Apply(ctx, cfg); err != nil {
		return err
	}
	s.shadow = nil
	return nil
}

// Measure applies capacity rules, then either loses the interval to a
// measure-side fault or measures the inner system and perturbs the result.
// The interval counter advances on every call — a lost interval still burns
// its measurement window, exactly like a wedged monitor on a live system.
func (s *System) Measure(ctx context.Context) (system.Metrics, error) {
	s.applyCapacityRules()
	defer func() { s.intervals++ }()

	for _, r := range s.sc.Rules {
		switch r.Kind {
		case MeasureError:
			if s.fires(r) {
				s.inject(MeasureError, "interval data lost")
				return system.Metrics{}, system.Transient(fmt.Errorf("faults: injected measure error at interval %d", s.upcoming()))
			}
		case MeasureTimeout:
			if s.fires(r) {
				s.inject(MeasureTimeout, "measurement deadline exceeded")
				return system.Metrics{}, system.Transient(fmt.Errorf("faults: injected measure timeout at interval %d", s.upcoming()))
			}
		}
	}

	m, err := s.inner.Measure(ctx)
	if err != nil {
		return m, err
	}
	for _, r := range s.sc.Rules {
		switch r.Kind {
		case LatencySpike:
			if s.fires(r) {
				mag := r.magnitude()
				m.MeanRT *= mag
				m.P95RT *= mag
				s.inject(LatencySpike, fmt.Sprintf("x%g", mag))
			}
		case ErrorBurst:
			if s.fires(r) {
				frac := r.magnitude()
				moved := int(frac * float64(m.Completed))
				m.Errors += moved
				m.Completed -= moved
				m.Throughput *= 1 - frac
				s.inject(ErrorBurst, fmt.Sprintf("%d requests errored", moved))
			}
		case MeasureNoise:
			if s.fires(r) {
				factor := s.rng.LogNormFloat64(0, r.magnitude())
				m.MeanRT *= factor
				m.P95RT *= factor
				s.inject(MeasureNoise, fmt.Sprintf("x%.3f", factor))
			}
		case MeasureOutlier:
			if s.fires(r) {
				mag := r.magnitude()
				m.MeanRT *= mag
				m.P95RT *= mag
				s.inject(MeasureOutlier, fmt.Sprintf("x%g", mag))
			}
		}
	}
	return m, nil
}

// applyCapacityRules enters or leaves the degraded VM level according to the
// capacity-drop rules covering the upcoming interval. Capacity drops are
// scripted by window — Probability is ignored — because flapping capacity per
// call would model a different (and less reproducible) failure than the
// paper's VM-level change.
func (s *System) applyCapacityRules() {
	if s.adj == nil {
		return
	}
	active := false
	levels := 0
	for _, r := range s.sc.Rules {
		if r.Kind == CapacityDrop && r.activeAt(s.upcoming()) {
			active = true
			levels = int(r.magnitude())
		}
	}
	switch {
	case active && !s.dropped:
		s.saved = s.adj.AppLevel()
		degraded := dropLevels(s.saved, levels)
		if degraded == s.saved {
			return // already at the weakest level: nothing to take away
		}
		if err := s.adj.SetAppLevel(degraded); err != nil {
			return
		}
		s.dropped = true
		s.inject(CapacityDrop, fmt.Sprintf("%s -> %s", s.saved.Name, degraded.Name))
	case !active && s.dropped:
		if err := s.adj.SetAppLevel(s.saved); err != nil {
			return
		}
		s.dropped = false
		s.inject(CapacityDrop, fmt.Sprintf("restored %s", s.saved.Name))
	}
}

// dropLevels returns the level n steps weaker than l (clamped to the weakest
// paper level).
func dropLevels(l vmenv.Level, n int) vmenv.Level {
	levels := vmenv.Levels() // decreasing capacity order
	idx := 0
	for i, known := range levels {
		if known == l {
			idx = i
			break
		}
	}
	idx += n
	if idx > len(levels)-1 {
		idx = len(levels) - 1
	}
	return levels[idx]
}

// SetWorkload forwards the driver-side context change to the inner system.
func (s *System) SetWorkload(w tpcw.Workload) error {
	if s.adj == nil {
		return errors.New("faults: wrapped system is not adjustable")
	}
	return s.adj.SetWorkload(w)
}

// SetAppLevel forwards a driver-side reallocation. While a capacity-drop rule
// holds the system degraded, the new level is recorded as the restore target
// instead of applied — the fault keeps squatting on the VM until its window
// ends.
func (s *System) SetAppLevel(level vmenv.Level) error {
	if s.adj == nil {
		return errors.New("faults: wrapped system is not adjustable")
	}
	if s.dropped {
		s.saved = level
		return nil
	}
	return s.adj.SetAppLevel(level)
}

// Workload returns the inner system's workload.
func (s *System) Workload() tpcw.Workload {
	if s.adj == nil {
		return tpcw.Workload{}
	}
	return s.adj.Workload()
}

// AppLevel returns the inner system's current (possibly degraded) level.
func (s *System) AppLevel() vmenv.Level {
	if s.adj == nil {
		return vmenv.Level{}
	}
	return s.adj.AppLevel()
}

var _ system.Snapshottable = (*System)(nil)

// faultsState is the serialized runtime state of the wrapper: the schedule
// position, the injection RNG mid-stream, the capacity-drop status and the
// fired-fault log, plus the inner system's blob when it is snapshottable.
type faultsState struct {
	Intervals int         `json:"intervals"`
	RNG       uint64      `json:"rng"`
	Shadow    []int       `json:"shadow,omitempty"`
	Dropped   bool        `json:"dropped,omitempty"`
	Saved     string      `json:"saved,omitempty"`
	Log       []Injection `json:"log,omitempty"`
	Inner     []byte      `json:"inner,omitempty"`
}

// ExportState captures the wrapper's runtime state so a restored tenant sees
// the same remaining fault schedule an uninterrupted run would. The inner
// system's state is embedded when it implements system.Snapshottable;
// otherwise only the wrapper state travels and the inner system restarts
// fresh.
func (s *System) ExportState() ([]byte, error) {
	st := faultsState{
		Intervals: s.intervals,
		RNG:       s.rng.State(),
		Dropped:   s.dropped,
		Log:       s.Injected(),
	}
	if s.shadow != nil {
		st.Shadow = s.shadow.Clone()
	}
	if s.dropped {
		st.Saved = s.saved.Name
	}
	if snap, ok := s.inner.(system.Snapshottable); ok {
		blob, err := snap.ExportState()
		if err != nil {
			return nil, fmt.Errorf("faults: inner state: %w", err)
		}
		st.Inner = blob
	}
	return json.Marshal(st)
}

// ImportState restores state captured by ExportState.
func (s *System) ImportState(blob []byte) error {
	var st faultsState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("faults: state: %w", err)
	}
	if st.Inner != nil {
		snap, ok := s.inner.(system.Snapshottable)
		if !ok {
			return errors.New("faults: state embeds inner system state but the wrapped system is not snapshottable")
		}
		if err := snap.ImportState(st.Inner); err != nil {
			return err
		}
	}
	if st.Dropped {
		saved, err := vmenv.ByName(st.Saved)
		if err != nil {
			return fmt.Errorf("faults: state: %w", err)
		}
		s.saved = saved
	} else {
		s.saved = vmenv.Level{}
	}
	s.intervals = st.Intervals
	s.rng = sim.RestoreRNG(st.RNG)
	s.dropped = st.Dropped
	s.shadow = nil
	if st.Shadow != nil {
		s.shadow = config.Config(st.Shadow).Clone()
	}
	s.log = append([]Injection(nil), st.Log...)
	return nil
}
