package faults

import (
	"context"
	"testing"
)

// BenchmarkMeasureBare is the baseline: the inner system measured directly.
func BenchmarkMeasureBare(b *testing.B) {
	inner := newFlatSystem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inner.Measure(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureWrappedNoFault measures the wrapper's overhead when the
// scenario's rules never fire (windows entirely in the past). The delta
// against BenchmarkMeasureBare is the cost of leaving the fault layer wired
// in on a clean run — it should be a handful of nanoseconds and zero
// allocations.
func BenchmarkMeasureWrappedNoFault(b *testing.B) {
	inner := newFlatSystem()
	s, err := New(inner, Options{Scenario: Scenario{Rules: []Rule{
		{Kind: LatencySpike, From: 1, To: 1},
		{Kind: ErrorBurst, From: 1, To: 1},
		{Kind: MeasureOutlier, From: 1, To: 1},
	}}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Measure(context.Background()); err != nil { // burn the only scheduled interval
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Measure(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureWrappedFiring is the other end: every measure-side
// transform fires on every interval.
func BenchmarkMeasureWrappedFiring(b *testing.B) {
	inner := newFlatSystem()
	s, err := New(inner, Options{Scenario: Scenario{Rules: []Rule{
		{Kind: LatencySpike},
		{Kind: ErrorBurst},
		{Kind: MeasureNoise},
		{Kind: MeasureOutlier},
	}}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Measure(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyWrappedNoFault covers the Apply path with no active rules.
func BenchmarkApplyWrappedNoFault(b *testing.B) {
	inner := newFlatSystem()
	s, err := New(inner, Options{Scenario: Scenario{Rules: []Rule{
		{Kind: ApplyError, From: 1, To: 1},
	}}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Measure(context.Background()); err != nil {
		b.Fatal(err)
	}
	cfg := inner.Space().DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Apply(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
