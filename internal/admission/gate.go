package admission

import (
	"sync"

	"github.com/rac-project/rac/internal/tpcw"
)

// Gate is the live server's concurrent front door: a Controller behind a
// mutex, tracking total and per-class occupancy. The hot path is one short
// critical section per request boundary (Enter and the returned release), so
// rejected requests cost a lock acquisition and nothing else — the fast
// 503 path the web tier's semaphore wait cannot provide.
type Gate struct {
	mu        sync.Mutex
	ctrl      *Controller
	occupancy int
	byClass   map[tpcw.Class]int

	admitted int64
	rejected int64

	// onDecision, when set, receives every epoch decision (outside the hot
	// path's counters but inside the gate lock; keep it cheap).
	onDecision func(Decision)
}

// NewGate wraps a controller for concurrent use.
func NewGate(params Params, epoch EpochConfig) (*Gate, error) {
	ctrl, err := NewController(params, epoch)
	if err != nil {
		return nil, err
	}
	return &Gate{ctrl: ctrl, byClass: make(map[tpcw.Class]int)}, nil
}

// OnDecision registers a callback invoked for every epoch decision. Call
// before serving traffic.
func (g *Gate) OnDecision(fn func(Decision)) {
	g.mu.Lock()
	g.onDecision = fn
	g.mu.Unlock()
}

// SetParams swaps the configured caps at runtime (the learning agent's
// reconfiguration path). In-flight requests are unaffected; the new caps
// apply to subsequent arrivals.
func (g *Gate) SetParams(params Params) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ctrl.SetParams(params)
}

// Enabled reports whether the gate is doing anything.
func (g *Gate) Enabled() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ctrl.Params().Enabled()
}

// Enter decides one arrival. When admitted it returns ok=true and a release
// function the caller must invoke exactly once when the request finishes
// (any path — success, error, panic-deferred). When rejected it returns
// ok=false and a nil release; the caller answers 503 and goes no deeper.
func (g *Gate) Enter(class tpcw.Class) (release func(), ok bool) {
	g.mu.Lock()
	// Occupancy is tracked even while the gate is disabled, so enabling the
	// caps mid-flight (a live reconfiguration) starts from a true count.
	admit := !g.ctrl.Params().Enabled() ||
		g.ctrl.Admit(g.occupancy, g.byClass[class], class)
	var dec Decision
	var decided bool
	if admit {
		g.occupancy++
		g.byClass[class]++
		g.admitted++
		dec, decided = g.ctrl.Observe(false)
	} else {
		g.rejected++
		dec, decided = g.ctrl.Observe(true)
	}
	fn := g.onDecision
	g.mu.Unlock()
	if decided && fn != nil {
		fn(dec)
	}
	if !admit {
		return nil, false
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.occupancy--
			g.byClass[class]--
			g.mu.Unlock()
		})
	}, true
}

// Snapshot is the gate's counter state.
type Snapshot struct {
	Occupancy int
	Admitted  int64
	Rejected  int64
	Scale     float64
	Regime    Regime
	Epochs    int
}

// Snapshot returns the current counters.
func (g *Gate) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Snapshot{
		Occupancy: g.occupancy,
		Admitted:  g.admitted,
		Rejected:  g.rejected,
		Scale:     g.ctrl.Scale(),
		Regime:    g.ctrl.Regime(),
		Epochs:    g.ctrl.Epochs(),
	}
}
