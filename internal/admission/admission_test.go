package admission

import (
	"sync"
	"testing"

	"github.com/rac-project/rac/internal/tpcw"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{MaxConcurrent: -1}).Validate(); err == nil {
		t.Error("negative concurrency cap accepted")
	}
	if err := (Params{MaxQueue: -1}).Validate(); err == nil {
		t.Error("negative queue cap accepted")
	}
	if err := (Params{ClassLimits: map[tpcw.Class]int{tpcw.ClassHome: -2}}).Validate(); err == nil {
		t.Error("negative class cap accepted")
	}
	if err := (Params{MaxConcurrent: 100, MaxQueue: 50}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if (Params{}).Enabled() {
		t.Error("zero params report enabled")
	}
}

func TestEpochValidate(t *testing.T) {
	if err := DefaultEpoch().Validate(); err != nil {
		t.Fatalf("default epoch invalid: %v", err)
	}
	bad := []EpochConfig{
		{Size: -1},
		{Size: 10, LowThreshold: 0.2, HighThreshold: 0.1, Step: 0.1, MinScale: 0.5, MaxScale: 1.5},
		{Size: 10, LowThreshold: 0.02, HighThreshold: 0.1, Step: 0, MinScale: 0.5, MaxScale: 1.5},
		{Size: 10, LowThreshold: 0.02, HighThreshold: 0.1, Step: 0.1, MinScale: 0, MaxScale: 1.5},
		{Size: 10, LowThreshold: 0.02, HighThreshold: 0.1, Step: 0.1, MinScale: 2, MaxScale: 1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid epoch config accepted: %+v", i, e)
		}
	}
}

// TestControllerDisabled checks the zero-cap controller admits everything and
// never decides.
func TestControllerDisabled(t *testing.T) {
	c, err := NewController(Params{}, DefaultEpoch())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if !c.Admit(1_000_000, 1_000_000, tpcw.ClassHome) {
			t.Fatal("disabled gate rejected")
		}
		if _, decided := c.Observe(false); decided {
			t.Fatal("disabled gate made an epoch decision")
		}
	}
}

// TestControllerRegimes drives the epoch loop through spread and exploit and
// checks the scale walks as specified.
func TestControllerRegimes(t *testing.T) {
	epoch := EpochConfig{Size: 10, LowThreshold: 0.02, HighThreshold: 0.10,
		Step: 0.1, MinScale: 0.5, MaxScale: 1.5}
	c, err := NewController(Params{MaxConcurrent: 100, MaxQueue: 50}, epoch)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch of 50% rejections → spread, scale down.
	var dec Decision
	var decided bool
	for i := 0; i < 10; i++ {
		dec, decided = c.Observe(i%2 == 0)
	}
	if !decided {
		t.Fatal("no decision at epoch boundary")
	}
	if dec.Regime != RegimeSpread || dec.Scale >= 1 {
		t.Fatalf("overloaded epoch: got %+v, want spread with scale < 1", dec)
	}
	conc, queue := c.Limits()
	if conc != 90 || queue != 45 {
		t.Fatalf("scaled limits = (%d,%d), want (90,45)", conc, queue)
	}

	// Clean epoch → exploit, scale back up.
	for i := 0; i < 10; i++ {
		dec, decided = c.Observe(false)
	}
	if !decided || dec.Regime != RegimeExploit || dec.Scale != 1.0 {
		t.Fatalf("clean epoch: got %+v, want exploit back to scale 1", dec)
	}

	// 5% rejections sits between the thresholds → hold.
	for i := 0; i < 10; i++ {
		dec, decided = c.Observe(i == 0)
	}
	if !decided || dec.Regime != RegimeHold || dec.Scale != 1.0 {
		t.Fatalf("mid epoch: got %+v, want hold at scale 1", dec)
	}

	// Scale clamps at MinScale under sustained overload…
	for e := 0; e < 20; e++ {
		for i := 0; i < 10; i++ {
			dec, _ = c.Observe(true)
		}
	}
	if dec.Scale != epoch.MinScale {
		t.Fatalf("sustained overload scale = %g, want clamp at %g", dec.Scale, epoch.MinScale)
	}
	// …and at MaxScale under sustained headroom.
	for e := 0; e < 20; e++ {
		for i := 0; i < 10; i++ {
			dec, _ = c.Observe(false)
		}
	}
	if dec.Scale != epoch.MaxScale {
		t.Fatalf("sustained headroom scale = %g, want clamp at %g", dec.Scale, epoch.MaxScale)
	}
}

// TestControllerDeterminism replays an outcome sequence and checks decisions
// are a pure function of counts — the contract the simulator's byte-identical
// replays rest on.
func TestControllerDeterminism(t *testing.T) {
	outcomes := make([]bool, 997)
	for i := range outcomes {
		outcomes[i] = i%7 == 0 || i%13 == 0
	}
	run := func() []Decision {
		c, err := NewController(Params{MaxConcurrent: 200, MaxQueue: 100}, EpochWith(100))
		if err != nil {
			t.Fatal(err)
		}
		var decs []Decision
		for _, rej := range outcomes {
			if d, ok := c.Observe(rej); ok {
				decs = append(decs, d)
			}
		}
		return decs
	}
	a, b := run(), run()
	if len(a) != len(outcomes)/100 {
		t.Fatalf("expected %d decisions, got %d", len(outcomes)/100, len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical replays: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestControllerAdmit covers the cap arithmetic, including per-class limits.
func TestControllerAdmit(t *testing.T) {
	c, err := NewController(Params{
		MaxConcurrent: 4,
		MaxQueue:      2,
		ClassLimits:   map[tpcw.Class]int{tpcw.ClassBuyConfirm: 2},
	}, EpochConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Admit(5, 0, tpcw.ClassHome) {
		t.Error("occupancy below capacity rejected")
	}
	if c.Admit(6, 0, tpcw.ClassHome) {
		t.Error("occupancy at capacity admitted")
	}
	if !c.Admit(3, 1, tpcw.ClassBuyConfirm) {
		t.Error("class below its cap rejected")
	}
	if c.Admit(3, 2, tpcw.ClassBuyConfirm) {
		t.Error("class at its cap admitted")
	}
	// Classes without a limit are bounded only by the global caps.
	if !c.Admit(3, 100, tpcw.ClassSearch) {
		t.Error("unlimited class rejected on class occupancy")
	}
}

// TestGateConcurrent hammers the gate from many goroutines; run under -race
// this is the admission data-race check. It also verifies occupancy returns
// to zero and admitted+rejected accounts every arrival.
func TestGateConcurrent(t *testing.T) {
	g, err := NewGate(Params{MaxConcurrent: 8, MaxQueue: 4}, EpochWith(50))
	if err != nil {
		t.Fatal(err)
	}
	var decisions sync.Map
	g.OnDecision(func(d Decision) { decisions.Store(d.Epoch, d) })

	const workers = 32
	const perWorker = 500
	classes := tpcw.Classes()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				release, ok := g.Enter(classes[(w+i)%len(classes)])
				if !ok {
					continue
				}
				release()
				release() // double release must be a no-op
			}
		}(w)
	}
	wg.Wait()

	snap := g.Snapshot()
	if snap.Occupancy != 0 {
		t.Errorf("occupancy %d after all releases, want 0", snap.Occupancy)
	}
	if got := snap.Admitted + snap.Rejected; got != workers*perWorker {
		t.Errorf("admitted+rejected = %d, want %d", got, workers*perWorker)
	}
	if snap.Epochs != int(snap.Admitted+snap.Rejected)/50 {
		t.Errorf("epochs = %d, want %d", snap.Epochs, (snap.Admitted+snap.Rejected)/50)
	}
}

// TestGateCapEnforced checks a full gate rejects and frees up on release.
func TestGateCapEnforced(t *testing.T) {
	g, err := NewGate(Params{MaxConcurrent: 2, MaxQueue: 1}, EpochConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var releases []func()
	for i := 0; i < 3; i++ {
		release, ok := g.Enter(tpcw.ClassHome)
		if !ok {
			t.Fatalf("arrival %d rejected below capacity", i)
		}
		releases = append(releases, release)
	}
	if _, ok := g.Enter(tpcw.ClassHome); ok {
		t.Fatal("arrival past capacity admitted")
	}
	releases[0]()
	release, ok := g.Enter(tpcw.ClassHome)
	if !ok {
		t.Fatal("arrival after release rejected")
	}
	release()
	for _, r := range releases[1:] {
		r()
	}
	if snap := g.Snapshot(); snap.Occupancy != 0 || snap.Rejected != 1 {
		t.Fatalf("snapshot %+v, want occupancy 0 and exactly 1 rejection", snap)
	}
}

// TestGateDisabledTracksOccupancy checks occupancy is counted while disabled,
// so enabling caps via SetParams starts from the true in-flight count.
func TestGateDisabledTracksOccupancy(t *testing.T) {
	g, err := NewGate(Params{}, EpochConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var releases []func()
	for i := 0; i < 5; i++ {
		release, ok := g.Enter(tpcw.ClassHome)
		if !ok {
			t.Fatal("disabled gate rejected")
		}
		releases = append(releases, release)
	}
	if err := g.SetParams(Params{MaxConcurrent: 3, MaxQueue: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Enter(tpcw.ClassHome); ok {
		t.Fatal("gate admitted past capacity after enabling caps mid-flight")
	}
	for _, r := range releases {
		r()
	}
	if snap := g.Snapshot(); snap.Occupancy != 0 {
		t.Fatalf("occupancy %d, want 0", snap.Occupancy)
	}
}
