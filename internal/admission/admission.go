// Package admission implements the SLO gate in front of the web tier: a
// concurrency cap plus a bounded wait queue with a fast-reject path, and an
// epoch-adaptive loop that reads the gate's own rejection rate — a free,
// real-time, self-calibrating signal — to steer between an exploit regime
// (headroom: open the gate back up) and a spread regime (overload: tighten it
// to protect latency) *between* the agent's full retrain intervals.
//
// The package splits along the repository's two data planes. Controller is
// the pure, single-goroutine decision logic: every admit/reject outcome ticks
// an epoch counter, and at each epoch boundary (a fixed request count, never
// wall clock) the controller compares the epoch's rejection rate against its
// thresholds and rescales the effective caps. Driving decisions off request
// counts keeps the simulated system byte-identical at any -procs or shard
// count. Gate wraps a Controller with a mutex and per-class occupancy
// tracking for the live concurrent HTTP server, where many goroutines race
// through Enter/release.
package admission

import (
	"fmt"
	"math"

	"github.com/rac-project/rac/internal/tpcw"
)

// Params are the gate's configured caps. Both zero disables the gate
// entirely: every request is admitted and nothing is counted.
type Params struct {
	// MaxConcurrent caps requests concurrently past the gate and in service.
	MaxConcurrent int
	// MaxQueue caps requests past the gate but still waiting for service
	// (the web tier's admission queue). A request arriving with the queue
	// full is fast-rejected with 503 before touching the web tier.
	MaxQueue int
	// ClassLimits, when non-nil, additionally caps the gate occupancy of
	// individual interaction classes (0 or absent = no per-class cap). The
	// global caps always apply on top.
	ClassLimits map[tpcw.Class]int
}

// Enabled reports whether the gate does anything at all.
func (p Params) Enabled() bool { return p.MaxConcurrent > 0 || p.MaxQueue > 0 }

// Capacity returns the total gate occupancy bound: concurrency plus queue.
func (p Params) Capacity() int { return p.MaxConcurrent + p.MaxQueue }

// Validate checks the caps.
func (p Params) Validate() error {
	if p.MaxConcurrent < 0 {
		return fmt.Errorf("admission: negative concurrency cap %d", p.MaxConcurrent)
	}
	if p.MaxQueue < 0 {
		return fmt.Errorf("admission: negative queue cap %d", p.MaxQueue)
	}
	for class, limit := range p.ClassLimits {
		if limit < 0 {
			return fmt.Errorf("admission: negative cap %d for class %s", limit, class)
		}
	}
	return nil
}

// EpochConfig tunes the epoch-adaptive loop. The zero value disables it: the
// configured caps apply unscaled forever.
type EpochConfig struct {
	// Size is the epoch length in gate outcomes (admits + rejects). Every
	// Size outcomes the controller reads its rejection rate and moves the
	// cap scale one Step. Counts, not wall clock, so replays are exact.
	Size int
	// LowThreshold is the rejection rate below which the gate has headroom:
	// the exploit regime scales the caps up toward MaxScale.
	LowThreshold float64
	// HighThreshold is the rejection rate above which the system is
	// overloaded: the spread regime scales the caps down toward MinScale.
	HighThreshold float64
	// Step is the scale adjustment per epoch decision.
	Step float64
	// MinScale and MaxScale clamp the cap scale.
	MinScale, MaxScale float64
}

// DefaultEpoch returns the epoch loop used by the experiments: ~1000-request
// epochs, exploit below 2% rejections, spread above 10%.
func DefaultEpoch() EpochConfig {
	return EpochConfig{
		Size:          1000,
		LowThreshold:  0.02,
		HighThreshold: 0.10,
		Step:          0.1,
		MinScale:      0.5,
		MaxScale:      1.5,
	}
}

// EpochWith returns DefaultEpoch with the given epoch size (0 keeps 1000).
func EpochWith(size int) EpochConfig {
	e := DefaultEpoch()
	if size > 0 {
		e.Size = size
	}
	return e
}

// Enabled reports whether the epoch loop adapts at all.
func (e EpochConfig) Enabled() bool { return e.Size > 0 }

// Validate checks the epoch configuration.
func (e EpochConfig) Validate() error {
	if e.Size < 0 {
		return fmt.Errorf("admission: negative epoch size %d", e.Size)
	}
	if !e.Enabled() {
		return nil
	}
	if e.LowThreshold < 0 || e.HighThreshold < e.LowThreshold {
		return fmt.Errorf("admission: epoch thresholds low=%g high=%g out of order",
			e.LowThreshold, e.HighThreshold)
	}
	if e.Step <= 0 {
		return fmt.Errorf("admission: non-positive epoch step %g", e.Step)
	}
	if e.MinScale <= 0 || e.MaxScale < e.MinScale {
		return fmt.Errorf("admission: epoch scale range [%g,%g] invalid", e.MinScale, e.MaxScale)
	}
	return nil
}

// Regime is the epoch loop's current stance.
type Regime int

// The regimes: Hold between the thresholds, Exploit below LowThreshold
// (open the gate — rejections are wasted capacity), Spread above
// HighThreshold (tighten the gate — protect the latency of admitted work).
const (
	RegimeHold Regime = iota
	RegimeExploit
	RegimeSpread
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case RegimeExploit:
		return "exploit"
	case RegimeSpread:
		return "spread"
	default:
		return "hold"
	}
}

// Decision is one epoch boundary's outcome.
type Decision struct {
	// Epoch counts decisions from 1.
	Epoch int
	// RejectRate is the closed epoch's rejections / outcomes.
	RejectRate float64
	// Regime is the stance the rate selected.
	Regime Regime
	// Scale is the cap scale in force after the decision.
	Scale float64
}

// Controller is the pure admission logic: configured caps, the epoch loop's
// scale, and the running epoch counters. It is not safe for concurrent use —
// the simulator drives it from its single goroutine; the live server wraps it
// in a Gate.
type Controller struct {
	params Params
	epoch  EpochConfig

	scale    float64
	count    int // outcomes in the running epoch
	rejected int // rejections in the running epoch
	epochs   int // closed epochs
	regime   Regime
}

// NewController builds a controller. A nil-equivalent Params disables gating;
// a zero EpochConfig disables adaptation.
func NewController(params Params, epoch EpochConfig) (*Controller, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := epoch.Validate(); err != nil {
		return nil, err
	}
	return &Controller{params: params, epoch: epoch, scale: 1}, nil
}

// Params returns the configured (unscaled) caps.
func (c *Controller) Params() Params { return c.params }

// Scale returns the epoch loop's current cap scale.
func (c *Controller) Scale() float64 { return c.scale }

// Regime returns the stance of the most recent epoch decision.
func (c *Controller) Regime() Regime { return c.regime }

// Epochs returns how many epoch decisions have been made.
func (c *Controller) Epochs() int { return c.epochs }

// SetParams swaps the configured caps (a reconfiguration from the learning
// agent), preserving the epoch loop's scale and counters: the adaptation
// rides on top of whatever caps the lattice currently prescribes.
func (c *Controller) SetParams(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	c.params = params
	return nil
}

// Limits returns the effective caps with the epoch scale applied. A scaled
// cap never drops below 1 — the gate throttles, it does not black-hole.
func (c *Controller) Limits() (concurrent, queue int) {
	if !c.params.Enabled() {
		return 0, 0
	}
	return scaled(c.params.MaxConcurrent, c.scale), scaled(c.params.MaxQueue, c.scale)
}

// Capacity returns the effective total occupancy bound (0 when disabled).
func (c *Controller) Capacity() int {
	conc, queue := c.Limits()
	return conc + queue
}

// Admit decides one arrival given the caller's current gate occupancy (and
// the arrival's class occupancy, when per-class caps are configured). It does
// not count the outcome — callers report it through Observe so shed or
// abandoned arrivals can be excluded.
func (c *Controller) Admit(occupancy, classOccupancy int, class tpcw.Class) bool {
	if !c.params.Enabled() {
		return true
	}
	if occupancy >= c.Capacity() {
		return false
	}
	if limit, ok := c.params.ClassLimits[class]; ok && limit > 0 && classOccupancy >= scaled(limit, c.scale) {
		return false
	}
	return true
}

// Observe counts one gate outcome and, at an epoch boundary, applies the
// epoch decision to the cap scale. The boolean reports whether a decision
// was made this call.
func (c *Controller) Observe(rejected bool) (Decision, bool) {
	if !c.params.Enabled() || !c.epoch.Enabled() {
		return Decision{}, false
	}
	c.count++
	if rejected {
		c.rejected++
	}
	if c.count < c.epoch.Size {
		return Decision{}, false
	}
	rate := float64(c.rejected) / float64(c.count)
	c.count, c.rejected = 0, 0
	c.epochs++
	switch {
	case rate > c.epoch.HighThreshold:
		c.regime = RegimeSpread
		c.scale = math.Max(c.epoch.MinScale, c.scale-c.epoch.Step)
	case rate < c.epoch.LowThreshold:
		c.regime = RegimeExploit
		c.scale = math.Min(c.epoch.MaxScale, c.scale+c.epoch.Step)
	default:
		c.regime = RegimeHold
	}
	return Decision{Epoch: c.epochs, RejectRate: rate, Regime: c.regime, Scale: c.scale}, true
}

// scaled applies the epoch scale to a cap, flooring at 1.
func scaled(cap int, scale float64) int {
	if cap <= 0 {
		return 0
	}
	v := int(math.Round(float64(cap) * scale))
	if v < 1 {
		v = 1
	}
	return v
}
