package system

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("driver wedged")
	te := Transient(base)
	if !IsTransient(te) {
		t.Fatal("Transient error not classified transient")
	}
	if IsTransient(base) {
		t.Fatal("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	// The mark survives further wrapping, and the chain stays inspectable.
	wrapped := fmt.Errorf("measure: %w", te)
	if !IsTransient(wrapped) {
		t.Fatal("wrapping lost the transient mark")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("Transient broke errors.Is on the cause")
	}
	if te.Error() != base.Error() {
		t.Fatalf("Error() = %q, want %q", te.Error(), base.Error())
	}
}

func TestMetricsInvalidRendering(t *testing.T) {
	m := Metrics{MeanRT: 1.5, Completed: 10, IntervalSeconds: 300}
	if strings.Contains(m.String(), "INVALID") {
		t.Fatalf("clean metrics render invalid: %q", m.String())
	}
	m.Invalid = true
	if !strings.Contains(m.String(), "INVALID") {
		t.Fatalf("invalid metrics hide the flag: %q", m.String())
	}
	m.InvalidReason = "error-ratio"
	if !strings.Contains(m.String(), "INVALID(error-ratio)") {
		t.Fatalf("invalid reason not rendered: %q", m.String())
	}
}

func TestMetricsInvalidJSONBackwardCompatible(t *testing.T) {
	clean, err := json.Marshal(Metrics{MeanRT: 1, Completed: 5, IntervalSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	// omitempty: clean intervals serialize exactly as before this field existed.
	if strings.Contains(string(clean), "invalid") {
		t.Fatalf("clean metrics JSON leaks invalid fields: %s", clean)
	}
	bad, err := json.Marshal(Metrics{Invalid: true, InvalidReason: "no-data"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bad), `"invalid":true`) || !strings.Contains(string(bad), `"invalid_reason":"no-data"`) {
		t.Fatalf("invalid metrics JSON missing fields: %s", bad)
	}
	var round Metrics
	if err := json.Unmarshal(bad, &round); err != nil {
		t.Fatal(err)
	}
	if !round.Invalid || round.InvalidReason != "no-data" {
		t.Fatalf("round trip lost invalid fields: %+v", round)
	}
}
