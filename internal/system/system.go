// Package system defines the boundary between auto-configuration agents and
// the web system they tune. Agents see only the System interface — apply a
// configuration, measure application-level performance — mirroring the
// paper's non-intrusive design: no OS- or hypervisor-level information is
// exposed.
//
// Three implementations are provided: Simulated (the webtier discrete-time
// model), Analytic (the queueing MVA surface, optionally with measurement
// noise) and, in package httpd, a live HTTP stack. Experiment drivers — not
// agents — additionally control workload and VM allocation through the
// Adjustable interface to create the paper's context changes.
package system

import (
	"context"
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// Metrics is one interval's application-level measurement. The JSON field
// names are the stable serialization contract shared by admin endpoints,
// telemetry snapshots and trace dumps.
type Metrics struct {
	// MeanRT is the mean response time in seconds — the paper's performance
	// signal.
	MeanRT float64 `json:"mean_rt"`
	// P95RT is the 95th-percentile response time in seconds.
	P95RT float64 `json:"p95_rt"`
	// P99RT is the 99th-percentile response time in seconds (0 when the
	// producer does not track it).
	P99RT float64 `json:"p99_rt,omitempty"`
	// Throughput is completed requests per second.
	Throughput float64 `json:"throughput"`
	// Goodput is SLO-goodput: completions within the producer's SLO threshold
	// per second. Zero (and omitted) when the producer has no SLO configured —
	// a jammed system can post high raw throughput of 30-second responses;
	// goodput is the number it cannot fake.
	Goodput float64 `json:"goodput,omitempty"`
	// Completed is the number of requests finished in the interval.
	Completed int `json:"completed"`
	// Errors is the number of requests that failed or timed out in the
	// interval (live systems only; simulators complete every request).
	Errors int `json:"errors,omitempty"`
	// Offered is the interval's offered demand in requests: the count a
	// load harness intended to issue (open-loop drivers), or the arrivals
	// reaching the server's admission decision (the simulated backend). Either
	// way Offered − Completed − Rejected trends the in-system backlog, the
	// signal saturation analysis keys on. Omitted from JSON — and therefore
	// from every previously serialized metric — when zero.
	Offered int `json:"offered,omitempty"`
	// Shed is the number of offered requests dropped by the harness's
	// admission control instead of being issued late. Counting them — rather
	// than silently stretching the schedule — is what keeps open-loop
	// latencies free of coordinated omission.
	Shed int `json:"shed,omitempty"`
	// Rejected is the number of arrivals the server's SLO admission gate
	// fast-rejected (503) before they touched the web tier. Rejected ≠ error
	// ≠ shed — three different truths about an arrival: an error is the
	// system failing, a shed request never left the harness, a rejection is
	// the gate deliberately trading one request away to protect the rest.
	// Rejections are excluded from the response-time statistics.
	Rejected int `json:"rejected,omitempty"`
	// OfferedRate is the interval's offered load in requests per second.
	// Time-varying workload schedules change it interval to interval — the
	// per-interval load context agents correlate drift and rollbacks with.
	// Zero (and omitted) for closed-loop and simulated intervals, whose
	// drivers carry the load context themselves.
	OfferedRate float64 `json:"offered_rate,omitempty"`
	// IntervalSeconds is the measurement duration in (virtual) seconds.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Invalid marks a measurement that must not be learned from (degraded
	// interval, fault-injected garbage, rejected outlier). Producers or the
	// agent's resilience policy set it; both fields are omitted from JSON for
	// clean intervals, so existing serialized metrics are unchanged.
	Invalid bool `json:"invalid,omitempty"`
	// InvalidReason says why the interval was discarded (e.g. "error-ratio",
	// "low-completion", "outlier", "no-data").
	InvalidReason string `json:"invalid_reason,omitempty"`
	// Level names the VM provisioning level in effect during the interval
	// (e.g. "Level-1"). Before it was surfaced here, vmenv reallocations were
	// invisible in traces, which made capacity runs undebuggable. Empty (and
	// omitted) when the producer does not track VM levels.
	Level string `json:"level,omitempty"`
	// CapacityUnits is the interval's capacity cost in VM-level units: the
	// vmenv capacity ordinal in effect (1 = Level-3 … 3 = Level-1), which the
	// cost-priced reward (core.Options.CapacityCost) multiplies. Zero when
	// capacity is untracked.
	CapacityUnits int `json:"capacity_units,omitempty"`
}

// String renders the measurement in the compact one-line form used by logs
// and CLI output.
func (m Metrics) String() string {
	s := fmt.Sprintf("rt=%.3fs p95=%.3fs X=%.1freq/s n=%d", m.MeanRT, m.P95RT, m.Throughput, m.Completed)
	if m.Errors > 0 {
		s += fmt.Sprintf(" errors=%d", m.Errors)
	}
	if m.Shed > 0 {
		s += fmt.Sprintf(" shed=%d/%d", m.Shed, m.Offered)
	}
	if m.Rejected > 0 {
		s += fmt.Sprintf(" rejected=%d", m.Rejected)
	}
	if m.Level != "" {
		s += " level=" + m.Level
	}
	if m.IntervalSeconds > 0 {
		s += fmt.Sprintf(" over %.0fs", m.IntervalSeconds)
	}
	if m.Invalid {
		if m.InvalidReason != "" {
			s += fmt.Sprintf(" INVALID(%s)", m.InvalidReason)
		} else {
			s += " INVALID"
		}
	}
	return s
}

// System is what an agent tunes: it can reconfigure the web system and
// measure its application-level performance over one interval. Both mutating
// calls take a context so a draining daemon can cancel an in-flight
// reconfiguration or measurement interval instead of waiting it out; a
// canceled call returns ctx.Err() (possibly wrapped) and the interval's
// partial data is discarded.
type System interface {
	// Space returns the configuration space of the system.
	Space() *config.Space
	// Config returns the currently applied configuration.
	Config() config.Config
	// Apply reconfigures the system. Implementations must validate against
	// Space and honor ctx cancellation.
	Apply(ctx context.Context, cfg config.Config) error
	// Measure runs one measurement interval and returns its metrics. A
	// canceled ctx aborts the interval early with ctx.Err().
	Measure(ctx context.Context) (Metrics, error)
}

// Snapshottable is implemented by systems whose runtime state can be captured
// into an opaque blob and restored later — the fleet checkpoint layer uses it
// so a warm-restarted tenant resumes with the measurement stream an
// uninterrupted run would have seen. Systems that cannot express their state
// compactly (the discrete-event simulator) simply do not implement it; their
// tenants restart with a fresh measurement stream, which the agent's restored
// Q-table absorbs within a few intervals.
type Snapshottable interface {
	// ExportState captures the system's runtime state (applied configuration,
	// context, RNG streams). The blob is opaque to callers but stable across
	// process restarts of the same binary version.
	ExportState() ([]byte, error)
	// ImportState restores state previously captured by ExportState on a
	// structurally identical system (same configuration space).
	ImportState([]byte) error
}

// Adjustable is the experiment driver's control surface for the environment
// dynamics agents must adapt to: traffic changes and VM reallocation.
// Agents must not use it.
type Adjustable interface {
	SetWorkload(w tpcw.Workload) error
	SetAppLevel(level vmenv.Level) error
	Workload() tpcw.Workload
	AppLevel() vmenv.Level
}

// Context is a combination of traffic mix and VM resource level — the
// paper's "system context" (§4.3, Table 2).
type Context struct {
	Name     string
	Workload tpcw.Workload
	Level    vmenv.Level
}

// String renders the context.
func (c Context) String() string {
	if c.Name != "" {
		return fmt.Sprintf("%s(%s on %s)", c.Name, c.Workload, c.Level)
	}
	return fmt.Sprintf("%s on %s", c.Workload, c.Level)
}

// DefaultClients is the emulated-browser population used by the paper-style
// contexts. It puts Level-3 near saturation and Level-1 at moderate load.
const DefaultClients = 1100

// Table2 returns the six contexts of paper Table 2.
func Table2() []Context {
	w := func(m tpcw.Mix) tpcw.Workload {
		return tpcw.Workload{Mix: m, Clients: DefaultClients}
	}
	return []Context{
		{Name: "context-1", Workload: w(tpcw.Shopping), Level: vmenv.Level1},
		{Name: "context-2", Workload: w(tpcw.Ordering), Level: vmenv.Level1},
		{Name: "context-3", Workload: w(tpcw.Ordering), Level: vmenv.Level3},
		{Name: "context-4", Workload: w(tpcw.Shopping), Level: vmenv.Level2},
		{Name: "context-5", Workload: w(tpcw.Ordering), Level: vmenv.Level2},
		{Name: "context-6", Workload: w(tpcw.Browsing), Level: vmenv.Level1},
	}
}

// ContextByName returns the paper context with the given name.
func ContextByName(name string) (Context, error) {
	for _, c := range Table2() {
		if c.Name == name {
			return c, nil
		}
	}
	return Context{}, fmt.Errorf("system: unknown context %q", name)
}

// ApplyContext drives an adjustable system into the given context.
func ApplyContext(sys Adjustable, ctx Context) error {
	if err := sys.SetWorkload(ctx.Workload); err != nil {
		return err
	}
	return sys.SetAppLevel(ctx.Level)
}

// errNotValidated guards Apply implementations.
var errNilConfig = errors.New("system: nil configuration")
