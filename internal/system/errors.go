package system

import "errors"

// Real systems fail in two distinct ways, and agents must tell them apart: a
// transient fault (a reconfiguration that did not take, a wedged measurement
// interval, a load-driver hiccup) is worth retrying, while a fatal error (an
// invalid configuration, a programming error) must abort. Implementations
// classify by wrapping recoverable errors with Transient; callers test with
// IsTransient and choose retry/degrade versus abort.

// transientError marks an error as recoverable. It wraps, so errors.Is/As
// still see the underlying cause.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }

func (e *transientError) Unwrap() error { return e.err }

// Transient reports true, marking the error recoverable (see IsTransient).
func (e *transientError) Transient() bool { return true }

// Transient marks err as a recoverable fault. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in err's chain is marked transient —
// either by Transient or by any foreign type exposing Transient() bool.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
