package system

import (
	"context"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// Simulated adapts the webtier discrete-time model to the System interface.
type Simulated struct {
	space *config.Space
	model *webtier.Model
	cfg   config.Config

	// SettleSeconds runs unrecorded after each reconfiguration so pools
	// adapt before measurement; MeasureSeconds is the recorded window. The
	// paper measures in 5-minute intervals; the defaults split that into a
	// 30 s settle and a 270 s recorded window of virtual time.
	settleSeconds  float64
	measureSeconds float64

	// Fixed admission caps, used only when the space does not carry the gate
	// parameters (see SimulatedOptions).
	admitConcurrency int
	admitQueue       int

	// slo is the goodput threshold (SimulatedOptions.SLOSeconds; 0 = none).
	slo float64
}

// SimulatedOptions configure NewSimulated.
type SimulatedOptions struct {
	// Space defaults to config.Default().
	Space *config.Space
	// Initial is the starting configuration; defaults to the space default.
	Initial config.Config
	// Context is the starting workload and VM level; defaults to context-1.
	Context Context
	// Seed drives the simulation.
	Seed uint64
	// Calibration overrides the physical constants.
	Calibration *webtier.Calibration
	// SettleSeconds and MeasureSeconds override the measurement windows
	// when positive.
	SettleSeconds  float64
	MeasureSeconds float64
	// AdmitConcurrency and AdmitQueue enable the SLO admission gate when the
	// configuration space does not carry the gate parameters itself (both
	// zero = gate disabled). When the space includes config.AdmitConcurrency
	// the lattice value wins and these are ignored.
	AdmitConcurrency int
	AdmitQueue       int
	// AdmitEpoch enables the gate's epoch-adaptive loop with the given epoch
	// size in requests (0 = no adaptation).
	AdmitEpoch int
	// SLOSeconds is the goodput threshold: completions at or under it count
	// into Metrics.Goodput (0 = goodput untracked, Goodput stays 0).
	SLOSeconds float64
}

var (
	_ System     = (*Simulated)(nil)
	_ Adjustable = (*Simulated)(nil)
)

// NewSimulated builds a simulated system in the given context.
func NewSimulated(opts SimulatedOptions) (*Simulated, error) {
	space := opts.Space
	if space == nil {
		space = config.Default()
	}
	cfg := opts.Initial
	if cfg == nil {
		cfg = space.DefaultConfig()
	}
	if err := space.Validate(cfg); err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx.Workload.Clients == 0 {
		ctx = Table2()[0]
	}
	params, err := webtier.ParamsFromConfig(space, cfg)
	if err != nil {
		return nil, err
	}
	if _, inSpace := space.Lookup(config.AdmitConcurrency); !inSpace {
		params.AdmitConcurrency = opts.AdmitConcurrency
		params.AdmitQueue = opts.AdmitQueue
	}
	model, err := webtier.New(webtier.Options{
		Calibration: opts.Calibration,
		Params:      &params,
		Workload:    ctx.Workload,
		AppLevel:    ctx.Level,
		Seed:        opts.Seed,
		AdmitEpoch:  opts.AdmitEpoch,
		SLOSeconds:  opts.SLOSeconds,
	})
	if err != nil {
		return nil, err
	}
	s := &Simulated{
		space:            space,
		model:            model,
		cfg:              cfg.Clone(),
		settleSeconds:    30,
		measureSeconds:   270,
		admitConcurrency: opts.AdmitConcurrency,
		admitQueue:       opts.AdmitQueue,
		slo:              opts.SLOSeconds,
	}
	if opts.SettleSeconds > 0 {
		s.settleSeconds = opts.SettleSeconds
	}
	if opts.MeasureSeconds > 0 {
		s.measureSeconds = opts.MeasureSeconds
	}
	return s, nil
}

// Space returns the configuration space.
func (s *Simulated) Space() *config.Space { return s.space }

// Config returns the applied configuration.
func (s *Simulated) Config() config.Config { return s.cfg.Clone() }

// Apply reconfigures the simulated website. The reconfiguration itself is
// instantaneous, so the context is only checked on entry.
func (s *Simulated) Apply(ctx context.Context, cfg config.Config) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cfg == nil {
		return errNilConfig
	}
	if err := s.space.Validate(cfg); err != nil {
		return err
	}
	params, err := webtier.ParamsFromConfig(s.space, cfg)
	if err != nil {
		return err
	}
	// A space without the gate parameters keeps the fixed caps across
	// reconfigurations; a space with them lets the lattice drive the gate.
	if _, inSpace := s.space.Lookup(config.AdmitConcurrency); !inSpace {
		params.AdmitConcurrency = s.admitConcurrency
		params.AdmitQueue = s.admitQueue
	}
	if err := s.model.Configure(params); err != nil {
		return err
	}
	s.cfg = cfg.Clone()
	return nil
}

// Measure settles the system briefly, then records one interval. Virtual
// time costs real CPU, so cancellation is checked between the settle and
// recorded phases as well as on entry.
func (s *Simulated) Measure(ctx context.Context) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	s.model.Warmup(s.settleSeconds)
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	st, err := s.model.Run(s.measureSeconds)
	if err != nil {
		return Metrics{}, fmt.Errorf("simulated measure: %w", err)
	}
	m := Metrics{
		MeanRT:          st.MeanRT,
		P95RT:           st.P95RT,
		P99RT:           st.P99RT,
		Throughput:      st.Throughput,
		Completed:       st.Completed,
		Rejected:        st.Rejected,
		Offered:         st.Arrivals,
		IntervalSeconds: st.Interval + s.settleSeconds,
		Level:           s.model.AppLevel().Name,
		CapacityUnits:   vmenv.Ordinal(s.model.AppLevel()),
	}
	if s.slo > 0 && st.Interval > 0 {
		m.Goodput = float64(st.GoodCompleted) / st.Interval
	}
	return m, nil
}

// SetWorkload changes the traffic (driver-side context change).
func (s *Simulated) SetWorkload(w tpcw.Workload) error { return s.model.SetWorkload(w) }

// SetAppLevel reallocates the app/db VM (driver-side context change).
func (s *Simulated) SetAppLevel(level vmenv.Level) error { return s.model.SetAppLevel(level) }

// Workload returns the current traffic.
func (s *Simulated) Workload() tpcw.Workload { return s.model.Workload() }

// AppLevel returns the current VM allocation.
func (s *Simulated) AppLevel() vmenv.Level { return s.model.AppLevel() }

// Model exposes the underlying webtier model for tests and diagnostics.
func (s *Simulated) Model() *webtier.Model { return s.model }
