package system

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/queueing"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// Analytic is a System backed by the MVA queueing model: instantaneous,
// deterministic measurements (optionally perturbed by lognormal noise so
// agents can be exercised against stochastic readings without paying
// simulation time).
type Analytic struct {
	space    *config.Space
	cal      webtier.Calibration
	cfg      config.Config
	workload tpcw.Workload
	level    vmenv.Level
	noise    float64
	rng      *sim.RNG
}

// AnalyticOptions configure NewAnalytic.
type AnalyticOptions struct {
	// Space defaults to config.Default().
	Space *config.Space
	// Initial defaults to the space default configuration.
	Initial config.Config
	// Context defaults to context-1.
	Context Context
	// NoiseSigma adds multiplicative lognormal noise with the given sigma to
	// measured response times (0 = deterministic).
	NoiseSigma float64
	// Seed drives the noise stream.
	Seed uint64
	// Calibration overrides the physical constants.
	Calibration *webtier.Calibration
}

var (
	_ System     = (*Analytic)(nil)
	_ Adjustable = (*Analytic)(nil)
)

// NewAnalytic builds an analytic system in the given context.
func NewAnalytic(opts AnalyticOptions) (*Analytic, error) {
	space := opts.Space
	if space == nil {
		space = config.Default()
	}
	cfg := opts.Initial
	if cfg == nil {
		cfg = space.DefaultConfig()
	}
	if err := space.Validate(cfg); err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx.Workload.Clients == 0 {
		ctx = Table2()[0]
	}
	cal := webtier.DefaultCalibration()
	if opts.Calibration != nil {
		cal = *opts.Calibration
	}
	return &Analytic{
		space:    space,
		cal:      cal,
		cfg:      cfg.Clone(),
		workload: ctx.Workload,
		level:    ctx.Level,
		noise:    opts.NoiseSigma,
		rng:      sim.NewRNG(opts.Seed),
	}, nil
}

// Space returns the configuration space.
func (a *Analytic) Space() *config.Space { return a.space }

// Config returns the applied configuration.
func (a *Analytic) Config() config.Config { return a.cfg.Clone() }

// Apply stores the configuration after validation.
func (a *Analytic) Apply(ctx context.Context, cfg config.Config) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cfg == nil {
		return errNilConfig
	}
	if err := a.space.Validate(cfg); err != nil {
		return err
	}
	a.cfg = cfg.Clone()
	return nil
}

// Measure solves the queueing network for the current configuration.
func (a *Analytic) Measure(ctx context.Context) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	params, err := webtier.ParamsFromConfig(a.space, a.cfg)
	if err != nil {
		return Metrics{}, err
	}
	res, err := queueing.SolveWebsite(a.cal, params, a.workload, a.level)
	if err != nil {
		return Metrics{}, fmt.Errorf("analytic measure: %w", err)
	}
	rt := res.MeanRT
	if a.noise > 0 {
		rt *= a.rng.LogNormFloat64(-a.noise*a.noise/2, a.noise)
	}
	const interval = 300
	return Metrics{
		MeanRT:          rt,
		P95RT:           rt * 2.5, // heuristic tail factor for the smooth model
		Throughput:      res.Throughput,
		Completed:       int(res.Throughput * interval),
		IntervalSeconds: interval,
	}, nil
}

// SetWorkload changes the traffic (driver-side context change).
func (a *Analytic) SetWorkload(w tpcw.Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	a.workload = w
	return nil
}

// SetAppLevel reallocates the app/db VM (driver-side context change).
func (a *Analytic) SetAppLevel(level vmenv.Level) error {
	if !level.Valid() {
		return fmt.Errorf("system: invalid level %+v", level)
	}
	a.level = level
	return nil
}

// Workload returns the current traffic.
func (a *Analytic) Workload() tpcw.Workload { return a.workload }

// AppLevel returns the current VM allocation.
func (a *Analytic) AppLevel() vmenv.Level { return a.level }

var _ Snapshottable = (*Analytic)(nil)

// analyticState is the serialized runtime state of an Analytic system.
type analyticState struct {
	Config  []int  `json:"config"`
	Mix     string `json:"mix"`
	Clients int    `json:"clients"`
	Level   string `json:"level"`
	RNG     uint64 `json:"rng"`
}

// ExportState captures the applied configuration, the context and the noise
// stream, so a restored system measures exactly what this one would have.
func (a *Analytic) ExportState() ([]byte, error) {
	return json.Marshal(analyticState{
		Config:  a.cfg.Clone(),
		Mix:     a.workload.Mix.String(),
		Clients: a.workload.Clients,
		Level:   a.level.Name,
		RNG:     a.rng.State(),
	})
}

// ImportState restores state captured by ExportState.
func (a *Analytic) ImportState(blob []byte) error {
	var st analyticState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("analytic state: %w", err)
	}
	mix, err := tpcw.ParseMix(st.Mix)
	if err != nil {
		return fmt.Errorf("analytic state: %w", err)
	}
	level, err := vmenv.ByName(st.Level)
	if err != nil {
		return fmt.Errorf("analytic state: %w", err)
	}
	cfg := config.Config(st.Config)
	if err := a.space.Validate(cfg); err != nil {
		return fmt.Errorf("analytic state: %w", err)
	}
	a.cfg = cfg.Clone()
	a.workload = tpcw.Workload{Mix: mix, Clients: st.Clients}
	a.level = level
	a.rng = sim.RestoreRNG(st.RNG)
	return nil
}
