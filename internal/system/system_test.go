package system

import (
	"context"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

func TestTable2Contexts(t *testing.T) {
	ctxs := Table2()
	if len(ctxs) != 6 {
		t.Fatalf("Table 2 has %d contexts, want 6", len(ctxs))
	}
	// Paper Table 2 rows.
	want := []struct {
		name  string
		mix   tpcw.Mix
		level vmenv.Level
	}{
		{"context-1", tpcw.Shopping, vmenv.Level1},
		{"context-2", tpcw.Ordering, vmenv.Level1},
		{"context-3", tpcw.Ordering, vmenv.Level3},
		{"context-4", tpcw.Shopping, vmenv.Level2},
		{"context-5", tpcw.Ordering, vmenv.Level2},
		{"context-6", tpcw.Browsing, vmenv.Level1},
	}
	for i, w := range want {
		c := ctxs[i]
		if c.Name != w.name || c.Workload.Mix != w.mix || c.Level != w.level {
			t.Errorf("context %d = %+v, want %+v", i, c, w)
		}
		if c.Workload.Clients != DefaultClients {
			t.Errorf("%s population %d", c.Name, c.Workload.Clients)
		}
	}
}

func TestContextByName(t *testing.T) {
	c, err := ContextByName("context-3")
	if err != nil || c.Level != vmenv.Level3 {
		t.Fatalf("ContextByName: %+v, %v", c, err)
	}
	if _, err := ContextByName("context-99"); err == nil {
		t.Fatal("unknown context found")
	}
}

func TestContextString(t *testing.T) {
	c, _ := ContextByName("context-1")
	s := c.String()
	if !strings.Contains(s, "context-1") || !strings.Contains(s, "shopping") {
		t.Fatalf("String() = %q", s)
	}
	anon := Context{Workload: tpcw.Workload{Mix: tpcw.Ordering, Clients: 5}, Level: vmenv.Level2}
	if strings.Contains(anon.String(), "(") {
		t.Fatalf("anonymous context rendered with name: %q", anon.String())
	}
}

func newSim(t *testing.T, ctx Context, seed uint64) *Simulated {
	t.Helper()
	sys, err := NewSimulated(SimulatedOptions{
		Context:        ctx,
		Seed:           seed,
		SettleSeconds:  5,
		MeasureSeconds: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func smallContext(mix tpcw.Mix, level vmenv.Level) Context {
	return Context{
		Name:     "test",
		Workload: tpcw.Workload{Mix: mix, Clients: 120},
		Level:    level,
	}
}

func TestSimulatedApplyMeasure(t *testing.T) {
	sys := newSim(t, smallContext(tpcw.Shopping, vmenv.Level1), 1)
	if sys.Space().Len() != 8 {
		t.Fatalf("space has %d params", sys.Space().Len())
	}
	cfg := sys.Config()
	if err := sys.Space().Validate(cfg); err != nil {
		t.Fatal(err)
	}
	m, err := sys.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanRT <= 0 || m.Completed == 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.IntervalSeconds < 34.9 || m.IntervalSeconds > 35.1 {
		t.Fatalf("interval %v, want ~settle+measure = 35", m.IntervalSeconds)
	}

	next := cfg.With(sys.Space(), config.MaxClients, 300)
	if err := sys.Apply(context.Background(), next); err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Config().Get(sys.Space(), config.MaxClients); got != 300 {
		t.Fatalf("config not applied: %d", got)
	}
}

func TestSimulatedApplyValidates(t *testing.T) {
	sys := newSim(t, smallContext(tpcw.Shopping, vmenv.Level1), 1)
	if err := sys.Apply(context.Background(), nil); err == nil {
		t.Fatal("nil config accepted")
	}
	bad := sys.Config()
	bad[0] = 47
	if err := sys.Apply(context.Background(), bad); err == nil {
		t.Fatal("off-lattice config accepted")
	}
}

func TestSimulatedConfigIsCopy(t *testing.T) {
	sys := newSim(t, smallContext(tpcw.Shopping, vmenv.Level1), 1)
	cfg := sys.Config()
	cfg[0] = 600
	if got, _ := sys.Config().Get(sys.Space(), config.MaxClients); got == 600 {
		t.Fatal("Config() exposes internal state")
	}
}

func TestSimulatedContextControls(t *testing.T) {
	sys := newSim(t, smallContext(tpcw.Shopping, vmenv.Level1), 3)
	ctx3, _ := ContextByName("context-3")
	ctx3.Workload.Clients = 100
	if err := ApplyContext(sys, ctx3); err != nil {
		t.Fatal(err)
	}
	if sys.Workload().Mix != tpcw.Ordering || sys.AppLevel() != vmenv.Level3 {
		t.Fatalf("context not applied: %v %v", sys.Workload(), sys.AppLevel())
	}
	m, err := sys.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 {
		t.Fatal("no traffic after context change")
	}
}

func TestSimulatedDeterminism(t *testing.T) {
	run := func() Metrics {
		sys := newSim(t, smallContext(tpcw.Ordering, vmenv.Level2), 42)
		m, err := sys.Measure(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if run() != run() {
		t.Fatal("same seed differs")
	}
}

func TestAnalyticSystem(t *testing.T) {
	sys, err := NewAnalytic(AnalyticOptions{
		Context: smallContext(tpcw.Ordering, vmenv.Level3),
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := sys.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := sys.Measure(context.Background())
	if m1.MeanRT != m2.MeanRT {
		t.Fatal("noise-free analytic system not deterministic")
	}
	if m1.MeanRT <= 0 || m1.Throughput <= 0 {
		t.Fatalf("metrics %+v", m1)
	}

	// Config changes move the measurement.
	cfg := sys.Config().With(sys.Space(), config.SessionTimeout, 3)
	if err := sys.Apply(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	m3, _ := sys.Measure(context.Background())
	if m3.MeanRT == m1.MeanRT {
		t.Fatal("reconfiguration had no analytic effect")
	}
}

func TestAnalyticNoise(t *testing.T) {
	sys, err := NewAnalytic(AnalyticOptions{
		Context:    smallContext(tpcw.Ordering, vmenv.Level1),
		NoiseSigma: 0.2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := sys.Measure(context.Background())
	m2, _ := sys.Measure(context.Background())
	if m1.MeanRT == m2.MeanRT {
		t.Fatal("noisy measurements identical")
	}
}

func TestAnalyticValidation(t *testing.T) {
	sys, err := NewAnalytic(AnalyticOptions{Context: smallContext(tpcw.Shopping, vmenv.Level1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Apply(context.Background(), nil); err == nil {
		t.Fatal("nil config accepted")
	}
	if err := sys.SetWorkload(tpcw.Workload{}); err == nil {
		t.Fatal("bad workload accepted")
	}
	if err := sys.SetAppLevel(vmenv.Level{}); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestAnalyticAgreesWithContextOrdering(t *testing.T) {
	// L3 must look worse than L1 through the Analytic System interface too.
	rt := func(level vmenv.Level) float64 {
		sys, err := NewAnalytic(AnalyticOptions{Context: Context{
			Workload: tpcw.Workload{Mix: tpcw.Ordering, Clients: 800},
			Level:    level,
		}})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Measure(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return m.MeanRT
	}
	if rt(vmenv.Level3) <= rt(vmenv.Level1) {
		t.Fatal("analytic level ordering wrong")
	}
}
