package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/telemetry"
)

func TestMapOrdersResults(t *testing.T) {
	for _, procs := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Options{Procs: procs}, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if len(got) != 100 {
			t.Fatalf("procs=%d: %d results", procs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("procs=%d: result[%d] = %d", procs, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Options{}, 0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapWorkerCountInvariance(t *testing.T) {
	// The determinism contract: pre-split RNG streams make the output
	// independent of the worker count.
	run := func(procs int) []float64 {
		streams := sim.NewRNG(42).SplitN(64)
		out, err := Map(Options{Procs: procs}, 64, func(i int) (float64, error) {
			return streams[i].Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, procs := range []int{2, 5, 16} {
		got := run(procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: result[%d] = %v, want %v", procs, i, got[i], want[i])
			}
		}
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(Options{Procs: 4}, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("unit %d: %w", i, boom)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the pool: %d calls", n)
	}
}

func TestMapSequentialErrorStopsEarly(t *testing.T) {
	var calls int
	_, err := Map(Options{Procs: 1}, 100, func(i int) (int, error) {
		calls++
		if i == 5 {
			return 0, errors.New("stop")
		}
		return 0, nil
	})
	if err == nil || calls != 6 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(Options{Procs: 3}, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := ForEach(Options{Procs: 3}, 10, func(i int) error {
		return errors.New("x")
	}); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestPoolTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	opts := Options{Procs: 4, Telemetry: reg}
	if err := ForEach(opts, 32, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("rac_parallel_tasks_total", "", nil).Value(); got != 32 {
		t.Fatalf("tasks counter = %d", got)
	}
	// Workers return to zero once the call completes.
	if got := reg.Gauge("rac_parallel_workers", "", nil).Value(); got != 0 {
		t.Fatalf("workers gauge = %v", got)
	}
	h := reg.Histogram("rac_parallel_queue_wait_seconds", "", queueWaitBuckets, nil)
	if snap := h.Snapshot(); snap.Count != 32 {
		t.Fatalf("queue-wait observations = %d", snap.Count)
	}
}
