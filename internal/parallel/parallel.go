// Package parallel is the repository's deterministic worker pool: bounded
// fan-out over an indexed set of independent work units with results
// collected in index order.
//
// The package enforces a determinism contract with its callers: a unit of
// work must depend only on its index and on inputs (including sim.RNG
// streams) derived *before* dispatch — never on execution order, worker
// identity or shared mutable state. Callers that follow the contract get
// bit-identical results for any Procs value, including Procs=1; the
// experiment harness's determinism regression test enforces this end to end.
// Split RNG streams per unit with sim.RNG.SplitN before calling Map, not
// inside the work function.
//
// Telemetry is optional: when Options.Telemetry is set, every call exports
// pool activity through the shared instruments (rac_parallel_tasks_total,
// rac_parallel_workers, rac_parallel_queue_wait_seconds). Wall-clock
// telemetry is explicitly outside the determinism contract.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rac-project/rac/internal/telemetry"
)

// Options configure one Map or ForEach call.
type Options struct {
	// Procs is the number of worker goroutines. Zero or negative means
	// runtime.NumCPU(); 1 runs the units inline on the calling goroutine.
	// More workers than units is clamped to the unit count.
	Procs int
	// Telemetry, when non-nil, receives pool instrumentation for this call.
	Telemetry *telemetry.Registry
}

// queueWaitBuckets resolve dispatch latency: queue waits are micro- to
// millisecond scale, far below the latency-scale telemetry.DefBuckets.
var queueWaitBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1}

// instruments are the pool's exported metrics, get-or-created on the
// caller's registry.
type instruments struct {
	tasks   *telemetry.Counter
	workers *telemetry.Gauge
	wait    *telemetry.Histogram
}

func (o Options) instruments() *instruments {
	if o.Telemetry == nil {
		return nil
	}
	return &instruments{
		tasks: o.Telemetry.Counter("rac_parallel_tasks_total",
			"Work units dispatched through the parallel pool.", nil),
		workers: o.Telemetry.Gauge("rac_parallel_workers",
			"Worker goroutines currently serving parallel calls.", nil),
		wait: o.Telemetry.Histogram("rac_parallel_queue_wait_seconds",
			"Wall-clock wait from submission to a worker picking a unit up.",
			queueWaitBuckets, nil),
	}
}

// workers resolves Options.Procs against the unit count.
func (o Options) workers(n int) int {
	p := o.Procs
	if p <= 0 {
		p = runtime.NumCPU()
	}
	if p > n {
		p = n
	}
	return p
}

// Map runs fn(0..n-1) on up to Procs workers and returns the results in
// index order. The first error (lowest index among units that ran) cancels
// the call: no new units start, in-flight units finish, and the error is
// returned with a nil slice. fn must follow the package determinism
// contract when Procs may exceed 1.
func Map[T any](opts Options, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	procs := opts.workers(n)
	ins := opts.instruments()
	start := time.Now()
	if ins != nil {
		ins.tasks.Add(int64(n))
		ins.workers.Add(float64(procs))
		defer ins.workers.Add(-float64(procs))
	}

	if procs == 1 {
		// Inline sequential path: the reference semantics the parallel path
		// must be indistinguishable from.
		for i := 0; i < n; i++ {
			if ins != nil {
				ins.wait.Observe(time.Since(start).Seconds())
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		errIndex = n
		firstErr error
		wg       sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || stopped.Load() {
				return
			}
			if ins != nil {
				ins.wait.Observe(time.Since(start).Seconds())
			}
			v, err := fn(i)
			if err != nil {
				mu.Lock()
				if i < errIndex {
					errIndex, firstErr = i, err
				}
				mu.Unlock()
				stopped.Store(true)
				continue
			}
			out[i] = v
		}
	}
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ForEach runs fn(0..n-1) on up to Procs workers, with Map's cancellation
// and determinism semantics, discarding results.
func ForEach(opts Options, n int, fn func(i int) error) error {
	_, err := Map(opts, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
