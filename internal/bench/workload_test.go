package bench

import (
	"bytes"
	"testing"

	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/workload"
)

// TestDiurnalAcceptance is the workload engine's acceptance experiment: over
// the compressed 24 h diurnal scenario the resilient adaptive agent must
// violate the SLA in at most half the intervals the static-default baseline
// does — and the scenario must actually stress the baseline, or the
// comparison is vacuous.
func TestDiurnalAcceptance(t *testing.T) {
	h := New(Options{Seed: 7, Quick: true})
	cmp, err := h.RunWorkloadScenario(workload.Diurnal())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(cmp.Intervals), 34; got != want {
		t.Fatalf("quick diurnal intervals = %d, want %d", got, want)
	}
	if cmp.Static.Violations < 8 {
		t.Fatalf("static baseline violated only %d intervals: the plateau no longer stresses it",
			cmp.Static.Violations)
	}
	if 2*cmp.Adaptive.Violations > cmp.Static.Violations {
		t.Errorf("adaptive agent violated %d intervals vs static %d — more than half",
			cmp.Adaptive.Violations, cmp.Static.Violations)
	}
	// The workload events are interleaved into the decision trace, one per
	// interval, so load drift can be correlated with agent decisions.
	var events int
	for _, ev := range cmp.Adaptive.Trace.Snapshot() {
		if ev.Kind == telemetry.KindWorkload {
			events++
			if ev.OfferedRate <= 0 {
				t.Errorf("workload event %d has no offered rate", ev.Iteration)
			}
		}
	}
	if events != len(cmp.Intervals) {
		t.Errorf("trace has %d workload events, want %d", events, len(cmp.Intervals))
	}
	// The sequencer telemetry saw every phase transition (5 phases → 4).
	if got := h.Telemetry().Counter("rac_workload_phase_transitions_total",
		"Scenario phase boundaries crossed by the workload sequencer.", nil).Value(); got < 4 {
		t.Errorf("phase transition counter = %d, want ≥ 4", got)
	}
}

// TestFigDiurnalDeterministicAcrossProcs renders the diurnal figure at both
// worker counts: scenario compilation, the interval walk, and both agent runs
// must reduce identically regardless of harness parallelism.
func TestFigDiurnalDeterministicAcrossProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	render := func(procs int) []byte {
		h := New(Options{Seed: 13, Quick: true, Procs: procs})
		fig, err := h.FigDiurnal()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("fig-diurnal differs between Procs=1 and Procs=8:\n--- procs=1\n%s\n--- procs=8\n%s", seq, par)
	}
}
