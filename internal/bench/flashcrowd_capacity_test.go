package bench

import (
	"reflect"
	"testing"

	"github.com/rac-project/rac/internal/workload"
)

// TestFigFlashcrowdCapacityBeatsStaticPeak is the figure's acceptance claim:
// across the flash-crowd run the joint configuration+capacity controller
// serves at least the static peak's SLO-goodput with no worse tail latency,
// while its cumulative capacity bill stays strictly under always-on peak
// provisioning — and it gets there by actually scaling, not by luck of the
// starting level.
func TestFigFlashcrowdCapacityBeatsStaticPeak(t *testing.T) {
	h := quickHarness(1)
	sc := h.scenarioFor(workload.FlashCrowd())

	capAware, err := h.runCapacityVariant(sc, "capacity-aware", true)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := h.runCapacityVariant(sc, "static-peak", false)
	if err != nil {
		t.Fatal(err)
	}

	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if cg, bg := sum(capAware.Goodput), sum(baseline.Goodput); cg < bg {
		t.Errorf("capacity-aware total goodput %.1f < static-peak %.1f", cg, bg)
	}
	if cp, bp := sum(capAware.P99), sum(baseline.P99); cp > bp {
		t.Errorf("capacity-aware mean p99 %.2fs worse than static-peak %.2fs",
			cp/float64(len(capAware.P99)), bp/float64(len(baseline.P99)))
	}
	n := len(capAware.Cost)
	if capAware.Cost[n-1] >= baseline.Cost[n-1] {
		t.Errorf("capacity bill %.0f not below static peak %.0f",
			capAware.Cost[n-1], baseline.Cost[n-1])
	}
	if capAware.ScaleUps == 0 {
		t.Error("fast path never scaled up through the flash crowd")
	}
	if capAware.Violations > baseline.Violations {
		t.Errorf("capacity-aware violations %d > static-peak %d",
			capAware.Violations, baseline.Violations)
	}
	if baseline.ScaleUps != 0 || baseline.ScaleDowns != 0 {
		t.Errorf("static-peak baseline scaled (ups=%d downs=%d)",
			baseline.ScaleUps, baseline.ScaleDowns)
	}
}

// TestFigFlashcrowdCapacityDeterminism pins byte-identity of the figure
// across repeated runs and across -procs settings: the analyzer and scaler
// tick on interval counts, policy training pre-splits its RNG streams, and
// the schedule is driven from one goroutine, so the worker-pool bound must be
// invisible in the output.
func TestFigFlashcrowdCapacityDeterminism(t *testing.T) {
	run := func(procs int) *Figure {
		h := New(Options{Seed: 1, Quick: true, Procs: procs})
		fig, err := h.FigFlashcrowdCapacity()
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	base := run(1)
	for _, procs := range []int{1, 8} {
		if got := run(procs); !reflect.DeepEqual(got, base) {
			t.Fatalf("procs=%d diverged:\n%+v\nvs\n%+v", procs, got, base)
		}
	}
}
