package bench

import (
	"fmt"
	"math"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/regression"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// rtSeries extracts mean response times from step results.
func rtSeries(results []core.StepResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.MeanRT
	}
	return out
}

// Fig01 reproduces paper Figure 1: no single configuration suits all
// workload mixes. For each mix the harness finds the best configuration over
// its test cases (the coarse grouped lattice, on Level-1), then measures
// every mix under every mix's best configuration.
func (h *Harness) Fig01() (*Figure, error) {
	mixes := tpcw.Mixes()
	best := make([]config.Config, len(mixes))
	for i, mix := range mixes {
		cfg, _, err := h.bestGroupedConfig(contextWith(mix, vmenv.Level1))
		if err != nil {
			return nil, err
		}
		best[i] = cfg
	}
	fig := &Figure{
		ID:     "fig1",
		Title:  "Performance under configurations tuned for different workloads (Level-1)",
		XLabel: "workload",
		YLabel: "mean response time (s)",
		X:      []float64{1, 2, 3},
		Notes: []string{
			"x: 1=browsing 2=shopping 3=ordering",
		},
	}
	seeds := h.averagingSeeds()
	for bi, mix := range mixes {
		series := Series{Label: fmt.Sprintf("%s-best", mix)}
		for _, target := range mixes {
			rt, err := h.measureConfig(contextWith(target, vmenv.Level1), best[bi], seeds)
			if err != nil {
				return nil, err
			}
			series.Values = append(series.Values, rt)
		}
		fig.Series = append(fig.Series, series)
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s-best config: %s", mix, best[bi].Format(h.space)))
	}
	return fig, nil
}

// Fig02 reproduces paper Figure 2: the effect of MaxClients under different
// VM levels (ordering mix). The optimal MaxClients shifts down as the VM
// gets stronger.
func (h *Harness) Fig02() (*Figure, error) {
	idx, ok := h.space.Lookup(config.MaxClients)
	if !ok {
		return nil, fmt.Errorf("bench: space lacks MaxClients")
	}
	def := h.space.Def(idx)
	fig := &Figure{
		ID:     "fig2",
		Title:  "Effect of MaxClients on performance per VM level (ordering mix)",
		XLabel: "MaxClients",
		YLabel: "mean response time (s)",
	}
	for l := 0; l < def.Levels(); l++ {
		fig.X = append(fig.X, float64(def.Value(l)))
	}
	seeds := h.averagingSeeds()
	for _, level := range vmenv.Levels() {
		series := Series{Label: level.Name}
		for l := 0; l < def.Levels(); l++ {
			cfg := h.space.DefaultConfig()
			cfg[idx] = def.Value(l)
			rt, err := h.measureConfig(contextWith(tpcw.Ordering, level), cfg, seeds)
			if err != nil {
				return nil, err
			}
			series.Values = append(series.Values, rt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig03 reproduces paper Figure 3: no single configuration suits all VM
// levels (ordering mix). Per-level best configurations are cross-applied.
func (h *Harness) Fig03() (*Figure, error) {
	levels := vmenv.Levels()
	best := make([]config.Config, len(levels))
	for i, level := range levels {
		cfg, _, err := h.bestGroupedConfig(contextWith(tpcw.Ordering, level))
		if err != nil {
			return nil, err
		}
		best[i] = cfg
	}
	fig := &Figure{
		ID:     "fig3",
		Title:  "Performance under configurations tuned for different VM levels (ordering mix)",
		XLabel: "level",
		YLabel: "mean response time (s)",
		X:      []float64{1, 2, 3},
		Notes:  []string{"x: 1=Level-1 2=Level-2 3=Level-3"},
	}
	seeds := h.averagingSeeds()
	for bi, level := range levels {
		series := Series{Label: fmt.Sprintf("%s-best", level.Name)}
		for _, target := range levels {
			rt, err := h.measureConfig(contextWith(tpcw.Ordering, target), best[bi], seeds)
			if err != nil {
				return nil, err
			}
			series.Values = append(series.Values, rt)
		}
		fig.Series = append(fig.Series, series)
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s-best config: %s", level.Name, best[bi].Format(h.space)))
	}
	return fig, nil
}

// Fig04 reproduces paper Figure 4: the concave-upward effect of MaxClients
// and its polynomial-regression fit (ordering on Level-1).
func (h *Harness) Fig04() (*Figure, error) {
	idx, ok := h.space.Lookup(config.MaxClients)
	if !ok {
		return nil, fmt.Errorf("bench: space lacks MaxClients")
	}
	def := h.space.Def(idx)
	ctx := contextWith(tpcw.Ordering, vmenv.Level1)
	seeds := h.averagingSeeds()

	var xs, ys []float64
	for l := 0; l < def.Levels(); l++ {
		v := def.Value(l)
		cfg := h.space.DefaultConfig()
		cfg[idx] = v
		rt, err := h.measureConfig(ctx, cfg, seeds)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(v))
		ys = append(ys, rt)
	}
	// Fit in log space, as policy initialization does: the response time
	// spans orders of magnitude across the overload cliff and a raw
	// polynomial would go negative on the flat side.
	logYs := make([]float64, len(ys))
	for i, y := range ys {
		logYs[i] = math.Log(math.Max(y, 1e-3))
	}
	poly, err := regression.FitPoly(xs, logYs, 2)
	if err != nil {
		return nil, err
	}
	fitted := make([]float64, len(xs))
	for i, x := range xs {
		fitted[i] = math.Exp(poly.Eval(x))
	}
	return &Figure{
		ID:     "fig4",
		Title:  "Concave upward effect of MaxClients and regression fit (ordering, Level-1)",
		XLabel: "MaxClients",
		YLabel: "mean response time (s)",
		X:      xs,
		Series: []Series{
			{Label: "measured", Values: ys},
			{Label: "regression", Values: fitted},
		},
		Notes: []string{
			fmt.Sprintf("degree-2 fit of log(rt): %s", poly),
			fmt.Sprintf("R^2 (log space) = %.3f", regression.RSquared(logYs, preds(poly, xs))),
		},
	}, nil
}

// preds evaluates the polynomial over xs.
func preds(p *regression.Poly, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// fig5Schedule is the context sequence of Figures 5 and 10: context-1 for a
// third of the run, then context-2 (traffic change), then context-3 (VM
// reallocation).
func (h *Harness) fig5Schedule() ([]Phase, []system.Context, error) {
	var ctxs []system.Context
	for _, name := range []string{"context-1", "context-2", "context-3"} {
		c, err := system.ContextByName(name)
		if err != nil {
			return nil, nil, err
		}
		ctxs = append(ctxs, c)
	}
	per := h.iterations(30)
	phases := []Phase{
		{Context: ctxs[0], Iterations: per},
		{Context: ctxs[1], Iterations: per},
		{Context: ctxs[2], Iterations: per},
	}
	return phases, ctxs, nil
}

// Fig05 reproduces paper Figure 5: RAC (with adaptive policy initialization)
// versus the static default configuration and the trial-and-error tuner
// across three consecutive system contexts.
func (h *Harness) Fig05() (*Figure, error) {
	phases, ctxs, err := h.fig5Schedule()
	if err != nil {
		return nil, err
	}
	store, err := h.Store(ctxs...)
	if err != nil {
		return nil, err
	}
	initial, err := h.Policy(ctxs[0])
	if err != nil {
		return nil, err
	}

	rac := func(sys system.System) (core.Tuner, error) {
		return core.NewAgent(sys, core.AgentOptions{
			Options: h.opts.Agent,
			Policy:  initial,
			Store:   store,
			Seed:    h.opts.Seed ^ 0x5AC,
		})
	}
	static := func(sys system.System) (core.Tuner, error) {
		return core.NewStaticAgent(sys, h.opts.Agent)
	}
	tae := func(sys system.System) (core.Tuner, error) {
		return core.NewTrialAndErrorAgent(sys, h.opts.Agent)
	}

	fig := &Figure{
		ID:     "fig5",
		Title:  "Online performance of auto-configuration policies across context changes",
		XLabel: "iteration",
		YLabel: "mean response time (s)",
	}
	for _, run := range []struct {
		label string
		mk    TunerFactory
		salt  uint64
	}{
		{"RAC", rac, 11},
		{"static-default", static, 11},
		{"trial-and-error", tae, 11},
	} {
		results, err := h.RunSchedule(run.mk, phases, run.salt)
		if err != nil {
			return nil, fmt.Errorf("bench: fig5 %s: %w", run.label, err)
		}
		fig.Series = append(fig.Series, Series{Label: run.label, Values: rtSeries(results)})
	}
	fig.X = seqX(len(fig.Series[0].Values))
	per := phases[0].Iterations
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("context-1 iters 1-%d, context-2 iters %d-%d, context-3 iters %d-%d",
			per, per+1, 2*per, 2*per+1, 3*per))
	return fig, nil
}

// Fig06 reproduces paper Figure 6: the effect of online learning. Both
// agents start from the context's offline policy; one keeps learning online,
// the other follows it greedily. The paper evaluates context-1; context-3 is
// added because the offline (analytic-surface) policy misfits the stressed
// simulator most there, which is exactly the gap online learning closes.
func (h *Harness) Fig06() (*Figure, error) {
	iters := h.iterations(40)
	fig := &Figure{
		ID:     "fig6",
		Title:  "Effect of online training (contexts 1 and 3)",
		XLabel: "iteration",
		YLabel: "mean response time (s)",
		X:      seqX(iters),
	}
	for _, name := range []string{"context-1", "context-3"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			return nil, err
		}
		policy, err := h.Policy(ctx)
		if err != nil {
			return nil, err
		}
		phases := []Phase{{Context: ctx, Iterations: iters}}
		for _, run := range []struct {
			label  string
			frozen bool
		}{
			{name + "/with-online-learning", false},
			{name + "/without-online-learning", true},
		} {
			frozen := run.frozen
			mk := func(sys system.System) (core.Tuner, error) {
				return core.NewAgent(sys, core.AgentOptions{
					Options: h.opts.Agent,
					Policy:  policy,
					Frozen:  frozen,
					Seed:    h.opts.Seed ^ 0x6F6,
				})
			}
			results, err := h.RunSchedule(mk, phases, 23)
			if err != nil {
				return nil, fmt.Errorf("bench: fig6 %s: %w", run.label, err)
			}
			fig.Series = append(fig.Series, Series{Label: run.label, Values: rtSeries(results)})
		}
	}
	return fig, nil
}

// Fig07 reproduces paper Figures 7(a) and 7(b): RAC with and without policy
// initialization under context-2 and context-4.
func (h *Harness) Fig07() (*Figure, error) {
	iters := h.iterations(40)
	fig := &Figure{
		ID:     "fig7",
		Title:  "Performance with and without policy initialization",
		XLabel: "iteration",
		YLabel: "mean response time (s)",
		X:      seqX(iters),
	}
	for _, name := range []string{"context-2", "context-4"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			return nil, err
		}
		policy, err := h.Policy(ctx)
		if err != nil {
			return nil, err
		}
		phases := []Phase{{Context: ctx, Iterations: iters}}
		for _, run := range []struct {
			label  string
			policy *core.Policy
		}{
			{name + "/with-init", policy},
			{name + "/without-init", nil},
		} {
			p := run.policy
			mk := func(sys system.System) (core.Tuner, error) {
				return core.NewAgent(sys, core.AgentOptions{
					Options: h.opts.Agent,
					Policy:  p,
					Seed:    h.opts.Seed ^ 0x707,
				})
			}
			results, err := h.RunSchedule(mk, phases, 31)
			if err != nil {
				return nil, fmt.Errorf("bench: fig7 %s: %w", run.label, err)
			}
			fig.Series = append(fig.Series, Series{Label: run.label, Values: rtSeries(results)})
		}
	}
	return fig, nil
}

// Fig08 reproduces paper Figure 8: the effect of the online exploration
// rate (0.05, 0.1, 0.3) in context-1.
func (h *Harness) Fig08() (*Figure, error) {
	ctx, err := system.ContextByName("context-1")
	if err != nil {
		return nil, err
	}
	policy, err := h.Policy(ctx)
	if err != nil {
		return nil, err
	}
	iters := h.iterations(40)
	phases := []Phase{{Context: ctx, Iterations: iters}}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Effect of online exploration rate (context-1)",
		XLabel: "iteration",
		YLabel: "mean response time (s)",
		X:      seqX(iters),
	}
	for _, eps := range []float64{0.05, 0.1, 0.3} {
		opts := h.opts.Agent
		opts.Online.Epsilon = eps
		mk := func(sys system.System) (core.Tuner, error) {
			return core.NewAgent(sys, core.AgentOptions{
				Options: opts,
				Policy:  policy,
				Seed:    h.opts.Seed ^ 0x808,
			})
		}
		results, err := h.RunSchedule(mk, phases, 41)
		if err != nil {
			return nil, fmt.Errorf("bench: fig8 eps=%v: %w", eps, err)
		}
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("rate-%.2f", eps),
			Values: rtSeries(results),
		})
	}
	return fig, nil
}

// Fig09 reproduces paper Figures 9(a) and 9(b): a static initial policy
// (trained for context-2) versus the adaptive (context-matched) policy under
// context-5 and context-6.
func (h *Harness) Fig09() (*Figure, error) {
	staticPolicy, err := h.Policy(mustContext("context-2"))
	if err != nil {
		return nil, err
	}
	iters := h.iterations(40)
	fig := &Figure{
		ID:     "fig9",
		Title:  "Static vs adaptive policy initialization",
		XLabel: "iteration",
		YLabel: "mean response time (s)",
		X:      seqX(iters),
	}
	for _, name := range []string{"context-5", "context-6"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			return nil, err
		}
		adaptive, err := h.Policy(ctx)
		if err != nil {
			return nil, err
		}
		phases := []Phase{{Context: ctx, Iterations: iters}}
		for _, run := range []struct {
			label  string
			policy *core.Policy
		}{
			{name + "/adaptive-init", adaptive},
			{name + "/static-init", staticPolicy},
		} {
			p := run.policy
			mk := func(sys system.System) (core.Tuner, error) {
				return core.NewAgent(sys, core.AgentOptions{
					Options: h.opts.Agent,
					Policy:  p,
					Seed:    h.opts.Seed ^ 0x909,
				})
			}
			results, err := h.RunSchedule(mk, phases, 47)
			if err != nil {
				return nil, fmt.Errorf("bench: fig9 %s: %w", run.label, err)
			}
			fig.Series = append(fig.Series, Series{Label: run.label, Values: rtSeries(results)})
		}
	}
	return fig, nil
}

// Fig10 reproduces paper Figure 10: adaptive initialization vs a fixed
// static policy vs no initialization under the Figure 5 context schedule.
func (h *Harness) Fig10() (*Figure, error) {
	phases, ctxs, err := h.fig5Schedule()
	if err != nil {
		return nil, err
	}
	store, err := h.Store(ctxs...)
	if err != nil {
		return nil, err
	}
	initial, err := h.Policy(ctxs[0])
	if err != nil {
		return nil, err
	}
	staticPolicy, err := h.Policy(mustContext("context-2"))
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "fig10",
		Title:  "Online adaptation of RL policies under context changes",
		XLabel: "iteration",
		YLabel: "mean response time (s)",
	}
	runs := []struct {
		label  string
		policy *core.Policy
		store  *core.PolicyStore
	}{
		{"adaptive-init", initial, store},
		{"static-init", staticPolicy, nil},
		{"without-init", nil, nil},
	}
	for _, run := range runs {
		p, s := run.policy, run.store
		mk := func(sys system.System) (core.Tuner, error) {
			return core.NewAgent(sys, core.AgentOptions{
				Options: h.opts.Agent,
				Policy:  p,
				Store:   s,
				Seed:    h.opts.Seed ^ 0xA0A,
			})
		}
		results, err := h.RunSchedule(mk, phases, 53)
		if err != nil {
			return nil, fmt.Errorf("bench: fig10 %s: %w", run.label, err)
		}
		fig.Series = append(fig.Series, Series{Label: run.label, Values: rtSeries(results)})
	}
	fig.X = seqX(len(fig.Series[0].Values))
	return fig, nil
}

// mustContext returns a Table 2 context by name; the names are compile-time
// constants in this package, so failure is a programming error.
func mustContext(name string) system.Context {
	c, err := system.ContextByName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Figures maps figure IDs to their generators.
func (h *Harness) Figures() map[string]func() (*Figure, error) {
	return map[string]func() (*Figure, error){
		"fig1":  h.Fig01,
		"fig2":  h.Fig02,
		"fig3":  h.Fig03,
		"fig4":  h.Fig04,
		"fig5":  h.Fig05,
		"fig6":  h.Fig06,
		"fig7":  h.Fig07,
		"fig8":  h.Fig08,
		"fig9":  h.Fig09,
		"fig10": h.Fig10,
		// Beyond the paper: the data-plane throughput/scaling figure. Not in
		// FigureIDs (and so not part of -all), because it drives real HTTP
		// load over wall clock instead of the simulator.
		"load": h.FigLoad,
		// Beyond the paper: adaptation across the library's 24 h diurnal
		// workload scenario. Not in FigureIDs for the same reason — the
		// paper has no time-varying-workload figure to reproduce.
		"diurnal": h.FigDiurnal,
		// Beyond the paper: the SLO admission gate under flash-crowd
		// overload, gated vs ungated. Not in FigureIDs — the paper has no
		// admission-control figure.
		"overload": h.FigOverload,
		// Beyond the paper: joint configuration + elastic capacity control
		// under the flash-crowd scenario, capacity-aware vs static peak. Not
		// in FigureIDs — the paper treats the VM level as an exogenous
		// context change, never as an actuator.
		"flashcrowd-capacity": h.FigFlashcrowdCapacity,
	}
}

// FigureIDs returns the figure identifiers in paper order.
func FigureIDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
}
