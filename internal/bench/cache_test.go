package bench

import (
	"bytes"
	"sync"
	"testing"

	"github.com/rac-project/rac/internal/system"
)

// cachedStoreBytes is storeBytes with an explicit cache switch.
func cachedStoreBytes(t *testing.T, seed uint64, procs int, simSampling, noCache bool, contexts []system.Context) [][]byte {
	t.Helper()
	h := New(Options{Seed: seed, Quick: true, SimSampling: simSampling, Procs: procs, NoCache: noCache})
	store, err := h.Store(contexts...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(contexts))
	for i, ctx := range contexts {
		p := store.ByName(ctx.Name)
		if p == nil {
			t.Fatalf("store lacks %s", ctx.Name)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// TestCachedStoreMatchesUncached pins the surface memo's invariant: policies
// trained with the cache on (at either worker count) are byte-identical to
// policies trained with it off. The sim-sampling case exercises the
// draw-seed-before-lookup discipline — a hit must consume the sample's RNG
// stream exactly like a miss.
func TestCachedStoreMatchesUncached(t *testing.T) {
	contexts := make([]system.Context, 0, 2)
	for _, name := range []string{"context-1", "context-2"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			t.Fatal(err)
		}
		contexts = append(contexts, ctx)
	}

	uncached := cachedStoreBytes(t, 21, 1, false, true, contexts)
	for _, procs := range []int{1, 8} {
		cached := cachedStoreBytes(t, 21, procs, false, false, contexts)
		for i, ctx := range contexts {
			if !bytes.Equal(cached[i], uncached[i]) {
				t.Errorf("cached (Procs=%d) analytic policy for %s differs from uncached", procs, ctx.Name)
			}
		}
	}

	if testing.Short() {
		t.Skip("simulator sampling is slow")
	}
	simCtx := contexts[:1]
	simUncached := cachedStoreBytes(t, 22, 1, true, true, simCtx)
	simCached := cachedStoreBytes(t, 22, 8, true, false, simCtx)
	if !bytes.Equal(simCached[0], simUncached[0]) {
		t.Error("cached sim-sampled policy differs from uncached")
	}
}

// TestCachedFigureMatchesUncached renders one full figure with and without
// the memo (and across worker counts) and asserts byte-identical output —
// the end-to-end form of the cache invariant.
func TestCachedFigureMatchesUncached(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	render := func(procs int, noCache bool) []byte {
		h := New(Options{Seed: 23, Quick: true, Procs: procs, NoCache: noCache})
		fig, err := h.Fig04()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	uncached := render(1, true)
	for _, procs := range []int{1, 8} {
		if got := render(procs, false); !bytes.Equal(got, uncached) {
			t.Errorf("cached figure (Procs=%d) differs from uncached", procs)
		}
	}
}

// TestSurfaceCacheCountsHits asserts the memo actually absorbs repeated
// evaluations: retraining sweeps and best-config searches revisit lattice
// points, so a figure-scale workload must record hits.
func TestSurfaceCacheCountsHits(t *testing.T) {
	h := New(Options{Seed: 24, Quick: true})
	ctx, err := system.ContextByName("context-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Policy(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.bestGroupedConfig(ctx); err != nil {
		t.Fatal(err)
	}
	hits := h.tel.Counter("rac_surface_cache_hits_total", "", nil).Value()
	misses := h.tel.Counter("rac_surface_cache_misses_total", "", nil).Value()
	if misses == 0 {
		t.Fatal("no surface evaluations recorded")
	}
	if hits == 0 {
		t.Fatalf("no cache hits despite overlapping sweeps (misses=%d)", misses)
	}
}

// TestConcurrentStoreRace drives concurrent Store and Policy calls through
// one harness so the race detector can check the surface memo and policy
// singleflight under contention.
func TestConcurrentStoreRace(t *testing.T) {
	h := New(Options{Seed: 25, Quick: true, Procs: 4})
	contexts := make([]system.Context, 0, 3)
	for _, name := range []string{"context-1", "context-2", "context-3"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			t.Fatal(err)
		}
		contexts = append(contexts, ctx)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				if _, err := h.Store(contexts...); err != nil {
					t.Errorf("Store: %v", err)
				}
				return
			}
			for _, ctx := range contexts {
				if _, err := h.Policy(ctx); err != nil {
					t.Errorf("Policy(%s): %v", ctx.Name, err)
				}
			}
		}(w)
	}
	wg.Wait()
}
