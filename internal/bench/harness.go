// Package bench regenerates the paper's evaluation: one function per figure,
// each returning a Figure with the same series the paper plots. The harness
// owns policy training (with caching), system construction and agent driving
// so every experiment is reproducible from a single seed.
package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/parallel"
	"github.com/rac-project/rac/internal/queueing"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/surface"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// Options configure a Harness.
type Options struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Quick trades fidelity for speed: shorter measurement windows, fewer
	// averaging seeds and a coarser policy-sampling lattice. Used by tests;
	// the reported figures run with Quick=false.
	Quick bool
	// SimSampling trains initial policies by sampling the simulator (the
	// paper's offline data collection). When false the harness samples the
	// analytic queueing surface instead, which is orders of magnitude
	// faster and yields policies of the same shape.
	SimSampling bool
	// Procs bounds the worker goroutines the harness fans sweeps out on:
	// coarse-lattice policy sampling, seed averaging, best-config searches
	// and per-context store training. Zero or negative uses every CPU; 1
	// runs sequentially. Every unit of work draws from RNG streams split
	// before dispatch, so results are bit-identical for any value.
	Procs int
	// NoCache disables the response-surface memo in front of the analytic
	// and simulated measure paths. Figures are byte-identical either way
	// (determinism tests pin it); the switch exists for A/B timing and for
	// exercising the uncached paths.
	NoCache bool
	// Agent hyper-parameters; zero value uses core.DefaultOptions.
	Agent core.Options
}

// policyEntry is one cached (or in-flight) policy training. The once gate
// dedups concurrent requests for the same context so parallel figure
// generation never trains a policy twice.
type policyEntry struct {
	once sync.Once
	p    *core.Policy
	err  error
}

// Harness runs the paper's experiments.
type Harness struct {
	opts  Options
	space *config.Space
	cal   webtier.Calibration

	mu       sync.Mutex
	policies map[string]*policyEntry

	// surf memoizes response-surface evaluations (nil when Options.NoCache).
	surf *surface.Cache

	tel           *telemetry.Registry
	policyTrains  *telemetry.Counter
	policyHits    *telemetry.Counter
	scheduleSteps *telemetry.Counter
}

// New builds a harness.
func New(opts Options) *Harness {
	if opts.Agent == (core.Options{}) {
		opts.Agent = core.DefaultOptions()
	}
	tel := telemetry.NewRegistry()
	var surf *surface.Cache
	if !opts.NoCache {
		surf = surface.New(tel)
	}
	return &Harness{
		opts:     opts,
		space:    config.Default(),
		cal:      webtier.DefaultCalibration(),
		policies: make(map[string]*policyEntry),
		surf:     surf,
		tel:      tel,
		policyTrains: tel.Counter("bench_policy_trainings_total",
			"Initial policies trained (offline Algorithm 2 passes).", nil),
		policyHits: tel.Counter("bench_policy_cache_hits_total",
			"Policy requests served from the harness cache.", nil),
		scheduleSteps: tel.Counter("bench_schedule_steps_total",
			"Agent iterations driven through RunSchedule.", nil),
	}
}

// Space returns the harness's configuration space.
func (h *Harness) Space() *config.Space { return h.space }

// Telemetry returns the harness registry. Experiment commands snapshot it at
// exit; TunerFactory implementations may also register agent instruments on
// it to observe Q-learning convergence during a schedule.
func (h *Harness) Telemetry() *telemetry.Registry { return h.tel }

// Parallel returns the pool options the harness fans work out with, for
// callers (e.g. cmd/racbench) that parallelize units above the harness —
// whole figures — under the same Procs bound and pool telemetry.
func (h *Harness) Parallel() parallel.Options {
	return parallel.Options{Procs: h.opts.Procs, Telemetry: h.tel}
}

// measureWindows returns (settle, measure) in virtual seconds.
func (h *Harness) measureWindows() (float64, float64) {
	if h.opts.Quick {
		return 15, 60
	}
	return 30, 270
}

// averagingSeeds returns how many independent seeds sweeps average over.
func (h *Harness) averagingSeeds() int {
	if h.opts.Quick {
		return 2
	}
	return 4
}

// coarseLevels returns the per-group sampling granularity for policy
// initialization.
func (h *Harness) coarseLevels() int {
	if h.opts.Quick {
		return 3
	}
	return 4
}

// iterations scales a full-size iteration count down in quick mode.
func (h *Harness) iterations(full int) int {
	if h.opts.Quick {
		n := full / 3
		if n < 4 {
			n = 4
		}
		return n
	}
	return full
}

// newSystem builds a simulated system in the context with a derived seed.
func (h *Harness) newSystem(ctx system.Context, salt uint64) (*system.Simulated, error) {
	settle, measure := h.measureWindows()
	return system.NewSimulated(system.SimulatedOptions{
		Space:          h.space,
		Context:        ctx,
		Seed:           h.opts.Seed*2654435761 + salt,
		SettleSeconds:  settle,
		MeasureSeconds: measure,
	})
}

// measureConfig measures one configuration in a fresh system (averaged over
// the harness's averaging seeds). The per-seed measurements run through the
// worker pool: each seed's system derives its RNG purely from the seed index,
// and the average is reduced in index order, so the result is bit-identical
// for any Procs.
func (h *Harness) measureConfig(ctx system.Context, cfg config.Config, seeds int) (float64, error) {
	if seeds < 1 {
		seeds = 1
	}
	settle, measure := h.measureWindows()
	rts, err := parallel.Map(h.Parallel(), seeds, func(s int) (float64, error) {
		salt := uint64(s)*7919 + uint64(len(cfg))
		// A fresh system's measurement is a pure function of (context,
		// configuration, derived seed, windows) — exactly the memo key.
		return h.surf.Do(surfaceKey('m', ctx, salt, settle, measure, cfg), func() (float64, error) {
			sys, err := h.newSystem(ctx, salt)
			if err != nil {
				return 0, err
			}
			if err := sys.Apply(context.Background(), cfg); err != nil {
				return 0, err
			}
			m, err := sys.Measure(context.Background())
			if err != nil {
				return 0, err
			}
			return m.MeanRT, nil
		})
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, rt := range rts {
		sum += rt
	}
	return sum / float64(seeds), nil
}

// surfaceKey renders the memo key of one surface evaluation. Every input the
// evaluation depends on is folded in: the backend tag ('a' analytic, 'm'
// simulated measurement, 'p' simulated policy sample), the full context
// coordinates (the level name alone would alias contexts that differ only in
// mix or client count), the measurement seed or salt, the sampling windows
// and the configuration itself. Built with strconv like policyKey: surface
// lookups sit on the sweep hot path.
func surfaceKey(tag byte, ctx system.Context, seed uint64, settle, measure float64, cfg config.Config) string {
	key := make([]byte, 0, len(ctx.Level.Name)+len(cfg)*4+48)
	key = append(key, tag, '|')
	key = strconv.AppendInt(key, int64(ctx.Workload.Mix), 10)
	key = append(key, '/')
	key = strconv.AppendInt(key, int64(ctx.Workload.Clients), 10)
	key = append(key, '/')
	key = append(key, ctx.Level.Name...)
	key = append(key, '|')
	key = strconv.AppendUint(key, seed, 10)
	key = append(key, '|')
	key = strconv.AppendFloat(key, settle, 'g', -1, 64)
	key = append(key, '/')
	key = strconv.AppendFloat(key, measure, 'g', -1, 64)
	key = append(key, '|')
	key = append(key, cfg.Key()...)
	return string(key)
}

// analyticRT predicts a configuration's response time from the queueing
// surface, memoized per (context, configuration).
func (h *Harness) analyticRT(ctx system.Context, cfg config.Config) (float64, error) {
	return h.surf.Do(surfaceKey('a', ctx, 0, 0, 0, cfg), func() (float64, error) {
		params, err := webtier.ParamsFromConfig(h.space, cfg)
		if err != nil {
			return 0, err
		}
		res, err := queueing.SolveWebsite(h.cal, params, ctx.Workload, ctx.Level)
		if err != nil {
			return 0, err
		}
		return res.MeanRT, nil
	})
}

// analyticBatch is analyticRT over a chunk of configurations: one
// WebsiteSolver's scratch buffers serve the whole chunk, so the sweep's inner
// MVA loops stop allocating. Each point still goes through the surface memo
// under the same key analyticRT uses — the solver is bit-identical to
// SolveWebsite (pinned in queueing's tests), so chunk boundaries and cache
// state never show in the output. The solver is owned by the calling
// goroutine; the memo's singleflight runs each compute closure on the
// goroutine that submitted it, so the scratch is never shared.
func (h *Harness) analyticBatch(ctx system.Context, cfgs []config.Config, out []float64) error {
	ws := queueing.NewWebsiteSolver()
	for i, cfg := range cfgs {
		rt, err := h.surf.Do(surfaceKey('a', ctx, 0, 0, 0, cfg), func() (float64, error) {
			params, err := webtier.ParamsFromConfig(h.space, cfg)
			if err != nil {
				return 0, err
			}
			res, err := ws.Solve(h.cal, params, ctx.Workload, ctx.Level)
			if err != nil {
				return 0, err
			}
			return res.MeanRT, nil
		})
		if err != nil {
			return fmt.Errorf("bench: analytic %s: %w", cfg.Key(), err)
		}
		out[i] = rt
	}
	return nil
}

// policyKey identifies one cached policy training. It must cover every
// option the training depends on — notably the coarse-lattice granularity —
// so a future per-call override can never alias a cached policy trained at a
// different fidelity. Built with strconv: Policy sits on the figure hot path
// and fmt.Sprintf's reflection is measurable across thousands of lookups.
// sampling selects a policy-training backend: the analytic queueing surface,
// or the simulator measured over explicit settle/measure windows.
type sampling struct {
	sim             bool
	settle, measure float64
}

// analyticSampling is the default backend (Options.SimSampling false).
var analyticSampling = sampling{}

// simSampling returns the simulator backend at the harness's windows.
func (h *Harness) simSampling() sampling {
	settle, measure := h.measureWindows()
	return sampling{sim: true, settle: settle, measure: measure}
}

// optsSampling returns the backend selected by Options.SimSampling.
func (h *Harness) optsSampling() sampling {
	if h.opts.SimSampling {
		return h.simSampling()
	}
	return analyticSampling
}

func (h *Harness) policyKey(ctx system.Context, smp sampling) string {
	key := make([]byte, 0, len(ctx.Name)+48)
	key = append(key, ctx.Name...)
	key = append(key, "|c"...)
	key = strconv.AppendInt(key, int64(h.coarseLevels()), 10)
	key = append(key, "|q"...)
	key = strconv.AppendBool(key, h.opts.Quick)
	key = append(key, "|s"...)
	key = strconv.AppendBool(key, smp.sim)
	if smp.sim {
		// Sim-sampled policies depend on the measurement windows too (the
		// scenario benches train at their own fixed windows).
		key = append(key, '/')
		key = strconv.AppendFloat(key, smp.settle, 'g', -1, 64)
		key = append(key, '/')
		key = strconv.AppendFloat(key, smp.measure, 'g', -1, 64)
	}
	// Training rewards are SLA-relative, and the surface memo sits under the
	// sampler: both are harness-level options today, but folding them in now
	// means a future per-call override can never serve a policy trained
	// against a different SLA or cache regime.
	key = append(key, "|l"...)
	key = strconv.AppendFloat(key, h.opts.Agent.SLASeconds, 'g', -1, 64)
	key = append(key, "|n"...)
	key = strconv.AppendBool(key, h.opts.NoCache)
	key = append(key, '|')
	key = strconv.AppendUint(key, h.opts.Seed, 10)
	return string(key)
}

// Policy returns (training and caching on first use) the initial policy for
// a context, sampling the backend selected by Options.SimSampling.
func (h *Harness) Policy(ctx system.Context) (*core.Policy, error) {
	return h.policySampled(ctx, h.optsSampling())
}

// policySampled is Policy with an explicit sampling backend: the workload-
// scenario benches always sim-sample their warm start (the schedule replays
// on the simulator, so Algorithm 2 must coarsely sample that same system —
// the analytic surface ranks configurations differently near the knee).
func (h *Harness) policySampled(ctx system.Context, smp sampling) (*core.Policy, error) {
	key := h.policyKey(ctx, smp)
	h.mu.Lock()
	e, ok := h.policies[key]
	if !ok {
		e = &policyEntry{}
		h.policies[key] = e
	}
	h.mu.Unlock()
	if ok {
		h.policyHits.Inc()
	}
	e.once.Do(func() {
		h.policyTrains.Inc()
		e.p, e.err = h.trainPolicy(ctx, smp)
	})
	return e.p, e.err
}

// trainPolicy runs paper Algorithm 2 for one context. Both sampling backends
// fan the coarse sweep out on the harness pool: the analytic surface is pure,
// and the simulator backend builds a fresh system per sample whose seed comes
// from the sample's own pre-split RNG stream, keeping the sweep independent
// of worker count and sampling order.
func (h *Harness) trainPolicy(ctx system.Context, smp sampling) (*core.Policy, error) {
	var (
		sampler core.StreamSampler
		batch   core.BatchSampler
	)
	if smp.sim {
		sampler = func(cfg config.Config, rng *sim.RNG) (float64, error) {
			// Draw the system seed before consulting the memo and fold it
			// into the key: a hit and a miss then consume the sample's RNG
			// stream identically, which is what keeps cached and uncached
			// sweeps byte-identical.
			seed := rng.Uint64()
			return h.surf.Do(surfaceKey('p', ctx, seed, smp.settle, smp.measure, cfg), func() (float64, error) {
				sys, err := system.NewSimulated(system.SimulatedOptions{
					Space:          h.space,
					Context:        ctx,
					Seed:           seed,
					SettleSeconds:  smp.settle,
					MeasureSeconds: smp.measure,
				})
				if err != nil {
					return 0, err
				}
				if err := sys.Apply(context.Background(), cfg); err != nil {
					return 0, err
				}
				m, err := sys.Measure(context.Background())
				if err != nil {
					return 0, err
				}
				return m.MeanRT, nil
			})
		}
	} else {
		sampler = func(cfg config.Config, _ *sim.RNG) (float64, error) {
			return h.analyticRT(ctx, cfg)
		}
		// The analytic surface sweeps in batches so one solver's scratch
		// serves each chunk; the stream sampler stays as the reference path.
		batch = func(cfgs []config.Config, _ []*sim.RNG, out []float64) error {
			return h.analyticBatch(ctx, cfgs, out)
		}
	}

	p, err := core.LearnPolicyStream(ctx.Name, h.space, sampler, core.InitOptions{
		CoarseLevels: h.coarseLevels(),
		SLASeconds:   h.opts.Agent.SLASeconds,
		Seed:         h.opts.Seed ^ 0xBEEF,
		Procs:        h.opts.Procs,
		BatchSampler: batch,
		Telemetry:    h.tel,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: learn policy for %s: %w", ctx.Name, err)
	}
	return p, nil
}

// Store builds a policy store covering the given contexts, training them
// concurrently on the harness pool. Policies are published in argument
// order, so Match tie-breaking is reproducible.
func (h *Harness) Store(contexts ...system.Context) (*core.PolicyStore, error) {
	return h.storeSampled(h.optsSampling(), contexts...)
}

// storeSampled is Store with an explicit sampling backend (see
// policySampled).
func (h *Harness) storeSampled(smp sampling, contexts ...system.Context) (*core.PolicyStore, error) {
	policies, err := parallel.Map(h.Parallel(), len(contexts), func(i int) (*core.Policy, error) {
		return h.policySampled(contexts[i], smp)
	})
	if err != nil {
		return nil, err
	}
	store := core.NewPolicyStore()
	for _, p := range policies {
		store.Add(p)
	}
	return store, nil
}

// Phase is one segment of a context schedule.
type Phase struct {
	Context    system.Context
	Iterations int
}

// TunerFactory builds an agent bound to a system.
type TunerFactory func(sys system.System) (core.Tuner, error)

// RunSchedule drives an agent through the context phases on its own
// simulated system, returning one StepResult per iteration. The driver — not
// the agent — applies the context changes, exactly like the paper's testbed
// operator changing traffic or VM allocation.
func (h *Harness) RunSchedule(mk TunerFactory, phases []Phase, salt uint64) ([]core.StepResult, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("bench: empty schedule")
	}
	sys, err := h.newSystem(phases[0].Context, salt)
	if err != nil {
		return nil, err
	}
	tuner, err := mk(sys)
	if err != nil {
		return nil, err
	}
	// Agents with an experience queue apply their last retrain at Close; the
	// deferred close covers error returns, the explicit one below surfaces a
	// deferred learning error instead of dropping it (Close is idempotent).
	if c, ok := tuner.(io.Closer); ok {
		defer c.Close()
	}
	var results []core.StepResult
	for pi, phase := range phases {
		if pi > 0 {
			if err := system.ApplyContext(sys, phase.Context); err != nil {
				return nil, err
			}
		}
		for i := 0; i < phase.Iterations; i++ {
			res, err := tuner.Step(context.Background())
			if err != nil {
				return nil, fmt.Errorf("bench: phase %d iter %d: %w", pi, i, err)
			}
			h.scheduleSteps.Inc()
			results = append(results, res)
		}
	}
	if c, ok := tuner.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// bestGroupedConfig searches the coarse grouped sublattice for the
// configuration with the lowest measured response time in the context — the
// paper's "best configuration (out of our test cases)".
func (h *Harness) bestGroupedConfig(ctx system.Context) (config.Config, float64, error) {
	k := h.coarseLevels()
	groups := config.GroupMembers(h.space)
	order := make([]config.Group, 0, len(groups))
	for _, g := range config.Groups() {
		if len(groups[g]) > 0 {
			order = append(order, g)
		}
	}
	coarse := make(map[config.Group][]int, len(order))
	for _, g := range order {
		vals, err := config.CoarseValues(h.space, g, k)
		if err != nil {
			return nil, 0, err
		}
		coarse[g] = vals
	}

	// Enumerate the sublattice, solve the analytic surface for every point
	// on the worker pool, then reduce with strict less-than in enumeration
	// order — ties keep the earliest candidate under any worker count.
	var cfgs []config.Config
	assign := make(map[config.Group]int, len(order))
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(order) {
			cfg, err := config.GroupedConfig(h.space, assign)
			if err != nil {
				return err
			}
			cfgs = append(cfgs, cfg)
			return nil
		}
		for _, v := range coarse[order[i]] {
			assign[order[i]] = v
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, 0, err
	}
	const chunk = 16
	rts := make([]float64, len(cfgs))
	nChunks := (len(cfgs) + chunk - 1) / chunk
	if err := parallel.ForEach(h.Parallel(), nChunks, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		return h.analyticBatch(ctx, cfgs[lo:hi], rts[lo:hi])
	}); err != nil {
		return nil, 0, err
	}
	best := 0
	for i, rt := range rts {
		if rt < rts[best] {
			best = i
		}
	}
	return cfgs[best], rts[best], nil
}

// contextWith returns a paper context overridden to the given mix or level.
func contextWith(mix tpcw.Mix, level vmenv.Level) system.Context {
	return system.Context{
		Name:     fmt.Sprintf("%s@%s", mix, level.Name),
		Workload: tpcw.Workload{Mix: mix, Clients: system.DefaultClients},
		Level:    level,
	}
}
