package bench

import (
	"context"
	"fmt"

	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/faults"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
)

// FaultRun is one agent variant driven through a fault scenario.
type FaultRun struct {
	// Label names the variant ("resilient" or "baseline").
	Label string
	// Results holds one entry per completed step.
	Results []core.StepResult
	// Injected is the wrapper's fired-fault log for this run.
	Injected []faults.Injection
	// Trace is the run's decision trace: agent steps, injected faults and the
	// resilience layer's retries, rejections and rollbacks interleaved.
	Trace *telemetry.Trace
	// Violations counts intervals that were not served within the SLA: the
	// measured response time exceeded it, the interval was invalid or
	// degraded, or (after an abort) the interval never ran at all.
	Violations int
	// Aborted reports that a step error terminated the run early —
	// what a fault does to an agent with no resilience policy.
	Aborted        bool
	AbortIteration int
	AbortError     string
	// RecoveredAt is the first iteration after the last scheduled fault
	// window with a valid within-SLA measurement (0 = never).
	RecoveredAt int
}

// FaultComparison drives the resilient agent and the non-resilient baseline
// through the same scenario on identically seeded systems.
type FaultComparison struct {
	Scenario   faults.Scenario
	Iterations int
	Resilient  FaultRun
	Baseline   FaultRun
}

// RunFaultScenario runs both agent variants under the scenario. The run is
// sized so recovery after the final scheduled fault window is observable.
func (h *Harness) RunFaultScenario(sc faults.Scenario) (*FaultComparison, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	iters := sc.LastScheduled() + 8
	if min := h.iterations(45); iters < min {
		iters = min
	}
	cmp := &FaultComparison{Scenario: sc, Iterations: iters}
	for _, variant := range []struct {
		label string
		res   core.Resilience
	}{
		{"resilient", core.DefaultResilience()},
		{"baseline", core.Resilience{}},
	} {
		run, err := h.runFaultAgent(sc, variant.label, variant.res, iters)
		if err != nil {
			return nil, err
		}
		if variant.label == "resilient" {
			cmp.Resilient = run
		} else {
			cmp.Baseline = run
		}
	}
	return cmp, nil
}

// runFaultAgent drives one agent variant under the fault wrapper. A step
// error ends the run (recorded, not returned): surviving is exactly what the
// comparison measures.
func (h *Harness) runFaultAgent(sc faults.Scenario, label string, res core.Resilience, iters int) (FaultRun, error) {
	ctx, err := system.ContextByName("context-1")
	if err != nil {
		return FaultRun{}, err
	}
	policy, err := h.Policy(ctx)
	if err != nil {
		return FaultRun{}, err
	}
	base, err := h.newSystem(ctx, 31)
	if err != nil {
		return FaultRun{}, err
	}
	trace := telemetry.NewTrace(4096)
	wrapped, err := faults.New(base, faults.Options{
		Scenario:  sc,
		Seed:      h.opts.Seed,
		Telemetry: h.tel,
		Trace:     trace,
	})
	if err != nil {
		return FaultRun{}, err
	}
	o := h.opts.Agent
	o.Resilience = res
	agent, err := core.NewAgent(wrapped, core.AgentOptions{
		Options:   o,
		Policy:    policy,
		Seed:      h.opts.Seed ^ 0xFA17,
		Telemetry: h.tel,
		Trace:     trace,
	})
	if err != nil {
		return FaultRun{}, err
	}

	run := FaultRun{Label: label, Trace: trace}
	for i := 0; i < iters; i++ {
		sr, err := agent.Step(context.Background())
		if err != nil {
			run.Aborted = true
			run.AbortIteration = i + 1
			run.AbortError = err.Error()
			break
		}
		run.Results = append(run.Results, sr)
	}
	run.Injected = wrapped.Injected()

	sla := o.SLASeconds
	last := sc.LastScheduled()
	for i, sr := range run.Results {
		bad := sr.Invalid || sr.Degraded || sr.MeanRT > sla
		if bad {
			run.Violations++
		} else if run.RecoveredAt == 0 && i+1 > last {
			run.RecoveredAt = i + 1
		}
	}
	// Intervals an aborted run never served violate by definition: the system
	// sat wherever the crash left it, untuned and unmeasured.
	run.Violations += iters - len(run.Results)
	return run, nil
}

// FigFaults renders a fault-recovery figure: response time per iteration for
// the resilient agent and the non-resilient baseline under the same injected
// fault schedule. An aborted run is padded flat at its last observed value so
// the series stay comparable.
func (h *Harness) FigFaults(sc faults.Scenario) (*Figure, error) {
	cmp, err := h.RunFaultScenario(sc)
	if err != nil {
		return nil, err
	}
	name := sc.Name
	if name == "" {
		name = "unnamed"
	}
	fig := &Figure{
		ID:     "fig-faults",
		Title:  fmt.Sprintf("Recovery under injected faults (scenario %q, context-1)", name),
		XLabel: "iteration",
		YLabel: "mean response time (s)",
		X:      seqX(cmp.Iterations),
		Notes: []string{
			fmt.Sprintf("SLA %gs; intervals violating it count against each agent", h.opts.Agent.SLASeconds),
		},
	}
	for _, run := range []FaultRun{cmp.Resilient, cmp.Baseline} {
		values := make([]float64, 0, cmp.Iterations)
		for _, sr := range run.Results {
			values = append(values, sr.MeanRT)
		}
		pad := h.opts.Agent.SLASeconds
		if n := len(values); n > 0 {
			pad = values[n-1]
		}
		for len(values) < cmp.Iterations {
			values = append(values, pad)
		}
		fig.Series = append(fig.Series, Series{Label: run.Label, Values: values})

		note := fmt.Sprintf("%s: %d/%d intervals violating, %d faults injected",
			run.Label, run.Violations, cmp.Iterations, len(run.Injected))
		if run.Aborted {
			note += fmt.Sprintf("; aborted at iteration %d (%s)", run.AbortIteration, run.AbortError)
		} else if run.RecoveredAt > 0 {
			note += fmt.Sprintf("; recovered at iteration %d", run.RecoveredAt)
		}
		fig.Notes = append(fig.Notes, note)
	}
	return fig, nil
}
