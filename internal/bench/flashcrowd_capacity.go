package bench

import (
	"context"
	"fmt"

	"github.com/rac-project/rac/internal/capacity"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/workload"
)

// Calibration for the flash-crowd capacity figure.
const (
	// capacityFigCost prices one VM-level·interval in the agent's reward
	// (core.Options.CapacityCost): high enough that idling at the peak level
	// costs more reward than the paper's typical sub-SLA response-time gains,
	// low enough that scaling up out of saturation always pays for itself.
	capacityFigCost = 0.05
	// capacityFigInitial is the capacity-aware variant's starting ordinal:
	// the middle tier (Level-2), leaving the fast path one step of headroom
	// in each direction.
	capacityFigInitial = 2
)

// capacityAnalyzerConfig is the saturation-analyzer calibration for scenario
// runs. Quick mode compresses the flash crowd to ~5 intervals, so the figure
// uses a two-interval window and one-interval cooldown in every fidelity mode
// — the default three-plus-two calibration would sleep through the compressed
// spike — and full mode simply plays more windows of the same shape.
func (h *Harness) capacityAnalyzerConfig() capacity.Config {
	cfg := capacity.DefaultConfig(h.opts.Agent.SLASeconds)
	cfg.Window = 2
	cfg.Cooldown = 1
	return cfg
}

// capacityProvisionDelay is how many intervals a scale-up takes to come
// online. Quick mode applies scale-ups on the next interval boundary: with
// only ~2 elevated intervals, a one-interval boot would leave the bigger VM
// arriving as the crowd departs.
func (h *Harness) capacityProvisionDelay() int {
	if h.opts.Quick {
		return 0
	}
	return 1
}

// capacityRun is one variant of the flash-crowd capacity comparison:
// per-interval SLO-goodput, p99 response time and the cumulative capacity
// bill, plus the scale activity behind them.
type capacityRun struct {
	Label      string
	Goodput    []float64
	P99        []float64
	Cost       []float64 // cumulative, VM-level·intervals
	ScaleUps   int
	ScaleDowns int
	Violations int
}

// runCapacityVariant drives one variant through the flash-crowd schedule on
// its own identically seeded simulated backend wrapped in the capacity
// decorator.
//
// The adaptive variant is the full joint controller: the RAC agent tunes the
// software knobs while the decorator's fast path scales the VM level from
// saturation verdicts, starting at the mid-tier Level-2. Each applied scale
// reports through OnScale and the driver adopts the policy trained for the
// new level on the next step — the SQLR-style per-level policy memory, so a
// scale-back warm-starts from what that level already learned instead of
// re-exploring.
//
// The baseline is the paper's trial-and-error administrator pinned at the
// static peak (Level-1): provisioned for the crowd the whole run, paying
// vmenv.MaxOrdinal every interval, with the fast path off.
func (h *Harness) runCapacityVariant(sc workload.Scenario, label string, adaptive bool) (capacityRun, error) {
	sched, err := workload.Compile(sc)
	if err != nil {
		return capacityRun{}, err
	}
	seq := workload.NewSequencer(sched, sc.Interval())
	seq.SetTelemetry(h.tel)
	first := seq.At(0)
	smp := scenarioSampling()
	sla := h.opts.Agent.SLASeconds
	inner, err := system.NewSimulated(system.SimulatedOptions{
		Space:          h.space,
		Context:        system.Context{Name: "flashcrowd-start", Workload: first.Workload, Level: vmenv.Level1},
		Seed:           h.opts.Seed*2654435761 + 67,
		SettleSeconds:  smp.settle,
		MeasureSeconds: smp.measure,
		SLOSeconds:     sla,
	})
	if err != nil {
		return capacityRun{}, err
	}

	trace := telemetry.NewTrace(4096)
	initial := vmenv.MaxOrdinal
	if adaptive {
		initial = capacityFigInitial
	}
	// pendingLevel carries an applied scale from the decorator's OnScale hook
	// (which fires mid-Measure, inside the agent's own Step) out to the drive
	// loop, which adopts the per-level policy between steps — never while the
	// agent is mid-iteration.
	var pendingLevel int
	opts := capacity.Options{
		Initial:        initial,
		ProvisionDelay: h.capacityProvisionDelay(),
		Analyzer:       h.capacityAnalyzerConfig(),
		FastPath:       adaptive,
		Trace:          trace,
	}
	if adaptive {
		opts.OnScale = func(_, newOrdinal int) { pendingLevel = newOrdinal }
	}
	sys, err := capacity.Wrap(inner, opts)
	if err != nil {
		return capacityRun{}, err
	}

	levelPolicy := func(ordinal int) (*core.Policy, error) {
		lvl, err := vmenv.ByOrdinal(ordinal)
		if err != nil {
			return nil, err
		}
		return h.policySampled(contextWith(tpcw.Shopping, lvl), scenarioSampling())
	}

	o := h.opts.Agent
	// Both variants price capacity identically, so their rewards stay
	// comparable: the baseline's reward carries the peak-level bill it never
	// stops paying.
	o.CapacityCost = capacityFigCost
	var (
		tuner core.Tuner
		agent *core.Agent
	)
	if adaptive {
		policy, err := levelPolicy(initial)
		if err != nil {
			return capacityRun{}, err
		}
		rec, err := policy.Recommend()
		if err != nil {
			return capacityRun{}, err
		}
		if err := sys.Apply(context.Background(), rec); err != nil {
			return capacityRun{}, fmt.Errorf("bench: apply recommended config: %w", err)
		}
		// Same resilience stance as the other scenario benches: outlier
		// rejection off (a load shift is not a bad measurement) and
		// exploration dialed down (see runScenarioAgent).
		o.Resilience = core.DefaultResilience()
		o.Resilience.OutlierFactor = 0
		o.Online.Epsilon = 0.02
		agent, err = core.NewAgent(sys, core.AgentOptions{
			Options:   o,
			Policy:    policy,
			Seed:      h.opts.Seed*0x9E3779B97F4A7C15 ^ 0xCAB,
			Telemetry: h.tel,
			Trace:     trace,
		})
		if err != nil {
			return capacityRun{}, err
		}
		tuner = agent
	} else {
		tuner, err = core.NewTrialAndErrorAgent(sys, o)
		if err != nil {
			return capacityRun{}, err
		}
	}

	run := capacityRun{Label: label}
	for i := 0; i < seq.Len(); i++ {
		iv := seq.Observe(i)
		if err := sys.SetWorkload(iv.Workload); err != nil {
			return capacityRun{}, fmt.Errorf("bench: interval %d workload: %w", i, err)
		}
		trace.Add(telemetry.Event{
			Kind:        telemetry.KindWorkload,
			Iteration:   i + 1,
			OfferedRate: iv.OfferedRate,
			Detail:      iv.PhaseName,
		})
		sr, err := tuner.Step(context.Background())
		if err != nil {
			return capacityRun{}, fmt.Errorf("bench: interval %d step: %w", i, err)
		}
		if agent != nil && pendingLevel != 0 {
			p, err := levelPolicy(pendingLevel)
			if err != nil {
				return capacityRun{}, err
			}
			agent.ForcePolicy(p)
			pendingLevel = 0
		}
		run.Goodput = append(run.Goodput, sr.Goodput)
		run.P99 = append(run.P99, sr.P99RT)
		run.Cost = append(run.Cost, float64(sys.TotalCost()))
		if sr.Invalid || sr.Degraded || sr.MeanRT > sla {
			run.Violations++
		}
	}
	run.ScaleUps = sys.ScaleUps()
	run.ScaleDowns = sys.ScaleDowns()
	return run, nil
}

// FigFlashcrowdCapacity is the capacity-control figure (beyond the paper):
// the flash-crowd scenario driven twice through the capacity decorator — the
// joint configuration+capacity controller starting at mid-tier Level-2, and
// the trial-and-error administrator statically provisioned at the Level-1
// peak — comparing SLO-goodput, p99 response time and the cumulative
// capacity bill interval by interval. The claim: riding the saturation
// analyzer up for the spike and back down after costs less than owning the
// peak, without giving up goodput or tail latency.
func (h *Harness) FigFlashcrowdCapacity() (*Figure, error) {
	sc := h.scenarioFor(workload.FlashCrowd())
	capAware, err := h.runCapacityVariant(sc, "capacity-aware", true)
	if err != nil {
		return nil, err
	}
	baseline, err := h.runCapacityVariant(sc, "static-peak", false)
	if err != nil {
		return nil, err
	}

	n := len(capAware.Goodput)
	fig := &Figure{
		ID:     "flashcrowd-capacity",
		Title:  "Joint configuration + elastic capacity control under a flash crowd (scenario \"flashcrowd\")",
		XLabel: "measurement interval",
		YLabel: fmt.Sprintf("goodput (completions ≤ %gs SLA, req/s) / p99 (s) / cumulative capacity cost (VM-level·intervals)", h.opts.Agent.SLASeconds),
		X:      seqX(n),
		Series: []Series{
			{Label: "capacity-aware/goodput", Values: capAware.Goodput},
			{Label: "static-peak/goodput", Values: baseline.Goodput},
			{Label: "capacity-aware/p99", Values: capAware.P99},
			{Label: "static-peak/p99", Values: baseline.P99},
			{Label: "capacity-aware/cost", Values: capAware.Cost},
			{Label: "static-peak/cost", Values: baseline.Cost},
		},
		Notes: []string{
			fmt.Sprintf("capacity-aware: RAC agent + fast scale path from ordinal %d, analyzer window=%d cooldown=%d, provision delay %d interval(s), reward capacity price %g/level·interval",
				capacityFigInitial, h.capacityAnalyzerConfig().Window, h.capacityAnalyzerConfig().Cooldown, h.capacityProvisionDelay(), capacityFigCost),
			fmt.Sprintf("static-peak: trial-and-error tuner pinned at Level-1 (ordinal %d) for the whole run", vmenv.MaxOrdinal),
			fmt.Sprintf("capacity-aware scale-ups=%d scale-downs=%d; total cost %.0f vs static peak %.0f",
				capAware.ScaleUps, capAware.ScaleDowns, capAware.Cost[n-1], baseline.Cost[n-1]),
			fmt.Sprintf("SLA violations: capacity-aware %d/%d, static-peak %d/%d",
				capAware.Violations, n, baseline.Violations, n),
		},
	}
	return fig, nil
}
