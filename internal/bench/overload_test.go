package bench

import (
	"reflect"
	"testing"

	"github.com/rac-project/rac/internal/webtier"
	"github.com/rac-project/rac/internal/workload"
)

// overloadSpikeIntervals returns the indices of measurement intervals whose
// offered load is visibly elevated — the flash-crowd windows past the
// capacity knee — for the harness-scaled overload scenario.
func overloadSpikeIntervals(t *testing.T, h *Harness) []int {
	t.Helper()
	sc := h.scenarioFor(workload.Overload())
	sched, err := workload.Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	seq := workload.NewSequencer(sched, sc.Interval())
	base := seq.At(0).OfferedRate
	var spikes []int
	for i := 0; i < seq.Len(); i++ {
		if seq.At(i).OfferedRate > 1.5*base {
			spikes = append(spikes, i)
		}
	}
	if len(spikes) == 0 {
		t.Fatal("overload scenario has no elevated intervals")
	}
	return spikes
}

// TestFigOverloadGateHoldsGoodput is the figure's acceptance claim: past the
// capacity knee the gated system's SLO-goodput is at least the ungated
// system's, and its p99 stays bounded where the ungated p99 runs away to the
// browser-timeout ceiling.
func TestFigOverloadGateHoldsGoodput(t *testing.T) {
	h := quickHarness(1)
	sc := h.scenarioFor(workload.Overload())

	ungatedParams := webtier.DefaultParams()
	gatedParams := webtier.DefaultParams()
	gatedParams.AdmitConcurrency = overloadAdmitConcurrency
	gatedParams.AdmitQueue = overloadAdmitQueue

	ungated, err := h.runOverloadVariant(sc, "ungated", ungatedParams, 0)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := h.runOverloadVariant(sc, "gated", gatedParams, overloadAdmitEpoch)
	if err != nil {
		t.Fatal(err)
	}

	var rejected int
	for _, r := range gated.Rejected {
		rejected += r
	}
	if rejected == 0 {
		t.Fatal("gated run rejected nothing under flash-crowd overload")
	}
	for _, i := range overloadSpikeIntervals(t, h) {
		if gated.Goodput[i] < ungated.Goodput[i] {
			t.Errorf("interval %d: gated goodput %.1f < ungated %.1f",
				i, gated.Goodput[i], ungated.Goodput[i])
		}
		if gated.P99[i] >= ungated.P99[i]/2 {
			t.Errorf("interval %d: gated p99 %.2fs not bounded vs ungated %.2fs",
				i, gated.P99[i], ungated.P99[i])
		}
	}
}

// TestFigOverloadDeterminism pins byte-identity of the figure across repeated
// runs and across -procs settings: the epoch loop ticks on request counts,
// and the models are driven from a single goroutine, so the worker-pool bound
// must be invisible in the output.
func TestFigOverloadDeterminism(t *testing.T) {
	run := func(procs int) *Figure {
		h := New(Options{Seed: 1, Quick: true, Procs: procs})
		fig, err := h.FigOverload()
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	base := run(1)
	for _, procs := range []int{1, 8} {
		if got := run(procs); !reflect.DeepEqual(got, base) {
			t.Fatalf("procs=%d diverged:\n%+v\nvs\n%+v", procs, got, base)
		}
	}
}
