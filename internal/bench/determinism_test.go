package bench

import (
	"bytes"
	"testing"

	"github.com/rac-project/rac/internal/system"
)

// storeBytes trains a store over the contexts at the given worker count and
// returns each policy serialized in context order.
func storeBytes(t *testing.T, seed uint64, procs int, simSampling bool, contexts []system.Context) [][]byte {
	t.Helper()
	h := New(Options{Seed: seed, Quick: true, SimSampling: simSampling, Procs: procs})
	store, err := h.Store(contexts...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(contexts))
	for i, ctx := range contexts {
		p := store.ByName(ctx.Name)
		if p == nil {
			t.Fatalf("store lacks %s", ctx.Name)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// TestStoreDeterministicAcrossProcs is the determinism contract's regression
// test: every unit of work gets an RNG stream split before dispatch, so the
// trained policies must be byte-identical whether one goroutine does all the
// sampling or eight race through it.
func TestStoreDeterministicAcrossProcs(t *testing.T) {
	contexts := make([]system.Context, 0, 2)
	for _, name := range []string{"context-1", "context-3"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			t.Fatal(err)
		}
		contexts = append(contexts, ctx)
	}

	seq := storeBytes(t, 11, 1, false, contexts)
	par := storeBytes(t, 11, 8, false, contexts)
	for i, ctx := range contexts {
		if !bytes.Equal(seq[i], par[i]) {
			t.Errorf("analytic policy for %s differs between Procs=1 and Procs=8", ctx.Name)
		}
	}
}

// TestStoreDeterministicSimSampling repeats the contract check on the
// simulator-sampling path, where every coarse measurement actually consumes
// randomness from its pre-split stream.
func TestStoreDeterministicSimSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sampling is slow")
	}
	ctx, err := system.ContextByName("context-2")
	if err != nil {
		t.Fatal(err)
	}
	contexts := []system.Context{ctx}
	seq := storeBytes(t, 12, 1, true, contexts)
	par := storeBytes(t, 12, 8, true, contexts)
	if !bytes.Equal(seq[0], par[0]) {
		t.Error("sim-sampled policy differs between Procs=1 and Procs=8")
	}
}

// TestFigureDeterministicAcrossProcs renders one full figure at both worker
// counts and asserts byte-identical output: seed averaging, the grouped
// sweep, and policy training all reduce in index order.
func TestFigureDeterministicAcrossProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	render := func(procs int) []byte {
		h := New(Options{Seed: 13, Quick: true, Procs: procs})
		fig, err := h.Fig04()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("fig4 differs between Procs=1 and Procs=8:\n--- procs=1\n%s\n--- procs=8\n%s", seq, par)
	}
}
