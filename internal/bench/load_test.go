package bench

import "testing"

func TestFigLoadQuick(t *testing.T) {
	fig, err := quickHarness(3).FigLoad()
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "load" {
		t.Fatalf("id %q", fig.ID)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series, want completed+shed", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Values) != len(fig.X) {
			t.Fatalf("series %s has %d values for %d rates", s.Label, len(s.Values), len(fig.X))
		}
	}
	if fig.Series[0].Values[0] <= 0 {
		t.Fatalf("no completed throughput at the lowest offered rate: %+v", fig.Series[0])
	}
}
