package bench

import (
	"fmt"

	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
	"github.com/rac-project/rac/internal/workload"
)

// Admission-gate caps for the gated variant of the overload figure: sized to
// the web tier's Table 1 defaults (MaxClients 150), with the epoch-adaptive
// loop steering the effective capacity between exploit and spread from its
// own rejection rate.
const (
	overloadAdmitConcurrency = 40
	overloadAdmitQueue       = 20
	overloadAdmitEpoch       = 1000
)

// overloadRun is one variant of the overload comparison: per-interval
// SLO-goodput (completions within the SLA per second — rejections, timeouts
// and over-SLA completions never count) and p99 response time, plus the
// interval rejection counts. A jammed system can post a high raw throughput
// of 30-second responses; goodput is the number it cannot fake.
type overloadRun struct {
	Label    string
	Goodput  []float64
	P99      []float64
	Rejected []int
	Timeouts []int
}

// runOverloadVariant drives one webtier model through the scenario's
// intervals: apply the interval's population, settle, measure. The model is
// driven directly (no agent, no goroutines), so the series is a pure function
// of the seed — byte-identical at any -procs and across repeated runs.
func (h *Harness) runOverloadVariant(sc workload.Scenario, label string, params webtier.Params, epoch int) (overloadRun, error) {
	sched, err := workload.Compile(sc)
	if err != nil {
		return overloadRun{}, err
	}
	seq := workload.NewSequencer(sched, sc.Interval())
	first := seq.At(0)
	m, err := webtier.New(webtier.Options{
		Params:     &params,
		Workload:   first.Workload,
		AppLevel:   vmenv.Level1,
		Seed:       h.opts.Seed*2654435761 + 61,
		AdmitEpoch: epoch,
		SLOSeconds: h.opts.Agent.SLASeconds,
	})
	if err != nil {
		return overloadRun{}, err
	}
	smp := scenarioSampling()
	run := overloadRun{Label: label}
	for i := 0; i < seq.Len(); i++ {
		iv := seq.At(i)
		if err := m.SetWorkload(iv.Workload); err != nil {
			return overloadRun{}, fmt.Errorf("bench: overload interval %d: %w", i, err)
		}
		m.Warmup(smp.settle)
		st, err := m.Run(smp.measure)
		if err != nil {
			return overloadRun{}, fmt.Errorf("bench: overload interval %d: %w", i, err)
		}
		goodput := 0.0
		if st.Interval > 0 {
			goodput = float64(st.GoodCompleted) / st.Interval
		}
		run.Goodput = append(run.Goodput, goodput)
		run.P99 = append(run.P99, st.P99RT)
		run.Rejected = append(run.Rejected, st.Rejected)
		run.Timeouts = append(run.Timeouts, st.Timeouts)
	}
	return run, nil
}

// FigOverload is the admission-gate figure (beyond the paper): the webtier
// model driven through the overload scenario twice — once with Table 1
// defaults (ungated), once with the SLO admission gate and its epoch-adaptive
// loop — comparing goodput and p99 response time interval by interval. Past
// the capacity knee the ungated system jams (goodput collapses, p99 runs
// away); the gated one sheds the excess with fast 503s and keeps serving.
func (h *Harness) FigOverload() (*Figure, error) {
	sc := h.scenarioFor(workload.Overload())

	ungatedParams := webtier.DefaultParams()
	gatedParams := webtier.DefaultParams()
	gatedParams.AdmitConcurrency = overloadAdmitConcurrency
	gatedParams.AdmitQueue = overloadAdmitQueue

	ungated, err := h.runOverloadVariant(sc, "ungated", ungatedParams, 0)
	if err != nil {
		return nil, err
	}
	gated, err := h.runOverloadVariant(sc, "gated", gatedParams, overloadAdmitEpoch)
	if err != nil {
		return nil, err
	}

	var totalRej int
	for _, r := range gated.Rejected {
		totalRej += r
	}
	fig := &Figure{
		ID:     "overload",
		Title:  "SLO admission gate under flash-crowd overload (scenario \"overload\", Level-1)",
		XLabel: "measurement interval",
		YLabel: fmt.Sprintf("goodput (completions ≤ %gs SLA, req/s) / p99 response time (s)", h.opts.Agent.SLASeconds),
		X:      seqX(len(ungated.Goodput)),
		Series: []Series{
			{Label: "gated/goodput", Values: gated.Goodput},
			{Label: "ungated/goodput", Values: ungated.Goodput},
			{Label: "gated/p99", Values: gated.P99},
			{Label: "ungated/p99", Values: ungated.P99},
		},
		Notes: []string{
			fmt.Sprintf("gate: AdmitConcurrency=%d AdmitQueue=%d, epoch-adaptive every %d requests",
				overloadAdmitConcurrency, overloadAdmitQueue, overloadAdmitEpoch),
			fmt.Sprintf("gated rejections across the run: %d (rejected != error != shed)", totalRej),
			fmt.Sprintf("gated timeouts: %v  ungated timeouts: %v", gated.Timeouts, ungated.Timeouts),
		},
	}
	return fig, nil
}
