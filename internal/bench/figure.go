package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Series is one labeled line (or bar group) of a figure.
type Series struct {
	Label  string
	Values []float64
}

// Figure is a reproduced experiment result: the series the paper plots, plus
// the harness's notes on what was measured.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Notes  []string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for i := range f.X {
		row := []string{formatNum(f.X[i])}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.3f", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// WriteCSV writes the figure as CSV with an x column and one column per
// series.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range f.X {
		row := []string{formatNum(f.X[i])}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, strconv.FormatFloat(s.Values[i], 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatNum(x float64) string {
	if x == float64(int64(x)) {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 4, 64)
}

// seqX returns 1..n as float64 (iteration axes).
func seqX(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

// meanOf returns the arithmetic mean of xs (0 for empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
