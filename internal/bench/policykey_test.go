package bench

import (
	"testing"

	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
)

// TestPolicyKeyDistinguishesOptions is the collision regression for the
// policy singleflight: every option a training depends on must show in the
// key, or two harness configurations could silently share a policy trained
// at the wrong fidelity. Each variant below differs from the base in exactly
// one input and must produce a distinct key.
func TestPolicyKeyDistinguishesOptions(t *testing.T) {
	ctx1, err := system.ContextByName("context-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := system.ContextByName("context-2")
	if err != nil {
		t.Fatal(err)
	}

	base := Options{Seed: 7, Quick: true}
	variants := map[string]struct {
		opts Options
		ctx  system.Context
		smp  func(h *Harness) sampling
	}{
		"context": {opts: base, ctx: ctx2},
		"seed":    {opts: Options{Seed: 8, Quick: true}, ctx: ctx1},
		"quick":   {opts: Options{Seed: 7}, ctx: ctx1},
		"nocache": {opts: Options{Seed: 7, Quick: true, NoCache: true}, ctx: ctx1},
		"sla": {opts: func() Options {
			o := Options{Seed: 7, Quick: true}
			o.Agent = core.DefaultOptions()
			o.Agent.SLASeconds = 3.5
			return o
		}(), ctx: ctx1},
		"sim-backend": {opts: base, ctx: ctx1, smp: func(h *Harness) sampling {
			return h.simSampling()
		}},
		"sim-windows": {opts: base, ctx: ctx1, smp: func(*Harness) sampling {
			return sampling{sim: true, settle: 5, measure: 20}
		}},
	}

	baseKey := New(base).policyKey(ctx1, analyticSampling)
	seen := map[string]string{"base": baseKey}
	for name, v := range variants {
		h := New(v.opts)
		smp := analyticSampling
		if v.smp != nil {
			smp = v.smp(h)
		}
		key := h.policyKey(v.ctx, smp)
		for other, k := range seen {
			if key == k {
				t.Errorf("variant %q collides with %q: key %q", name, other, key)
			}
		}
		seen[name] = key
	}
}
