package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
)

func quickHarness(seed uint64) *Harness {
	return New(Options{Seed: seed, Quick: true})
}

func TestFigureIDsCoverPaper(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 10 {
		t.Fatalf("%d figures, want 10", len(ids))
	}
	gens := quickHarness(1).Figures()
	for _, id := range ids {
		if gens[id] == nil {
			t.Errorf("no generator for %s", id)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig := &Figure{
		ID:     "figX",
		Title:  "test figure",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{1, 2},
		Series: []Series{
			{Label: "a", Values: []float64{0.5, 1.5}},
			{Label: "b", Values: []float64{2.5}},
		},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "test figure", "a note", "0.500", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("CSV header %q", lines[0])
	}
	// Missing values render as empty cells.
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("short series not padded: %q", lines[2])
	}
}

func TestPolicyCaching(t *testing.T) {
	h := quickHarness(2)
	ctx, err := system.ContextByName("context-1")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := h.Policy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.Policy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("policy not cached")
	}
	store, err := h.Store(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 || store.ByName("context-1") != p1 {
		t.Fatal("store does not reuse cached policy")
	}
}

func TestRunScheduleDrivesAgents(t *testing.T) {
	h := quickHarness(3)
	ctx1, _ := system.ContextByName("context-1")
	ctx2, _ := system.ContextByName("context-2")
	phases := []Phase{
		{Context: ctx1, Iterations: 2},
		{Context: ctx2, Iterations: 2},
	}
	mk := func(sys system.System) (core.Tuner, error) {
		return core.NewStaticAgent(sys, core.DefaultOptions())
	}
	results, err := h.RunSchedule(mk, phases, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Iteration != i+1 || r.MeanRT <= 0 {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if _, err := h.RunSchedule(mk, nil, 1); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestFig04QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	fig, err := quickHarness(4).Fig04()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig4 has %d series", len(fig.Series))
	}
	if len(fig.X) != 12 {
		t.Fatalf("fig4 sweeps %d points, want 12 MaxClients levels", len(fig.X))
	}
	for _, s := range fig.Series {
		if len(s.Values) != len(fig.X) {
			t.Fatalf("series %s has %d values", s.Label, len(s.Values))
		}
		for i, v := range s.Values {
			if s.Label == "measured" && v <= 0 {
				t.Fatalf("non-positive measurement at %d", i)
			}
		}
	}
	// The regression must be a reasonable fit: within 3x of the measured
	// range everywhere (it is a degree-2 fit of a noisy curve).
	for i := range fig.X {
		m, f := fig.Series[0].Values[i], fig.Series[1].Values[i]
		if f > m*5+1 || m > f*5+1 {
			t.Fatalf("fit far from data at x=%v: measured %v fitted %v", fig.X[i], m, f)
		}
	}
}

func TestFig06QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	fig, err := quickHarness(5).Fig06()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig6 has %d series", len(fig.Series))
	}
	labels := fig.Series[0].Label + fig.Series[1].Label
	if !strings.Contains(labels, "with-online-learning") ||
		!strings.Contains(labels, "without-online-learning") {
		t.Fatalf("fig6 labels: %v", labels)
	}
	for _, s := range fig.Series {
		for _, v := range s.Values {
			if v <= 0 {
				t.Fatalf("non-positive RT in %s", s.Label)
			}
		}
	}
}
