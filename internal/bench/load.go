package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/loadgen"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// FigLoad is the data-plane throughput/scaling figure (no paper counterpart,
// so it is not in FigureIDs): the open-loop engine offers increasing load to
// a fresh live stack and the figure reports, per offered rate, the completed
// throughput and the rate shed by admission control. A closed-loop driver
// cannot produce this curve — its offered load collapses to whatever the
// system completes — which is exactly the coordinated-omission blind spot the
// open loop removes. Unlike the simulator figures this drives real HTTP over
// wall clock, so it lives behind `racbench -fig load`.
func (h *Harness) FigLoad() (*Figure, error) {
	rates := []float64{5, 10, 20, 40, 80}
	interval := 2 * time.Second
	if h.opts.Quick {
		rates = []float64{5, 20}
		interval = 500 * time.Millisecond
	}

	fig := &Figure{
		ID:     "load",
		Title:  "Open-loop offered load vs completed and shed throughput (live stack, Level-2)",
		XLabel: "offered load (req/s)",
		YLabel: "throughput (req/s)",
		X:      rates,
	}
	completed := Series{Label: "completed"}
	shed := Series{Label: "shed"}

	for i, rate := range rates {
		srv, err := httpd.NewServer(webtier.DefaultParams(), vmenv.Level2)
		if err != nil {
			return nil, err
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		driver, err := loadgen.New(loadgen.Options{
			BaseURL:     "http://" + addr,
			Workload:    tpcw.Workload{Mix: tpcw.Shopping, Clients: 1},
			Seed:        h.opts.Seed ^ (0x10AD + uint64(i)),
			Rate:        rate,
			Shards:      8,
			MaxInFlight: 128,
		})
		if err == nil {
			var res loadgen.Result
			res, err = driver.Run(context.Background(), interval)
			if err == nil {
				completed.Values = append(completed.Values, res.Throughput)
				paperSeconds := interval.Seconds() * httpd.TimeScale
				shed.Values = append(shed.Values, float64(res.Shed)/paperSeconds)
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		serr := srv.Shutdown(sctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("bench: load rate %.0f: %w", rate, err)
		}
		if serr != nil {
			return nil, fmt.Errorf("bench: load rate %.0f shutdown: %w", rate, serr)
		}
	}
	fig.Series = []Series{completed, shed}
	fig.Notes = append(fig.Notes,
		"open-loop engine: Poisson arrivals, 8 shards, 128 in-flight bound",
		fmt.Sprintf("wall-clock interval %v per point (x%g time scale)", interval, float64(httpd.TimeScale)))
	return fig, nil
}
