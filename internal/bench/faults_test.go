package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/faults"
	"github.com/rac-project/rac/internal/telemetry"
)

func loadBasicScenario(t *testing.T) faults.Scenario {
	t.Helper()
	sc, err := faults.LoadFile("../../examples/faults_basic.json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestFaultRecoveryAcceptance is the PR's acceptance criterion: under the
// shipped scenario the resilient agent serves within the SLA in at least
// twice as many intervals as the non-resilient baseline, and both the faults
// and the recovery actions are observable.
func TestFaultRecoveryAcceptance(t *testing.T) {
	sc := loadBasicScenario(t)
	h := New(Options{Seed: 5, Quick: true})
	cmp, err := h.RunFaultScenario(sc)
	if err != nil {
		t.Fatal(err)
	}

	if cmp.Resilient.Aborted {
		t.Fatalf("resilient agent aborted at iteration %d: %s",
			cmp.Resilient.AbortIteration, cmp.Resilient.AbortError)
	}
	if len(cmp.Resilient.Injected) == 0 {
		t.Fatal("scenario injected nothing into the resilient run")
	}
	if cmp.Resilient.Violations*2 > cmp.Baseline.Violations {
		t.Fatalf("resilient agent violated %d/%d intervals, baseline %d/%d — want at most half",
			cmp.Resilient.Violations, cmp.Iterations, cmp.Baseline.Violations, cmp.Iterations)
	}
	if cmp.Resilient.RecoveredAt == 0 {
		t.Fatal("resilient agent never recovered within the SLA after the last fault window")
	}

	// Injected faults land in the harness telemetry...
	injected := int64(0)
	for _, c := range h.Telemetry().Snapshot().Counters {
		if c.Name == "faults_injected_total" {
			injected += c.Value
		}
	}
	if injected == 0 {
		t.Fatal("faults_injected_total missing from harness telemetry")
	}
	// ...and both faults and recovery actions in the decision trace.
	kinds := map[telemetry.EventKind]int{}
	for _, ev := range cmp.Resilient.Trace.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.KindFault] == 0 {
		t.Fatalf("no fault events in the resilient trace: %v", kinds)
	}
	recovery := kinds[telemetry.KindRetry] + kinds[telemetry.KindRollback] + kinds[telemetry.KindInvalid]
	if recovery == 0 {
		t.Fatalf("no recovery actions in the resilient trace: %v", kinds)
	}
}

// TestFaultRecoveryDeterministic pins the replay contract: the same seed and
// scenario reproduce both runs exactly.
func TestFaultRecoveryDeterministic(t *testing.T) {
	sc := loadBasicScenario(t)
	run := func() *FaultComparison {
		cmp, err := New(Options{Seed: 5, Quick: true}).RunFaultScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	a, b := run(), run()
	if !reflect.DeepEqual(rtSeries(a.Resilient.Results), rtSeries(b.Resilient.Results)) {
		t.Fatal("resilient run not reproducible")
	}
	if !reflect.DeepEqual(a.Resilient.Injected, b.Resilient.Injected) {
		t.Fatal("fault injections not reproducible")
	}
	if a.Baseline.Violations != b.Baseline.Violations || a.Resilient.Violations != b.Resilient.Violations {
		t.Fatal("violation counts not reproducible")
	}
}

func TestFigFaultsRenders(t *testing.T) {
	sc := loadBasicScenario(t)
	h := New(Options{Seed: 5, Quick: true})
	fig, err := h.FigFaults(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Values) != len(fig.X) {
			t.Fatalf("series %s has %d values for %d x points", s.Label, len(s.Values), len(fig.X))
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resilient") || !strings.Contains(buf.String(), "baseline") {
		t.Fatal("rendered figure missing the variant series")
	}
}
