package bench

import (
	"context"
	"fmt"

	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/workload"
)

// ScenarioRun is one agent variant driven through a workload scenario.
type ScenarioRun struct {
	// Label names the variant ("rac-adaptive" or "static-default").
	Label string
	// Results holds one entry per measurement interval.
	Results []core.StepResult
	// Trace interleaves the run's per-interval workload events with the
	// agent's decisions, so load drift lines up with switches and rollbacks.
	Trace *telemetry.Trace
	// Violations counts intervals not served within the SLA (measured over
	// it, invalid, or degraded).
	Violations int
}

// ScenarioComparison drives the resilient adaptive agent and the
// static-default baseline through the same workload scenario on identically
// seeded systems.
type ScenarioComparison struct {
	Scenario  workload.Scenario
	Intervals []workload.Interval
	Adaptive  ScenarioRun
	Static    ScenarioRun
}

// scenarioFor returns the scenario sized to the harness fidelity: quick mode
// compresses every duration 3× (fewer intervals, same shape), mirroring
// iterations().
func (h *Harness) scenarioFor(sc workload.Scenario) workload.Scenario {
	if h.opts.Quick {
		return sc.Scale(1.0 / 3.0)
	}
	return sc
}

// RunWorkloadScenario runs both agent variants across the scenario on the
// simulated backend at Level-1. The driver walks the compiled schedule one
// measurement interval at a time, applying each interval's workload before
// the agent steps — the paper's operator changing traffic, scripted.
func (h *Harness) RunWorkloadScenario(sc workload.Scenario) (*ScenarioComparison, error) {
	sc = h.scenarioFor(sc)
	sched, err := workload.Compile(sc)
	if err != nil {
		return nil, err
	}
	probe := workload.NewSequencer(sched, sc.Interval())
	cmp := &ScenarioComparison{Scenario: sc}
	for i := 0; i < probe.Len(); i++ {
		cmp.Intervals = append(cmp.Intervals, probe.At(i))
	}

	for _, variant := range []struct {
		label    string
		adaptive bool
	}{
		{"rac-adaptive", true},
		{"static-default", false},
	} {
		run, err := h.runScenarioAgent(sched, sc.Interval(), variant.label, variant.adaptive)
		if err != nil {
			return nil, err
		}
		if variant.adaptive {
			cmp.Adaptive = run
		} else {
			cmp.Static = run
		}
	}
	return cmp, nil
}

// scenarioSampling returns the measurement windows scenario runs use in
// every fidelity mode, as a policy-training backend. Under a nonstationary
// schedule a long window averages across drift, so reconfiguration decisions
// are made from short windows; the full-mode scenario keeps the same windows
// and plays more intervals instead. The warm-start policies sample the
// simulator over the same windows, so Algorithm 2 ranks configurations in
// the regime the agent will actually measure.
func scenarioSampling() sampling {
	return sampling{sim: true, settle: 15, measure: 60}
}

// runScenarioAgent drives one variant across the schedule on its own
// sequencer and identically seeded system.
func (h *Harness) runScenarioAgent(sched *workload.Schedule, interval float64, label string, adaptive bool) (ScenarioRun, error) {
	seq := workload.NewSequencer(sched, interval)
	seq.SetTelemetry(h.tel)
	level := vmenv.Level1
	first := seq.At(0)
	smp := scenarioSampling()
	sys, err := system.NewSimulated(system.SimulatedOptions{
		Space:          h.space,
		Context:        system.Context{Name: "scenario-start", Workload: first.Workload, Level: level},
		Seed:           h.opts.Seed*2654435761 + 47,
		SettleSeconds:  smp.settle,
		MeasureSeconds: smp.measure,
	})
	if err != nil {
		return ScenarioRun{}, err
	}

	trace := telemetry.NewTrace(4096)
	var tuner core.Tuner
	if adaptive {
		// A store over all three mixes at the scenario's level, so mix drift
		// can trip the paper's context-change detection and switch policies.
		// Scenario warm starts always sim-sample (paper Algorithm 2 coarsely
		// samples the system the agent will tune, and the schedule replays on
		// the simulator): near the capacity knee the analytic surface ranks
		// configurations by their steady-state queueing behavior, not by how
		// fast they drain the backlog a load shift leaves behind, and an
		// agent seeded with the wrong ranking spends the first plateau
		// intervals unlearning it one reconfiguration at a time.
		store, err := h.storeSampled(scenarioSampling(),
			contextWith(tpcw.Browsing, level),
			contextWith(tpcw.Shopping, level),
			contextWith(tpcw.Ordering, level),
		)
		if err != nil {
			return ScenarioRun{}, err
		}
		policy, err := h.policySampled(contextWith(first.Workload.Mix, level), scenarioSampling())
		if err != nil {
			return ScenarioRun{}, err
		}
		// Start from the policy's recommended configuration (the paper's
		// deployment: Algorithm 2 hands the operator a good initial
		// configuration, and online learning refines it). Starting at the
		// vendor default instead would cost one reconfiguration per interval
		// to walk out of it — several SLA-violating intervals once the
		// daytime plateau arrives.
		rec, err := policy.Recommend()
		if err != nil {
			return ScenarioRun{}, err
		}
		if err := sys.Apply(context.Background(), rec); err != nil {
			return ScenarioRun{}, fmt.Errorf("bench: apply recommended config: %w", err)
		}
		o := h.opts.Agent
		o.Resilience = core.DefaultResilience()
		// Outlier rejection assumes a stationary workload: under a scenario
		// schedule a 6× response-time jump is the load shifting, not a bad
		// measurement, and rejecting it would blind the agent through every
		// phase transition. The other guards (retry, degraded-interval
		// rejection, rollback) stay on.
		o.Resilience.OutlierFactor = 0
		// Exploration is also dialed down: under stationary load a stray
		// ε-step costs one interval, but here a step taken just before a load
		// shift is learned under the old context's uniformly high rewards and
		// can anchor the agent in a region the plateau then punishes for
		// several intervals.
		o.Online.Epsilon = 0.02
		tuner, err = core.NewAgent(sys, core.AgentOptions{
			Options:   o,
			Policy:    policy,
			Store:     store,
			Seed:      h.opts.Seed*0x9E3779B97F4A7C15 ^ 0xD1A7,
			Telemetry: h.tel,
			Trace:     trace,
		})
		if err != nil {
			return ScenarioRun{}, err
		}
	} else {
		tuner, err = core.NewStaticAgent(sys, h.opts.Agent)
		if err != nil {
			return ScenarioRun{}, err
		}
	}

	run := ScenarioRun{Label: label, Trace: trace}
	sla := h.opts.Agent.SLASeconds
	for i := 0; i < seq.Len(); i++ {
		iv := seq.Observe(i)
		if err := sys.SetWorkload(iv.Workload); err != nil {
			return ScenarioRun{}, fmt.Errorf("bench: interval %d workload: %w", i, err)
		}
		trace.Add(telemetry.Event{
			Kind:        telemetry.KindWorkload,
			Iteration:   i + 1,
			OfferedRate: iv.OfferedRate,
			Detail:      iv.PhaseName,
		})
		sr, err := tuner.Step(context.Background())
		if err != nil {
			return ScenarioRun{}, fmt.Errorf("bench: interval %d step: %w", i, err)
		}
		run.Results = append(run.Results, sr)
		if sr.Invalid || sr.Degraded || sr.MeanRT > sla {
			run.Violations++
		}
	}
	return run, nil
}

// FigWorkload renders a scenario-adaptation figure: per-interval response
// time for the adaptive agent and the static baseline, with the offered load
// overlaid (normalized so its peak sits at the SLA line).
func (h *Harness) FigWorkload(sc workload.Scenario) (*Figure, error) {
	cmp, err := h.RunWorkloadScenario(sc)
	if err != nil {
		return nil, err
	}
	name := cmp.Scenario.Name
	if name == "" {
		name = "unnamed"
	}
	sla := h.opts.Agent.SLASeconds
	fig := &Figure{
		ID:     "fig-workload",
		Title:  fmt.Sprintf("Adaptation under time-varying workload (scenario %q, Level-1)", name),
		XLabel: "measurement interval",
		YLabel: "mean response time (s)",
		X:      seqX(len(cmp.Intervals)),
		Notes: []string{
			fmt.Sprintf("SLA %gs; intervals violating it count against each agent", sla),
		},
	}
	for _, run := range []ScenarioRun{cmp.Adaptive, cmp.Static} {
		fig.Series = append(fig.Series, Series{Label: run.Label, Values: rtSeries(run.Results)})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %d/%d intervals violating",
			run.Label, run.Violations, len(run.Results)))
	}

	var peak float64
	for _, iv := range cmp.Intervals {
		if iv.OfferedRate > peak {
			peak = iv.OfferedRate
		}
	}
	if peak > 0 {
		load := Series{Label: "offered-load"}
		for _, iv := range cmp.Intervals {
			load.Values = append(load.Values, iv.OfferedRate/peak*sla)
		}
		fig.Series = append(fig.Series, load)
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("offered-load normalized: peak %.1f req/s drawn at the %gs SLA line", peak, sla))
	}
	if last := len(cmp.Intervals) - 1; last >= 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf("phases: %s → %s",
			cmp.Intervals[0].PhaseName, cmp.Intervals[last].PhaseName))
	}
	return fig, nil
}

// FigDiurnal renders FigWorkload for the library's compressed 24 h diurnal
// scenario — daily sinusoid, afternoon flash crowd, evening mix drift — the
// acceptance experiment for the workload engine: the resilient adaptive
// agent must violate the SLA in at most half the intervals the static
// baseline does.
func (h *Harness) FigDiurnal() (*Figure, error) {
	fig, err := h.FigWorkload(workload.Diurnal())
	if err != nil {
		return nil, err
	}
	fig.ID = "fig-diurnal"
	return fig, nil
}
