package bench

import (
	"runtime"
	"testing"

	"github.com/rac-project/rac/internal/system"
)

// benchContexts returns the four contexts the Store benchmarks train, enough
// independent work to keep a small pool busy.
func benchContexts(b *testing.B) []system.Context {
	b.Helper()
	contexts := make([]system.Context, 0, 4)
	for _, name := range []string{"context-1", "context-2", "context-3", "context-4"} {
		ctx, err := system.ContextByName(name)
		if err != nil {
			b.Fatal(err)
		}
		contexts = append(contexts, ctx)
	}
	return contexts
}

// benchmarkStore measures end-to-end Store training at a fixed worker count.
// Each iteration builds a fresh harness so the policy cache cannot short-
// circuit the work being measured.
func benchmarkStore(b *testing.B, procs int) {
	contexts := benchContexts(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New(Options{Seed: uint64(i) + 1, Quick: true, Procs: procs})
		if _, err := h.Store(contexts...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreSequential(b *testing.B) { benchmarkStore(b, 1) }

func BenchmarkStoreParallel(b *testing.B) { benchmarkStore(b, runtime.NumCPU()) }
