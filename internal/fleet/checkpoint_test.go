package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
)

// testCheckpoint builds a small but real checkpoint (live agent state).
func testCheckpoint(t *testing.T, tenant string, interval int) *Checkpoint {
	t.Helper()
	sys, err := system.NewAnalytic(system.AnalyticOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAgent(sys, core.AgentOptions{Seed: uint64(interval) + 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < interval; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Tenant:   tenant,
		Spec:     TenantSpec{Name: tenant, Backend: "analytic"},
		Interval: interval,
		Agent:    st,
	}
}

func TestCheckpointEnvelopeRoundTrip(t *testing.T) {
	ck := testCheckpoint(t, "shop-a", 3)
	buf, err := encodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != ck.Tenant || got.Interval != ck.Interval {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Agent == nil || got.Agent.Iteration != ck.Agent.Iteration {
		t.Fatal("agent state did not survive the round trip")
	}
}

func TestCheckpointEnvelopeRejectsCorruption(t *testing.T) {
	ck := testCheckpoint(t, "shop-a", 2)
	buf, err := encodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"short":     buf[:checkpointHeader-3],
		"truncated": buf[:len(buf)-10],
		"bad magic": append([]byte("NOTMAGIC"), buf[8:]...),
	}
	flipped := append([]byte(nil), buf...)
	flipped[checkpointHeader+5] ^= 0x40 // payload bit flip → CRC mismatch
	cases["bit flip"] = flipped
	badVersion := append([]byte(nil), buf...)
	badVersion[8] = checkpointVersion + 1
	cases["future version"] = badVersion

	for name, mutated := range cases {
		if _, err := decodeCheckpoint(mutated); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: want ErrCorruptCheckpoint, got %v", name, err)
		}
	}

	// A payload that is valid JSON but has no agent state is corrupt too.
	empty, err := encodeCheckpoint(&Checkpoint{Tenant: "x", Agent: ck.Agent})
	if err != nil {
		t.Fatal(err)
	}
	noAgent := bytes.Replace(empty, []byte(`"agent"`), []byte(`"nope!"`), 1)
	// Recompute nothing: the replacement changes payload bytes, so the CRC
	// already rejects it — both failure modes satisfy the corrupt contract.
	if _, err := decodeCheckpoint(noAgent); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("agent-less payload: want ErrCorruptCheckpoint, got %v", err)
	}
}

func TestCheckpointStoreWriteLatestPrune(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, interval := range []int{5, 10, 15, 20} {
		ck := testCheckpoint(t, "shop-a", interval)
		if _, err := store.Write(ck); err != nil {
			t.Fatal(err)
		}
	}

	files := store.files("shop-a")
	if len(files) != 2 {
		t.Fatalf("retention kept %d files, want 2: %v", len(files), files)
	}

	ck, path, err := store.Latest("shop-a")
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Interval != 20 {
		t.Fatalf("Latest returned %+v, want interval 20", ck)
	}

	// Truncate the newest snapshot mid-payload: Latest must fall back to the
	// previous one instead of failing.
	if err := os.Truncate(path, 40); err != nil {
		t.Fatal(err)
	}
	ck, _, err = store.Latest("shop-a")
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Interval != 15 {
		t.Fatalf("after corruption Latest returned %+v, want interval 15", ck)
	}

	// All snapshots corrupt → cold start, not an error.
	for _, f := range store.files("shop-a") {
		if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ck, path, err = store.Latest("shop-a")
	if err != nil || ck != nil || path != "" {
		t.Fatalf("all-corrupt Latest = (%v, %q, %v), want cold start", ck, path, err)
	}

	// Unknown tenant → cold start too.
	ck, _, err = store.Latest("never-admitted")
	if err != nil || ck != nil {
		t.Fatalf("unknown tenant Latest = (%v, %v), want cold start", ck, err)
	}
}

func TestCheckpointStoreSanitizesTenantNames(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoint(t, "shop/../../etc", 1)
	path, err := store.Write(ck)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.IsAbs(rel) || rel == ".." || strings.HasPrefix(rel, "..") {
		t.Fatalf("checkpoint escaped the store root: %s", path)
	}
	got, _, err := store.Latest("shop/../../etc")
	if err != nil || got == nil {
		t.Fatalf("sanitized tenant not found again: %v %v", got, err)
	}
}

func TestPolicyRegistryRoundTrip(t *testing.T) {
	f, err := New(Options{Seed: 11, RegistryDir: t.TempDir(), TrainInit: fastTrain()})
	if err != nil {
		t.Fatal(err)
	}
	reg := f.Registry()
	if p, err := reg.Get("no-such-context"); err != nil || p != nil {
		t.Fatalf("missing key Get = (%v, %v), want (nil, nil)", p, err)
	}

	ctx, err := system.ContextByName("context-1")
	if err != nil {
		t.Fatal(err)
	}
	key := ContextKey(ctx)
	pol, err := f.trainPolicy(TenantSpec{Name: "seeded"}, ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(key, pol); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same directory loads it from disk.
	f2, err := New(Options{Seed: 11, RegistryDir: reg.Dir()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.Registry().Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Name() != key {
		t.Fatalf("reloaded policy = %v, want name %q", got, key)
	}
	keys := f2.Registry().Keys()
	if len(keys) != 1 {
		t.Fatalf("Keys = %v, want one entry", keys)
	}
}
