package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// FleetView is the admin API's fleet-wide summary.
type FleetView struct {
	Rounds   int            `json:"rounds"`
	Active   int            `json:"active"`
	Tenants  []TenantStatus `json:"tenants"`
	Policies []string       `json:"policies,omitempty"`
}

// TenantPage is one page of the paginated tenant listing.
type TenantPage struct {
	// Tenants are the page's statuses, in fleet admission order.
	Tenants []TenantStatus `json:"tenants"`
	// Offset and Limit echo the effective pagination window.
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
	// Total is the fleet's tenant count at snapshot time.
	Total int `json:"total"`
}

// AdmitResult is one entry of a bulk-admission response, in request order.
type AdmitResult struct {
	// Name echoes the spec's tenant name ("" when the spec had none).
	Name string `json:"name"`
	// Error and Code are set when this spec's admission failed; the other
	// specs are unaffected.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// apiError is the admin API's structured error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// defaultPageLimit is the tenant listing page size when ?limit= is absent.
const defaultPageLimit = 100

// maxPageLimit bounds ?limit= so one request cannot serialize a 10k-tenant
// fleet in a single page.
const maxPageLimit = 1000

// Handler returns the versioned admin HTTP API, intended to be mounted at /
// next to the live server's /metrics and /admin/trace endpoints:
//
//	GET  /admin/v1/fleet                       fleet summary with every tenant
//	GET  /admin/v1/tenants?offset=&limit=      paginated tenant listing
//	POST /admin/v1/tenants                     bulk admit (JSON array of TenantSpec)
//	GET  /admin/v1/tenants/{name}              one tenant's status
//	POST /admin/v1/tenants/{name}/pause        running → paused
//	POST /admin/v1/tenants/{name}/resume       paused → running
//	POST /admin/v1/tenants/{name}/drain        finish interval, checkpoint, stop
//	POST /admin/v1/tenants/{name}/checkpoint   snapshot immediately
//	POST /admin/v1/tenants/{name}/policy?key=K force-switch to the policy for
//	                                           context key K
//	GET  /admin/v1/shards                      per-shard scheduling status
//
// Errors are structured JSON bodies {"error": ..., "code": ...}; the code is
// a stable machine-readable slug mapped from the fleet's error sentinels.
//
// The pre-versioning routes under /admin/fleet remain as thin aliases of the
// v1 handlers. They answer identically but carry a "Deprecation: true" header
// and a Link to their successor; new clients should use /admin/v1/.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /admin/v1/fleet", f.handleFleet)
	mux.HandleFunc("GET /admin/v1/tenants", f.handleTenantPage)
	mux.HandleFunc("POST /admin/v1/tenants", f.handleBulkAdmit)
	mux.HandleFunc("GET /admin/v1/tenants/{name}", f.handleStatus)
	mux.HandleFunc("POST /admin/v1/tenants/{name}/pause", f.lifecycleHandler(f.Pause))
	mux.HandleFunc("POST /admin/v1/tenants/{name}/resume", f.lifecycleHandler(f.Resume))
	mux.HandleFunc("POST /admin/v1/tenants/{name}/drain", f.lifecycleHandler(f.Drain))
	mux.HandleFunc("POST /admin/v1/tenants/{name}/checkpoint", f.lifecycleHandler(f.CheckpointNow))
	mux.HandleFunc("POST /admin/v1/tenants/{name}/policy", f.handlePolicy)
	mux.HandleFunc("GET /admin/v1/shards", f.handleShards)

	// Legacy aliases. The tenant-scoped routes map 1:1; the old list route
	// returns the full (unpaginated) summary it always did.
	mux.HandleFunc("GET /admin/fleet", deprecated("/admin/v1/fleet", f.handleFleet))
	mux.HandleFunc("GET /admin/fleet/{name}", deprecated("/admin/v1/tenants/{name}", f.handleStatus))
	mux.HandleFunc("POST /admin/fleet/{name}/pause", deprecated("/admin/v1/tenants/{name}/pause", f.lifecycleHandler(f.Pause)))
	mux.HandleFunc("POST /admin/fleet/{name}/resume", deprecated("/admin/v1/tenants/{name}/resume", f.lifecycleHandler(f.Resume)))
	mux.HandleFunc("POST /admin/fleet/{name}/drain", deprecated("/admin/v1/tenants/{name}/drain", f.lifecycleHandler(f.Drain)))
	mux.HandleFunc("POST /admin/fleet/{name}/checkpoint", deprecated("/admin/v1/tenants/{name}/checkpoint", f.lifecycleHandler(f.CheckpointNow)))
	mux.HandleFunc("POST /admin/fleet/{name}/policy", deprecated("/admin/v1/tenants/{name}/policy", f.handlePolicy))
	return mux
}

// deprecated wraps a v1 handler as a legacy alias: identical behavior plus
// the deprecation headers pointing clients at the successor route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// handleFleet serves the fleet summary.
func (f *Fleet) handleFleet(w http.ResponseWriter, r *http.Request) {
	view := FleetView{
		Rounds:  f.Rounds(),
		Active:  f.Active(),
		Tenants: f.Statuses(),
	}
	if f.registry != nil {
		view.Policies = f.registry.Keys()
	}
	writeJSON(w, view)
}

// handleTenantPage serves one page of tenant statuses. ?offset= past the end
// yields an empty page with the true total, so clients detect the end without
// a sentinel.
func (f *Fleet) handleTenantPage(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		writeAPIError(w, http.StatusBadRequest, "bad_request", "invalid ?offset=: want a non-negative integer")
		return
	}
	limit, err := queryInt(r, "limit", defaultPageLimit)
	if err != nil || limit <= 0 {
		writeAPIError(w, http.StatusBadRequest, "bad_request", "invalid ?limit=: want a positive integer")
		return
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	all := f.Tenants()
	page := TenantPage{Offset: offset, Limit: limit, Total: len(all), Tenants: []TenantStatus{}}
	for i := offset; i < len(all) && i < offset+limit; i++ {
		page.Tenants = append(page.Tenants, all[i].Status())
	}
	writeJSON(w, page)
}

// handleBulkAdmit admits a JSON array of TenantSpec in order. Each spec
// succeeds or fails independently; the response mirrors the request order.
// 201 when every spec was admitted, 207 when some failed, 400 when the body
// is not a spec array.
func (f *Fleet) handleBulkAdmit(w http.ResponseWriter, r *http.Request) {
	var specs []TenantSpec
	if err := json.NewDecoder(r.Body).Decode(&specs); err != nil {
		writeAPIError(w, http.StatusBadRequest, "bad_request", "invalid body: want a JSON array of tenant specs: "+err.Error())
		return
	}
	results := make([]AdmitResult, len(specs))
	failed := 0
	for i, spec := range specs {
		results[i].Name = spec.Name
		if _, err := f.Admit(spec); err != nil {
			_, code := errorStatus(err)
			results[i].Error = err.Error()
			results[i].Code = code
			failed++
		}
	}
	status := http.StatusCreated
	if failed > 0 {
		status = http.StatusMultiStatus
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(results)
}

// handleStatus serves one tenant's status.
func (f *Fleet) handleStatus(w http.ResponseWriter, r *http.Request) {
	t := f.Tenant(r.PathValue("name"))
	if t == nil {
		writeOpError(w, ErrUnknownTenant)
		return
	}
	writeJSON(w, t.Status())
}

// handleShards serves the per-shard scheduling status.
func (f *Fleet) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, f.ShardStatuses())
}

// lifecycleHandler adapts a by-name fleet operation to an HTTP endpoint.
func (f *Fleet) lifecycleHandler(op func(name string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := op(name); err != nil {
			writeOpError(w, err)
			return
		}
		if t := f.Tenant(name); t != nil {
			writeJSON(w, t.Status())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// handlePolicy force-switches a tenant to the policy stored for ?key=.
func (f *Fleet) handlePolicy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	key := r.URL.Query().Get("key")
	if key == "" {
		writeAPIError(w, http.StatusBadRequest, "bad_request", "missing ?key= context key")
		return
	}
	if err := f.ForcePolicy(name, key); err != nil {
		writeOpError(w, err)
		return
	}
	if t := f.Tenant(name); t != nil {
		writeJSON(w, t.Status())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// errorStatus maps a fleet error onto its HTTP status and stable code slug
// by sentinel identity (errors.Is), never by message matching.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound, "unknown_tenant"
	case errors.Is(err, ErrNoPolicy):
		return http.StatusNotFound, "no_policy"
	case errors.Is(err, ErrBadTransition):
		return http.StatusConflict, "bad_transition"
	case errors.Is(err, ErrDuplicateTenant):
		return http.StatusConflict, "duplicate_tenant"
	case errors.Is(err, ErrCheckpointsDisabled):
		return http.StatusConflict, "checkpoints_disabled"
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest, "bad_spec"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeOpError serves a fleet operation error as a structured body.
func writeOpError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	writeAPIError(w, status, code, err.Error())
}

// writeAPIError serves one structured error body.
func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: msg, Code: code})
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// writeJSON serves v with the standard headers.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
