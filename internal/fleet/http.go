package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// FleetView is the admin API's fleet-wide summary.
type FleetView struct {
	Rounds   int            `json:"rounds"`
	Active   int            `json:"active"`
	Tenants  []TenantStatus `json:"tenants"`
	Policies []string       `json:"policies,omitempty"`
}

// Handler returns the admin HTTP API, intended to be mounted at /admin/fleet
// next to the live server's /metrics and /admin/trace endpoints:
//
//	GET  /admin/fleet                     fleet summary with every tenant
//	GET  /admin/fleet/{name}              one tenant's status
//	POST /admin/fleet/{name}/pause        running → paused
//	POST /admin/fleet/{name}/resume       paused → running
//	POST /admin/fleet/{name}/drain        finish interval, checkpoint, stop
//	POST /admin/fleet/{name}/checkpoint   snapshot immediately
//	POST /admin/fleet/{name}/policy?key=K force-switch to the policy for
//	                                      context key K
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /admin/fleet", f.handleList)
	mux.HandleFunc("GET /admin/fleet/{name}", f.handleStatus)
	mux.HandleFunc("POST /admin/fleet/{name}/pause", f.lifecycleHandler(f.Pause))
	mux.HandleFunc("POST /admin/fleet/{name}/resume", f.lifecycleHandler(f.Resume))
	mux.HandleFunc("POST /admin/fleet/{name}/drain", f.lifecycleHandler(f.Drain))
	mux.HandleFunc("POST /admin/fleet/{name}/checkpoint", f.lifecycleHandler(f.CheckpointNow))
	mux.HandleFunc("POST /admin/fleet/{name}/policy", f.handlePolicy)
	return mux
}

// handleList serves the fleet summary.
func (f *Fleet) handleList(w http.ResponseWriter, r *http.Request) {
	view := FleetView{
		Rounds:  f.Rounds(),
		Active:  f.Active(),
		Tenants: f.Statuses(),
	}
	if f.registry != nil {
		view.Policies = f.registry.Keys()
	}
	writeJSON(w, view)
}

// handleStatus serves one tenant's status.
func (f *Fleet) handleStatus(w http.ResponseWriter, r *http.Request) {
	t := f.Tenant(r.PathValue("name"))
	if t == nil {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	writeJSON(w, t.Status())
}

// lifecycleHandler adapts a by-name fleet operation to an HTTP endpoint.
// Unknown tenants are 404, illegal FSM transitions 409, everything else 500.
func (f *Fleet) lifecycleHandler(op func(name string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := op(name); err != nil {
			writeOpError(w, name, err)
			return
		}
		if t := f.Tenant(name); t != nil {
			writeJSON(w, t.Status())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// handlePolicy force-switches a tenant to the policy stored for ?key=.
func (f *Fleet) handlePolicy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing ?key= context key", http.StatusBadRequest)
		return
	}
	if err := f.ForcePolicy(name, key); err != nil {
		writeOpError(w, name, err)
		return
	}
	if t := f.Tenant(name); t != nil {
		writeJSON(w, t.Status())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeOpError maps fleet operation errors onto HTTP status codes.
func writeOpError(w http.ResponseWriter, name string, err error) {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unknown tenant"), strings.Contains(msg, "no policy for context"):
		http.Error(w, msg, http.StatusNotFound)
	case strings.Contains(msg, "cannot move to"), strings.Contains(msg, "is stopped"),
		strings.Contains(msg, "is failed"):
		http.Error(w, msg, http.StatusConflict)
	case errors.Is(err, ErrCorruptCheckpoint):
		http.Error(w, msg, http.StatusInternalServerError)
	default:
		http.Error(w, msg, http.StatusInternalServerError)
	}
}

// writeJSON serves v with the standard headers.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
