package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// PolicyRegistry is the fleet's shared, disk-backed catalogue of initial
// policies keyed by system context (traffic mix, client population, VM
// level). One tenant trains a policy for its context; every later tenant
// admitted into a matching context warm-starts from that policy's Q-table
// instead of cold initialization — the SQLR observation that learned state
// pays off when it is retained and reused across instances.
//
// Policies are stored one file per context key (core.Policy.Save JSON),
// written atomically, and cached in memory after first load. All methods are
// safe for concurrent use.
type PolicyRegistry struct {
	dir   string
	space *config.Space

	mu    sync.Mutex
	cache map[string]*core.Policy
}

// NewPolicyRegistry roots a registry at dir (created if missing). Loaded
// policies are bound to space, which must structurally match the space they
// were trained on.
func NewPolicyRegistry(dir string, space *config.Space) (*PolicyRegistry, error) {
	if dir == "" {
		return nil, errors.New("fleet: empty registry directory")
	}
	if space == nil {
		return nil, errors.New("fleet: nil space")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: registry dir: %w", err)
	}
	return &PolicyRegistry{dir: dir, space: space, cache: make(map[string]*core.Policy)}, nil
}

// Dir returns the registry's root directory.
func (r *PolicyRegistry) Dir() string { return r.dir }

// path names the policy file for a context key.
func (r *PolicyRegistry) path(key string) string {
	return filepath.Join(r.dir, sanitizeName(key)+".policy.json")
}

// Get returns the policy stored under key, or (nil, nil) when the context has
// no trained policy yet.
func (r *PolicyRegistry) Get(key string) (*core.Policy, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.cache[key]; ok {
		return p, nil
	}
	f, err := os.Open(r.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: registry read %q: %w", key, err)
	}
	defer f.Close()
	p, err := core.LoadPolicy(f, r.space)
	if err != nil {
		return nil, fmt.Errorf("fleet: registry policy %q: %w", key, err)
	}
	r.cache[key] = p
	return p, nil
}

// Put stores p under key, atomically replacing any previous policy for the
// same context.
func (r *PolicyRegistry) Put(key string, p *core.Policy) error {
	if key == "" {
		return errors.New("fleet: empty registry key")
	}
	if p == nil {
		return errors.New("fleet: nil policy")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tmp, err := os.CreateTemp(r.dir, "policy-*.tmp")
	if err != nil {
		return fmt.Errorf("fleet: registry temp: %w", err)
	}
	tmpName := tmp.Name()
	if err := p.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fleet: registry save %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: registry close: %w", err)
	}
	if err := os.Rename(tmpName, r.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: registry rename: %w", err)
	}
	r.cache[key] = p
	return nil
}

// keyCoords are a registry key's context coordinates, recovered from the
// ContextKey encoding "mix-clients@LevelName".
type keyCoords struct {
	mix     tpcw.Mix
	clients int
	ordinal int // vmenv capacity rank
}

// parseContextKey decomposes a ContextKey back into coordinates. Keys that do
// not follow the encoding (foreign files in the registry directory) report
// ok=false and are skipped by Nearest.
func parseContextKey(key string) (keyCoords, bool) {
	at := strings.LastIndexByte(key, '@')
	if at < 0 {
		return keyCoords{}, false
	}
	left, levelName := key[:at], key[at+1:]
	dash := strings.LastIndexByte(left, '-')
	if dash < 0 {
		return keyCoords{}, false
	}
	mix, err := tpcw.ParseMix(left[:dash])
	if err != nil {
		return keyCoords{}, false
	}
	clients, err := strconv.Atoi(left[dash+1:])
	if err != nil || clients <= 0 {
		return keyCoords{}, false
	}
	for _, l := range vmenv.Levels() {
		if l.Name == levelName {
			return keyCoords{mix: mix, clients: clients, ordinal: vmenv.Ordinal(l)}, true
		}
	}
	return keyCoords{}, false
}

// Nearest returns the stored policy whose context is closest to ctx, skipping
// the exact key (the caller already knows it has no policy). Distance is
// lexicographic: same traffic mix first, then the smallest VM-level ordinal
// gap, then the smallest client-population gap, with the sorted key as the
// deterministic tiebreak. Returns (nil, "", nil) when the registry holds no
// parseable candidate. The rationale is the paper's policy-reuse argument
// extended across neighboring contexts: an approximate Q-seed from an
// adjacent context beats cold initialization, and online learning corrects
// the residual error.
func (r *PolicyRegistry) Nearest(ctx system.Context, exclude string) (*core.Policy, string, error) {
	target := keyCoords{
		mix:     ctx.Workload.Mix,
		clients: ctx.Workload.Clients,
		ordinal: vmenv.Ordinal(ctx.Level),
	}
	type ranked struct {
		mixMiss int
		ordGap  int
		cliGap  int
		key     string
	}
	abs := func(n int) int {
		if n < 0 {
			return -n
		}
		return n
	}
	var best *ranked
	for _, key := range r.Keys() {
		if key == exclude {
			continue
		}
		c, ok := parseContextKey(key)
		if !ok {
			continue
		}
		cand := ranked{ordGap: abs(c.ordinal - target.ordinal), cliGap: abs(c.clients - target.clients), key: key}
		if c.mix != target.mix {
			cand.mixMiss = 1
		}
		if best == nil ||
			cand.mixMiss < best.mixMiss ||
			(cand.mixMiss == best.mixMiss && (cand.ordGap < best.ordGap ||
				(cand.ordGap == best.ordGap && (cand.cliGap < best.cliGap ||
					(cand.cliGap == best.cliGap && cand.key < best.key))))) {
			b := cand
			best = &b
		}
	}
	if best == nil {
		return nil, "", nil
	}
	p, err := r.Get(best.key)
	if err != nil {
		return nil, "", err
	}
	return p, best.key, nil
}

// Keys lists the context keys with stored policies, sorted. File names are
// sanitized on write, so keys containing exotic characters list in their
// sanitized form.
func (r *PolicyRegistry) Keys() []string {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".policy.json") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".policy.json"))
	}
	sort.Strings(out)
	return out
}
