package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
)

// PolicyRegistry is the fleet's shared, disk-backed catalogue of initial
// policies keyed by system context (traffic mix, client population, VM
// level). One tenant trains a policy for its context; every later tenant
// admitted into a matching context warm-starts from that policy's Q-table
// instead of cold initialization — the SQLR observation that learned state
// pays off when it is retained and reused across instances.
//
// Policies are stored one file per context key (core.Policy.Save JSON),
// written atomically, and cached in memory after first load. All methods are
// safe for concurrent use.
type PolicyRegistry struct {
	dir   string
	space *config.Space

	mu    sync.Mutex
	cache map[string]*core.Policy
}

// NewPolicyRegistry roots a registry at dir (created if missing). Loaded
// policies are bound to space, which must structurally match the space they
// were trained on.
func NewPolicyRegistry(dir string, space *config.Space) (*PolicyRegistry, error) {
	if dir == "" {
		return nil, errors.New("fleet: empty registry directory")
	}
	if space == nil {
		return nil, errors.New("fleet: nil space")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: registry dir: %w", err)
	}
	return &PolicyRegistry{dir: dir, space: space, cache: make(map[string]*core.Policy)}, nil
}

// Dir returns the registry's root directory.
func (r *PolicyRegistry) Dir() string { return r.dir }

// path names the policy file for a context key.
func (r *PolicyRegistry) path(key string) string {
	return filepath.Join(r.dir, sanitizeName(key)+".policy.json")
}

// Get returns the policy stored under key, or (nil, nil) when the context has
// no trained policy yet.
func (r *PolicyRegistry) Get(key string) (*core.Policy, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.cache[key]; ok {
		return p, nil
	}
	f, err := os.Open(r.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: registry read %q: %w", key, err)
	}
	defer f.Close()
	p, err := core.LoadPolicy(f, r.space)
	if err != nil {
		return nil, fmt.Errorf("fleet: registry policy %q: %w", key, err)
	}
	r.cache[key] = p
	return p, nil
}

// Put stores p under key, atomically replacing any previous policy for the
// same context.
func (r *PolicyRegistry) Put(key string, p *core.Policy) error {
	if key == "" {
		return errors.New("fleet: empty registry key")
	}
	if p == nil {
		return errors.New("fleet: nil policy")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tmp, err := os.CreateTemp(r.dir, "policy-*.tmp")
	if err != nil {
		return fmt.Errorf("fleet: registry temp: %w", err)
	}
	tmpName := tmp.Name()
	if err := p.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fleet: registry save %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: registry close: %w", err)
	}
	if err := os.Rename(tmpName, r.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: registry rename: %w", err)
	}
	r.cache[key] = p
	return nil
}

// Keys lists the context keys with stored policies, sorted. File names are
// sanitized on write, so keys containing exotic characters list in their
// sanitized form.
func (r *PolicyRegistry) Keys() []string {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".policy.json") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".policy.json"))
	}
	sort.Strings(out)
	return out
}
