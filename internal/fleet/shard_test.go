package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
)

// scaledSpecs builds a deterministic mixed-population tenant list: analytic
// tenants across all six paper contexts with varied noise, a few policy
// trainers, and one elastic-capacity tenant.
func scaledSpecs(n int) []TenantSpec {
	specs := make([]TenantSpec, 0, n)
	for i := 0; i < n; i++ {
		sp := TenantSpec{
			Name:       fmt.Sprintf("scaled-%04d", i),
			Backend:    "analytic",
			Context:    fmt.Sprintf("context-%d", i%6+1),
			NoiseSigma: 0.1 + float64(i%3)*0.1,
		}
		switch {
		case i%29 == 0:
			sp.TrainPolicy = true
		case i == 7:
			sp.Capacity = true
			sp.CapacityCost = 0.05
			sp.NoiseSigma = 0.2
		}
		specs = append(specs, sp)
	}
	return specs
}

// runScaledFleet runs a fresh fleet over the scaled tenant population at the
// given worker and shard counts, returning every tenant's status JSON, step
// log, serialized agent state, and newest checkpoint bytes.
func runScaledFleet(t *testing.T, procs, shards, tenants, rounds int) (map[string][]byte, map[string][]StepRecord, map[string][]byte, map[string][]byte) {
	t.Helper()
	f, err := New(Options{
		Seed:            1234,
		Procs:           procs,
		Shards:          shards,
		RegistryDir:     t.TempDir(),
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 3,
		TrainInit:       fastTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := scaledSpecs(tenants)
	for _, sp := range specs {
		if _, err := f.Admit(sp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Run(rounds); err != nil {
		t.Fatal(err)
	}
	statuses := make(map[string][]byte, len(specs))
	logs := make(map[string][]StepRecord, len(specs))
	states := make(map[string][]byte, len(specs))
	cks := make(map[string][]byte, len(specs))
	for _, sp := range specs {
		tn := f.Tenant(sp.Name)
		st, err := json.Marshal(tn.Status())
		if err != nil {
			t.Fatal(err)
		}
		statuses[sp.Name] = st
		logs[sp.Name] = tn.StepLog()
		states[sp.Name] = exportAgent(t, tn)
		if _, path, err := f.Checkpoints().Latest(sp.Name); err != nil {
			t.Fatal(err)
		} else if path != "" {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cks[sp.Name] = buf
		}
	}
	return statuses, logs, states, cks
}

// TestFleetShardedDeterminism is the production-scale determinism regression:
// a mixed fleet produces byte-identical statuses, step logs, agent states and
// checkpoint files at every combination of worker count and shard count.
// Tenant streams are pre-split by name, shards advance their tenants
// sequentially, and shared state (policy store, registry) only changes at
// round barriers — so neither the pool size nor the shard topology may be
// observable in any output.
func TestFleetShardedDeterminism(t *testing.T) {
	const tenants, rounds = 120, 7
	type cfg struct{ procs, shards int }
	baseline := cfg{procs: 1, shards: 1}
	variants := []cfg{{procs: 8, shards: 1}, {procs: 1, shards: 8}, {procs: 8, shards: 5}}

	baseStatuses, baseLogs, baseStates, baseCks := runScaledFleet(t, baseline.procs, baseline.shards, tenants, rounds)
	if len(baseCks) == 0 {
		t.Fatal("baseline run wrote no checkpoints")
	}
	for _, v := range variants {
		statuses, logs, states, cks := runScaledFleet(t, v.procs, v.shards, tenants, rounds)
		for name, want := range baseStatuses {
			if !bytes.Equal(want, statuses[name]) {
				t.Errorf("procs=%d shards=%d: tenant %s status differs:\n base %s\n  got %s",
					v.procs, v.shards, name, want, statuses[name])
			}
		}
		for name, want := range baseLogs {
			got := logs[name]
			if len(want) != len(got) {
				t.Fatalf("procs=%d shards=%d: tenant %s: %d records, baseline %d",
					v.procs, v.shards, name, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Errorf("procs=%d shards=%d: tenant %s step %d: baseline %+v, got %+v",
						v.procs, v.shards, name, i, want[i], got[i])
					break
				}
			}
		}
		for name, want := range baseStates {
			if !bytes.Equal(want, states[name]) {
				t.Errorf("procs=%d shards=%d: tenant %s final agent state differs", v.procs, v.shards, name)
			}
		}
		for name, want := range baseCks {
			if !bytes.Equal(want, cks[name]) {
				t.Errorf("procs=%d shards=%d: tenant %s checkpoint bytes differ", v.procs, v.shards, name)
			}
		}
	}
}

// TestOptionsValidation exercises the Options sentinels.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Shards: -1}); !errors.Is(err, ErrBadShards) {
		t.Errorf("Shards=-1: got %v, want ErrBadShards", err)
	}
	if _, err := New(Options{Shards: maxShards + 1}); !errors.Is(err, ErrBadShards) {
		t.Errorf("Shards over cap: got %v, want ErrBadShards", err)
	}
	if _, err := New(Options{CheckpointEvery: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative cadence: got %v, want ErrBadOptions", err)
	}
	if _, err := New(Options{SLASeconds: -2}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative SLA: got %v, want ErrBadOptions", err)
	}
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.ShardStatuses()); got != defaultShards {
		t.Errorf("default shard count %d, want %d", got, defaultShards)
	}
	if _, err := f.Admit(TenantSpec{}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("nameless spec: got %v, want ErrBadSpec", err)
	}
	if _, err := f.Admit(TenantSpec{Name: "x", SLASeconds: -1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("negative tenant SLA: got %v, want ErrBadSpec", err)
	}
	if _, err := f.Admit(TenantSpec{Name: "a", Backend: "analytic"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(TenantSpec{Name: "a", Backend: "analytic"}); !errors.Is(err, ErrDuplicateTenant) {
		t.Errorf("duplicate admit: got %v, want ErrDuplicateTenant", err)
	}
	if err := f.Pause("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("pause unknown: got %v, want ErrUnknownTenant", err)
	}
	if err := f.Resume("a"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("resume running: got %v, want ErrBadTransition", err)
	}
	if err := f.CheckpointNow("a"); !errors.Is(err, ErrCheckpointsDisabled) {
		t.Errorf("checkpoint without store: got %v, want ErrCheckpointsDisabled", err)
	}
	if err := f.ForcePolicy("a", "nope"); !errors.Is(err, ErrNoPolicy) {
		t.Errorf("force unknown policy: got %v, want ErrNoPolicy", err)
	}
}

// TestAdminPaginationAndBulkAdmit drives the v1 listing and bulk-admission
// endpoints end to end, including the structured error body and the legacy
// alias's deprecation headers.
func TestAdminPaginationAndBulkAdmit(t *testing.T) {
	f, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	// Bulk admit: 7 good specs plus one bad and one duplicate → 207.
	specs := make([]TenantSpec, 0, 9)
	for i := 0; i < 7; i++ {
		specs = append(specs, TenantSpec{Name: fmt.Sprintf("bulk-%d", i), Backend: "analytic"})
	}
	specs = append(specs, TenantSpec{Name: "", Backend: "analytic"})
	specs = append(specs, TenantSpec{Name: "bulk-0", Backend: "analytic"})
	body, _ := json.Marshal(specs)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/v1/tenants", bytes.NewReader(body)))
	if rec.Code != 207 {
		t.Fatalf("mixed bulk admit: status %d, want 207: %s", rec.Code, rec.Body)
	}
	var results []AdmitResult
	if err := json.Unmarshal(rec.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("bulk admit returned %d results, want 9", len(results))
	}
	for i := 0; i < 7; i++ {
		if results[i].Error != "" {
			t.Errorf("spec %d failed: %s", i, results[i].Error)
		}
	}
	if results[7].Code != "bad_spec" || results[8].Code != "duplicate_tenant" {
		t.Errorf("failure codes %q, %q; want bad_spec, duplicate_tenant", results[7].Code, results[8].Code)
	}

	// An all-good batch → 201.
	body, _ = json.Marshal([]TenantSpec{{Name: "bulk-7", Backend: "analytic"}})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/v1/tenants", bytes.NewReader(body)))
	if rec.Code != 201 {
		t.Fatalf("clean bulk admit: status %d, want 201: %s", rec.Code, rec.Body)
	}

	// Pagination: 8 tenants in pages of 3 → 3+3+2, then an empty page.
	sizes := []int{3, 3, 2, 0}
	offset := 0
	for _, want := range sizes {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/admin/v1/tenants?offset=%d&limit=3", offset), nil))
		if rec.Code != 200 {
			t.Fatalf("page at offset %d: status %d", offset, rec.Code)
		}
		var page TenantPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Tenants) != want || page.Total != 8 {
			t.Fatalf("page at offset %d: %d tenants (want %d), total %d (want 8)",
				offset, len(page.Tenants), want, page.Total)
		}
		offset += len(page.Tenants)
	}

	// Default limit applies when ?limit= is absent.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/admin/v1/tenants", nil))
	var page TenantPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Limit != defaultPageLimit || len(page.Tenants) != 8 {
		t.Errorf("default page: limit %d (want %d), %d tenants", page.Limit, defaultPageLimit, len(page.Tenants))
	}

	// Bad pagination parameters → structured 400.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/admin/v1/tenants?offset=-1", nil))
	if rec.Code != 400 {
		t.Fatalf("negative offset: status %d, want 400", rec.Code)
	}
	var apiErr apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr.Code != "bad_request" {
		t.Errorf("negative offset body %s (decode err %v), want code bad_request", rec.Body, err)
	}

	// Structured 404 with a stable code on the v1 tenant route.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/admin/v1/tenants/ghost", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown tenant: status %d, want 404", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr.Code != "unknown_tenant" {
		t.Errorf("unknown tenant body %s (decode err %v), want code unknown_tenant", rec.Body, err)
	}

	// Shard listing covers every tenant exactly once.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/admin/v1/shards", nil))
	var shardView []ShardStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &shardView); err != nil {
		t.Fatal(err)
	}
	if len(shardView) != 4 {
		t.Fatalf("shard listing has %d shards, want 4", len(shardView))
	}
	owned := 0
	for _, s := range shardView {
		owned += s.Tenants
	}
	if owned != 8 {
		t.Errorf("shards own %d tenants, want 8", owned)
	}

	// Legacy alias answers with the same payload plus deprecation headers.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/admin/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("legacy list: status %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "true" || !strings.Contains(rec.Header().Get("Link"), "/admin/v1/fleet") {
		t.Errorf("legacy headers Deprecation=%q Link=%q", rec.Header().Get("Deprecation"), rec.Header().Get("Link"))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/admin/v1/fleet", nil))
	var view FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Tenants) != 8 {
		t.Errorf("v1 fleet view has %d tenants, want 8", len(view.Tenants))
	}
}

// TestTelemetryCardinalityCap verifies the per-tenant histogram cap: tenants
// admitted past TenantMetricsLimit fold into per-shard series, bounding the
// /metrics exposition size as the fleet grows.
func TestTelemetryCardinalityCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	f, err := New(Options{Shards: 4, TenantMetricsLimit: 5, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 24
	for i := 0; i < tenants; i++ {
		if _, err := f.Admit(TenantSpec{Name: fmt.Sprintf("cap-%02d", i), Backend: "analytic"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Run(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	perTenant := strings.Count(exposition, `rac_fleet_step_seconds_count{tenant="`)
	if perTenant != 5 {
		t.Errorf("%d per-tenant step series, want exactly 5 (the cap)", perTenant)
	}
	if !strings.Contains(exposition, `rac_fleet_shard_step_seconds_count{shard="`) {
		t.Error("no per-shard aggregate series for capped tenants")
	}

	// The regression: exposition size must not scale with tenant count past
	// the cap. An uncapped fleet would emit ~(buckets+3) lines per tenant;
	// the capped one stays under what 8 fully-labeled tenants would cost.
	lines := strings.Count(exposition, "\n")
	perTenantLines := len(stepBuckets) + 3 // buckets + sum + count + +Inf
	if budget := 8 * perTenantLines * 2; lines > budget+200 {
		t.Errorf("exposition has %d lines for %d tenants — cardinality cap not holding (budget %d)",
			lines, tenants, budget+200)
	}

	// A negative limit sends every tenant to the shard aggregates.
	reg2 := telemetry.NewRegistry()
	f2, err := New(Options{Shards: 2, TenantMetricsLimit: -1, Telemetry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Admit(TenantSpec{Name: "agg", Backend: "analytic"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Run(1); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg2.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `rac_fleet_step_seconds_count{tenant="`) {
		t.Error("negative limit still produced a per-tenant series")
	}
}

// TestRegistryNearest exercises the nearest-context policy ranking: same mix
// beats different mix, then the closest VM level, then the closest client
// population, with the key as a deterministic tiebreak.
func TestRegistryNearest(t *testing.T) {
	f, err := New(Options{Seed: 9, RegistryDir: t.TempDir(), TrainInit: fastTrain()})
	if err != nil {
		t.Fatal(err)
	}
	reg := f.Registry()
	train := func(context string) string {
		t.Helper()
		ctx, err := system.ContextByName(context)
		if err != nil {
			t.Fatal(err)
		}
		key := ContextKey(ctx)
		pol, err := f.trainPolicy(TenantSpec{Name: "seed-" + context}, ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Put(key, pol); err != nil {
			t.Fatal(err)
		}
		return key
	}
	key1 := train("context-1")
	key3 := train("context-3")

	// A context that matches context-1's mix must pick it over context-3.
	ctx2, err := system.ContextByName("context-2")
	if err != nil {
		t.Fatal(err)
	}
	pol, key, err := reg.Nearest(ctx2, ContextKey(ctx2))
	if err != nil {
		t.Fatal(err)
	}
	if pol == nil {
		t.Fatal("Nearest found no policy with two stored")
	}
	if key != key1 && key != key3 {
		t.Fatalf("Nearest returned unknown key %q", key)
	}
	// Whatever it picked, it must be deterministic and skip the exact key.
	pol2, key2, err := reg.Nearest(ctx2, ContextKey(ctx2))
	if err != nil || pol2 == nil || key2 != key {
		t.Fatalf("Nearest not stable: first %q, second %q (err %v)", key, key2, err)
	}

	// Excluding the winner falls through to the runner-up.
	_, keyAlt, err := reg.Nearest(ctx2, key)
	if err != nil {
		t.Fatal(err)
	}
	if keyAlt == key || keyAlt == "" {
		t.Fatalf("excluded key %q came back (got %q)", key, keyAlt)
	}

	// An admitted tenant with no exact policy warm-starts from the nearest
	// context; NoWarmStart opts out.
	tn, err := f.Admit(TenantSpec{Name: "near", Backend: "analytic", Context: "context-2"})
	if err != nil {
		t.Fatal(err)
	}
	if st := tn.Status(); !st.WarmStarted || st.Policy == "" {
		t.Errorf("tenant did not nearest-warm-start: %+v", st)
	}
	cold, err := f.Admit(TenantSpec{Name: "cold", Backend: "analytic", Context: "context-2", NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Status(); st.WarmStarted {
		t.Errorf("NoWarmStart tenant warm-started: %+v", st)
	}
}

// TestParseContextKey pins the key-decomposition used by Nearest.
func TestParseContextKey(t *testing.T) {
	ctx, err := system.ContextByName("context-1")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := parseContextKey(ContextKey(ctx))
	if !ok {
		t.Fatalf("ContextKey(%s) did not parse", ctx.Name)
	}
	if c.mix != ctx.Workload.Mix || c.clients != ctx.Workload.Clients {
		t.Errorf("parsed %+v from %s", c, ContextKey(ctx))
	}
	for _, bad := range []string{"", "no-at-sign", "bogus-12@NoSuchLevel", "mixless@Level-1", "browsing-x@Level-1"} {
		if _, ok := parseContextKey(bad); ok {
			t.Errorf("parseContextKey(%q) accepted", bad)
		}
	}
}
