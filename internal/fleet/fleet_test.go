package fleet

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/vmenv"
)

// analyticSpec is the cheap deterministic tenant used throughout: the MVA
// surface with measurement noise, so every step consumes the tenant's RNG
// streams and restore bugs cannot hide.
func analyticSpec(name string) TenantSpec {
	return TenantSpec{Name: name, Backend: "analytic", Context: "context-1", NoiseSigma: 0.15}
}

// fastTrain is a reduced policy-training schedule so tests that exercise the
// registry do not pay the full paper initialization on every run.
func fastTrain() *core.InitOptions {
	batch := mdp.DefaultBatchConfig()
	batch.MaxSweeps = 30
	return &core.InitOptions{CoarseLevels: 2, Batch: batch}
}

// exportAgent serializes one tenant's agent state for comparisons.
func exportAgent(t *testing.T, tn *Tenant) []byte {
	t.Helper()
	st, err := tn.Agent().ExportState()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFleetLifecycle(t *testing.T) {
	f, err := New(Options{Seed: 42, Procs: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(analyticSpec("shop-a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Admit(analyticSpec("shop-b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(analyticSpec("shop-a")); err == nil {
		t.Fatal("duplicate admission accepted")
	}
	if a.State() != StateRunning || b.State() != StateRunning {
		t.Fatalf("admitted states %s/%s, want running", a.State(), b.State())
	}

	if _, err := f.Run(4); err != nil {
		t.Fatal(err)
	}
	if a.Interval() != 4 || b.Interval() != 4 {
		t.Fatalf("intervals %d/%d after 4 rounds, want 4/4", a.Interval(), b.Interval())
	}

	// Pause stops stepping but keeps state; resume picks it back up.
	if err := f.Pause("shop-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Pause("shop-b"); err == nil {
		t.Fatal("pausing a paused tenant accepted")
	}
	if _, err := f.Run(2); err != nil {
		t.Fatal(err)
	}
	if a.Interval() != 6 || b.Interval() != 4 {
		t.Fatalf("intervals %d/%d with shop-b paused, want 6/4", a.Interval(), b.Interval())
	}
	if err := f.Resume("shop-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Resume("shop-a"); err == nil {
		t.Fatal("resuming a running tenant accepted")
	}

	// Drain: the next round writes a final checkpoint and stops the tenant.
	if err := f.Drain("shop-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	if b.State() != StateStopped {
		t.Fatalf("drained tenant is %s, want stopped", b.State())
	}
	if ck, _, err := f.Checkpoints().Latest("shop-b"); err != nil || ck == nil || ck.Interval != 4 {
		t.Fatalf("final checkpoint = (%+v, %v), want interval 4", ck, err)
	}
	if err := f.Drain("shop-b"); err == nil {
		t.Fatal("draining a stopped tenant accepted")
	}
	if err := f.Pause("no-such"); err == nil {
		t.Fatal("unknown tenant accepted")
	}

	// Shutdown drains the rest with final checkpoints.
	if err := f.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if a.State() != StateStopped {
		t.Fatalf("after shutdown shop-a is %s", a.State())
	}
	if f.Active() != 0 {
		t.Fatalf("Active = %d after shutdown", f.Active())
	}
	if ck, _, err := f.Checkpoints().Latest("shop-a"); err != nil || ck == nil {
		t.Fatalf("shutdown checkpoint missing: %v", err)
	}
}

func TestFleetPeriodicCheckpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	f, err := New(Options{Seed: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 5, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(analyticSpec("shop-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(12); err != nil {
		t.Fatal(err)
	}
	ck, _, err := f.Checkpoints().Latest("shop-a")
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Interval != 10 {
		t.Fatalf("latest periodic checkpoint %+v, want interval 10", ck)
	}
	if n := reg.Counter("rac_fleet_checkpoints_total", "", nil).Value(); n != 2 {
		t.Fatalf("rac_fleet_checkpoints_total = %d, want 2 (intervals 5 and 10)", n)
	}
}

func TestFleetWarmStartFromRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	f, err := New(Options{Seed: 9, RegistryDir: t.TempDir(), Telemetry: reg, TrainInit: fastTrain()})
	if err != nil {
		t.Fatal(err)
	}

	// First tenant trains and publishes the context policy — initialization,
	// not a warm start.
	a, err := f.Admit(TenantSpec{Name: "trainer", Backend: "analytic", TrainPolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status().WarmStarted {
		t.Fatal("training tenant reported as warm-started")
	}
	key := a.ContextKey()
	if keys := f.Registry().Keys(); len(keys) != 1 {
		t.Fatalf("registry keys = %v, want the trained context", keys)
	}
	if got := reg.Counter("rac_fleet_warm_starts_total", "", nil).Value(); got != 0 {
		t.Fatalf("warm_starts after training = %d, want 0", got)
	}

	// Second tenant in the same context warm-starts from it.
	b, err := f.Admit(analyticSpec("follower"))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Status().WarmStarted {
		t.Fatal("context-matched tenant did not warm-start")
	}
	if b.Agent().Policy() == nil || b.Agent().Policy().Name() != key {
		t.Fatalf("warm-started tenant policy = %v, want %q", b.Agent().Policy(), key)
	}
	if got := reg.Counter("rac_fleet_warm_starts_total", "", nil).Value(); got != 1 {
		t.Fatalf("warm_starts = %d, want 1", got)
	}

	// Opt-out tenants cold-start even when a policy exists.
	c, err := f.Admit(TenantSpec{Name: "loner", Backend: "analytic", NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Status().WarmStarted || c.Agent().Policy() != nil {
		t.Fatal("NoWarmStart tenant received a policy")
	}
	if got := reg.Counter("rac_fleet_warm_starts_total", "", nil).Value(); got != 1 {
		t.Fatalf("warm_starts after opt-out = %d, want 1", got)
	}
}

func TestFleetKillRestartMatchesUninterruptedRun(t *testing.T) {
	const (
		totalRounds = 20
		killAfter   = 12 // latest surviving checkpoint is interval 10
		cadence     = 5
	)
	specs := []TenantSpec{analyticSpec("shop-a"), analyticSpec("shop-b")}

	// Reference: one uninterrupted fleet, no checkpointing.
	ref, err := New(Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, err := ref.Admit(sp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Run(totalRounds); err != nil {
		t.Fatal(err)
	}

	// Interrupted: run to the kill point and abandon the fleet without any
	// drain — exactly what SIGKILL leaves behind.
	dir := t.TempDir()
	f1, err := New(Options{Seed: 77, CheckpointDir: dir, CheckpointEvery: cadence})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, err := f1.Admit(sp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f1.Run(killAfter); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new fleet over the same checkpoint directory restores
	// each tenant at interval 10 and replays the lost rounds.
	reg := telemetry.NewRegistry()
	f2, err := New(Options{Seed: 77, CheckpointDir: dir, CheckpointEvery: cadence, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		tn, err := f2.Admit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if !tn.Status().Restored || tn.Interval() != 10 {
			t.Fatalf("tenant %s restored=%v interval=%d, want restored at 10",
				sp.Name, tn.Status().Restored, tn.Interval())
		}
	}
	if got := reg.Counter("rac_fleet_restores_total", "", nil).Value(); got != 2 {
		t.Fatalf("rac_fleet_restores_total = %d, want 2", got)
	}
	if _, err := f2.Run(totalRounds - 10); err != nil {
		t.Fatal(err)
	}

	// The resumed tenants must land on byte-identical learned state.
	for _, sp := range specs {
		want := exportAgent(t, ref.Tenant(sp.Name))
		got := exportAgent(t, f2.Tenant(sp.Name))
		if !bytes.Equal(want, got) {
			t.Errorf("tenant %s: resumed state differs from the uninterrupted run", sp.Name)
		}
		refLog := ref.Tenant(sp.Name).StepLog()
		gotLog := f2.Tenant(sp.Name).StepLog()
		replay := refLog[10:]
		if len(gotLog) != len(replay) {
			t.Fatalf("tenant %s: %d replayed records, want %d", sp.Name, len(gotLog), len(replay))
		}
		for i := range replay {
			if gotLog[i] != replay[i] {
				t.Errorf("tenant %s: replayed step %d = %+v, want %+v", sp.Name, i, gotLog[i], replay[i])
			}
		}
	}
}

func TestFleetRestartFallsBackPastCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f1, err := New(Options{Seed: 5, CheckpointDir: dir, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Admit(analyticSpec("shop-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Run(12); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot (interval 10) in place.
	_, path, err := f1.Checkpoints().Latest("shop-a")
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("RACFLTCK totally not a checkpoint")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	f2, err := New(Options{Seed: 5, CheckpointDir: dir, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := f2.Admit(analyticSpec("shop-a"))
	if err != nil {
		t.Fatal(err)
	}
	if !tn.Status().Restored || tn.Interval() != 5 {
		t.Fatalf("restored=%v interval=%d, want fallback restore at 5",
			tn.Status().Restored, tn.Interval())
	}
}

func TestFleetAdminHTTP(t *testing.T) {
	f, err := New(Options{Seed: 3, CheckpointDir: t.TempDir(), RegistryDir: t.TempDir(), TrainInit: fastTrain()})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := f.Admit(TenantSpec{Name: "shop-a", Backend: "analytic", TrainPolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(analyticSpec("shop-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(3); err != nil {
		t.Fatal(err)
	}
	h := f.Handler()

	do := func(method, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec
	}

	rec := do("GET", "/admin/fleet")
	if rec.Code != 200 {
		t.Fatalf("list: %d %s", rec.Code, rec.Body)
	}
	var view FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Rounds != 3 || len(view.Tenants) != 2 || view.Active != 2 {
		t.Fatalf("list view = %+v", view)
	}
	if len(view.Policies) != 1 {
		t.Fatalf("list view policies = %v, want the trained context", view.Policies)
	}

	rec = do("GET", "/admin/fleet/shop-b")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"state":"running"`) {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}
	if rec := do("GET", "/admin/fleet/ghost"); rec.Code != 404 {
		t.Fatalf("unknown tenant status: %d", rec.Code)
	}

	if rec := do("POST", "/admin/fleet/shop-b/pause"); rec.Code != 200 {
		t.Fatalf("pause: %d %s", rec.Code, rec.Body)
	}
	if rec := do("POST", "/admin/fleet/shop-b/pause"); rec.Code != 409 {
		t.Fatalf("double pause: %d, want 409", rec.Code)
	}
	if rec := do("POST", "/admin/fleet/shop-b/resume"); rec.Code != 200 {
		t.Fatalf("resume: %d %s", rec.Code, rec.Body)
	}

	if rec := do("POST", "/admin/fleet/shop-a/checkpoint"); rec.Code != 200 {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body)
	}
	if ck, _, err := f.Checkpoints().Latest("shop-a"); err != nil || ck == nil {
		t.Fatalf("manual checkpoint not on disk: %v", err)
	}

	// Force-switch shop-b onto the policy shop-a trained.
	key := trainer.ContextKey()
	if rec := do("POST", "/admin/fleet/shop-b/policy?key="+key); rec.Code != 200 {
		t.Fatalf("policy: %d %s", rec.Code, rec.Body)
	}
	if p := f.Tenant("shop-b").Agent().Policy(); p == nil || p.Name() != key {
		t.Fatalf("forced policy = %v, want %q", p, key)
	}
	if rec := do("POST", "/admin/fleet/shop-b/policy?key=unknown-ctx"); rec.Code != 404 {
		t.Fatalf("unknown policy: %d, want 404", rec.Code)
	}
	if rec := do("POST", "/admin/fleet/shop-b/policy"); rec.Code != 400 {
		t.Fatalf("missing key: %d, want 400", rec.Code)
	}

	if rec := do("POST", "/admin/fleet/shop-b/drain"); rec.Code != 200 {
		t.Fatalf("drain: %d %s", rec.Code, rec.Body)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	rec = do("GET", "/admin/fleet/shop-b")
	if !strings.Contains(rec.Body.String(), `"state":"stopped"`) {
		t.Fatalf("drained status: %s", rec.Body)
	}
}

func TestFleetForcePolicyResetsLearning(t *testing.T) {
	f, err := New(Options{Seed: 21, RegistryDir: t.TempDir(), TrainInit: fastTrain()})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := f.Admit(TenantSpec{Name: "shop-a", Backend: "analytic", TrainPolicy: true, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if tn.Agent().Policy() != nil {
		t.Fatal("NoWarmStart tenant started with a policy")
	}
	if _, err := f.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := f.ForcePolicy("shop-a", tn.ContextKey()); err != nil {
		t.Fatal(err)
	}
	if p := tn.Agent().Policy(); p == nil || p.Name() != tn.ContextKey() {
		t.Fatalf("policy after force = %v", p)
	}
	if _, err := f.Run(1); err != nil {
		t.Fatal(err)
	}
	log := tn.StepLog()
	if got := log[len(log)-1].Policy; got != tn.ContextKey() {
		t.Fatalf("step after force reports policy %q", got)
	}
	if err := f.ForcePolicy("shop-a", "never-trained"); err == nil {
		t.Fatal("unknown context key accepted")
	}
}

// TestFleetScenarioTenant drives one tenant with the two-phase ramp scenario:
// every step must see that interval's workload applied to the backend, emit a
// workload trace event, and cross into the climb phase on schedule.
func TestFleetScenarioTenant(t *testing.T) {
	trace := telemetry.NewTrace(64)
	f, err := New(Options{Seed: 9, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	spec := analyticSpec("shop-a")
	spec.Scenario = "ramp"
	tn, err := f.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp: 4 idle intervals at 400 browsing clients, then the climb.
	if _, err := f.Run(6); err != nil {
		t.Fatal(err)
	}
	if tn.Interval() != 6 {
		t.Fatalf("interval = %d after 6 rounds, want 6", tn.Interval())
	}
	var events []telemetry.Event
	for _, ev := range trace.Snapshot() {
		if ev.Kind == telemetry.KindWorkload {
			events = append(events, ev)
		}
	}
	if len(events) != 6 {
		t.Fatalf("trace has %d workload events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Iteration != i+1 || ev.OfferedRate <= 0 {
			t.Fatalf("workload event %d = %+v", i, ev)
		}
	}
	if events[0].Detail != "idle" || events[5].Detail != "climb" {
		t.Fatalf("phases %q … %q, want idle … climb", events[0].Detail, events[5].Detail)
	}
	// Offered load climbs past the idle plateau once the ramp starts.
	if events[5].OfferedRate <= events[0].OfferedRate {
		t.Fatalf("offered rate did not climb: %.1f → %.1f",
			events[0].OfferedRate, events[5].OfferedRate)
	}

	// A scenario no backend can follow — or that does not exist — is an
	// admission error, not a runtime surprise.
	bad := analyticSpec("shop-x")
	bad.Scenario = "no-such-scenario"
	if _, err := f.Admit(bad); err == nil {
		t.Fatal("unknown scenario admitted")
	}
}

// TestFleetCapacityTenant covers the elastic-capacity tenant end to end:
// admission wraps the backend in the decorator, the status surfaces the level
// and scale counters, spec validation rejects orphaned capacity parameters,
// and a scale warm-starts the agent from the registry policy trained for the
// new level (SQLR-style per-level policy memory).
func TestFleetCapacityTenant(t *testing.T) {
	f, err := New(Options{Seed: 7, RegistryDir: t.TempDir(), TrainInit: fastTrain(),
		Telemetry: telemetry.NewRegistry(), Trace: telemetry.NewTrace(128)})
	if err != nil {
		t.Fatal(err)
	}

	bad := analyticSpec("shop-bad")
	bad.CapacityCost = 0.05 // without Capacity
	if _, err := f.Admit(bad); err == nil {
		t.Fatal("capacity parameters without capacity admitted")
	}

	spec := analyticSpec("shop-cap")
	spec.Capacity = true
	spec.CapacityCost = 0.05
	tn, err := f.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Capacity() == nil {
		t.Fatal("capacity tenant has no decorator")
	}
	st := tn.Status()
	if st.Level == "" || st.CapacityUnits != 0 || st.ScaleUps != 0 {
		t.Fatalf("admission status %+v, want level set and zero counters", st)
	}

	if _, err := f.Run(3); err != nil {
		t.Fatal(err)
	}
	st = tn.Status()
	if want := 3 * tn.Capacity().Ordinal(); st.CapacityUnits != want {
		t.Fatalf("capacity units %d after 3 rounds at ordinal %d, want %d",
			st.CapacityUnits, tn.Capacity().Ordinal(), want)
	}

	// Publish a policy for the neighbouring level, scale to it, and check the
	// post-round hook adopts that policy.
	target := tn.Capacity().Ordinal() - 1
	if target < vmenv.MinOrdinal {
		target = tn.Capacity().Ordinal() + 1
	}
	lvl, err := vmenv.ByOrdinal(target)
	if err != nil {
		t.Fatal(err)
	}
	ctx := system.Context{Workload: tn.ctx.Workload, Level: lvl}
	key := ContextKey(ctx)
	pol, err := f.trainPolicy(spec, ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.registry.Put(key, pol); err != nil {
		t.Fatal(err)
	}
	if err := tn.Capacity().SetAppLevel(lvl); err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	if p := tn.Agent().Policy(); p == nil || p.Name() != key {
		t.Fatalf("agent policy after scale = %v, want %s", p, key)
	}
	if st = tn.Status(); st.Level != lvl.Name {
		t.Fatalf("status level %q after scale, want %q", st.Level, lvl.Name)
	}
}
