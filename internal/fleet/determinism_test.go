package fleet

import (
	"bytes"
	"testing"
)

// runFleet executes a fresh 5-tenant fleet (one with elastic capacity) at
// the given worker count and returns each tenant's full step log and final
// serialized agent state.
func runFleet(t *testing.T, procs, rounds int) (map[string][]StepRecord, map[string][]byte) {
	t.Helper()
	f, err := New(Options{Seed: 1234, Procs: procs, RegistryDir: t.TempDir(), TrainInit: fastTrain()})
	if err != nil {
		t.Fatal(err)
	}
	specs := []TenantSpec{
		{Name: "alpha", Backend: "analytic", Context: "context-1", NoiseSigma: 0.2, TrainPolicy: true},
		{Name: "beta", Backend: "analytic", Context: "context-2", NoiseSigma: 0.2, TrainPolicy: true},
		{Name: "gamma", Backend: "analytic", Context: "context-1", NoiseSigma: 0.1},
		{Name: "delta", Backend: "analytic", Context: "context-3", NoiseSigma: 0.3},
		{Name: "epsilon", Backend: "analytic", Context: "context-2", NoiseSigma: 0.2,
			Capacity: true, CapacityCost: 0.05},
	}
	for _, sp := range specs {
		if _, err := f.Admit(sp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Run(rounds); err != nil {
		t.Fatal(err)
	}
	logs := make(map[string][]StepRecord, len(specs))
	states := make(map[string][]byte, len(specs))
	for _, sp := range specs {
		tn := f.Tenant(sp.Name)
		logs[sp.Name] = tn.StepLog()
		states[sp.Name] = exportAgent(t, tn)
	}
	return logs, states
}

// TestFleetDeterministicAcrossProcs is the fleet determinism regression: a
// 5-tenant fleet produces identical per-tenant step logs and byte-identical
// final Q-tables whether rounds run on one worker or eight. Tenant streams
// are pre-split by name and rounds are barrier-synchronized, so scheduling
// interleaving must not be observable.
func TestFleetDeterministicAcrossProcs(t *testing.T) {
	const rounds = 15
	logs1, states1 := runFleet(t, 1, rounds)
	logs8, states8 := runFleet(t, 8, rounds)

	for name, log1 := range logs1 {
		log8 := logs8[name]
		if len(log1) != len(log8) {
			t.Fatalf("tenant %s: %d records at procs=1, %d at procs=8", name, len(log1), len(log8))
		}
		for i := range log1 {
			if log1[i] != log8[i] {
				t.Errorf("tenant %s step %d: procs=1 %+v, procs=8 %+v", name, i, log1[i], log8[i])
			}
		}
		if !bytes.Equal(states1[name], states8[name]) {
			t.Errorf("tenant %s: final agent state differs between procs=1 and procs=8", name)
		}
	}
}
