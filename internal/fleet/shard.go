package fleet

import (
	"hash/fnv"
	"sync"

	"github.com/rac-project/rac/internal/telemetry"
)

// shardJob is one queued cross-shard operation (checkpoint, drain, policy
// override) waiting for the shard's scheduling gap.
type shardJob struct {
	op   func() error
	done chan error
}

// shard owns a deterministic subset of the fleet's tenants: names hash onto
// shards, and each shard advances its tenants sequentially in admission order
// while the shards themselves run concurrently on the worker pool. Admin
// operations targeting a tenant ride the owning shard's mailbox instead of a
// fleet-wide lock — an idle shard runs them inline, a mid-round shard drains
// them between tenant steps — so a checkpoint of one tenant never waits for
// the rest of the fleet.
type shard struct {
	id int

	// runMu is held while the shard advances tenants (a round) or runs a
	// mailbox job inline; it guarantees at most one goroutine touches a
	// tenant's agent at a time.
	runMu sync.Mutex

	mu      sync.Mutex
	tenants []*Tenant // shard admission order — the shard's iteration order
	mailbox []shardJob

	// stepSeconds is the shard-aggregate step latency histogram serving
	// tenants past the fleet's per-tenant metric cardinality cap.
	stepSeconds *telemetry.Histogram
}

// shardOf maps a tenant name onto one of n shards. The hash depends only on
// the name, so a tenant's shard is stable under fleet growth at a fixed
// shard count.
func shardOf(name string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// add appends a tenant to the shard's admission order.
func (s *shard) add(t *Tenant) {
	s.mu.Lock()
	s.tenants = append(s.tenants, t)
	s.mu.Unlock()
}

// snapshot copies the shard's tenant list.
func (s *shard) snapshot() []*Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Tenant, len(s.tenants))
	copy(out, s.tenants)
	return out
}

// pendingOps reports the mailbox depth (admin API diagnostics).
func (s *shard) pendingOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mailbox)
}

// do runs op under the shard's run lock: inline when the shard is idle,
// otherwise queued on the mailbox and executed by the current lock holder at
// its next scheduling gap (between tenant steps, or at round end). It returns
// op's error either way.
func (s *shard) do(op func() error) error {
	s.mu.Lock()
	if s.runMu.TryLock() {
		s.mu.Unlock()
		err := op()
		s.drainMailbox()
		s.runMu.Unlock()
		s.flush()
		return err
	}
	job := shardJob{op: op, done: make(chan error, 1)}
	s.mailbox = append(s.mailbox, job)
	s.mu.Unlock()
	return <-job.done
}

// drainMailbox runs every queued job. Callers must hold runMu.
func (s *shard) drainMailbox() {
	for {
		s.mu.Lock()
		if len(s.mailbox) == 0 {
			s.mu.Unlock()
			return
		}
		job := s.mailbox[0]
		s.mailbox = s.mailbox[1:]
		s.mu.Unlock()
		job.done <- job.op()
	}
}

// flush clears jobs that slipped into the mailbox after the caller's final
// pre-unlock drain: whoever holds runMu next is responsible for them, and if
// nobody does, flush takes the lock and drains itself. Every runMu holder
// calls flush after unlocking, so no job waits on an idle shard.
func (s *shard) flush() {
	for {
		s.mu.Lock()
		if len(s.mailbox) == 0 {
			s.mu.Unlock()
			return
		}
		if !s.runMu.TryLock() {
			// A new holder owns the lock; its drain/flush picks the jobs up.
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.drainMailbox()
		s.runMu.Unlock()
	}
}

// runRound advances every running tenant of the shard once, sequentially in
// shard admission order, draining the mailbox between steps so admin
// operations see bounded latency even mid-round. Post-step bookkeeping
// (capacity warm starts, due checkpoints, drain completion) also runs here,
// in the same deterministic order; the shard's errors are returned.
// Policy-store mutations discovered during bookkeeping are deferred to the
// fleet's round barrier (Fleet.applyPendingPolicies), so in-flight store
// reads on other shards never observe a mid-round add.
func (s *shard) runRound(f *Fleet) []error {
	var errs []error
	s.runMu.Lock()
	s.drainMailbox()
	tenants := s.snapshot()
	for _, t := range tenants {
		if t.State() == StateRunning {
			t.step(f.runCtx)
		}
		s.drainMailbox()
	}
	for _, t := range tenants {
		switch t.State() {
		case StateRunning:
			if err := f.capacityWarmStart(t); err != nil {
				errs = append(errs, err)
			}
			if f.ckpts != nil && t.checkpointDue(f.opts.CheckpointEvery) {
				if err := f.checkpoint(t, "periodic"); err != nil {
					errs = append(errs, err)
				}
			}
		case StateDraining:
			if f.ckpts != nil {
				if err := f.checkpoint(t, "final"); err != nil {
					errs = append(errs, err)
				}
			}
			f.transition(t, StateStopped, "drained")
		case StateFailed:
			if t.failedNeedsGauge() {
				f.updateGauges()
			}
		}
		s.drainMailbox()
	}
	s.runMu.Unlock()
	s.flush()
	return errs
}
