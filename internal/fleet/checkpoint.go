package fleet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/rac-project/rac/internal/core"
)

// Checkpoint is one tenant's durable snapshot: everything the fleet needs to
// warm-restart the tenant after a crash or planned restart. The agent state
// carries the live Q-table, the last-known-good configuration, the violation
// counters and the context-detector window; the system blob (when the backend
// is snapshottable) carries the measurement stream mid-sequence.
type Checkpoint struct {
	// Tenant is the owning tenant's name.
	Tenant string `json:"tenant"`
	// Spec is the tenant's admission spec, so a restarted daemon can detect
	// config drift between the checkpoint and its config file.
	Spec TenantSpec `json:"spec"`
	// Interval is the number of completed measurement intervals.
	Interval int `json:"interval"`
	// WarmStarted records that the tenant started from a registry policy.
	WarmStarted bool `json:"warm_started,omitempty"`
	// Agent is the complete agent state (core.Agent.ExportState).
	Agent *core.AgentState `json:"agent"`
	// System is the backend's opaque state blob when it implements
	// system.Snapshottable; nil otherwise.
	System []byte `json:"system,omitempty"`
}

// Checkpoint file envelope: a fixed header in front of a JSON payload.
//
//	offset  size  field
//	0       8     magic "RACFLTCK"
//	8       4     format version (little endian)
//	12      8     payload length in bytes (little endian)
//	20      4     IEEE CRC-32 of the payload (little endian)
//	24      —     payload (JSON Checkpoint)
//
// The CRC catches torn or bit-rotted files; the explicit length catches
// truncation even when the truncated payload happens to be valid JSON.
const (
	checkpointMagic   = "RACFLTCK"
	checkpointVersion = 1
	checkpointHeader  = 8 + 4 + 8 + 4
	checkpointExt     = ".rac"
)

// ErrCorruptCheckpoint reports a checkpoint file that failed envelope
// validation (bad magic, version, length or CRC). Loaders fall back to the
// previous snapshot when they see it.
var ErrCorruptCheckpoint = errors.New("fleet: corrupt checkpoint")

// encodeCheckpoint renders the envelope bytes.
func encodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(ck)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode checkpoint: %w", err)
	}
	buf := make([]byte, checkpointHeader+len(payload))
	copy(buf[0:8], checkpointMagic)
	binary.LittleEndian.PutUint32(buf[8:12], checkpointVersion)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(payload))
	copy(buf[checkpointHeader:], payload)
	return buf, nil
}

// decodeCheckpoint validates the envelope and unmarshals the payload. All
// validation failures wrap ErrCorruptCheckpoint.
func decodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < checkpointHeader {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorruptCheckpoint, len(buf))
	}
	if string(buf[0:8]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptCheckpoint, buf[0:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != checkpointVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorruptCheckpoint, v, checkpointVersion)
	}
	length := binary.LittleEndian.Uint64(buf[12:20])
	payload := buf[checkpointHeader:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorruptCheckpoint, len(payload), length)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(buf[20:24]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorruptCheckpoint)
	}
	var ck Checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if ck.Agent == nil {
		return nil, fmt.Errorf("%w: no agent state", ErrCorruptCheckpoint)
	}
	return &ck, nil
}

// ReadCheckpointFile loads and validates one checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(buf)
}

// CheckpointStore writes and prunes per-tenant checkpoint files under one
// directory (one subdirectory per tenant, one file per snapshot, newest
// interval wins). Writes are atomic: the envelope lands in a temp file that
// is fsynced and renamed into place, so a crash mid-write leaves the previous
// snapshot intact.
type CheckpointStore struct {
	dir  string
	keep int
}

// NewCheckpointStore roots a store at dir (created if missing), retaining the
// newest keep snapshots per tenant (minimum 2, so one corrupt write never
// leaves a tenant without a fallback).
func NewCheckpointStore(dir string, keep int) (*CheckpointStore, error) {
	if dir == "" {
		return nil, errors.New("fleet: empty checkpoint directory")
	}
	if keep < 2 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir, keep: keep}, nil
}

// Dir returns the store's root directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// tenantDir returns the per-tenant subdirectory, filesystem-safe.
func (s *CheckpointStore) tenantDir(tenant string) string {
	return filepath.Join(s.dir, sanitizeName(tenant))
}

// checkpointPath names the snapshot file for one interval.
func (s *CheckpointStore) checkpointPath(tenant string, interval int) string {
	return filepath.Join(s.tenantDir(tenant), fmt.Sprintf("ckpt-%010d%s", interval, checkpointExt))
}

// Write persists ck atomically and prunes snapshots beyond the retention
// count. It returns the final file path.
func (s *CheckpointStore) Write(ck *Checkpoint) (string, error) {
	if ck == nil || ck.Tenant == "" {
		return "", errors.New("fleet: checkpoint without a tenant")
	}
	buf, err := encodeCheckpoint(ck)
	if err != nil {
		return "", err
	}
	dir := s.tenantDir(ck.Tenant)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fleet: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("fleet: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("fleet: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("fleet: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("fleet: checkpoint close: %w", err)
	}
	final := s.checkpointPath(ck.Tenant, ck.Interval)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("fleet: checkpoint rename: %w", err)
	}
	s.prune(ck.Tenant)
	return final, nil
}

// prune deletes the oldest snapshots beyond the retention count. Best
// effort: pruning failures never fail a write.
func (s *CheckpointStore) prune(tenant string) {
	files := s.files(tenant)
	for i := 0; i < len(files)-s.keep; i++ {
		os.Remove(files[i])
	}
}

// files lists the tenant's snapshot files sorted oldest first. The
// zero-padded interval in the name makes lexical order interval order.
func (s *CheckpointStore) files(tenant string) []string {
	entries, err := os.ReadDir(s.tenantDir(tenant))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "ckpt-") || !strings.HasSuffix(e.Name(), checkpointExt) {
			continue
		}
		out = append(out, filepath.Join(s.tenantDir(tenant), e.Name()))
	}
	sort.Strings(out)
	return out
}

// Latest returns the newest checkpoint for the tenant that passes envelope
// validation, skipping corrupt or truncated files (newest first). It returns
// (nil, "", nil) when the tenant has no valid snapshot at all — a cold start,
// not an error.
func (s *CheckpointStore) Latest(tenant string) (*Checkpoint, string, error) {
	files := s.files(tenant)
	for i := len(files) - 1; i >= 0; i-- {
		ck, err := ReadCheckpointFile(files[i])
		if err != nil {
			if errors.Is(err, ErrCorruptCheckpoint) {
				continue // fall back to the previous snapshot
			}
			return nil, "", err
		}
		return ck, files[i], nil
	}
	return nil, "", nil
}

// Tenants lists tenant names that have at least one snapshot file on disk.
func (s *CheckpointStore) Tenants() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// sanitizeName maps an arbitrary tenant or registry key to a filesystem-safe
// file name, preserving the common identifier characters.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '@':
			b.WriteRune(r)
		default:
			b.WriteString("_x" + strconv.FormatInt(int64(r), 16))
		}
	}
	return b.String()
}
