package fleet

import "errors"

// Validation and operation sentinels. Callers branch on these with errors.Is
// instead of matching message strings; every fleet API error wraps exactly
// one (the loadgen.Options idiom). The admin HTTP layer maps them onto
// status codes and structured error bodies.
var (
	// ErrBadOptions marks an invalid fleet Options field.
	ErrBadOptions = errors.New("fleet: invalid options")
	// ErrBadShards marks an invalid shard count.
	ErrBadShards = errors.New("fleet: invalid shard count")
	// ErrBadSpec marks an invalid TenantSpec.
	ErrBadSpec = errors.New("fleet: invalid tenant spec")
	// ErrDuplicateTenant marks admission of a name the fleet already holds.
	ErrDuplicateTenant = errors.New("fleet: tenant already admitted")
	// ErrUnknownTenant marks an operation on a name the fleet does not hold.
	ErrUnknownTenant = errors.New("fleet: unknown tenant")
	// ErrBadTransition marks a lifecycle move the tenant FSM forbids.
	ErrBadTransition = errors.New("fleet: illegal lifecycle transition")
	// ErrNoPolicy marks a context key with no stored policy.
	ErrNoPolicy = errors.New("fleet: no policy for context")
	// ErrCheckpointsDisabled marks a checkpoint request on a fleet built
	// without a checkpoint directory.
	ErrCheckpointsDisabled = errors.New("fleet: checkpointing disabled")
)
