package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/rac-project/rac/internal/capacity"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/workload"
)

// State is a tenant's lifecycle FSM state. Legal transitions:
//
//	starting → running            (admission completes)
//	running  ⇄ paused             (admin pause/resume)
//	running | paused → draining   (admin drain or fleet shutdown)
//	draining → stopped            (final checkpoint written)
//	any      → failed             (Step returned a non-recoverable error)
type State string

// The tenant lifecycle states.
const (
	StateStarting State = "starting"
	StateRunning  State = "running"
	StatePaused   State = "paused"
	StateDraining State = "draining"
	StateStopped  State = "stopped"
	StateFailed   State = "failed"
)

// States lists the lifecycle states in FSM order, for gauges and docs.
func States() []State {
	return []State{StateStarting, StateRunning, StatePaused, StateDraining, StateStopped, StateFailed}
}

// TenantSpec describes one managed system: what backend to build, which
// paper context it runs in, its SLA, and how it participates in the fleet's
// checkpoint and warm-start machinery. The zero values of optional fields
// inherit fleet defaults. Specs serialize to JSON as entries of the racd
// config file.
type TenantSpec struct {
	// Name uniquely identifies the tenant within the fleet.
	Name string `json:"name"`
	// Backend selects the managed system: "sim" (discrete-event webtier
	// model), "analytic" (MVA queueing surface), or any value understood by a
	// custom SystemBuilder (racd adds "live"). Default "sim".
	Backend string `json:"backend,omitempty"`
	// Context is the paper context name ("context-1" … "context-6") the
	// tenant's system starts in. Default "context-1".
	Context string `json:"context,omitempty"`
	// SLASeconds overrides the fleet's SLA for this tenant when positive.
	SLASeconds float64 `json:"slaSeconds,omitempty"`
	// Seed drives the tenant's RNG streams. Zero derives a stable seed from
	// the fleet seed and the tenant name.
	Seed uint64 `json:"seed,omitempty"`
	// Faults wraps the system in the fault-injection layer with the scenario
	// at this path and enables the agent's resilience policy.
	Faults string `json:"faults,omitempty"`
	// NoiseSigma adds lognormal measurement noise (analytic backend only).
	NoiseSigma float64 `json:"noiseSigma,omitempty"`
	// SettleSeconds and MeasureSeconds override the sim backend's virtual
	// measurement windows when positive (smoke tests shrink them).
	SettleSeconds  float64 `json:"settleSeconds,omitempty"`
	MeasureSeconds float64 `json:"measureSeconds,omitempty"`
	// CheckpointEvery overrides the fleet checkpoint cadence (intervals
	// between snapshots) for this tenant when positive.
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
	// Scenario drives a time-varying workload: a library scenario name
	// ("diurnal", "flashcrowd", "mixdrift", "ramp", "steady") or a JSON
	// scenario file path. The scenario advances one scenario interval per
	// completed agent step; each interval's workload is applied to the
	// backend before the step measures it, so the agent tunes against the
	// moving load. For "live" tenants racd additionally compiles the
	// scenario into the open-loop arrival schedule — size MeasureSeconds so
	// one wall interval covers one scenario interval (wall seconds × the
	// 100× time compression = Scenario.IntervalSeconds).
	Scenario string `json:"scenario,omitempty"`
	// Rate switches a "live" tenant's load generator to the open-loop engine:
	// offered load in paper-scale requests per second. Zero keeps the
	// closed-loop emulated browsers.
	Rate float64 `json:"rate,omitempty"`
	// Arrival selects the open-loop arrival process ("poisson" or "uniform";
	// empty means poisson).
	Arrival string `json:"arrival,omitempty"`
	// LoadShards and LoadInFlight tune the open-loop engine's accounting
	// shards and admission bound (0 = engine defaults).
	LoadShards   int `json:"loadShards,omitempty"`
	LoadInFlight int `json:"loadInFlight,omitempty"`
	// AdmitConcurrency and AdmitQueue set the SLO admission gate's caps on a
	// "sim" tenant whose configuration space does not already include the
	// admission parameters (the lattice wins when it does). Zero both leaves
	// the gate disabled — byte-identical to a fleet without the gate.
	AdmitConcurrency int `json:"admitConcurrency,omitempty"`
	AdmitQueue       int `json:"admitQueue,omitempty"`
	// AdmitEpoch sets the gate's adaptive epoch in requests (0 = no
	// epoch-adaptive scaling).
	AdmitEpoch int `json:"admitEpoch,omitempty"`
	// Capacity wraps the backend in the elastic capacity decorator: a
	// saturation analyzer scales the VM level between the agent's retrains,
	// and each applied scale warm-starts the agent from the registry policy
	// learned at the new level's context when one exists (SQLR-style
	// per-level policy memory).
	Capacity bool `json:"capacity,omitempty"`
	// CapacityInitial is the starting capacity ordinal (1 = Level-3 … 3 =
	// Level-1); 0 starts at the tenant context's level.
	CapacityInitial int `json:"capacityInitial,omitempty"`
	// CapacityDelay is the scale-up provisioning delay in measurement
	// intervals (scale-downs always apply on the next interval).
	CapacityDelay int `json:"capacityDelay,omitempty"`
	// CapacityCost prices the VM level into the agent's reward, per
	// level·interval; 0 leaves capacity unpriced.
	CapacityCost float64 `json:"capacityCost,omitempty"`
	// TrainPolicy trains an initial policy for the tenant's context at
	// admission (fast, on the analytic surface) and publishes it to the
	// shared registry when the context has none yet.
	TrainPolicy bool `json:"trainPolicy,omitempty"`
	// NoWarmStart opts the tenant out of registry warm starts — it always
	// cold-starts, even when a context-matched policy exists.
	NoWarmStart bool `json:"noWarmStart,omitempty"`
}

// Validate checks the spec's standalone fields (backend strings are resolved
// later by the system builder, which knows the supported set). Every failure
// wraps ErrBadSpec.
func (sp TenantSpec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("%w: tenant without a name", ErrBadSpec)
	}
	if sp.SLASeconds < 0 {
		return fmt.Errorf("%w: tenant %s: negative SLA %v", ErrBadSpec, sp.Name, sp.SLASeconds)
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("%w: tenant %s: negative checkpoint interval %d", ErrBadSpec, sp.Name, sp.CheckpointEvery)
	}
	if sp.AdmitConcurrency < 0 || sp.AdmitQueue < 0 || sp.AdmitEpoch < 0 {
		return fmt.Errorf("%w: tenant %s: negative admission gate parameter", ErrBadSpec, sp.Name)
	}
	if sp.CapacityInitial < 0 || sp.CapacityDelay < 0 || sp.CapacityCost < 0 {
		return fmt.Errorf("%w: tenant %s: negative capacity parameter", ErrBadSpec, sp.Name)
	}
	if !sp.Capacity && (sp.CapacityInitial != 0 || sp.CapacityDelay != 0 || sp.CapacityCost != 0) {
		return fmt.Errorf("%w: tenant %s: capacity parameters set without capacity", ErrBadSpec, sp.Name)
	}
	return nil
}

// StepRecord is one line of a tenant's in-memory step log: the compact,
// deterministic digest the determinism regression test compares across
// -procs values.
type StepRecord struct {
	Iteration int     `json:"iteration"`
	Config    string  `json:"config"`
	MeanRT    float64 `json:"mean_rt"`
	Reward    float64 `json:"reward"`
	Invalid   bool    `json:"invalid,omitempty"`
	Switched  bool    `json:"switched,omitempty"`
	Policy    string  `json:"policy,omitempty"`
}

// TenantStatus is the admin API's view of one tenant.
type TenantStatus struct {
	Name        string  `json:"name"`
	State       State   `json:"state"`
	Backend     string  `json:"backend"`
	Context     string  `json:"context"`
	ContextKey  string  `json:"context_key"`
	Interval    int     `json:"interval"`
	Policy      string  `json:"policy,omitempty"`
	WarmStarted bool    `json:"warm_started,omitempty"`
	Restored    bool    `json:"restored,omitempty"`
	LastRT      float64 `json:"last_rt,omitempty"`
	LastReward  float64 `json:"last_reward,omitempty"`
	Violations  int     `json:"violations,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
	Checkpoints int     `json:"checkpoints,omitempty"`
	// Capacity fields are set for tenants running the elastic decorator.
	Level         string `json:"level,omitempty"`
	CapacityUnits int    `json:"capacity_units,omitempty"`
	ScaleUps      int    `json:"scale_ups,omitempty"`
	ScaleDowns    int    `json:"scale_downs,omitempty"`
}

// Tenant is one managed system inside the fleet: a backend system, the RAC
// agent tuning it, and lifecycle/checkpoint bookkeeping. All mutable state is
// guarded by mu; the fleet's round scheduler steps at most one goroutine per
// tenant at a time.
type Tenant struct {
	mu sync.Mutex

	spec       TenantSpec
	contextKey string
	ctx        system.Context // admission context; scales re-key it by level
	state      State
	sys        system.System
	agent      *core.Agent
	seq        *workload.Sequencer // non-nil when spec.Scenario drives the load
	shard      *shard              // owning scheduling shard (admin ops ride its mailbox)
	trace      *telemetry.Trace    // fleet trace; receives per-interval workload events

	capSys     *capacity.System // elastic decorator; nil without spec.Capacity
	capOrdinal int              // last capacity ordinal the warm-start hook acted on

	interval    int // completed measurement intervals
	checkpoints int // snapshots written for this tenant
	warmStarted bool
	restored    bool
	failedSeen  bool // failure already reflected in the state gauges
	lastStep    core.StepResult
	lastErr     error

	stepLog    []StepRecord
	stepLogCap int

	stepSeconds *telemetry.Histogram // per-tenant step latency; nil without telemetry
}

// Spec returns the tenant's admission spec.
func (t *Tenant) Spec() TenantSpec {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spec
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.spec.Name }

// ContextKey returns the registry key of the tenant's admission context.
func (t *Tenant) ContextKey() string { return t.contextKey }

// State returns the current lifecycle state.
func (t *Tenant) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Agent exposes the tenant's agent for diagnostics and tests.
func (t *Tenant) Agent() *core.Agent { return t.agent }

// System exposes the tenant's managed system for diagnostics and tests.
func (t *Tenant) System() system.System { return t.sys }

// Interval returns the number of completed measurement intervals.
func (t *Tenant) Interval() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.interval
}

// Status snapshots the tenant for the admin API.
func (t *Tenant) Status() TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStatus{
		Name:        t.spec.Name,
		State:       t.state,
		Backend:     t.spec.Backend,
		Context:     t.spec.Context,
		ContextKey:  t.contextKey,
		Interval:    t.interval,
		WarmStarted: t.warmStarted,
		Restored:    t.restored,
		LastRT:      t.lastStep.MeanRT,
		LastReward:  t.lastStep.Reward,
		Violations:  t.lastStep.Violations,
		Checkpoints: t.checkpoints,
	}
	if p := t.agent.Policy(); p != nil {
		st.Policy = p.Name()
	}
	if t.lastErr != nil {
		st.LastError = t.lastErr.Error()
	}
	if c := t.capSys; c != nil {
		st.Level = c.AppLevel().Name
		st.CapacityUnits = c.TotalCost()
		st.ScaleUps = c.ScaleUps()
		st.ScaleDowns = c.ScaleDowns()
	}
	return st
}

// Capacity exposes the tenant's elastic decorator (nil without capacity).
func (t *Tenant) Capacity() *capacity.System { return t.capSys }

// StepLog returns a copy of the retained step records, oldest first.
func (t *Tenant) StepLog() []StepRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StepRecord, len(t.stepLog))
	copy(out, t.stepLog)
	return out
}

// step runs one agent iteration and folds the outcome into the tenant's
// bookkeeping. It is called by the fleet's round scheduler with the tenant in
// StateRunning; a step error fails the tenant rather than the fleet — unless
// the error is the fleet's own shutdown cancellation, in which case the
// aborted interval is simply discarded (no interval count, no state change)
// so the final checkpoint captures a consistent agent.
func (t *Tenant) step(ctx context.Context) {
	if err := t.applyScenario(); err != nil {
		t.mu.Lock()
		t.lastErr = err
		t.state = StateFailed
		t.mu.Unlock()
		return
	}
	start := time.Now()
	res, err := t.agent.Step(ctx)
	elapsed := time.Since(start).Seconds()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stepSeconds != nil {
		t.stepSeconds.Observe(elapsed)
	}
	if err != nil {
		if ctx.Err() != nil {
			t.lastErr = err
			return
		}
		t.lastErr = err
		t.state = StateFailed
		return
	}
	t.interval++
	t.lastStep = res
	t.lastErr = nil
	if t.stepLogCap > 0 {
		rec := StepRecord{
			Iteration: res.Iteration,
			Config:    res.Config.Key(),
			MeanRT:    res.MeanRT,
			Reward:    res.Reward,
			Invalid:   res.Invalid,
			Switched:  res.Switched,
			Policy:    res.PolicyName,
		}
		if len(t.stepLog) >= t.stepLogCap {
			copy(t.stepLog, t.stepLog[1:])
			t.stepLog[len(t.stepLog)-1] = rec
		} else {
			t.stepLog = append(t.stepLog, rec)
		}
	}
}

// applyScenario moves the backend's workload to the tenant's current
// scenario interval before the step measures it — the fleet's driver-side
// context change. A restored tenant resumes mid-scenario because the
// interval counter is part of the checkpoint. No-op without a scenario.
func (t *Tenant) applyScenario() error {
	t.mu.Lock()
	seq, i := t.seq, t.interval
	t.mu.Unlock()
	if seq == nil {
		return nil
	}
	iv := seq.Observe(i)
	adj, ok := t.sys.(system.Adjustable)
	if !ok {
		return fmt.Errorf("fleet: tenant %s: backend %q cannot adjust its workload for scenario %q",
			t.spec.Name, t.spec.Backend, t.spec.Scenario)
	}
	if err := adj.SetWorkload(iv.Workload); err != nil {
		return fmt.Errorf("fleet: tenant %s: scenario workload: %w", t.spec.Name, err)
	}
	if t.trace != nil {
		t.trace.Add(telemetry.Event{
			Kind:        telemetry.KindWorkload,
			Tenant:      t.spec.Name,
			Iteration:   i + 1,
			OfferedRate: iv.OfferedRate,
			Detail:      iv.PhaseName,
		})
	}
	return nil
}

// checkpointDue reports whether the tenant owes a periodic snapshot given the
// effective cadence.
func (t *Tenant) checkpointDue(defaultEvery int) bool {
	every := t.spec.CheckpointEvery
	if every <= 0 {
		every = defaultEvery
	}
	if every <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state != StateFailed && t.interval > 0 && t.interval%every == 0
}
