// Package fleet is the multi-tenant control plane: it runs many RAC agents —
// one per managed web system — on the shared worker pool, checkpoints their
// learned state to disk, and warm-starts new tenants from a registry of
// context-matched policies (exact context first, nearest context as a
// fallback). Tenants hash onto deterministic shards; each shard advances its
// tenants sequentially in admission order while the shards run concurrently,
// and cross-shard admin operations ride per-shard mailboxes instead of a
// fleet-wide lock. The scheduling stays deterministic: each tenant derives
// every random draw from its own pre-split seed and shared state only
// changes at round barriers, so a fleet run is byte-identical at any worker
// or shard count.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"github.com/rac-project/rac/internal/capacity"
	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/faults"
	"github.com/rac-project/rac/internal/parallel"
	"github.com/rac-project/rac/internal/queueing"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/webtier"
	"github.com/rac-project/rac/internal/workload"
)

// SystemBuilder constructs the managed system for one tenant. A builder may
// return (nil, nil) to decline the spec, falling back to the built-in
// backends ("sim", "analytic"); racd uses this hook to add "live".
type SystemBuilder func(spec TenantSpec, ctx system.Context, seed uint64) (system.System, error)

// Options configure a Fleet.
type Options struct {
	// Seed is the fleet-wide base seed; each tenant folds its name into it,
	// so per-tenant streams are stable under tenant addition and removal.
	Seed uint64
	// Procs bounds the workers advancing shards in one round. Zero or
	// negative uses every CPU; results are identical for every value.
	Procs int
	// Shards is how many scheduling shards tenants hash onto (default 8).
	// Each shard steps its tenants sequentially; shards run concurrently.
	// Results are byte-identical at any shard count.
	Shards int
	// TenantMetricsLimit caps per-tenant step-latency histogram cardinality:
	// the first TenantMetricsLimit admitted tenants get their own
	// rac_fleet_step_seconds series, later tenants fold into per-shard
	// rac_fleet_shard_step_seconds aggregates so a 10k-tenant /metrics
	// exposition stays bounded. Zero uses the default (512); negative sends
	// every tenant to the shard aggregates.
	TenantMetricsLimit int
	// SLASeconds is the default SLA for tenants that do not set their own;
	// zero uses the paper default (2 s).
	SLASeconds float64
	// CheckpointDir enables the checkpoint subsystem: each tenant's learned
	// state is snapshotted there and restored on admission after a restart.
	// Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the default snapshot cadence in completed intervals
	// (default 5); per-tenant specs may override it.
	CheckpointEvery int
	// CheckpointKeep is how many snapshots to retain per tenant (minimum 2).
	CheckpointKeep int
	// RegistryDir enables the shared policy registry: trained initial
	// policies are published there keyed by system context, and new tenants
	// admitted into a matching context warm-start from them. Empty disables
	// the registry.
	RegistryDir string
	// TrainInit overrides the coarse-sampling and offline-training schedule
	// used when a tenant trains a context policy (TenantSpec.TrainPolicy).
	// Only CoarseLevels and Batch are honored — seed, SLA, worker count and
	// telemetry stay fleet-controlled. Nil uses the paper defaults; smoke
	// tests pass a reduced schedule.
	TrainInit *core.InitOptions
	// StepLog is how many recent step records each tenant retains in memory
	// (default 256; negative disables the log).
	StepLog int
	// Telemetry, when non-nil, receives the fleet gauges and counters plus
	// per-tenant step latency histograms.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives lifecycle and checkpoint events alongside
	// the agents' decision events.
	Trace *telemetry.Trace
	// NewSystem, when non-nil, is consulted first for every tenant backend.
	NewSystem SystemBuilder
}

// defaultShards is the shard count when Options.Shards is zero.
const defaultShards = 8

// maxShards bounds Options.Shards; past this the per-shard bookkeeping
// overhead dwarfs any parallelism win.
const maxShards = 4096

// defaultTenantMetricsLimit is the per-tenant histogram cardinality cap when
// Options.TenantMetricsLimit is zero.
const defaultTenantMetricsLimit = 512

// Validate checks the Options fields, wrapping one sentinel per failure.
func (o Options) Validate() error {
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("%w: negative checkpoint cadence %d", ErrBadOptions, o.CheckpointEvery)
	}
	if o.CheckpointKeep < 0 {
		return fmt.Errorf("%w: negative checkpoint retention %d", ErrBadOptions, o.CheckpointKeep)
	}
	if o.SLASeconds < 0 {
		return fmt.Errorf("%w: negative SLA %v", ErrBadOptions, o.SLASeconds)
	}
	if o.Shards < 0 {
		return fmt.Errorf("%w: %d", ErrBadShards, o.Shards)
	}
	if o.Shards > maxShards {
		return fmt.Errorf("%w: %d exceeds the maximum %d", ErrBadShards, o.Shards, maxShards)
	}
	return nil
}

// withDefaults returns a copy of o with zero-valued fields resolved.
func (o Options) withDefaults() Options {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 5
	}
	if o.StepLog == 0 {
		o.StepLog = 256
	}
	if o.Shards == 0 {
		o.Shards = defaultShards
	}
	if o.TenantMetricsLimit == 0 {
		o.TenantMetricsLimit = defaultTenantMetricsLimit
	}
	return o
}

// fleetInstruments are the control plane's registry metrics; nil when
// telemetry is not wired.
type fleetInstruments struct {
	reg         *telemetry.Registry
	rounds      *telemetry.Counter
	checkpoints *telemetry.Counter
	restores    *telemetry.Counter
	warmStarts  *telemetry.Counter
}

func newFleetInstruments(reg *telemetry.Registry) *fleetInstruments {
	return &fleetInstruments{
		reg: reg,
		rounds: reg.Counter("rac_fleet_rounds_total",
			"Barrier-synchronized scheduling rounds the fleet has run.", nil),
		checkpoints: reg.Counter("rac_fleet_checkpoints_total",
			"Tenant state snapshots written to the checkpoint store.", nil),
		restores: reg.Counter("rac_fleet_restores_total",
			"Tenants restored from an on-disk checkpoint at admission.", nil),
		warmStarts: reg.Counter("rac_fleet_warm_starts_total",
			"Tenants warm-started from a context-matched registry policy.", nil),
	}
}

// stepBuckets resolve per-tenant step latency: simulated steps are
// millisecond-scale, live measurement intervals are minutes.
var stepBuckets = []float64{1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 30, 120, 600}

// Fleet is the control plane: it admits tenants, steps every running tenant
// once per round on the shared pool, writes periodic checkpoints, and serves
// the admin lifecycle API.
type Fleet struct {
	opts  Options
	space *config.Space

	ckpts    *CheckpointStore // nil without CheckpointDir
	registry *PolicyRegistry  // nil without RegistryDir
	policies *core.PolicyStore

	// shards own the tenants; admin operations that touch agent internals
	// (forced policy switches, manual checkpoints) ride the owning shard's
	// mailbox instead of a fleet-wide lock.
	shards []*shard

	// roundMu serializes whole scheduling rounds (RunRound, Shutdown).
	roundMu sync.Mutex

	mu      sync.Mutex
	tenants []*Tenant // admission order — the fleet's deterministic iteration order
	byName  map[string]*Tenant
	rounds  int

	// pending holds policies discovered by in-round bookkeeping (capacity
	// warm starts). They join the shared store only at the round barrier,
	// sorted by name, so concurrent shards never observe a mid-round add.
	pendingMu sync.Mutex
	pending   []*core.Policy

	tel   *fleetInstruments
	trace *telemetry.Trace

	// runCtx is canceled by Shutdown before it waits for the round lock, so
	// an in-flight live measurement interval aborts instead of running out
	// its window. Steps canceled this way are discarded, not failed.
	runCtx  context.Context
	stopRun context.CancelFunc
}

// New builds an empty fleet.
func New(opts Options) (*Fleet, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	f := &Fleet{
		opts:     opts,
		space:    config.Default(),
		policies: core.NewPolicyStore(),
		byName:   make(map[string]*Tenant),
		trace:    opts.Trace,
		shards:   make([]*shard, opts.Shards),
	}
	for i := range f.shards {
		f.shards[i] = &shard{id: i}
	}
	f.runCtx, f.stopRun = context.WithCancel(context.Background())
	var err error
	if opts.CheckpointDir != "" {
		if f.ckpts, err = NewCheckpointStore(opts.CheckpointDir, opts.CheckpointKeep); err != nil {
			return nil, err
		}
	}
	if opts.RegistryDir != "" {
		if f.registry, err = NewPolicyRegistry(opts.RegistryDir, f.space); err != nil {
			return nil, err
		}
	}
	if opts.Telemetry != nil {
		f.tel = newFleetInstruments(opts.Telemetry)
	}
	return f, nil
}

// Space returns the configuration space shared by every tenant, registry
// policy and checkpoint in this fleet.
func (f *Fleet) Space() *config.Space { return f.space }

// Registry returns the shared policy registry (nil when disabled).
func (f *Fleet) Registry() *PolicyRegistry { return f.registry }

// Checkpoints returns the checkpoint store (nil when disabled).
func (f *Fleet) Checkpoints() *CheckpointStore { return f.ckpts }

// Rounds returns the number of completed scheduling rounds.
func (f *Fleet) Rounds() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rounds
}

// ContextKey is the registry key of a system context: traffic mix, client
// population and VM resource level. Tenants admitted into contexts with equal
// keys share warm-start policies.
func ContextKey(ctx system.Context) string {
	return fmt.Sprintf("%s-%d@%s", ctx.Workload.Mix, ctx.Workload.Clients, ctx.Level.Name)
}

// deriveSeed folds a tenant name into the fleet seed, so a tenant's streams
// depend only on its own name — stable when other tenants come and go.
func deriveSeed(base uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ h.Sum64()
}

// Tenant returns the named tenant, or nil.
func (f *Fleet) Tenant(name string) *Tenant {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byName[name]
}

// Tenants returns the tenants in admission order.
func (f *Fleet) Tenants() []*Tenant {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Tenant, len(f.tenants))
	copy(out, f.tenants)
	return out
}

// Statuses snapshots every tenant for the admin API, in admission order.
func (f *Fleet) Statuses() []TenantStatus {
	ts := f.Tenants()
	out := make([]TenantStatus, len(ts))
	for i, t := range ts {
		out[i] = t.Status()
	}
	return out
}

// ShardStatus is one scheduling shard's admin-API snapshot.
type ShardStatus struct {
	// ID is the shard index tenants hash onto.
	ID int `json:"id"`
	// Tenants is how many tenants the shard owns.
	Tenants int `json:"tenants"`
	// Running is how many of them are in StateRunning.
	Running int `json:"running"`
	// PendingOps is the mailbox depth: admin operations queued behind the
	// shard's current work.
	PendingOps int `json:"pending_ops"`
}

// ShardStatuses snapshots every scheduling shard in shard-index order.
func (f *Fleet) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(f.shards))
	for i, sh := range f.shards {
		st := ShardStatus{ID: sh.id, PendingOps: sh.pendingOps()}
		for _, t := range sh.snapshot() {
			st.Tenants++
			if t.State() == StateRunning {
				st.Running++
			}
		}
		out[i] = st
	}
	return out
}

// Active counts tenants that can still make progress (not stopped or failed).
func (f *Fleet) Active() int {
	n := 0
	for _, t := range f.Tenants() {
		switch t.State() {
		case StateStopped, StateFailed:
		default:
			n++
		}
	}
	return n
}

// Admit builds, warm-starts and (when a checkpoint exists) restores one
// tenant, leaving it in StateRunning. The sequence is: resolve the context,
// build the backend system, adopt a context-matched registry policy (or train
// and publish one when the spec asks for it), construct the agent, then — if
// the checkpoint store holds a valid snapshot for this tenant name — restore
// the agent and system state from it.
func (f *Fleet) Admit(spec TenantSpec) (*Tenant, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	_, dup := f.byName[spec.Name]
	f.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateTenant, spec.Name)
	}

	ctxName := spec.Context
	if ctxName == "" {
		ctxName = "context-1"
	}
	ctx, err := system.ContextByName(ctxName)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", spec.Name, err)
	}
	key := ContextKey(ctx)
	seed := spec.Seed
	if seed == 0 {
		seed = deriveSeed(f.opts.Seed, spec.Name)
	}

	sys, capSys, err := f.buildSystem(spec, ctx, seed)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", spec.Name, err)
	}

	// A scenario tenant carries its own sequencer: one scenario interval per
	// agent step, applied to the backend before each measurement. Resolving
	// and compiling here makes a bad scenario an admission error, not a
	// mid-run failure.
	var seq *workload.Sequencer
	if spec.Scenario != "" {
		sc, err := workload.Resolve(spec.Scenario)
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s: %w", spec.Name, err)
		}
		sched, err := workload.Compile(sc)
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %s: scenario %s: %w", spec.Name, sc.Name, err)
		}
		if _, ok := sys.(system.Adjustable); !ok {
			return nil, fmt.Errorf("fleet: tenant %s: backend %q cannot adjust its workload for scenario %s",
				spec.Name, spec.Backend, sc.Name)
		}
		seq = workload.NewSequencer(sched, sc.Interval())
	}

	// Pull the tenant's newest valid snapshot first: it decides whether the
	// registry policy is a warm start or just name resolution for restore.
	var ck *Checkpoint
	var ckPath string
	if f.ckpts != nil {
		if ck, ckPath, err = f.ckpts.Latest(spec.Name); err != nil {
			return nil, fmt.Errorf("fleet: tenant %s: %w", spec.Name, err)
		}
	}

	pol, warm, err := f.contextPolicy(spec, ctx, key)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", spec.Name, err)
	}

	o := core.DefaultOptions()
	if f.opts.SLASeconds > 0 {
		o.SLASeconds = f.opts.SLASeconds
	}
	if spec.SLASeconds > 0 {
		o.SLASeconds = spec.SLASeconds
	}
	if spec.Faults != "" {
		o.Resilience = core.DefaultResilience()
	}
	if spec.CapacityCost > 0 {
		o.CapacityCost = spec.CapacityCost
	}
	agent, err := core.NewAgent(sys, core.AgentOptions{
		Options:   o,
		Policy:    pol,
		Store:     f.policies,
		Seed:      seed,
		Telemetry: f.opts.Telemetry,
		Trace:     f.opts.Trace,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", spec.Name, err)
	}

	sh := f.shards[shardOf(spec.Name, len(f.shards))]
	t := &Tenant{
		spec:        spec,
		contextKey:  key,
		ctx:         ctx,
		state:       StateStarting,
		sys:         sys,
		agent:       agent,
		seq:         seq,
		shard:       sh,
		trace:       f.trace,
		stepLogCap:  f.opts.StepLog,
		warmStarted: pol != nil && warm,
		capSys:      capSys,
	}
	if capSys != nil {
		t.capOrdinal = capSys.Ordinal()
	}
	if f.tel != nil {
		t.stepSeconds = f.stepHistogram(sh, spec.Name)
	}
	if t.warmStarted && f.tel != nil {
		f.tel.warmStarts.Inc()
	}

	if ck != nil {
		if err := f.restore(t, ck, ckPath); err != nil {
			// A snapshot that decodes but no longer matches the tenant (policy
			// gone from the registry, space drift) falls back to a cold start;
			// the trace records why.
			f.traceEvent(telemetry.Event{
				Kind:   telemetry.KindCheckpoint,
				Tenant: spec.Name,
				Detail: "restore failed, cold start: " + err.Error(),
			})
			if aerr := sys.Apply(context.Background(), agent.Config()); aerr != nil {
				return nil, fmt.Errorf("fleet: tenant %s: reset after failed restore: %w", spec.Name, aerr)
			}
		}
	}

	f.mu.Lock()
	if _, dup := f.byName[spec.Name]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDuplicateTenant, spec.Name)
	}
	f.tenants = append(f.tenants, t)
	f.byName[spec.Name] = t
	f.mu.Unlock()
	sh.add(t)

	f.transition(t, StateRunning, "admitted")
	return t, nil
}

// stepHistogram picks the step-latency histogram for the next admitted
// tenant: its own labeled series while the fleet is under the cardinality
// cap, the owning shard's aggregate series beyond it.
func (f *Fleet) stepHistogram(sh *shard, name string) *telemetry.Histogram {
	limit := f.opts.TenantMetricsLimit
	f.mu.Lock()
	admitted := len(f.tenants)
	f.mu.Unlock()
	if limit > 0 && admitted < limit {
		return f.tel.reg.Histogram("rac_fleet_step_seconds",
			"Wall-clock latency of one tenant step (apply + measure + retrain).",
			stepBuckets, telemetry.Labels{"tenant": name})
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stepSeconds == nil {
		sh.stepSeconds = f.tel.reg.Histogram("rac_fleet_shard_step_seconds",
			"Wall-clock tenant step latency aggregated per shard (tenants past the per-tenant cardinality cap).",
			stepBuckets, telemetry.Labels{"shard": fmt.Sprintf("%d", sh.id)})
	}
	return sh.stepSeconds
}

// buildSystem constructs the tenant's backend and wraps it in the capacity
// decorator and the fault layer as the spec asks — capacity innermost, faults
// outermost, matching rac.BuildSystem.
func (f *Fleet) buildSystem(spec TenantSpec, ctx system.Context, seed uint64) (system.System, *capacity.System, error) {
	var sys system.System
	var err error
	if f.opts.NewSystem != nil {
		if sys, err = f.opts.NewSystem(spec, ctx, seed); err != nil {
			return nil, nil, err
		}
	}
	if sys == nil {
		switch spec.Backend {
		case "", "sim":
			sys, err = system.NewSimulated(system.SimulatedOptions{
				Space:            f.space,
				Context:          ctx,
				Seed:             seed,
				SettleSeconds:    spec.SettleSeconds,
				MeasureSeconds:   spec.MeasureSeconds,
				AdmitConcurrency: spec.AdmitConcurrency,
				AdmitQueue:       spec.AdmitQueue,
				AdmitEpoch:       spec.AdmitEpoch,
			})
		case "analytic":
			sys, err = system.NewAnalytic(system.AnalyticOptions{
				Space:      f.space,
				Context:    ctx,
				Seed:       seed,
				NoiseSigma: spec.NoiseSigma,
			})
		default:
			err = fmt.Errorf("unknown backend %q", spec.Backend)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	var capSys *capacity.System
	if spec.Capacity {
		scalable, ok := sys.(capacity.Scalable)
		if !ok {
			return nil, nil, fmt.Errorf("backend %q cannot scale capacity", spec.Backend)
		}
		sla := core.DefaultOptions().SLASeconds
		if f.opts.SLASeconds > 0 {
			sla = f.opts.SLASeconds
		}
		if spec.SLASeconds > 0 {
			sla = spec.SLASeconds
		}
		capSys, err = capacity.Wrap(scalable, capacity.Options{
			Initial:        spec.CapacityInitial,
			ProvisionDelay: spec.CapacityDelay,
			Analyzer:       capacity.DefaultConfig(sla),
			FastPath:       true,
			Telemetry:      f.opts.Telemetry,
			Trace:          f.opts.Trace,
		})
		if err != nil {
			return nil, nil, err
		}
		sys = capSys
	}
	if spec.Faults != "" {
		sc, err := faults.LoadFile(spec.Faults)
		if err != nil {
			return nil, nil, err
		}
		sys, err = faults.New(sys, faults.Options{
			Scenario:  sc,
			Seed:      seed,
			Telemetry: f.opts.Telemetry,
			Trace:     f.opts.Trace,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return sys, capSys, nil
}

// contextPolicy resolves the tenant's initial policy against the shared
// registry: adopt the stored policy for the context when one exists, train
// and publish one when the spec asks for it, or fall back to the policy of
// the nearest stored context (same workload mix preferred, then closest
// resource level and client population). The returned warm flag reports a
// true warm start — a policy that existed before this admission. Either way
// the policy joins the in-memory store, so restored snapshots can re-bind it
// by name and running agents can switch to it on context changes.
func (f *Fleet) contextPolicy(spec TenantSpec, ctx system.Context, key string) (*core.Policy, bool, error) {
	if f.registry == nil {
		return nil, false, nil
	}
	pol, err := f.registry.Get(key)
	if err != nil {
		return nil, false, err
	}
	warm := pol != nil
	if pol == nil && spec.TrainPolicy {
		if pol, err = f.trainPolicy(spec, ctx, key); err != nil {
			return nil, false, err
		}
		if err = f.registry.Put(key, pol); err != nil {
			return nil, false, err
		}
	}
	if pol == nil && !spec.NoWarmStart {
		// Nearest-context fallback: an approximate Q-seed beats a cold table,
		// and online learning corrects the residual error (the paper's policy
		// reuse argument, extended across neighboring contexts).
		near, nkey, nerr := f.registry.Nearest(ctx, key)
		if nerr != nil {
			return nil, false, nerr
		}
		if near != nil {
			pol = near
			warm = true
			f.traceEvent(telemetry.Event{
				Kind:   telemetry.KindPolicySwitch,
				Tenant: spec.Name,
				Policy: near.Name(),
				Detail: fmt.Sprintf("nearest-context warm start: %s -> %s", key, nkey),
			})
		}
	}
	if pol == nil {
		return nil, false, nil
	}
	if f.policies.ByName(pol.Name()) == nil {
		f.policies.Add(pol)
	}
	if spec.NoWarmStart {
		return nil, false, nil
	}
	return pol, warm, nil
}

// trainPolicy runs the paper's policy initialization for the tenant's context
// on the analytic queueing surface — fast and deterministic, seeded by the
// context key so every tenant training the same context produces the same
// policy bytes.
func (f *Fleet) trainPolicy(spec TenantSpec, ctx system.Context, key string) (*core.Policy, error) {
	cal := webtier.DefaultCalibration()
	sample := func(cfg config.Config) (float64, error) {
		params, err := webtier.ParamsFromConfig(f.space, cfg)
		if err != nil {
			return 0, err
		}
		res, err := queueing.SolveWebsite(cal, params, ctx.Workload, ctx.Level)
		if err != nil {
			return 0, err
		}
		return res.MeanRT, nil
	}
	sla := f.opts.SLASeconds
	if spec.SLASeconds > 0 {
		sla = spec.SLASeconds
	}
	io := core.InitOptions{
		SLASeconds: sla,
		Seed:       deriveSeed(f.opts.Seed, "policy:"+key),
		Procs:      f.opts.Procs,
		Telemetry:  f.opts.Telemetry,
	}
	if f.opts.TrainInit != nil {
		io.CoarseLevels = f.opts.TrainInit.CoarseLevels
		io.Batch = f.opts.TrainInit.Batch
	}
	return core.LearnPolicy(key, f.space, sample, io)
}

// restore rebuilds a tenant's live state from a checkpoint: re-apply the
// snapshot's configuration (through the fault wrapper's inner system, so the
// injection schedule is not consumed twice), import the backend's state blob,
// then restore the agent. On success the tenant resumes exactly where the
// snapshot left off.
func (f *Fleet) restore(t *Tenant, ck *Checkpoint, path string) error {
	cfg := config.Config(append([]int(nil), ck.Agent.Config...))
	target := t.sys
	if fs, ok := target.(*faults.System); ok {
		target = fs.Inner()
	}
	if err := target.Apply(context.Background(), cfg); err != nil {
		return fmt.Errorf("re-apply config %s: %w", cfg.Key(), err)
	}
	if len(ck.System) > 0 {
		snap, ok := t.sys.(system.Snapshottable)
		if !ok {
			return fmt.Errorf("checkpoint has system state but backend %q cannot import it", t.spec.Backend)
		}
		if err := snap.ImportState(ck.System); err != nil {
			return fmt.Errorf("import system state: %w", err)
		}
	}
	if err := t.agent.RestoreState(ck.Agent); err != nil {
		return err
	}
	t.mu.Lock()
	t.interval = ck.Interval
	t.warmStarted = ck.WarmStarted
	t.restored = true
	t.mu.Unlock()
	if f.tel != nil {
		f.tel.restores.Inc()
	}
	f.traceEvent(telemetry.Event{
		Kind:      telemetry.KindCheckpoint,
		Tenant:    t.spec.Name,
		Iteration: ck.Interval,
		Detail:    "restored from " + path,
	})
	return nil
}

// RunRound runs one scheduling round: every shard advances its running
// tenants sequentially in shard admission order, shards run concurrently on
// the worker pool, and each shard handles its own post-step bookkeeping
// (capacity warm starts, due checkpoints, drain completion). Policies
// discovered by in-round bookkeeping join the shared store only here, at the
// round barrier, in sorted name order. Step failures fail the tenant, not the
// round; only bookkeeping errors (checkpoint I/O, warm-start lookups) are
// returned, joined in shard order.
func (f *Fleet) RunRound() error {
	f.roundMu.Lock()
	defer f.roundMu.Unlock()

	shardErrs := make([][]error, len(f.shards))
	_ = parallel.ForEach(parallel.Options{Procs: f.opts.Procs, Telemetry: f.opts.Telemetry},
		len(f.shards), func(i int) error {
			shardErrs[i] = f.shards[i].runRound(f)
			return nil
		})

	f.mu.Lock()
	f.rounds++
	f.mu.Unlock()
	if f.tel != nil {
		f.tel.rounds.Inc()
	}
	f.applyPendingPolicies()

	var errs []error
	for _, se := range shardErrs {
		errs = append(errs, se...)
	}
	return errors.Join(errs...)
}

// applyPendingPolicies moves the round's deferred policy discoveries into the
// shared store at the barrier, sorted by name and deduplicated, so the store's
// contents are a deterministic function of round count — never of shard
// interleaving.
func (f *Fleet) applyPendingPolicies() {
	f.pendingMu.Lock()
	pend := f.pending
	f.pending = nil
	f.pendingMu.Unlock()
	if len(pend) == 0 {
		return
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].Name() < pend[j].Name() })
	for _, p := range pend {
		if f.policies.ByName(p.Name()) == nil {
			f.policies.Add(p)
		}
	}
}

// capacityWarmStart is the SQLR-style per-level policy memory: when a
// tenant's capacity scaled during the round just run, look up the registry
// policy trained for its workload at the new level and force the agent onto
// it, so a revisited level resumes from learned state instead of relearning
// from scratch. A level with no stored policy keeps the current Q-table.
// Running post-barrier in admission order keeps registry access and trace
// sequences deterministic at any Procs.
func (f *Fleet) capacityWarmStart(t *Tenant) error {
	c := t.capSys
	if c == nil || c.Ordinal() == t.capOrdinal {
		return nil
	}
	old := t.capOrdinal
	t.capOrdinal = c.Ordinal()
	key := ContextKey(system.Context{Workload: t.ctx.Workload, Level: c.AppLevel()})
	pol, err := f.lookupPolicyDeferred(key)
	if err != nil {
		return fmt.Errorf("fleet: tenant %s: warm start after scale: %w", t.spec.Name, err)
	}
	if pol == nil {
		return nil
	}
	t.agent.ForcePolicy(pol)
	if f.tel != nil {
		f.tel.warmStarts.Inc()
	}
	f.traceEvent(telemetry.Event{
		Kind:   telemetry.KindCapacity,
		Tenant: t.spec.Name,
		Level:  c.AppLevel().Name,
		Detail: fmt.Sprintf("scaled %d -> %d, warm start from %s", old, c.Ordinal(), pol.Name()),
	})
	return nil
}

// lookupPolicy resolves a context key against the in-memory store first,
// then the shared registry, caching registry hits in the store. Returns
// (nil, nil) when no policy exists for the key. Admin-path only: the store
// add is immediate, which mid-round code must not do — see
// lookupPolicyDeferred.
func (f *Fleet) lookupPolicy(key string) (*core.Policy, error) {
	if pol := f.policies.ByName(key); pol != nil {
		return pol, nil
	}
	if f.registry == nil {
		return nil, nil
	}
	p, err := f.registry.Get(key)
	if err != nil || p == nil {
		return nil, err
	}
	f.policies.Add(p)
	return p, nil
}

// lookupPolicyDeferred is lookupPolicy for in-round shard bookkeeping: a
// registry hit is returned to the caller immediately but joins the shared
// store only at the round barrier (applyPendingPolicies), so concurrent
// shards' in-flight store reads never observe a mid-round add.
func (f *Fleet) lookupPolicyDeferred(key string) (*core.Policy, error) {
	if pol := f.policies.ByName(key); pol != nil {
		return pol, nil
	}
	if f.registry == nil {
		return nil, nil
	}
	p, err := f.registry.Get(key)
	if err != nil || p == nil {
		return nil, err
	}
	f.pendingMu.Lock()
	f.pending = append(f.pending, p)
	f.pendingMu.Unlock()
	return p, nil
}

// failedNeedsGauge reports (once) that a tenant failed since the gauges were
// last refreshed, so the state gauge converges without a transition call.
func (t *Tenant) failedNeedsGauge() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == StateFailed && !t.failedSeen {
		t.failedSeen = true
		return true
	}
	return false
}

// Run executes up to rounds scheduling rounds, stopping early when no tenant
// can make progress. It returns the number of rounds run and the first
// checkpoint error encountered (the loop keeps going past checkpoint errors).
func (f *Fleet) Run(rounds int) (int, error) {
	var firstErr error
	for i := 0; i < rounds; i++ {
		if f.Active() == 0 {
			return i, firstErr
		}
		if err := f.RunRound(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return rounds, firstErr
}

// checkpoint snapshots one tenant to the store. Call with the tenant's shard
// runMu held (shard bookkeeping, shard.do jobs) or from the admission path
// (before the tenant is visible to rounds).
func (f *Fleet) checkpoint(t *Tenant, reason string) error {
	st, err := t.agent.ExportState()
	if err != nil {
		return fmt.Errorf("fleet: checkpoint %s: %w", t.spec.Name, err)
	}
	var sysBlob []byte
	if snap, ok := t.sys.(system.Snapshottable); ok {
		if sysBlob, err = snap.ExportState(); err != nil {
			return fmt.Errorf("fleet: checkpoint %s: %w", t.spec.Name, err)
		}
	}
	t.mu.Lock()
	ck := &Checkpoint{
		Tenant:      t.spec.Name,
		Spec:        t.spec,
		Interval:    t.interval,
		WarmStarted: t.warmStarted,
		Agent:       st,
		System:      sysBlob,
	}
	t.mu.Unlock()
	path, err := f.ckpts.Write(ck)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint %s: %w", t.spec.Name, err)
	}
	t.mu.Lock()
	t.checkpoints++
	t.mu.Unlock()
	if f.tel != nil {
		f.tel.checkpoints.Inc()
	}
	f.traceEvent(telemetry.Event{
		Kind:      telemetry.KindCheckpoint,
		Tenant:    t.spec.Name,
		Iteration: ck.Interval,
		Detail:    reason + ": " + path,
	})
	return nil
}

// CheckpointNow snapshots the named tenant immediately, outside the periodic
// cadence. The snapshot rides the owning shard's mailbox, so it waits only
// for that shard's current tenant step — never for the whole fleet round.
func (f *Fleet) CheckpointNow(name string) error {
	t := f.Tenant(name)
	if t == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, name)
	}
	if f.ckpts == nil {
		return ErrCheckpointsDisabled
	}
	return t.shard.do(func() error {
		return f.checkpoint(t, "manual")
	})
}

// Pause holds a running tenant: it keeps its state but is skipped by rounds.
func (f *Fleet) Pause(name string) error {
	return f.setState(name, StatePaused, "paused by admin", StateRunning)
}

// Resume releases a paused tenant back into the scheduling rounds.
func (f *Fleet) Resume(name string) error {
	return f.setState(name, StateRunning, "resumed by admin", StatePaused)
}

// Drain asks a tenant to stop after its current interval: the next round
// skips it, writes its final checkpoint, and marks it stopped.
func (f *Fleet) Drain(name string) error {
	return f.setState(name, StateDraining, "drain requested", StateRunning, StatePaused)
}

// setState performs one admin FSM transition, validating the source state.
func (f *Fleet) setState(name string, to State, detail string, from ...State) error {
	t := f.Tenant(name)
	if t == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, name)
	}
	t.mu.Lock()
	cur := t.state
	ok := false
	for _, s := range from {
		if cur == s {
			ok = true
			break
		}
	}
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: tenant %s is %s, cannot move to %s", ErrBadTransition, name, cur, to)
	}
	t.state = to
	t.mu.Unlock()
	f.noteTransition(t.spec.Name, cur, to, detail)
	return nil
}

// transition moves a tenant to a new state unconditionally (internal paths
// whose source state is already established).
func (f *Fleet) transition(t *Tenant, to State, detail string) {
	t.mu.Lock()
	from := t.state
	t.state = to
	t.mu.Unlock()
	f.noteTransition(t.spec.Name, from, to, detail)
}

// noteTransition emits the lifecycle trace event and refreshes the state
// gauges after any FSM move.
func (f *Fleet) noteTransition(name string, from, to State, detail string) {
	f.traceEvent(telemetry.Event{
		Kind:   telemetry.KindLifecycle,
		Tenant: name,
		Detail: fmt.Sprintf("%s -> %s (%s)", from, to, detail),
	})
	f.updateGauges()
}

// traceEvent adds ev to the fleet trace when one is wired.
func (f *Fleet) traceEvent(ev telemetry.Event) {
	if f.trace != nil {
		f.trace.Add(ev)
	}
}

// updateGauges recomputes the per-state tenant gauge family.
func (f *Fleet) updateGauges() {
	if f.tel == nil {
		return
	}
	counts := make(map[State]int, 6)
	for _, t := range f.Tenants() {
		counts[t.State()]++
	}
	for _, s := range States() {
		f.tel.reg.Gauge("rac_fleet_tenants",
			"Tenants currently in each lifecycle state.",
			telemetry.Labels{"state": string(s)}).Set(float64(counts[s]))
	}
}

// ForcePolicy installs the registry policy stored under key as the named
// tenant's initial policy, immediately and regardless of the violation
// counter — the admin override for operators who know the context changed.
// The switch rides the owning shard's mailbox, so it lands between that
// shard's tenant steps without waiting on the rest of the fleet.
func (f *Fleet) ForcePolicy(name, key string) error {
	t := f.Tenant(name)
	if t == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, name)
	}
	pol, err := f.lookupPolicy(key)
	if err != nil {
		return err
	}
	if pol == nil {
		return fmt.Errorf("%w: %q", ErrNoPolicy, key)
	}
	return t.shard.do(func() error {
		switch t.State() {
		case StateStopped, StateFailed:
			return fmt.Errorf("%w: tenant %s is %s", ErrBadTransition, name, t.State())
		}
		t.agent.ForcePolicy(pol)
		return nil
	})
}

// Shutdown drains every active tenant: each gets a final checkpoint (when
// checkpointing is enabled) and moves to StateStopped. Safe to call multiple
// times; the daemon runs it on SIGINT/SIGTERM after the current round.
func (f *Fleet) Shutdown() error {
	// Cancel before waiting for the round lock: a live tenant mid-interval
	// aborts its measurement instead of holding the drain for the rest of
	// the window.
	f.stopRun()
	f.roundMu.Lock()
	defer f.roundMu.Unlock()
	var errs []error
	for _, t := range f.Tenants() {
		switch t.State() {
		case StateStopped, StateFailed:
			continue
		}
		tt := t
		err := tt.shard.do(func() error {
			var ckErr error
			if f.ckpts != nil {
				ckErr = f.checkpoint(tt, "shutdown")
			}
			// Stop the tenant even when its final checkpoint failed: shutdown
			// must converge, and the error still surfaces to the caller.
			f.transition(tt, StateStopped, "fleet shutdown")
			return ckErr
		})
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
