package fleet

import (
	"fmt"
	"runtime"
	"testing"
)

// benchFleetScale measures the control plane at production tenant counts:
// rounds/sec over a warm fleet, and resident bytes per tenant right after
// admission. Every tenant warm-starts from one of six trained context
// policies, so the per-tenant marginal cost is the COW delta state — the
// bytes/tenant figure must fall as the fleet grows (shared structure
// amortizes), which BENCH_fleet.json records and the scale smoke asserts.
func benchFleetScale(b *testing.B, tenants int) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	f, err := New(Options{
		Seed:        7,
		Shards:      8,
		RegistryDir: b.TempDir(),
		TrainInit:   fastTrain(),
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		sp := TenantSpec{
			Name:    fmt.Sprintf("bench-%05d", i),
			Backend: "analytic",
			Context: fmt.Sprintf("context-%d", i%6+1),
		}
		if i < 6 {
			sp.TrainPolicy = true
		}
		if _, err := f.Admit(sp); err != nil {
			b.Fatal(err)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	bytesPerTenant := 0.0
	if after.HeapAlloc > before.HeapAlloc {
		bytesPerTenant = float64(after.HeapAlloc-before.HeapAlloc) / float64(tenants)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "rounds/sec")
	}
	b.ReportMetric(bytesPerTenant, "bytes/tenant")
}

func BenchmarkFleetScale100(b *testing.B)   { benchFleetScale(b, 100) }
func BenchmarkFleetScale1000(b *testing.B)  { benchFleetScale(b, 1000) }
func BenchmarkFleetScale10000(b *testing.B) { benchFleetScale(b, 10000) }
