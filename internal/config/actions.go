package config

import "fmt"

// Direction is the per-parameter reconfiguration move of the paper's action
// set: increase, decrease or keep.
type Direction int

// The three basic actions of paper §3.2.
const (
	Decrease Direction = iota - 1
	Keep
	Increase
)

// String returns the action verb.
func (d Direction) String() string {
	switch d {
	case Decrease:
		return "decrease"
	case Keep:
		return "keep"
	case Increase:
		return "increase"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Action adjusts a single parameter by one lattice step (or keeps the whole
// configuration unchanged). The paper's action vectors touch one parameter at
// a time; the global keep is collapsed into a single action, giving
// 2·len(space)+1 actions in total.
type Action struct {
	// ParamIndex is the position of the parameter within the Space. It is
	// ignored when Dir is Keep.
	ParamIndex int
	Dir        Direction
}

// Actions enumerates the action set for a space: keep first, then for each
// parameter an increase and a decrease. The ordering is stable so action
// indices are portable across runs and serialized Q-tables.
func Actions(s *Space) []Action {
	acts := make([]Action, 0, 2*s.Len()+1)
	acts = append(acts, Action{Dir: Keep})
	for i := 0; i < s.Len(); i++ {
		acts = append(acts, Action{ParamIndex: i, Dir: Increase})
		acts = append(acts, Action{ParamIndex: i, Dir: Decrease})
	}
	return acts
}

// Apply returns the configuration reached by taking the action from c within
// the space, and whether the move was feasible. A move off the lattice edge
// (increase at Max, decrease at Min) is infeasible and returns c unchanged.
func (a Action) Apply(s *Space, c Config) (Config, bool) {
	if a.Dir == Keep {
		return c.Clone(), true
	}
	if a.ParamIndex < 0 || a.ParamIndex >= s.Len() || a.ParamIndex >= len(c) {
		return c.Clone(), false
	}
	d := s.Def(a.ParamIndex)
	v := c[a.ParamIndex] + int(a.Dir)*d.Step
	if v < d.Min || v > d.Max {
		return c.Clone(), false
	}
	out := c.Clone()
	out[a.ParamIndex] = v
	return out, true
}

// Describe renders the action with its parameter name.
func (a Action) Describe(s *Space) string {
	if a.Dir == Keep {
		return "keep"
	}
	if a.ParamIndex < 0 || a.ParamIndex >= s.Len() {
		return fmt.Sprintf("%s(param %d)", a.Dir, a.ParamIndex)
	}
	return fmt.Sprintf("%s %s", a.Dir, s.Def(a.ParamIndex).Name)
}
