package config

import (
	"testing"
	"testing/quick"
)

func TestActionsCount(t *testing.T) {
	s := Default()
	acts := Actions(s)
	if len(acts) != 2*s.Len()+1 {
		t.Fatalf("got %d actions, want %d", len(acts), 2*s.Len()+1)
	}
	if acts[0].Dir != Keep {
		t.Fatal("first action is not keep")
	}
}

func TestActionsOrderingStable(t *testing.T) {
	s := Default()
	a := Actions(s)
	b := Actions(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action ordering unstable at %d", i)
		}
	}
	// Convention relied on by core.Policy.Seeder: index 1+2i increases
	// parameter i, index 2+2i decreases it.
	for i := 0; i < s.Len(); i++ {
		if a[1+2*i].ParamIndex != i || a[1+2*i].Dir != Increase {
			t.Fatalf("action %d is not increase(param %d)", 1+2*i, i)
		}
		if a[2+2*i].ParamIndex != i || a[2+2*i].Dir != Decrease {
			t.Fatalf("action %d is not decrease(param %d)", 2+2*i, i)
		}
	}
}

func TestActionApply(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	idx, _ := s.Lookup(MaxClients)
	def := s.Def(idx)

	up := Action{ParamIndex: idx, Dir: Increase}
	next, ok := up.Apply(s, cfg)
	if !ok {
		t.Fatal("increase infeasible from default")
	}
	if next[idx] != cfg[idx]+def.Step {
		t.Fatalf("increase moved to %d", next[idx])
	}
	if cfg[idx] != 150 {
		t.Fatal("Apply mutated input")
	}

	keep := Action{Dir: Keep}
	same, ok := keep.Apply(s, cfg)
	if !ok || !same.Equal(cfg) {
		t.Fatal("keep changed the configuration")
	}
}

func TestActionApplyEdges(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	idx, _ := s.Lookup(MaxClients)
	def := s.Def(idx)

	atMax := cfg.Clone()
	atMax[idx] = def.Max
	if _, ok := (Action{ParamIndex: idx, Dir: Increase}).Apply(s, atMax); ok {
		t.Fatal("increase beyond max allowed")
	}
	atMin := cfg.Clone()
	atMin[idx] = def.Min
	if _, ok := (Action{ParamIndex: idx, Dir: Decrease}).Apply(s, atMin); ok {
		t.Fatal("decrease below min allowed")
	}
}

func TestActionApplyBadIndex(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	if _, ok := (Action{ParamIndex: 99, Dir: Increase}).Apply(s, cfg); ok {
		t.Fatal("out-of-range parameter applied")
	}
	if _, ok := (Action{ParamIndex: -1, Dir: Decrease}).Apply(s, cfg); ok {
		t.Fatal("negative parameter applied")
	}
}

func TestActionApplyStaysOnLattice(t *testing.T) {
	s := Default()
	acts := Actions(s)
	check := func(seed uint16) bool {
		cfg := make(Config, s.Len())
		v := int(seed)
		for i, d := range s.Defs() {
			v = (v*17 + 3) % d.Levels()
			cfg[i] = d.Value(v)
		}
		for _, a := range acts {
			next, ok := a.Apply(s, cfg)
			if !ok {
				continue
			}
			if err := s.Validate(next); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActionInverse(t *testing.T) {
	// increase then decrease returns to the origin wherever both apply.
	s := Default()
	cfg := s.DefaultConfig()
	for i := 0; i < s.Len(); i++ {
		up, okUp := (Action{ParamIndex: i, Dir: Increase}).Apply(s, cfg)
		if !okUp {
			continue
		}
		back, okDown := (Action{ParamIndex: i, Dir: Decrease}).Apply(s, up)
		if !okDown || !back.Equal(cfg) {
			t.Fatalf("param %d: inc/dec not inverse", i)
		}
	}
}

func TestActionDescribe(t *testing.T) {
	s := Default()
	if got := (Action{Dir: Keep}).Describe(s); got != "keep" {
		t.Fatalf("keep described as %q", got)
	}
	if got := (Action{ParamIndex: 0, Dir: Increase}).Describe(s); got != "increase MaxClients" {
		t.Fatalf("described as %q", got)
	}
}

func TestDirectionString(t *testing.T) {
	if Increase.String() != "increase" || Decrease.String() != "decrease" || Keep.String() != "keep" {
		t.Fatal("direction names wrong")
	}
}
