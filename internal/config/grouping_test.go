package config

import "testing"

func TestGroupMembersCoversAllParams(t *testing.T) {
	s := Default()
	members := GroupMembers(s)
	total := 0
	for _, idx := range members {
		total += len(idx)
	}
	if total != s.Len() {
		t.Fatalf("group members cover %d of %d params", total, s.Len())
	}
	// The paper's example groupings.
	cap := members[GroupCapacity]
	if len(cap) != 2 {
		t.Fatalf("capacity group has %d members", len(cap))
	}
	for _, i := range cap {
		name := s.Def(i).Name
		if name != "MaxClients" && name != "MaxThreads" {
			t.Fatalf("capacity group contains %s", name)
		}
	}
	to := members[GroupTimeout]
	for _, i := range to {
		name := s.Def(i).Name
		if name != "KeepaliveTimeout" && name != "SessionTimeout" {
			t.Fatalf("timeout group contains %s", name)
		}
	}
}

func TestCoarseValues(t *testing.T) {
	s := Default()
	vals, err := CoarseValues(s, GroupCapacity, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d values", len(vals))
	}
	if vals[0] != 50 || vals[3] != 600 {
		t.Fatalf("capacity coarse values %v", vals)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("coarse values not increasing: %v", vals)
		}
	}
}

func TestCoarseValuesErrors(t *testing.T) {
	s := Default()
	if _, err := CoarseValues(s, GroupCapacity, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CoarseValues(s, Group(99), 3); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestGroupedConfig(t *testing.T) {
	s := Default()
	values := map[Group]int{
		GroupCapacity: 300,
		GroupTimeout:  11,
		GroupMinSpare: 45,
		GroupMaxSpare: 55,
	}
	cfg, err := GroupedConfig(s, values)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("grouped config off lattice: %v", err)
	}
	mc, _ := cfg.Get(s, MaxClients)
	mt, _ := cfg.Get(s, MaxThreads)
	if mc != 300 || mt != 300 {
		t.Fatalf("capacity group not shared: MaxClients=%d MaxThreads=%d", mc, mt)
	}
}

func TestGroupedConfigMissingGroup(t *testing.T) {
	s := Default()
	if _, err := GroupedConfig(s, map[Group]int{GroupCapacity: 100}); err == nil {
		t.Fatal("missing groups accepted")
	}
}

func TestGroupVector(t *testing.T) {
	s := Default()
	values := map[Group]int{
		GroupCapacity: 200,
		GroupTimeout:  7,
		GroupMinSpare: 25,
		GroupMaxSpare: 35,
	}
	cfg, err := GroupedConfig(s, values)
	if err != nil {
		t.Fatal(err)
	}
	vec := GroupVector(s, cfg)
	if len(vec) != 4 {
		t.Fatalf("vector length %d", len(vec))
	}
	// Capacity members share 200 exactly.
	if vec[0] != 200 {
		t.Fatalf("capacity mean %v", vec[0])
	}
}

func TestFeatures(t *testing.T) {
	s := Default()
	feats, dim := Features(s)
	if dim != 1+2*s.Len() {
		t.Fatalf("dim = %d", dim)
	}
	min := make(Config, s.Len())
	max := make(Config, s.Len())
	for i, d := range s.Defs() {
		min[i], max[i] = d.Min, d.Max
	}
	fMin := feats(min.Key())
	fMax := feats(max.Key())
	if len(fMin) != dim || fMin[0] != 1 {
		t.Fatalf("bad bias/dim: %v", fMin)
	}
	for i := 0; i < s.Len(); i++ {
		if fMin[1+2*i] != 0 || fMin[2+2*i] != 0 {
			t.Fatalf("min features not zero: %v", fMin)
		}
		if fMax[1+2*i] != 1 || fMax[2+2*i] != 1 {
			t.Fatalf("max features not one: %v", fMax)
		}
	}
	// Garbage states get the bias-only vector.
	g := feats("garbage")
	if g[0] != 1 || g[1] != 0 {
		t.Fatalf("garbage features %v", g)
	}
}
