// Package config models the web-system configuration space the RAC agent
// searches: the eight performance-critical parameters of paper Table 1, the
// discrete value lattice each parameter is tuned over, the per-parameter
// increase/decrease/keep actions, and the parameter groups used during
// policy-initialization sampling.
package config

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Tier identifies which tier of the web system a parameter belongs to.
type Tier int

// Tiers of the three-tier system. The database tier keeps its defaults in the
// paper, so no parameter carries TierDatabase, but the constant exists for
// completeness and for the live stack.
const (
	TierWeb Tier = iota + 1
	TierApp
	TierDatabase
)

// String returns the lowercase tier name.
func (t Tier) String() string {
	switch t {
	case TierWeb:
		return "web"
	case TierApp:
		return "app"
	case TierDatabase:
		return "db"
	default:
		return "unknown"
	}
}

// Group labels parameters with similar characteristics; during policy
// initialization all parameters in a group are sampled with a single shared
// value (paper §4.1 "parameter grouping").
type Group int

// The four groups of paper §4.1 — concurrency limits, connection/session
// timeouts, minimum spare pool sizes and maximum spare pool sizes — plus
// GroupScale for the elastic-capacity extension. VM-level ordinals (1..3)
// cannot share GroupCapacity: grouped sampling intersects member ranges, and
// 1..3 does not overlap 50..600.
const (
	GroupCapacity Group = iota + 1
	GroupTimeout
	GroupMinSpare
	GroupMaxSpare
	GroupScale
)

// String returns the group name.
func (g Group) String() string {
	switch g {
	case GroupCapacity:
		return "capacity"
	case GroupTimeout:
		return "timeout"
	case GroupMinSpare:
		return "minspare"
	case GroupMaxSpare:
		return "maxspare"
	case GroupScale:
		return "scale"
	default:
		return "unknown"
	}
}

// Groups returns the group identifiers in a stable order.
func Groups() []Group {
	return []Group{GroupCapacity, GroupTimeout, GroupMinSpare, GroupMaxSpare, GroupScale}
}

// Param identifies one of the eight tunable parameters.
type Param int

// The eight parameters of paper Table 1, plus the admission-gate extension
// (AdmitConcurrency, AdmitQueue) appended after them so the Table 1 constants
// keep their values.
const (
	MaxClients Param = iota + 1 // web: maximum simultaneous requests
	KeepAliveTimeout
	MinSpareServers
	MaxSpareServers
	MaxThreads // app: maximum worker threads
	SessionTimeout
	MinSpareThreads
	MaxSpareThreads
	AdmitConcurrency // gate: concurrent requests admitted past the SLO gate
	AdmitQueue       // gate: admitted-but-waiting queue depth
	CapacityLevel    // capacity: VM provisioning level ordinal (1 = Level-3 … 3 = Level-1)
)

// Def describes one tunable parameter: its lattice (Min..Max in Step
// increments), the Apache/Tomcat default, the owning tier and its sampling
// group.
type Def struct {
	Param   Param
	Name    string
	Tier    Tier
	Group   Group
	Min     int
	Max     int
	Step    int
	Default int
	// Unit is a human-readable unit for docs and CLIs ("", "s", "min").
	Unit string
}

// Levels returns the number of lattice points for the parameter.
func (d Def) Levels() int { return (d.Max-d.Min)/d.Step + 1 }

// Value returns the lattice value at index i, clamped to the lattice.
func (d Def) Value(i int) int {
	if i < 0 {
		i = 0
	}
	if max := d.Levels() - 1; i > max {
		i = max
	}
	return d.Min + i*d.Step
}

// Index returns the nearest lattice index for value v.
func (d Def) Index(v int) int {
	if v <= d.Min {
		return 0
	}
	if v >= d.Max {
		return d.Levels() - 1
	}
	// Round to the nearest step.
	return (v - d.Min + d.Step/2) / d.Step
}

// Table1 returns the eight parameter definitions of paper Table 1.
//
// The published table lost trailing zeros in typesetting; the ranges below
// are the standard reconstruction (MaxClients 50..600 etc.) consistent with
// the Apache/Tomcat defaults named in the text. Step sizes define the online
// learning lattice; the paper tunes on a finer lattice than it samples during
// policy initialization, which CoarseValues reproduces.
func Table1() []Def {
	return []Def{
		{Param: MaxClients, Name: "MaxClients", Tier: TierWeb, Group: GroupCapacity,
			Min: 50, Max: 600, Step: 50, Default: 150},
		{Param: KeepAliveTimeout, Name: "KeepaliveTimeout", Tier: TierWeb, Group: GroupTimeout,
			Min: 1, Max: 21, Step: 2, Default: 15, Unit: "s"},
		{Param: MinSpareServers, Name: "MinSpareServers", Tier: TierWeb, Group: GroupMinSpare,
			Min: 5, Max: 85, Step: 10, Default: 5},
		{Param: MaxSpareServers, Name: "MaxSpareServers", Tier: TierWeb, Group: GroupMaxSpare,
			Min: 15, Max: 95, Step: 10, Default: 15},
		{Param: MaxThreads, Name: "MaxThreads", Tier: TierApp, Group: GroupCapacity,
			Min: 50, Max: 600, Step: 50, Default: 200},
		{Param: SessionTimeout, Name: "SessionTimeout", Tier: TierApp, Group: GroupTimeout,
			Min: 1, Max: 35, Step: 2, Default: 29, Unit: "min"},
		{Param: MinSpareThreads, Name: "MinSpareThreads", Tier: TierApp, Group: GroupMinSpare,
			Min: 5, Max: 85, Step: 10, Default: 5},
		{Param: MaxSpareThreads, Name: "MaxSpareThreads", Tier: TierApp, Group: GroupMaxSpare,
			Min: 15, Max: 95, Step: 10, Default: 55},
	}
}

// Space is an ordered set of parameter definitions; it defines the discrete
// configuration lattice the agent searches.
type Space struct {
	defs  []Def
	index map[Param]int
}

// NewSpace builds a space from defs. It returns an error for empty input,
// duplicate parameters, or malformed lattices.
func NewSpace(defs []Def) (*Space, error) {
	if len(defs) == 0 {
		return nil, errors.New("config: empty parameter space")
	}
	s := &Space{
		defs:  make([]Def, len(defs)),
		index: make(map[Param]int, len(defs)),
	}
	copy(s.defs, defs)
	for i, d := range s.defs {
		if d.Step <= 0 || d.Max < d.Min || (d.Max-d.Min)%d.Step != 0 {
			return nil, fmt.Errorf("config: malformed lattice for %s [%d,%d] step %d",
				d.Name, d.Min, d.Max, d.Step)
		}
		if d.Default < d.Min || d.Default > d.Max {
			return nil, fmt.Errorf("config: default %d outside [%d,%d] for %s",
				d.Default, d.Min, d.Max, d.Name)
		}
		if _, dup := s.index[d.Param]; dup {
			return nil, fmt.Errorf("config: duplicate parameter %s", d.Name)
		}
		s.index[d.Param] = i
	}
	return s, nil
}

// MustSpace is NewSpace for statically known-good definitions; it panics on
// error and is intended for package-level defaults and tests.
func MustSpace(defs []Def) *Space {
	s, err := NewSpace(defs)
	if err != nil {
		panic(err)
	}
	return s
}

// AdmissionDefs returns the admission-gate lattice: the SLO gate's
// concurrency and queue-depth caps as tunable parameters, so Q-learning can
// move the gate alongside MaxClients/KeepAlive. The defaults are wide open —
// AdmitConcurrency at its lattice max with a half-capacity queue behind it —
// so a default configuration behaves like the ungated system until the agent
// (or the epoch loop) tightens it.
func AdmissionDefs() []Def {
	return []Def{
		{Param: AdmitConcurrency, Name: "AdmitConcurrency", Tier: TierWeb, Group: GroupCapacity,
			Min: 50, Max: 600, Step: 50, Default: 600},
		{Param: AdmitQueue, Name: "AdmitQueue", Tier: TierWeb, Group: GroupCapacity,
			Min: 50, Max: 600, Step: 50, Default: 300},
	}
}

// CapacityDefs returns the elastic-capacity lattice: the VM provisioning
// level as a tunable parameter, expressed as a capacity ordinal (1 = the
// paper's Level-3, the smallest VM; 3 = Level-1, the largest). The default is
// the lattice max — a default configuration provisions at peak, exactly like
// the static testbed, until the agent (or the saturation fast path) scales
// down. The parameter sits in its own GroupScale: grouped sampling intersects
// member ranges, and 1..3 shares no values with the 50..600 concurrency caps.
func CapacityDefs() []Def {
	return []Def{
		{Param: CapacityLevel, Name: "CapacityLevel", Tier: TierApp, Group: GroupScale,
			Min: 1, Max: 3, Step: 1, Default: 3, Unit: "level"},
	}
}

// Default returns the full eight-parameter space of paper Table 1.
func Default() *Space { return MustSpace(Table1()) }

// WithAdmission returns the Table 1 space extended with the admission-gate
// parameters: ten dimensions, searched by the same Q-learning machinery.
func WithAdmission() *Space { return MustSpace(append(Table1(), AdmissionDefs()...)) }

// WithCapacity returns the Table 1 space extended with the VM capacity level:
// nine dimensions, letting Q-learning trade software knobs against
// provisioning (price the level via core.Options.CapacityCost so bigger VMs
// are not a free lunch).
func WithCapacity() *Space { return MustSpace(append(Table1(), CapacityDefs()...)) }

// Len returns the number of parameters.
func (s *Space) Len() int { return len(s.defs) }

// Defs returns a copy of the parameter definitions in order.
func (s *Space) Defs() []Def {
	out := make([]Def, len(s.defs))
	copy(out, s.defs)
	return out
}

// Def returns the definition at position i.
func (s *Space) Def(i int) Def { return s.defs[i] }

// Lookup returns the position of param within the space.
func (s *Space) Lookup(param Param) (int, bool) {
	i, ok := s.index[param]
	return i, ok
}

// States returns the total number of lattice points (the product of
// per-parameter level counts). It saturates at math.MaxInt on overflow,
// which cannot happen for Table 1 (12·11·9·9·12·18·9·9 ≈ 1.2e7).
func (s *Space) States() int {
	total := 1
	for _, d := range s.defs {
		total *= d.Levels()
	}
	return total
}

// DefaultConfig returns the configuration with every parameter at its
// default, snapped onto the lattice.
func (s *Space) DefaultConfig() Config {
	c := make(Config, len(s.defs))
	for i, d := range s.defs {
		c[i] = d.Value(d.Index(d.Default))
	}
	return c
}

// Clamp snaps every value of c onto the parameter lattice, returning a new
// configuration. Inputs of the wrong length cause an error.
func (s *Space) Clamp(c Config) (Config, error) {
	if len(c) != len(s.defs) {
		return nil, fmt.Errorf("config: got %d values for %d parameters", len(c), len(s.defs))
	}
	out := make(Config, len(c))
	for i, d := range s.defs {
		out[i] = d.Value(d.Index(c[i]))
	}
	return out, nil
}

// Validate reports whether c is exactly on the lattice.
func (s *Space) Validate(c Config) error {
	if len(c) != len(s.defs) {
		return fmt.Errorf("config: got %d values for %d parameters", len(c), len(s.defs))
	}
	for i, d := range s.defs {
		v := c[i]
		if v < d.Min || v > d.Max || (v-d.Min)%d.Step != 0 {
			return fmt.Errorf("config: %s=%d not on lattice [%d,%d] step %d",
				d.Name, v, d.Min, d.Max, d.Step)
		}
	}
	return nil
}

// Config is a point in the configuration lattice: one value per parameter, in
// space order.
type Config []int

// Clone returns a deep copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports value equality.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for Q-table and cache lookups.
func (c Config) Key() string {
	var b strings.Builder
	b.Grow(len(c) * 4)
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// ParseKey parses a Key back into a configuration.
func ParseKey(key string) (Config, error) {
	if key == "" {
		return nil, errors.New("config: empty key")
	}
	parts := strings.Split(key, ",")
	c := make(Config, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("config: bad key %q: %w", key, err)
		}
		c[i] = v
	}
	return c, nil
}

// Get returns the value of param within the space, or false when absent.
func (c Config) Get(s *Space, param Param) (int, bool) {
	i, ok := s.Lookup(param)
	if !ok || i >= len(c) {
		return 0, false
	}
	return c[i], true
}

// With returns a copy of c with param set to v (not lattice-checked).
func (c Config) With(s *Space, param Param, v int) Config {
	out := c.Clone()
	if i, ok := s.Lookup(param); ok && i < len(out) {
		out[i] = v
	}
	return out
}

// Format renders the configuration with parameter names for logs.
func (c Config) Format(s *Space) string {
	var b strings.Builder
	for i, d := range s.defs {
		if i > 0 {
			b.WriteString(" ")
		}
		if i < len(c) {
			fmt.Fprintf(&b, "%s=%d", d.Name, c[i])
		}
	}
	return b.String()
}
