package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1HasEightParams(t *testing.T) {
	defs := Table1()
	if len(defs) != 8 {
		t.Fatalf("Table 1 has %d parameters, want 8", len(defs))
	}
	names := map[string]bool{}
	for _, d := range defs {
		names[d.Name] = true
	}
	for _, want := range []string{
		"MaxClients", "KeepaliveTimeout", "MinSpareServers", "MaxSpareServers",
		"MaxThreads", "SessionTimeout", "MinSpareThreads", "MaxSpareThreads",
	} {
		if !names[want] {
			t.Errorf("missing parameter %s", want)
		}
	}
}

func TestTable1Lattices(t *testing.T) {
	for _, d := range Table1() {
		if d.Step <= 0 {
			t.Errorf("%s: step %d", d.Name, d.Step)
		}
		if (d.Max-d.Min)%d.Step != 0 {
			t.Errorf("%s: range [%d,%d] not divisible by step %d", d.Name, d.Min, d.Max, d.Step)
		}
		if d.Default < d.Min || d.Default > d.Max {
			t.Errorf("%s: default %d outside [%d,%d]", d.Name, d.Default, d.Min, d.Max)
		}
		if d.Levels() < 2 {
			t.Errorf("%s: only %d levels", d.Name, d.Levels())
		}
	}
}

func TestDefValueIndexRoundTrip(t *testing.T) {
	for _, d := range Table1() {
		for i := 0; i < d.Levels(); i++ {
			v := d.Value(i)
			if got := d.Index(v); got != i {
				t.Fatalf("%s: Index(Value(%d)) = %d", d.Name, i, got)
			}
		}
	}
}

func TestDefValueClamps(t *testing.T) {
	d := Table1()[0] // MaxClients 50..600 step 50
	if d.Value(-5) != d.Min {
		t.Fatalf("Value(-5) = %d", d.Value(-5))
	}
	if d.Value(999) != d.Max {
		t.Fatalf("Value(999) = %d", d.Value(999))
	}
	if d.Index(-100) != 0 {
		t.Fatal("Index below min")
	}
	if d.Index(10000) != d.Levels()-1 {
		t.Fatal("Index above max")
	}
}

func TestDefIndexRoundsToNearest(t *testing.T) {
	d := Def{Min: 0, Max: 100, Step: 10}
	if d.Index(14) != 1 {
		t.Fatalf("Index(14) = %d, want 1", d.Index(14))
	}
	if d.Index(16) != 2 {
		t.Fatalf("Index(16) = %d, want 2", d.Index(16))
	}
}

func TestNewSpaceRejectsBadDefs(t *testing.T) {
	tests := []struct {
		name string
		defs []Def
	}{
		{"empty", nil},
		{"zero step", []Def{{Param: MaxClients, Name: "x", Min: 0, Max: 10, Step: 0, Default: 0}}},
		{"inverted range", []Def{{Param: MaxClients, Name: "x", Min: 10, Max: 0, Step: 1, Default: 5}}},
		{"non-divisible", []Def{{Param: MaxClients, Name: "x", Min: 0, Max: 10, Step: 3, Default: 0}}},
		{"default outside", []Def{{Param: MaxClients, Name: "x", Min: 0, Max: 10, Step: 5, Default: 50}}},
		{"duplicate", []Def{
			{Param: MaxClients, Name: "a", Min: 0, Max: 10, Step: 5, Default: 0},
			{Param: MaxClients, Name: "b", Min: 0, Max: 10, Step: 5, Default: 0},
		}},
	}
	for _, tt := range tests {
		if _, err := NewSpace(tt.defs); err == nil {
			t.Errorf("%s: no error", tt.name)
		}
	}
}

func TestSpaceStates(t *testing.T) {
	s := Default()
	want := 1
	for _, d := range s.Defs() {
		want *= d.Levels()
	}
	if got := s.States(); got != want {
		t.Fatalf("States = %d, want %d", got, want)
	}
	if s.States() < 1_000_000 {
		t.Fatalf("full lattice suspiciously small: %d", s.States())
	}
}

func TestDefaultConfigOnLattice(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestClampSnapsOntoLattice(t *testing.T) {
	s := Default()
	raw := make(Config, s.Len())
	for i, d := range s.Defs() {
		raw[i] = d.Min + 1 // off-lattice for step > 1
	}
	snapped, err := s.Clamp(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(snapped); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
	if _, err := s.Clamp(Config{1}); err == nil {
		t.Fatal("short config clamped without error")
	}
}

func TestValidateRejects(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	bad := cfg.Clone()
	bad[0] = 51 // off-lattice
	if err := s.Validate(bad); err == nil {
		t.Fatal("off-lattice accepted")
	}
	if err := s.Validate(cfg[:3]); err == nil {
		t.Fatal("short config accepted")
	}
}

func TestConfigKeyRoundTrip(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	parsed, err := ParseKey(cfg.Key())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(cfg) {
		t.Fatalf("round trip: %v != %v", parsed, cfg)
	}
}

func TestConfigKeyRoundTripProperty(t *testing.T) {
	s := Default()
	check := func(seed uint16) bool {
		cfg := make(Config, s.Len())
		v := int(seed)
		for i, d := range s.Defs() {
			v = (v*31 + 7) % d.Levels()
			cfg[i] = d.Value(v)
		}
		parsed, err := ParseKey(cfg.Key())
		return err == nil && parsed.Equal(cfg)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyErrors(t *testing.T) {
	if _, err := ParseKey(""); err == nil {
		t.Fatal("empty key parsed")
	}
	if _, err := ParseKey("1,x,3"); err == nil {
		t.Fatal("garbage key parsed")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	s := Default()
	a := s.DefaultConfig()
	b := a.Clone()
	b[0] = 600
	if a[0] == 600 {
		t.Fatal("clone aliases original")
	}
}

func TestConfigGetWith(t *testing.T) {
	s := Default()
	cfg := s.DefaultConfig()
	v, ok := cfg.Get(s, MaxClients)
	if !ok || v != 150 {
		t.Fatalf("Get(MaxClients) = %d,%v", v, ok)
	}
	cfg2 := cfg.With(s, MaxClients, 300)
	if v2, _ := cfg2.Get(s, MaxClients); v2 != 300 {
		t.Fatalf("With did not set: %d", v2)
	}
	if v1, _ := cfg.Get(s, MaxClients); v1 != 150 {
		t.Fatal("With mutated the original")
	}
}

func TestConfigFormatMentionsNames(t *testing.T) {
	s := Default()
	out := s.DefaultConfig().Format(s)
	if !strings.Contains(out, "MaxClients=150") {
		t.Fatalf("Format output %q", out)
	}
}

func TestTierAndGroupStrings(t *testing.T) {
	if TierWeb.String() != "web" || TierApp.String() != "app" || TierDatabase.String() != "db" {
		t.Fatal("tier names wrong")
	}
	if Tier(99).String() != "unknown" {
		t.Fatal("unknown tier name")
	}
	for _, g := range Groups() {
		if g.String() == "unknown" {
			t.Fatalf("group %d has no name", g)
		}
	}
	if Group(99).String() != "unknown" {
		t.Fatal("unknown group name")
	}
}
