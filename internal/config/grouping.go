package config

import "fmt"

// GroupMembers returns, for each group, the list of parameter indices in the
// space that belong to it. Groups with no members in the space are omitted.
func GroupMembers(s *Space) map[Group][]int {
	members := make(map[Group][]int, 4)
	for i, d := range s.defs {
		members[d.Group] = append(members[d.Group], i)
	}
	return members
}

// CoarseValues returns k representative values for a group, spread evenly
// over the intersection of its members' ranges. All members of a group share
// each sampled value (paper §4.1: "parameters in the same group are always
// given the same value", with "coarse granularity ... during training data
// collection"). k must be at least 2.
func CoarseValues(s *Space, g Group, k int) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("config: need at least 2 coarse values, got %d", k)
	}
	members := GroupMembers(s)[g]
	if len(members) == 0 {
		return nil, fmt.Errorf("config: group %s has no members", g)
	}
	lo, hi := s.defs[members[0]].Min, s.defs[members[0]].Max
	for _, i := range members[1:] {
		if m := s.defs[i].Min; m > lo {
			lo = m
		}
		if m := s.defs[i].Max; m < hi {
			hi = m
		}
	}
	if hi < lo {
		return nil, fmt.Errorf("config: group %s member ranges do not overlap", g)
	}
	vals := make([]int, k)
	for j := 0; j < k; j++ {
		vals[j] = lo + (hi-lo)*j/(k-1)
	}
	return vals, nil
}

// GroupedConfig builds a full configuration from one value per group,
// snapping each parameter onto its lattice. Values must be keyed by group.
func GroupedConfig(s *Space, values map[Group]int) (Config, error) {
	c := make(Config, s.Len())
	for i, d := range s.defs {
		v, ok := values[d.Group]
		if !ok {
			return nil, fmt.Errorf("config: missing value for group %s", d.Group)
		}
		c[i] = d.Value(d.Index(v))
	}
	return c, nil
}

// GroupVector projects a configuration onto its per-group mean values, in
// Groups() order restricted to groups present in the space. It is the feature
// vector used by the regression predictor during policy initialization.
func GroupVector(s *Space, c Config) []float64 {
	members := GroupMembers(s)
	var vec []float64
	for _, g := range Groups() {
		idx := members[g]
		if len(idx) == 0 {
			continue
		}
		var sum float64
		for _, i := range idx {
			if i < len(c) {
				sum += float64(c[i])
			}
		}
		vec = append(vec, sum/float64(len(idx)))
	}
	return vec
}

// Features returns a quadratic feature basis over the space for use with
// linear value-function approximation (the paper's §7 future-work
// direction): a bias term, each parameter normalized to [0,1], and its
// square. States that fail to parse yield the bias-only vector.
func Features(s *Space) (func(stateKey string) []float64, int) {
	dim := 1 + 2*s.Len()
	defs := s.Defs()
	return func(stateKey string) []float64 {
		out := make([]float64, dim)
		out[0] = 1
		cfg, err := ParseKey(stateKey)
		if err != nil || len(cfg) != len(defs) {
			return out
		}
		for i, d := range defs {
			span := float64(d.Max - d.Min)
			x := 0.0
			if span > 0 {
				x = float64(cfg[i]-d.Min) / span
			}
			out[1+2*i] = x
			out[2+2*i] = x * x
		}
		return out
	}, dim
}
