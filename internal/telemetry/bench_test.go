package telemetry

import (
	"io"
	"testing"
)

// BenchmarkHistogramObserve is the hot-path baseline for future perf PRs:
// Observe must stay low-nanosecond and allocation-free, because it sits
// inside the live server's request handlers.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("rt_seconds", "", nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1.3)
	}
}

// BenchmarkHistogramObserveParallel exercises the shard selection under the
// contention pattern the live server produces (many handler goroutines).
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("rt_seconds", "", nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1.3)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("reqs_total", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("reqs_total", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceAdd(b *testing.B) {
	tr := NewTrace(1024)
	ev := Event{Kind: KindStep, Iteration: 1, State: "30|10|7", Reward: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Add(ev)
	}
}
