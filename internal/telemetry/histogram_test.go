package telemetry

import (
	"math"
	"testing"
)

func TestNewHistogramStandalone(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(0.1)
	h.Observe(1.1)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count %d", s.Count)
	}
	if len(s.UpperBounds) != len(DefBuckets) {
		t.Fatalf("default buckets not used: %v", s.UpperBounds)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		a.Observe(v)
	}
	for _, v := range []float64{0.25, 0.75, 2} {
		b.Observe(v)
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa.Count != 7 {
		t.Fatalf("merged count %d", sa.Count)
	}
	if want := 0.5 + 1.5 + 3 + 8 + 0.25 + 0.75 + 2; sa.Sum != want {
		t.Fatalf("merged sum %v, want %v", sa.Sum, want)
	}
	// Cumulative convention: counts ≤ each bound across both inputs.
	for i, want := range []int64{3, 5, 6} {
		if sa.Buckets[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, sa.Buckets[i], want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bounds merge did not panic")
		}
	}()
	mismatched := NewHistogram([]float64{1, 2}).Snapshot()
	sa.Merge(mismatched)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 100 observations uniform over (0, 4]: quantiles interpolate linearly.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-2) > 0.1 {
		t.Fatalf("p50 %v, want ≈2", q)
	}
	if q := s.Quantile(0.25); math.Abs(q-1) > 0.1 {
		t.Fatalf("p25 %v, want ≈1", q)
	}
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("p100 %v, want 4", q)
	}

	// Overflow observations clamp to the largest bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile %v, want clamp to 2", q)
	}

	// Degenerate inputs.
	var empty HistogramSnapshot
	if q := empty.Quantile(0.9); q != 0 {
		t.Fatalf("empty quantile %v", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("q=0 quantile %v", q)
	}
}
