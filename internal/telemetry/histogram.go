package telemetry

import (
	"math"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// DefBuckets are the default latency bucket upper bounds in paper-scale
// seconds, chosen around the 2 s SLA of the reproduction: fine resolution
// below the SLA, coarse above it.
var DefBuckets = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// histShard is one independently counted copy of the bucket array. Shards
// are padded so concurrent observers on different shards do not contend on
// a cache line.
type histShard struct {
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	sumBits atomic.Uint64  // float64 bits of the shard's value sum
	_       [64]byte
}

// Histogram counts observations into fixed buckets. Observe is lock-free and
// allocation-free: it picks a shard from the calling goroutine's stack
// address and touches only that shard's atomics, so the live server's
// request handlers never serialize on a shared cache line. The zero value is
// unusable; obtain histograms from a Registry.
type Histogram struct {
	desc   desc
	bounds []float64
	shards []histShard
}

// NewHistogram builds a standalone histogram outside any Registry — for
// hot-path accounting that is merged into results at interval close rather
// than exposed on /metrics (the load generator's per-shard latency counts).
// Nil buckets use DefBuckets.
func NewHistogram(buckets []float64) *Histogram {
	return newHistogram(desc{}, buckets)
}

func newHistogram(d desc, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets not sorted ascending")
		}
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	h := &Histogram{
		desc:   d,
		bounds: bounds,
		shards: make([]histShard, shardCount()),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// shardCount returns the number of histogram shards: GOMAXPROCS rounded up
// to a power of two (so shard selection is a mask), capped at 16.
func shardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (h *Histogram) describe() desc { return h.desc }

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Linear scan: bucket arrays are short (≈15) and the branch pattern is
	// predictable, which beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	// Shard by the goroutine's stack address: stacks are distinct
	// allocations ≥2 KiB apart, so the shifted address spreads concurrent
	// goroutines across shards without runtime hooks. Only the choice of
	// shard depends on it — any skew costs contention, never correctness.
	var pin byte
	sh := &h.shards[(uintptr(unsafe.Pointer(&pin))>>11)&uintptr(len(h.shards)-1)]
	sh.counts[i].Add(1)
	for {
		old := sh.sumBits.Load()
		if sh.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is one histogram's merged state.
type HistogramSnapshot struct {
	// Buckets hold cumulative counts: Buckets[i] is the number of
	// observations ≤ UpperBounds[i]. The implicit +Inf bucket equals Count.
	UpperBounds []float64 `json:"upper_bounds"`
	Buckets     []int64   `json:"buckets"`
	Count       int64     `json:"count"`
	Sum         float64   `json:"sum"`
}

// Snapshot merges all shards. It is safe under concurrent Observe calls; the
// result is a consistent-enough view for exposition (per-bucket counts are
// each atomically read, the set is not a single atomic cut).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		UpperBounds: h.bounds,
		Buckets:     make([]int64, len(h.bounds)),
	}
	for si := range h.shards {
		sh := &h.shards[si]
		for b := range sh.counts {
			n := sh.counts[b].Load()
			s.Count += n
			if b < len(s.Buckets) {
				s.Buckets[b] += n
			}
		}
		s.Sum += bitsFloat(sh.sumBits.Load())
	}
	// Convert per-bucket counts to the cumulative convention.
	for i := 1; i < len(s.Buckets); i++ {
		s.Buckets[i] += s.Buckets[i-1]
	}
	return s
}

// Merge folds another snapshot with identical bucket bounds into s. It is
// how per-shard histograms combine into one interval result; mismatched
// bounds are a programming error and panic.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(o.UpperBounds) != len(s.UpperBounds) {
		panic("telemetry: merging histograms with different buckets")
	}
	for i, b := range o.Buckets {
		s.Buckets[i] += b
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear interpolation
// within the bucket containing it, the standard Prometheus-style estimate.
// Observations above the last bound clamp to that bound; an empty histogram
// yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	rank := q * float64(s.Count)
	prev := int64(0)
	lower := 0.0
	for i, cum := range s.Buckets {
		if float64(cum) >= rank {
			inBucket := float64(cum - prev)
			if inBucket <= 0 {
				return s.UpperBounds[i]
			}
			return lower + (s.UpperBounds[i]-lower)*(rank-float64(prev))/inBucket
		}
		prev = cum
		lower = s.UpperBounds[i]
	}
	// Rank falls in the +Inf overflow bucket: clamp to the largest bound.
	if n := len(s.UpperBounds); n > 0 {
		return s.UpperBounds[n-1]
	}
	return 0
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
