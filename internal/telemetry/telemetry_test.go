package telemetry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "in-flight requests", nil)
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"k": "v"})
	b := r.Counter("x_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("x_total", "", Labels{"k": "w"}); c == a {
		t.Fatal("different labels must return a different counter")
	}

	for name, fn := range map[string]func(){
		"kind conflict": func() { r.Gauge("x_total", "", Labels{"k": "v"}) },
		"bad metric":    func() { r.Counter("9bad", "", nil) },
		"bad label":     func() { r.Counter("ok_total", "", Labels{"0k": "v"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper bounds, cumulative counts.
	want := []int64{2, 4, 6}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket le=%v: got %d, want %d", s.UpperBounds[i], s.Buckets[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 21 {
		t.Errorf("sum = %v, want 21", s.Sum)
	}
}

func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "", []float64{0.5, 1, 2}, nil)
	const (
		workers = 8
		perG    = 5000
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	// Concurrent reader: a Snapshot taken mid-flight must stay internally
	// consistent — cumulative bucket counts never exceed the total, since
	// every per-shard bucket read contributes to both in the same pass.
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			for i, c := range s.Buckets {
				if c > s.Count {
					t.Errorf("torn snapshot: bucket[%d]=%d > count=%d", i, c, s.Count)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%4) * 0.6)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	s := h.Snapshot()
	if s.Count != int64(workers*perG) {
		t.Fatalf("count = %d, want %d", s.Count, workers*perG)
	}
	// values cycle 0, 0.6, 1.2, 1.8 → buckets le=0.5:1/4, le=1:2/4, le=2:4/4
	quarter := int64(workers * perG / 4)
	wantBuckets := []int64{quarter, 2 * quarter, 4 * quarter}
	for i, w := range wantBuckets {
		if s.Buckets[i] != w {
			t.Errorf("bucket le=%v: got %d, want %d", s.UpperBounds[i], s.Buckets[i], w)
		}
	}
	wantSum := float64(workers*perG/4) * (0 + 0.6 + 1.2 + 1.8)
	if diff := s.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 1; i <= 5; i++ {
		tr.Add(Event{Kind: KindStep, Iteration: i})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	snap := tr.Snapshot()
	for i, want := range []int{3, 4, 5} {
		if snap[i].Iteration != want || snap[i].Seq != uint64(want) {
			t.Errorf("snap[%d] = %+v, want iteration/seq %d", i, snap[i], want)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add(Event{Kind: KindStep, Iteration: i})
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
}

// goldenRegistry builds the deterministic fixture shared by the golden and
// parse tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	steps := r.Counter("rac_agent_steps_total", "Agent tuning iterations.", nil)
	steps.Add(12)
	r.Counter("httpd_requests_total", "Served requests by page class.", Labels{"class": "home"}).Add(7)
	r.Counter("httpd_requests_total", "Served requests by page class.", Labels{"class": "search"}).Add(3)
	r.Gauge("rac_agent_epsilon", "Exploration rate in force.", nil).Set(0.05)
	h := r.Histogram("httpd_request_seconds", "Request latency in paper-scale seconds.",
		[]float64{0.5, 1, 2}, Labels{"class": "home"})
	for _, v := range []float64{0.1, 0.6, 0.6, 1.5, 5} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by writing the got output)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

// TestPrometheusParse checks every exposition line against the text-format
// grammar the way a scraper would: comments are HELP/TYPE, samples are
// `name{labels} value` with a parseable float value.
func TestPrometheusParse(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types := map[string]string{}
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[0]]; dup {
				t.Errorf("duplicate TYPE for family %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		name, value, err := parseSample(line)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("sample %q has no TYPE line (family %s)", name, family)
		}
		_ = value
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples emitted")
	}
	if types["httpd_request_seconds"] != "histogram" {
		t.Errorf("types = %v, want httpd_request_seconds histogram", types)
	}
}

// parseSample decomposes one sample line into metric name and value.
func parseSample(line string) (string, float64, error) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, fmt.Errorf("no value separator")
	}
	value, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value: %v", err)
	}
	ident := line[:sp]
	name := ident
	if i := strings.IndexByte(ident, '{'); i >= 0 {
		if !strings.HasSuffix(ident, "}") {
			return "", 0, fmt.Errorf("unterminated label set")
		}
		name = ident[:i]
		body := ident[i+1 : len(ident)-1]
		for _, pair := range splitLabelPairs(body) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 || !validLabelName(pair[:eq]) {
				return "", 0, fmt.Errorf("bad label pair %q", pair)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", 0, fmt.Errorf("unquoted label value %q", v)
			}
		}
	}
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("bad metric name %q", name)
	}
	return name, value, nil
}

// splitLabelPairs splits k1="v1",k2="v2" on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestSnapshotJSONShape(t *testing.T) {
	s := goldenRegistry().Snapshot()
	if len(s.Counters) != 3 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot shape = %d/%d/%d, want 3/1/1",
			len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	if s.Histograms[0].Count != 5 {
		t.Errorf("histogram count = %d, want 5", s.Histograms[0].Count)
	}
	// Counters are sorted by name then labels.
	if s.Counters[0].Labels["class"] != "home" || s.Counters[1].Labels["class"] != "search" {
		t.Errorf("counters not label-sorted: %+v", s.Counters)
	}
}
