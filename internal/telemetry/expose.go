package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered instrument in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered by metric
// name then label set. Instruments sharing a name form one family: HELP and
// TYPE are emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, m := range r.sorted() {
		d := m.describe()
		if d.name != prevFamily {
			if d.help != "" {
				bw.WriteString("# HELP " + d.name + " " + escapeHelp(d.help) + "\n")
			}
			bw.WriteString("# TYPE " + d.name + " " + string(d.kind) + "\n")
			prevFamily = d.name
		}
		switch v := m.(type) {
		case *Counter:
			bw.WriteString(d.name + d.labelStr + " " + formatInt(v.Value()) + "\n")
		case *Gauge:
			bw.WriteString(d.name + d.labelStr + " " + formatFloat(v.Value()) + "\n")
		case *Histogram:
			writeHistogram(bw, d, v.Snapshot())
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram's cumulative buckets, sum and count.
func writeHistogram(bw *bufio.Writer, d desc, s HistogramSnapshot) {
	for i, ub := range s.UpperBounds {
		bw.WriteString(d.name + "_bucket" + withLabel(d.labelStr, "le", formatFloat(ub)) +
			" " + formatInt(s.Buckets[i]) + "\n")
	}
	bw.WriteString(d.name + "_bucket" + withLabel(d.labelStr, "le", "+Inf") +
		" " + formatInt(s.Count) + "\n")
	bw.WriteString(d.name + "_sum" + d.labelStr + " " + formatFloat(s.Sum) + "\n")
	bw.WriteString(d.name + "_count" + d.labelStr + " " + formatInt(s.Count) + "\n")
}

// withLabel splices one extra label pair into a canonical label string.
func withLabel(labelStr, name, value string) string {
	pair := name + `="` + escapeLabelValue(value) + `"`
	if labelStr == "" {
		return "{" + pair + "}"
	}
	return labelStr[:len(labelStr)-1] + "," + pair + "}"
}

// escapeHelp applies the text-format escaping for HELP lines.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CounterSample is one counter's state in a Snapshot.
type CounterSample struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugeSample is one gauge's state in a Snapshot.
type GaugeSample struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramSample is one histogram's state in a Snapshot.
type HistogramSample struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	HistogramSnapshot
}

// Snapshot is a JSON-able point-in-time copy of every instrument, ordered
// like the exposition output.
type Snapshot struct {
	Counters   []CounterSample   `json:"counters,omitempty"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
}

// Snapshot copies the current state of every instrument.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, m := range r.sorted() {
		d := m.describe()
		switch v := m.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterSample{Name: d.name, Labels: d.labels, Value: v.Value()})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeSample{Name: d.name, Labels: d.labels, Value: v.Value()})
		case *Histogram:
			s.Histograms = append(s.Histograms, HistogramSample{Name: d.name, Labels: d.labels, HistogramSnapshot: v.Snapshot()})
		}
	}
	return s
}
