// Package telemetry is the observability layer of the RAC stack: a
// dependency-free metrics registry (counters, gauges, fixed-bucket latency
// histograms) plus a structured decision-trace ring buffer for agent steps.
//
// The hot path is lock-free — counters and histogram observations are atomic
// (histograms additionally shard their buckets so concurrent request handlers
// do not serialize on one cache line) and allocation-free, so instruments can
// sit inside the live server's per-request path. The registry exposes two
// views: Prometheus text exposition (WritePrometheus, served by the live
// server's /metrics endpoint) and a JSON-able Snapshot for end-of-run dumps.
//
// Instruments are get-or-create: asking the registry twice for the same name
// and label set returns the same instrument, so independent layers (agent,
// server, load generator) can share one registry without coordination.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Labels attach fixed dimensions to an instrument (e.g. the TPC-W page
// class). Label sets are part of an instrument's identity and must not be
// mutated after use.
type Labels map[string]string

// canonical renders labels in Prometheus form with sorted keys, e.g.
// `{class="home"}`; empty labels render as "".
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + `="` + escapeLabelValue(l[k]) + `"`
	}
	return s + "}"
}

// clone copies the label set so callers cannot mutate registered identity.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// escapeLabelValue applies the Prometheus text-format escaping rules.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// kind discriminates instrument types inside the registry.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// desc is the immutable identity of an instrument.
type desc struct {
	name     string
	help     string
	labels   Labels
	labelStr string
	kind     kind
}

// id is the registry key: name plus canonical labels.
func (d desc) id() string { return d.name + d.labelStr }

// instrument is implemented by Counter, Gauge and Histogram.
type instrument interface {
	describe() desc
}

// Registry holds a set of named instruments. The zero value is unusable;
// construct with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]instrument)}
}

// lookup returns the instrument registered under d's id, creating it with
// mk on first use. It panics on invalid names or on a kind conflict —
// instrument identity is a programming error, not a runtime condition.
func (r *Registry) lookup(d desc, mk func() instrument) instrument {
	if !validMetricName(d.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", d.name))
	}
	for k := range d.labels {
		if !validLabelName(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", k, d.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[d.id()]; ok {
		if m.describe().kind != d.kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s",
				d.id(), m.describe().kind, d.kind))
		}
		return m
	}
	m := mk()
	r.metrics[d.id()] = m
	return m
}

// Counter returns (creating on first use) the counter with the given name
// and labels. The help string of the first registration wins.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	d := desc{name: name, help: help, labels: labels.clone(), labelStr: labels.canonical(), kind: kindCounter}
	return r.lookup(d, func() instrument { return &Counter{desc: d} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	d := desc{name: name, help: help, labels: labels.clone(), labelStr: labels.canonical(), kind: kindGauge}
	return r.lookup(d, func() instrument { return &Gauge{desc: d} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram with the given
// name, labels and bucket upper bounds. Buckets must be sorted ascending;
// nil uses DefBuckets. The buckets of the first registration win.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	d := desc{name: name, help: help, labels: labels.clone(), labelStr: labels.canonical(), kind: kindHistogram}
	return r.lookup(d, func() instrument { return newHistogram(d, buckets) }).(*Histogram)
}

// sorted returns all instruments ordered by name then label string, so
// exposition and snapshots are deterministic.
func (r *Registry) sorted() []instrument {
	r.mu.Lock()
	out := make([]instrument, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].describe(), out[j].describe()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.labelStr < dj.labelStr
	})
	return out
}

// Counter is a monotonically increasing integer. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	desc desc
	v    atomic.Int64
}

func (c *Counter) describe() desc { return c.desc }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n panics — counters are monotonic).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an arbitrary float that can go up and down. The zero value is
// unusable; obtain gauges from a Registry.
type Gauge struct {
	desc desc
	bits atomic.Uint64
}

func (g *Gauge) describe() desc { return g.desc }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add atomically adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }
