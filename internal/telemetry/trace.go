package telemetry

import "sync"

// EventKind discriminates decision-trace entries.
type EventKind string

// The agent's event kinds (paper Algorithm 3): one "step" per tuning
// iteration, one "retrain" per batch training pass, and one "policy-switch"
// when the violation counter trips a context change.
const (
	KindStep         EventKind = "step"
	KindRetrain      EventKind = "retrain"
	KindPolicySwitch EventKind = "policy-switch"
)

// Resilience event kinds: "retry" when a transient Apply/Measure failure is
// retried, "rollback" when the SLA safety guard reverts to the last-known-good
// configuration, "invalid-measurement" when an interval is discarded instead
// of learned from, and "fault" when the fault-injection layer fires.
const (
	KindRetry    EventKind = "retry"
	KindRollback EventKind = "rollback"
	KindInvalid  EventKind = "invalid-measurement"
	KindFault    EventKind = "fault"
)

// Fleet event kinds: "lifecycle" when a tenant transitions between FSM states
// (starting/running/paused/draining/stopped), "checkpoint" when a tenant's
// state is snapshotted to or restored from disk.
const (
	KindLifecycle  EventKind = "lifecycle"
	KindCheckpoint EventKind = "checkpoint"
)

// Workload event kind: one "workload" event per measurement interval of a
// scenario-driven run, recording the interval's offered load (and phase in
// Detail) so rollbacks and policy switches in the same trace can be
// correlated with the load that provoked them.
const KindWorkload EventKind = "workload"

// Admission event kind: one "admission" event per epoch decision of the SLO
// gate's adaptive loop, recording the epoch's rejection rate (RejectRate) and
// the regime it selected (Detail: "exploit", "spread" or "hold").
const KindAdmission EventKind = "admission"

// Capacity event kind: one "capacity" event per saturation verdict or scale
// decision of the elastic-capacity controller, recording the VM level in
// effect (Level) and the decision in Detail ("saturated: scale-up 2 -> 3",
// "hold: provisioning", …).
const KindCapacity EventKind = "capacity"

// Event is one structured decision-trace record. Fields are a union over the
// kinds; unused fields stay at their zero value and are omitted from JSON.
type Event struct {
	// Seq is a monotonically increasing sequence number assigned by the
	// trace, so consumers can detect drops after ring wraparound.
	Seq uint64 `json:"seq"`
	// Kind is the event type.
	Kind EventKind `json:"kind"`
	// Iteration is the agent iteration the event belongs to.
	Iteration int `json:"iteration,omitempty"`
	// State is the configuration state key measured this step.
	State string `json:"state,omitempty"`
	// Action describes the reconfiguration taken.
	Action string `json:"action,omitempty"`
	// MeanRT is the measured mean response time in paper seconds.
	MeanRT float64 `json:"mean_rt,omitempty"`
	// Reward is the immediate reward SLA − MeanRT.
	Reward float64 `json:"reward,omitempty"`
	// Epsilon is the exploration rate in force when the action was chosen.
	Epsilon float64 `json:"epsilon,omitempty"`
	// QDelta is the change of the state's best Q-value across this
	// iteration's batch retraining.
	QDelta float64 `json:"q_delta,omitempty"`
	// Violations is the consecutive-violation counter after the step.
	Violations int `json:"violations,omitempty"`
	// Policy names the active initial policy.
	Policy string `json:"policy,omitempty"`
	// Sweeps is the number of batch sweeps a retrain ran.
	Sweeps int `json:"sweeps,omitempty"`
	// Attempts is how many Apply/Measure tries a step needed (retry events
	// and steps that recovered from transient faults; 0 when untracked).
	Attempts int `json:"attempts,omitempty"`
	// Fault names the injected fault kind on "fault" events.
	Fault string `json:"fault,omitempty"`
	// OfferedRate is the interval's offered load on "workload" events
	// (req/s, or mean population for population-only scenarios).
	OfferedRate float64 `json:"offered_rate,omitempty"`
	// RejectRate is the closed epoch's rejection fraction on "admission"
	// events.
	RejectRate float64 `json:"reject_rate,omitempty"`
	// Converged reports whether a retrain hit its θ threshold.
	Converged bool `json:"converged,omitempty"`
	// Tenant names the fleet tenant an event belongs to (fleet-managed runs
	// only; empty for single-agent runs).
	Tenant string `json:"tenant,omitempty"`
	// Level names the VM provisioning level in effect ("capacity" events, and
	// "step" events of capacity-tracking systems).
	Level string `json:"level,omitempty"`
	// Detail carries kind-specific context (e.g. "shop → order" on a
	// policy switch).
	Detail string `json:"detail,omitempty"`
}

// Trace is a fixed-capacity ring buffer of decision events. It keeps the
// most recent Cap events; Add is O(1) and never allocates after
// construction. Safe for concurrent use — but unlike the metric instruments
// it takes a mutex, so it belongs on the per-iteration agent path, not the
// per-request hot path.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next int    // index the next event is written to
	seq  uint64 // total events ever added
}

// NewTrace returns a ring holding the most recent capacity events
// (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Add appends an event, assigning and returning its sequence number.
func (t *Trace) Add(ev Event) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.buf)
	return ev.Seq
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns how many events were ever added (≥ Len after wraparound).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Snapshot copies the buffered events, oldest first.
func (t *Trace) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}
