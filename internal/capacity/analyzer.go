// Package capacity adds elastic capacity control to the auto-configuration
// stack: the VM provisioning level becomes an actuator alongside the paper's
// software knobs. Three parts cooperate. The Analyzer performs deterministic
// saturation detection on the per-interval measurements the stack already
// emits — knee detection on the offered-vs-completed curve plus backlog
// trending, pure count/epoch-driven like internal/admission (no wall clock,
// no RNG), so runs stay byte-identical at any -procs. The System decorator
// wraps an Adjustable backend with a vmenv.Elastic scaler: deliberate
// CapacityLevel moves from the configuration lattice and analyzer verdicts
// between full Q-learning retrains both become scale requests, matured
// through the provisioning delay and priced into the reward via
// Metrics.CapacityUnits. The OnScale hook lets callers warm-start per-level
// policies from a registry (SQLR-style short-term policy memory), so a
// scale-back reuses what was learned at that level instead of re-exploring.
package capacity

import (
	"fmt"
)

// Config tunes the saturation analyzer. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Window is how many observations (measurement intervals) form one
	// verdict window. Verdicts are withheld until the window is full and the
	// window slides by one observation per Observe.
	Window int
	// SLASeconds is the latency reference: p99 (or mean, when p99 is
	// untracked) beyond it counts as a latency breach.
	SLASeconds float64
	// SaturationRatio is the completed/offered knee: a window whose
	// completion ratio falls below it — arrivals outpacing completions — is a
	// saturation candidate.
	SaturationRatio float64
	// HeadroomRatio is the completion ratio at or above which the system is
	// considered to be serving everything offered.
	HeadroomRatio float64
	// HeadroomRT is the fraction of SLASeconds the latency must stay under
	// for a headroom verdict: serving everything slowly is not headroom.
	HeadroomRT float64
	// Cooldown suppresses further scale verdicts for this many observations
	// after one fires, giving the previous decision time to take effect.
	Cooldown int
}

// DefaultConfig returns the analyzer calibration used by the experiments: a
// three-interval window, saturation below 90% completion, headroom above 98%
// completion with latency under half the SLA, and a two-interval cooldown.
func DefaultConfig(slaSeconds float64) Config {
	return Config{
		Window:          3,
		SLASeconds:      slaSeconds,
		SaturationRatio: 0.90,
		HeadroomRatio:   0.98,
		HeadroomRT:      0.5,
		Cooldown:        2,
	}
}

// Validate checks the calibration.
func (c Config) Validate() error {
	if c.Window < 1 {
		return fmt.Errorf("capacity: window %d < 1", c.Window)
	}
	if c.SLASeconds <= 0 {
		return fmt.Errorf("capacity: non-positive SLA %v", c.SLASeconds)
	}
	if c.SaturationRatio <= 0 || c.SaturationRatio > 1 {
		return fmt.Errorf("capacity: saturation ratio %v outside (0,1]", c.SaturationRatio)
	}
	if c.HeadroomRatio < c.SaturationRatio || c.HeadroomRatio > 1 {
		return fmt.Errorf("capacity: headroom ratio %v outside [%v,1]", c.HeadroomRatio, c.SaturationRatio)
	}
	if c.HeadroomRT <= 0 || c.HeadroomRT > 1 {
		return fmt.Errorf("capacity: headroom RT fraction %v outside (0,1]", c.HeadroomRT)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("capacity: negative cooldown %d", c.Cooldown)
	}
	return nil
}

// Observation is one measurement interval's saturation-relevant counts —
// the projection of system.Metrics the analyzer consumes.
type Observation struct {
	// Offered is the interval's arrivals reaching the admission decision
	// (system.Metrics.Offered). Zero means the producer does not track
	// arrivals; the analyzer then falls back to latency-only detection.
	Offered int
	// Completed is requests finished in the interval.
	Completed int
	// Rejected is arrivals the admission gate fast-rejected. Rejections are
	// not errors, but for capacity purposes they are unmet demand: the gate
	// turns arrivals away precisely because the current level cannot serve
	// them.
	Rejected int
	// Shed is offered requests the load harness dropped before issuing;
	// they never reached the system and are excluded from its demand.
	Shed int
	// MeanRT and P99RT are the interval's latency statistics in seconds.
	MeanRT float64
	P99RT  float64
}

// demand is the interval's arrivals that actually reached the system.
func (o Observation) demand() int {
	d := o.Offered - o.Shed
	if d < 0 {
		d = 0
	}
	return d
}

// backlog is the interval's in-system growth: arrivals neither completed nor
// turned away. Negative values mean the system drained previously queued work.
func (o Observation) backlog() int {
	return o.demand() - o.Completed - o.Rejected
}

// latency is the interval's latency signal: p99 when tracked, mean otherwise.
func (o Observation) latency() float64 {
	if o.P99RT > 0 {
		return o.P99RT
	}
	return o.MeanRT
}

// Verdict is the analyzer's per-window stance.
type Verdict int

// The verdicts: Stable between the thresholds (or while warming up /
// cooling down), Saturated past the capacity knee (scale up), Headroom when
// the system serves everything comfortably (scale down).
const (
	VerdictStable Verdict = iota
	VerdictSaturated
	VerdictHeadroom
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictSaturated:
		return "saturated"
	case VerdictHeadroom:
		return "headroom"
	default:
		return "stable"
	}
}

// Decision is one Observe outcome.
type Decision struct {
	// Seq counts observations from 1.
	Seq int
	// Verdict is the window's stance.
	Verdict Verdict
	// CompletionRatio is the window's completed/demand (1 when demand is
	// untracked).
	CompletionRatio float64
	// BacklogTrend is the backlog change across the window (last − first).
	BacklogTrend int
	// Latency is the newest observation's latency signal in seconds.
	Latency float64
	// Reason says which rule produced the verdict, for traces.
	Reason string
}

// Analyzer is the pure saturation detector: a sliding window of
// observations, one Decision per Observe. It holds no clock and draws no
// random numbers — decisions are a function of the observation sequence
// alone, so replays are byte-identical at any -procs setting. Not safe for
// concurrent use; drive it from the measurement loop's goroutine.
type Analyzer struct {
	cfg      Config
	window   []Observation // sliding, oldest first
	seq      int
	cooldown int // observations left before scale verdicts may fire again
}

// NewAnalyzer builds an analyzer with the given calibration.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{cfg: cfg, window: make([]Observation, 0, cfg.Window)}, nil
}

// Config returns the calibration.
func (a *Analyzer) Config() Config { return a.cfg }

// Observe folds one interval into the window and returns its decision. Until
// the window fills, and during a post-verdict cooldown, the verdict is
// Stable with the reason recording why.
func (a *Analyzer) Observe(o Observation) Decision {
	a.seq++
	if len(a.window) == cap(a.window) {
		copy(a.window, a.window[1:])
		a.window = a.window[:len(a.window)-1]
	}
	a.window = append(a.window, o)

	d := Decision{Seq: a.seq, Latency: o.latency(), CompletionRatio: 1}
	if len(a.window) < a.cfg.Window {
		d.Reason = "warming"
		return d
	}
	d.CompletionRatio, d.BacklogTrend = a.windowStats()
	if a.cooldown > 0 {
		a.cooldown--
		d.Reason = "cooldown"
		return d
	}
	d.Verdict, d.Reason = a.verdict(d)
	if d.Verdict != VerdictStable {
		a.cooldown = a.cfg.Cooldown
	}
	return d
}

// windowStats aggregates the window: the completion ratio over its total
// demand and the backlog trend across it.
func (a *Analyzer) windowStats() (ratio float64, trend int) {
	var demand, completed int
	for _, o := range a.window {
		demand += o.demand()
		completed += o.Completed
	}
	ratio = 1
	if demand > 0 {
		ratio = float64(completed) / float64(demand)
	}
	trend = a.window[len(a.window)-1].backlog() - a.window[0].backlog()
	return ratio, trend
}

// verdict applies the detection rules to the full window.
func (a *Analyzer) verdict(d Decision) (Verdict, string) {
	breach := d.Latency > a.cfg.SLASeconds
	var rejected, demand int
	for _, o := range a.window {
		rejected += o.Rejected
		demand += o.demand()
	}

	// Knee detection: arrivals outpacing completions — the offered-vs-
	// completed curve has bent — corroborated by at least one distress
	// signal (rejections, growing backlog, or a latency breach) so a
	// low-demand window with sparse counts cannot trip it.
	if d.CompletionRatio < a.cfg.SaturationRatio && (rejected > 0 || d.BacklogTrend > 0 || breach) {
		return VerdictSaturated, fmt.Sprintf("completion ratio %.2f below knee %.2f",
			d.CompletionRatio, a.cfg.SaturationRatio)
	}
	// Latency-only detection: the latency signal over the SLA with the
	// backlog not draining. When the producer tracks no arrivals (window-wide
	// demand zero) the backlog proxy is meaningless — it degenerates to the
	// negated completion trend — so a sustained breach alone is saturation.
	if breach && (demand == 0 || d.BacklogTrend >= 0) {
		return VerdictSaturated, fmt.Sprintf("latency %.2fs over SLA %.2fs",
			d.Latency, a.cfg.SLASeconds)
	}
	// Headroom: everything offered is served, nothing rejected, and latency
	// comfortably under the SLA across the whole window. The ratio alone
	// decides demand coverage — per-interval backlog fluctuates around zero
	// at steady state (in-flight requests straddle interval edges), so it is
	// deliberately not a headroom condition.
	if d.CompletionRatio >= a.cfg.HeadroomRatio && rejected == 0 {
		limit := a.cfg.HeadroomRT * a.cfg.SLASeconds
		calm := true
		for _, o := range a.window {
			if o.latency() > limit {
				calm = false
				break
			}
		}
		if calm {
			return VerdictHeadroom, fmt.Sprintf("completion ratio %.2f with latency under %.2fs",
				d.CompletionRatio, limit)
		}
	}
	return VerdictStable, "within thresholds"
}
