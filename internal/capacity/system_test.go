package capacity

import (
	"context"
	"reflect"
	"testing"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// newSim builds a small simulated backend for decorator tests: short
// measurement windows, SLO tracked at 2 s.
func newSim(t *testing.T, space *config.Space, clients int) *system.Simulated {
	t.Helper()
	sim, err := system.NewSimulated(system.SimulatedOptions{
		Space: space,
		Context: system.Context{
			Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: clients},
			Level:    vmenv.Level1,
		},
		Seed:           7,
		SettleSeconds:  5,
		MeasureSeconds: 30,
		SLOSeconds:     2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestWrapAnnotatesMetrics(t *testing.T) {
	sys, err := Wrap(newSim(t, nil, 200), Options{Initial: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.AppLevel() != vmenv.Level2 {
		t.Fatalf("initial level %s, want Level-2", sys.AppLevel())
	}
	m, err := sys.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Level != "Level-2" || m.CapacityUnits != 2 {
		t.Fatalf("metrics level=%q units=%d, want Level-2/2", m.Level, m.CapacityUnits)
	}
	if m.Offered == 0 {
		t.Fatal("simulated backend reported no arrivals")
	}
	if sys.TotalCost() != 2 {
		t.Fatalf("one interval at ordinal 2 cost %d", sys.TotalCost())
	}
}

func TestLatticeCapacityMoveScales(t *testing.T) {
	space := config.WithCapacity()
	sys, err := Wrap(newSim(t, space, 200), Options{Initial: 3, ProvisionDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The agent moves CapacityLevel down the lattice: 3 -> 2.
	cfg := sys.Config().With(space, config.CapacityLevel, 2)
	if err := sys.Apply(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if sys.AppLevel() != vmenv.Level1 {
		t.Fatal("scale-down applied before the interval boundary")
	}
	m, err := sys.Measure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Level != "Level-2" || sys.AppLevel() != vmenv.Level2 {
		t.Fatalf("after measure: metrics level %q, system level %s, want Level-2", m.Level, sys.AppLevel())
	}
	if got := sys.Inner().AppLevel(); got != vmenv.Level2 {
		t.Fatalf("inner backend at %s, want Level-2", got)
	}
}

func TestFastPathScalesUpUnderSaturation(t *testing.T) {
	// A Level-3 VM under a heavy closed-loop population saturates; the fast
	// path must climb without any agent involvement.
	trace := telemetry.NewTrace(64)
	reg := telemetry.NewRegistry()
	var scales [][2]int
	sys, err := Wrap(newSim(t, nil, 1400), Options{
		Initial:  1,
		FastPath: true,
		Analyzer: Config{Window: 2, SLASeconds: 2.0, SaturationRatio: 0.9,
			HeadroomRatio: 0.98, HeadroomRT: 0.5, Cooldown: 0},
		Telemetry: reg,
		Trace:     trace,
		OnScale:   func(o, n int) { scales = append(scales, [2]int{o, n}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8 && sys.Ordinal() < 2; i++ {
		if _, err := sys.Measure(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Ordinal() < 2 {
		t.Fatalf("fast path never scaled up from ordinal 1 (holds=%d)", sys.Holds())
	}
	if sys.ScaleUps() == 0 {
		t.Fatal("scale-up counter never moved")
	}
	if len(scales) == 0 || scales[0][1] != scales[0][0]+1 {
		t.Fatalf("OnScale calls %v", scales)
	}
	var capEvents int
	for _, ev := range trace.Snapshot() {
		if ev.Kind == telemetry.KindCapacity {
			capEvents++
			if ev.Level == "" {
				t.Fatal("capacity event without level")
			}
		}
	}
	if capEvents == 0 {
		t.Fatal("no capacity trace events")
	}
}

func TestFastPathDisabledHolds(t *testing.T) {
	sys, err := Wrap(newSim(t, nil, 1400), Options{
		Initial: 1,
		Analyzer: Config{Window: 2, SLASeconds: 2.0, SaturationRatio: 0.9,
			HeadroomRatio: 0.98, HeadroomRT: 0.5, Cooldown: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := sys.Measure(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Ordinal() != 1 {
		t.Fatalf("disabled fast path still scaled to %d", sys.Ordinal())
	}
	if sys.Holds() != 4 {
		t.Fatalf("holds %d, want 4", sys.Holds())
	}
}

func TestApplyUnchangedLatticeKeepsFastPathScale(t *testing.T) {
	// The agent re-applies its whole configuration every Step, Apply-first.
	// An unchanged CapacityLevel must not cancel the fast path's pending
	// scale request before Measure can mature it.
	space := config.WithCapacity()
	sys, err := Wrap(newSim(t, space, 1400), Options{
		Initial:        1,
		ProvisionDelay: 1,
		FastPath:       true,
		Analyzer: Config{Window: 2, SLASeconds: 2.0, SaturationRatio: 0.9,
			HeadroomRatio: 0.98, HeadroomRT: 0.5, Cooldown: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := sys.Config().With(space, config.CapacityLevel, 1)
	for i := 0; i < 8 && sys.Ordinal() < 2; i++ {
		if err := sys.Apply(ctx, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Measure(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Ordinal() < 2 {
		t.Fatalf("re-applied unchanged CapacityLevel cancelled the fast-path scale (holds=%d)", sys.Holds())
	}
}

func TestDriverOverridePreservesAccounting(t *testing.T) {
	sys, err := Wrap(newSim(t, nil, 200), Options{Initial: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Measure(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cost := sys.TotalCost()
	if cost == 0 {
		t.Fatal("no capacity cost accrued")
	}
	if err := sys.SetAppLevel(vmenv.Level1); err != nil {
		t.Fatal(err)
	}
	if sys.TotalCost() != cost {
		t.Fatalf("driver override reset the capacity bill: %d -> %d", cost, sys.TotalCost())
	}
}

func TestSnapshotRoundTripsAccounting(t *testing.T) {
	sys, err := Wrap(newSim(t, nil, 200), Options{Initial: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Measure(ctx); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := sys.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Wrap(newSim(t, nil, 200), Options{Initial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Ordinal() != sys.Ordinal() {
		t.Fatalf("restored ordinal %d, want %d", restored.Ordinal(), sys.Ordinal())
	}
	if restored.TotalCost() != sys.TotalCost() || restored.ScaleUps() != sys.ScaleUps() ||
		restored.ScaleDowns() != sys.ScaleDowns() || restored.Holds() != sys.Holds() {
		t.Fatalf("restored accounting cost=%d ups=%d downs=%d holds=%d, want cost=%d ups=%d downs=%d holds=%d",
			restored.TotalCost(), restored.ScaleUps(), restored.ScaleDowns(), restored.Holds(),
			sys.TotalCost(), sys.ScaleUps(), sys.ScaleDowns(), sys.Holds())
	}
}

func TestDriverSetAppLevelOverridesScaler(t *testing.T) {
	sys, err := Wrap(newSim(t, nil, 200), Options{Initial: 1, ProvisionDelay: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetAppLevel(vmenv.Level1); err != nil {
		t.Fatal(err)
	}
	if sys.Ordinal() != 3 || sys.Pending() != 0 {
		t.Fatalf("after driver override: ordinal %d pending %d", sys.Ordinal(), sys.Pending())
	}
	if sys.Inner().AppLevel() != vmenv.Level1 {
		t.Fatal("inner backend not reallocated")
	}
	if err := sys.SetAppLevel(vmenv.Level{Name: "Level-9"}); err == nil {
		t.Fatal("unknown level accepted")
	}
}

// TestDecoratorDeterminism pins that a fast-path run is a pure function of
// the seed: two identical drives produce byte-identical metric and scale
// sequences.
func TestDecoratorDeterminism(t *testing.T) {
	run := func() ([]system.Metrics, int, int) {
		sys, err := Wrap(newSim(t, nil, 1400), Options{
			Initial:        1,
			ProvisionDelay: 1,
			FastPath:       true,
			Analyzer: Config{Window: 2, SLASeconds: 2.0, SaturationRatio: 0.9,
				HeadroomRatio: 0.98, HeadroomRT: 0.5, Cooldown: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		var ms []system.Metrics
		for i := 0; i < 6; i++ {
			m, err := sys.Measure(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, m)
		}
		return ms, sys.ScaleUps(), sys.TotalCost()
	}
	m1, u1, c1 := run()
	m2, u2, c2 := run()
	if !reflect.DeepEqual(m1, m2) || u1 != u2 || c1 != c2 {
		t.Fatalf("runs diverged: ups %d vs %d, cost %d vs %d", u1, u2, c1, c2)
	}
}
