package capacity

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// Scalable is what the decorator needs underneath: a tunable system whose
// VM level an experiment driver can change. Both the simulated backend and
// the live stack qualify.
type Scalable interface {
	system.System
	system.Adjustable
}

// Options configure Wrap.
type Options struct {
	// Initial is the starting capacity ordinal (1 = Level-3 … 3 = Level-1).
	// 0 defaults to the ordinal of the inner system's current level.
	Initial int
	// ProvisionDelay is how many measurement intervals a scale-up takes to
	// come online; scale-downs apply on the next interval. Negative is an
	// error.
	ProvisionDelay int
	// Analyzer calibrates saturation detection. The zero value uses
	// DefaultConfig(2.0) — override SLASeconds to match the agent's SLA.
	Analyzer Config
	// FastPath enables analyzer-driven scaling between the agent's full
	// retrain intervals: saturated verdicts request a scale-up, headroom
	// verdicts a scale-down. Disabled, the level only moves when the
	// configuration lattice (CapacityLevel) asks for it — the analyzer still
	// runs and its verdicts still appear in the trace.
	FastPath bool
	// OnScale, when non-nil, is called after a scale takes effect (the
	// interval boundary where the new level came online), with the old and
	// new capacity ordinals. Callers use it for SQLR-style per-level policy
	// memory: look up the policy learned at the new level and warm-start the
	// agent from it.
	OnScale func(oldOrdinal, newOrdinal int)
	// Telemetry, when non-nil, receives the controller's scale counters and
	// level gauge.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives one "capacity" event per scale decision
	// and per applied scale.
	Trace *telemetry.Trace
}

// System decorates a Scalable backend with elastic capacity control. It
// interposes on the agent's Apply/Measure calls only: Apply forwards lattice
// CapacityLevel values into the scaler, Measure ticks the provisioning
// pipeline, annotates the metrics with the level in effect, and feeds the
// saturation analyzer. Like the backends it wraps, it is not safe for
// concurrent use.
type System struct {
	inner    Scalable
	elastic  *vmenv.Elastic
	analyzer *Analyzer
	opts     Options

	lastLattice int // CapacityLevel value last seen in Apply (0 = none yet)
	holds       int // observations that produced no scale request

	tel *instruments
}

// instruments are the controller's registry metrics; nil when telemetry is
// not wired.
type instruments struct {
	scaleUps   *telemetry.Counter
	scaleDowns *telemetry.Counter
	holds      *telemetry.Counter
	level      *telemetry.Gauge
}

func newInstruments(reg *telemetry.Registry) *instruments {
	return &instruments{
		scaleUps: reg.Counter("rac_capacity_scale_ups_total",
			"Capacity scale-ups that took effect (bigger VM came online).", nil),
		scaleDowns: reg.Counter("rac_capacity_scale_downs_total",
			"Capacity scale-downs that took effect (smaller VM in force).", nil),
		holds: reg.Counter("rac_capacity_holds_total",
			"Analyzer observations that produced no scale request (stable, warming, cooling down, provisioning, or fast path off).", nil),
		level: reg.Gauge("rac_capacity_level",
			"Capacity ordinal in effect (1 = Level-3 … 3 = Level-1).", nil),
	}
}

var (
	_ system.System     = (*System)(nil)
	_ system.Adjustable = (*System)(nil)
)

// Wrap decorates inner with elastic capacity control.
func Wrap(inner Scalable, opts Options) (*System, error) {
	if inner == nil {
		return nil, errors.New("capacity: nil system")
	}
	initial := opts.Initial
	if initial == 0 {
		initial = vmenv.Ordinal(inner.AppLevel())
		if initial == 0 {
			return nil, fmt.Errorf("capacity: inner system at unknown level %q", inner.AppLevel())
		}
	}
	elastic, err := vmenv.NewElastic(initial, opts.ProvisionDelay)
	if err != nil {
		return nil, err
	}
	cfg := opts.Analyzer
	if cfg == (Config{}) {
		cfg = DefaultConfig(2.0)
	}
	analyzer, err := NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	// Align the backend with the scaler's starting level.
	if err := inner.SetAppLevel(elastic.Level()); err != nil {
		return nil, err
	}
	s := &System{inner: inner, elastic: elastic, analyzer: analyzer, opts: opts}
	if opts.Telemetry != nil {
		s.tel = newInstruments(opts.Telemetry)
		s.tel.level.Set(float64(elastic.Ordinal()))
	}
	return s, nil
}

// Space returns the inner system's configuration space.
func (s *System) Space() *config.Space { return s.inner.Space() }

// Config returns the inner system's applied configuration.
func (s *System) Config() config.Config { return s.inner.Config() }

// Apply forwards the configuration to the inner system and, when the space
// carries CapacityLevel and its value changed since the last Apply, turns
// the move into a scale request — a deliberate agent decision through the
// same provisioning pipeline as the fast path. An unchanged lattice value is
// not re-requested: the agent re-applies its whole configuration every step,
// and forwarding Request(current) each time would cancel a pending fast-path
// scale before it could mature. The inner system ignores the parameter (it
// has no webtier setter), so software knobs and capacity stay one atomic
// configuration.
func (s *System) Apply(ctx context.Context, cfg config.Config) error {
	if err := s.inner.Apply(ctx, cfg); err != nil {
		return err
	}
	if want, ok := cfg.Get(s.inner.Space(), config.CapacityLevel); ok && want != s.lastLattice {
		if err := s.elastic.Request(want); err != nil {
			return fmt.Errorf("capacity: apply level: %w", err)
		}
		s.lastLattice = want
	}
	return nil
}

// Measure advances the provisioning pipeline by one interval, measures the
// inner system, annotates the metrics with the level in effect, and feeds
// the saturation analyzer — whose verdict may request the next scale when
// the fast path is enabled.
func (s *System) Measure(ctx context.Context) (system.Metrics, error) {
	// 1. Interval boundary: a matured scale request comes online now, so the
	// interval about to be measured runs (and is billed) at the new level.
	before := s.elastic.Ordinal()
	lvl, changed := s.elastic.Tick()
	if changed {
		if err := s.inner.SetAppLevel(lvl); err != nil {
			return system.Metrics{}, fmt.Errorf("capacity: scale to %s: %w", lvl, err)
		}
		if s.tel != nil {
			if s.elastic.Ordinal() > before {
				s.tel.scaleUps.Inc()
			} else {
				s.tel.scaleDowns.Inc()
			}
			s.tel.level.Set(float64(s.elastic.Ordinal()))
		}
		if s.opts.Trace != nil {
			s.opts.Trace.Add(telemetry.Event{
				Kind:   telemetry.KindCapacity,
				Level:  lvl.Name,
				Detail: fmt.Sprintf("scaled %d -> %d", before, s.elastic.Ordinal()),
			})
		}
		if s.opts.OnScale != nil {
			s.opts.OnScale(before, s.elastic.Ordinal())
		}
	}

	// 2. Measure at the level now in effect.
	m, err := s.inner.Measure(ctx)
	if err != nil {
		return m, err
	}
	m.Level = s.elastic.Level().Name
	m.CapacityUnits = s.elastic.Ordinal()

	// 3. Saturation analysis on the interval's counts.
	d := s.analyzer.Observe(Observation{
		Offered:   m.Offered,
		Completed: m.Completed,
		Rejected:  m.Rejected,
		Shed:      m.Shed,
		MeanRT:    m.MeanRT,
		P99RT:     m.P99RT,
	})
	s.decide(d)
	return m, nil
}

// decide turns an analyzer decision into a scale request (fast path) and
// the associated telemetry. While a request is provisioning, new verdicts
// hold — the analyzer is reading intervals the pending level has not shaped
// yet.
func (s *System) decide(d Decision) {
	target := s.elastic.Ordinal()
	switch {
	case s.elastic.Pending() != 0:
		d.Reason = "provisioning"
	case d.Verdict == VerdictSaturated && target < vmenv.MaxOrdinal:
		target++
	case d.Verdict == VerdictHeadroom && target > vmenv.MinOrdinal:
		target--
	}
	if !s.opts.FastPath || target == s.elastic.Ordinal() {
		s.holds++
		if s.tel != nil {
			s.tel.holds.Inc()
		}
		if s.opts.Trace != nil && d.Verdict != VerdictStable {
			s.opts.Trace.Add(telemetry.Event{
				Kind:   telemetry.KindCapacity,
				Level:  s.elastic.Level().Name,
				Detail: fmt.Sprintf("%s: hold (%s)", d.Verdict, d.Reason),
			})
		}
		return
	}
	if err := s.elastic.Request(target); err != nil {
		// target is clamped to the ordinal range above; this cannot fail.
		panic(err)
	}
	if s.opts.Trace != nil {
		dir := "scale-up"
		if target < s.elastic.Ordinal() {
			dir = "scale-down"
		}
		s.opts.Trace.Add(telemetry.Event{
			Kind:   telemetry.KindCapacity,
			Level:  s.elastic.Level().Name,
			Detail: fmt.Sprintf("%s: %s %d -> %d (%s)", d.Verdict, dir, s.elastic.Ordinal(), target, d.Reason),
		})
	}
}

// SetWorkload changes the traffic (driver-side context change).
func (s *System) SetWorkload(w tpcw.Workload) error { return s.inner.SetWorkload(w) }

// SetAppLevel is the experiment driver (or the fault layer) overriding the
// scaler: the elastic state snaps to the given level, clearing any pending
// request, and the inner system reallocates immediately. The cumulative
// capacity bill and scale counters are preserved — an override changes the
// level in force, not the history already billed.
func (s *System) SetAppLevel(level vmenv.Level) error {
	ord := vmenv.Ordinal(level)
	if ord == 0 {
		return fmt.Errorf("capacity: unknown level %q", level)
	}
	if err := s.inner.SetAppLevel(level); err != nil {
		return err
	}
	if err := s.elastic.Snap(ord); err != nil {
		return err
	}
	if s.tel != nil {
		s.tel.level.Set(float64(ord))
	}
	return nil
}

// Workload returns the current traffic.
func (s *System) Workload() tpcw.Workload { return s.inner.Workload() }

// AppLevel returns the level currently in effect.
func (s *System) AppLevel() vmenv.Level { return s.elastic.Level() }

// Ordinal returns the capacity ordinal currently in effect.
func (s *System) Ordinal() int { return s.elastic.Ordinal() }

// Pending returns the requested-but-not-yet-effective ordinal (0 = none).
func (s *System) Pending() int { return s.elastic.Pending() }

// TotalCost returns the cumulative capacity cost in VM-level·intervals.
func (s *System) TotalCost() int { return s.elastic.TotalCost() }

// ScaleUps and ScaleDowns return how many scales have taken effect; Holds
// returns how many observations produced no scale request.
func (s *System) ScaleUps() int   { return s.elastic.ScaleUps() }
func (s *System) ScaleDowns() int { return s.elastic.ScaleDowns() }
func (s *System) Holds() int      { return s.holds }

// Inner exposes the wrapped system for tests and diagnostics.
func (s *System) Inner() Scalable { return s.inner }

// capacitySnapshot is the decorator's slice of a tenant checkpoint: the
// level in force, the accumulated bill and scale counters, plus the wrapped
// backend's own blob. The analyzer window and any pending scale request
// restart cold — a restored tenant re-earns its next verdict instead of
// replaying a stale one.
type capacitySnapshot struct {
	Ordinal    int    `json:"ordinal"`
	TotalCost  int    `json:"total_cost,omitempty"`
	ScaleUps   int    `json:"scale_ups,omitempty"`
	ScaleDowns int    `json:"scale_downs,omitempty"`
	Holds      int    `json:"holds,omitempty"`
	Inner      []byte `json:"inner,omitempty"`
}

var _ system.Snapshottable = (*System)(nil)

// ExportState captures the capacity ordinal in force alongside the inner
// system's state (when it is snapshottable), keeping fleet checkpoints
// working through the decorator.
func (s *System) ExportState() ([]byte, error) {
	st := capacitySnapshot{
		Ordinal:    s.elastic.Ordinal(),
		TotalCost:  s.elastic.TotalCost(),
		ScaleUps:   s.elastic.ScaleUps(),
		ScaleDowns: s.elastic.ScaleDowns(),
		Holds:      s.holds,
	}
	if snap, ok := s.inner.(system.Snapshottable); ok {
		blob, err := snap.ExportState()
		if err != nil {
			return nil, err
		}
		st.Inner = blob
	}
	return json.Marshal(st)
}

// ImportState restores state captured by ExportState: the inner system
// first, then the level — so the scaler and the backend agree on the
// capacity in force — and finally the checkpointed bill and scale counters,
// so TenantStatus accounting survives a restore.
func (s *System) ImportState(blob []byte) error {
	var st capacitySnapshot
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("capacity: import state: %w", err)
	}
	if len(st.Inner) > 0 {
		snap, ok := s.inner.(system.Snapshottable)
		if !ok {
			return errors.New("capacity: snapshot carries inner state but the backend cannot import it")
		}
		if err := snap.ImportState(st.Inner); err != nil {
			return err
		}
	}
	lvl, err := vmenv.ByOrdinal(st.Ordinal)
	if err != nil {
		return fmt.Errorf("capacity: import state: %w", err)
	}
	if err := s.SetAppLevel(lvl); err != nil {
		return err
	}
	s.elastic.RestoreAccounting(st.TotalCost, st.ScaleUps, st.ScaleDowns)
	s.holds = st.Holds
	return nil
}
