package capacity

import (
	"reflect"
	"testing"
)

// steadyObs is a healthy interval: everything offered completes, latency
// well under the SLA.
func steadyObs() Observation {
	return Observation{Offered: 1000, Completed: 995, MeanRT: 0.4, P99RT: 0.8}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(2.0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Window: 0, SLASeconds: 2, SaturationRatio: 0.9, HeadroomRatio: 0.98, HeadroomRT: 0.5},
		{Window: 3, SLASeconds: 0, SaturationRatio: 0.9, HeadroomRatio: 0.98, HeadroomRT: 0.5},
		{Window: 3, SLASeconds: 2, SaturationRatio: 1.5, HeadroomRatio: 0.98, HeadroomRT: 0.5},
		{Window: 3, SLASeconds: 2, SaturationRatio: 0.9, HeadroomRatio: 0.5, HeadroomRT: 0.5},
		{Window: 3, SLASeconds: 2, SaturationRatio: 0.9, HeadroomRatio: 0.98, HeadroomRT: 2},
		{Window: 3, SLASeconds: 2, SaturationRatio: 0.9, HeadroomRatio: 0.98, HeadroomRT: 0.5, Cooldown: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestAnalyzerWarmup(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	// The window holds 3; the first two observations must withhold a verdict
	// even on blatant saturation.
	for i := 0; i < 2; i++ {
		d := a.Observe(Observation{Offered: 2000, Completed: 100, MeanRT: 20, P99RT: 30})
		if d.Verdict != VerdictStable || d.Reason != "warming" {
			t.Fatalf("obs %d: verdict %s reason %q during warmup", i, d.Verdict, d.Reason)
		}
	}
	if d := a.Observe(Observation{Offered: 2000, Completed: 100, MeanRT: 20, P99RT: 30}); d.Verdict != VerdictSaturated {
		t.Fatalf("full window verdict %s (%s), want saturated", d.Verdict, d.Reason)
	}
}

func TestKneeDetectionAtCliff(t *testing.T) {
	cfg := DefaultConfig(2.0)
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Calm traffic, then a flash crowd past the knee: completions plateau at
	// ~1100/interval while offered load doubles and p99 breaches the SLA.
	for i := 0; i < 3; i++ {
		if d := a.Observe(steadyObs()); d.Verdict == VerdictSaturated {
			t.Fatalf("calm obs %d saturated: %s", i, d.Reason)
		}
	}
	var saturated bool
	for i := 0; i < cfg.Window; i++ {
		d := a.Observe(Observation{Offered: 2200, Completed: 1100, MeanRT: 3.5, P99RT: 9.0})
		if d.Verdict == VerdictSaturated {
			saturated = true
			if d.CompletionRatio >= cfg.SaturationRatio {
				t.Fatalf("saturated verdict with ratio %.2f above knee", d.CompletionRatio)
			}
		}
	}
	if !saturated {
		t.Fatal("capacity cliff never detected")
	}
}

func TestKneeDetectionViaRejections(t *testing.T) {
	// A gated system at the cliff: latency stays bounded (the gate's job)
	// but most arrivals are turned away — unmet demand is still saturation.
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	var saturated bool
	for i := 0; i < 3; i++ {
		d := a.Observe(Observation{Offered: 2000, Completed: 1100, Rejected: 880, MeanRT: 0.9, P99RT: 1.8})
		if d.Verdict == VerdictSaturated {
			saturated = true
		}
	}
	if !saturated {
		t.Fatal("heavy gate rejection not detected as saturation")
	}
}

func TestLatencyOnlyDetection(t *testing.T) {
	// Producers without arrival counts (Offered 0) still saturate on a
	// latency breach with non-shrinking backlog.
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	var saturated bool
	for i := 0; i < 3; i++ {
		d := a.Observe(Observation{Completed: 500, MeanRT: 4.0, P99RT: 11.0})
		if d.CompletionRatio != 1 {
			t.Fatalf("untracked demand ratio %.2f, want 1", d.CompletionRatio)
		}
		if d.Verdict == VerdictSaturated {
			saturated = true
		}
	}
	if !saturated {
		t.Fatal("latency breach without arrival counts not detected")
	}
}

func TestNoFalsePositiveOnSteady(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		// Steady healthy traffic with small fluctuations around full service.
		o := steadyObs()
		o.Completed = 990 + i%12 // 990..1001: ratio hovers around 1
		if d := a.Observe(o); d.Verdict == VerdictSaturated {
			t.Fatalf("obs %d: steady traffic flagged saturated (%s)", i, d.Reason)
		}
	}
}

func TestHeadroomVerdict(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	var headroom bool
	for i := 0; i < 3; i++ {
		// Everything served, p99 a quarter of the SLA: capacity to give back.
		d := a.Observe(Observation{Offered: 400, Completed: 400, MeanRT: 0.2, P99RT: 0.5})
		if d.Verdict == VerdictHeadroom {
			headroom = true
		}
	}
	if !headroom {
		t.Fatal("obvious headroom never detected")
	}
}

func TestNoHeadroomWhenLatencyWarm(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		// Fully served but p99 at 80% of the SLA: serving everything slowly
		// is not headroom.
		if d := a.Observe(Observation{Offered: 400, Completed: 400, MeanRT: 0.9, P99RT: 1.6}); d.Verdict == VerdictHeadroom {
			t.Fatalf("obs %d: warm latency flagged headroom (%s)", i, d.Reason)
		}
	}
}

func TestCooldownSuppressesRepeatVerdicts(t *testing.T) {
	cfg := DefaultConfig(2.0)
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sat := Observation{Offered: 2000, Completed: 900, MeanRT: 5, P99RT: 14}
	var decisions []Decision
	for i := 0; i < cfg.Window+cfg.Cooldown+1; i++ {
		decisions = append(decisions, a.Observe(sat))
	}
	first := cfg.Window - 1 // first full-window decision
	if decisions[first].Verdict != VerdictSaturated {
		t.Fatalf("first full-window verdict %s", decisions[first].Verdict)
	}
	for i := first + 1; i <= first+cfg.Cooldown; i++ {
		if decisions[i].Verdict != VerdictStable || decisions[i].Reason != "cooldown" {
			t.Fatalf("obs %d: verdict %s reason %q during cooldown", i, decisions[i].Verdict, decisions[i].Reason)
		}
	}
	if last := decisions[first+cfg.Cooldown+1]; last.Verdict != VerdictSaturated {
		t.Fatalf("post-cooldown verdict %s (%s)", last.Verdict, last.Reason)
	}
}

// TestAnalyzerDeterminism pins that decisions are a pure function of the
// observation sequence: two analyzers fed the same mixed sequence produce
// byte-identical decision streams (the property that keeps -procs 1 and 8
// runs identical — the analyzer holds no clock and draws no randomness).
func TestAnalyzerDeterminism(t *testing.T) {
	seq := []Observation{
		steadyObs(), steadyObs(),
		{Offered: 1500, Completed: 1200, MeanRT: 1.2, P99RT: 2.5},
		{Offered: 2200, Completed: 1100, MeanRT: 3.5, P99RT: 9.0},
		{Offered: 2200, Completed: 1050, Rejected: 400, MeanRT: 2.8, P99RT: 7.0},
		steadyObs(),
		{Offered: 400, Completed: 400, MeanRT: 0.2, P99RT: 0.5},
		{Offered: 400, Completed: 400, MeanRT: 0.2, P99RT: 0.5},
		steadyObs(),
	}
	run := func() []Decision {
		a, err := NewAnalyzer(DefaultConfig(2.0))
		if err != nil {
			t.Fatal(err)
		}
		var out []Decision
		for _, o := range seq {
			out = append(out, a.Observe(o))
		}
		return out
	}
	base := run()
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d diverged:\n%+v\nvs\n%+v", i, got, base)
		}
	}
}

func TestLatencyOnlyDetectionWithGrowingCompletions(t *testing.T) {
	// Without arrival counts the backlog proxy is the negated completion
	// trend, so a window whose completions grew must not mask a sustained
	// breach: the breach alone is saturation when demand is untracked.
	a, err := NewAnalyzer(DefaultConfig(2.0))
	if err != nil {
		t.Fatal(err)
	}
	var d Decision
	for _, completed := range []int{100, 200, 400} {
		d = a.Observe(Observation{Completed: completed, MeanRT: 4.0, P99RT: 11.0})
	}
	if d.Verdict != VerdictSaturated {
		t.Fatalf("sustained breach without arrival counts: verdict %s (%s)", d.Verdict, d.Reason)
	}
}

func TestVerdictStrings(t *testing.T) {
	if VerdictStable.String() != "stable" || VerdictSaturated.String() != "saturated" || VerdictHeadroom.String() != "headroom" {
		t.Fatal("verdict names wrong")
	}
}
