package mdp

import (
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/sim"
)

// Params are the learning hyper-parameters of paper Algorithm 1.
type Params struct {
	// Alpha is the learning rate (paper: 0.1 both offline and online).
	Alpha float64
	// Gamma is the discount rate (paper: 0.9).
	Gamma float64
	// Epsilon is the ε-greedy exploration rate (paper: 0.1 offline batch
	// training, 0.05 online).
	Epsilon float64
}

// Validate checks the hyper-parameters are in range.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("mdp: alpha %v outside (0,1]", p.Alpha)
	}
	if p.Gamma < 0 || p.Gamma >= 1 {
		return fmt.Errorf("mdp: gamma %v outside [0,1)", p.Gamma)
	}
	if p.Epsilon < 0 || p.Epsilon > 1 {
		return fmt.Errorf("mdp: epsilon %v outside [0,1]", p.Epsilon)
	}
	return nil
}

// DefaultOffline returns the paper's offline-training hyper-parameters
// (α=0.1, γ=0.9, ε=0.1).
func DefaultOffline() Params { return Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 0.1} }

// DefaultOnline returns the paper's online hyper-parameters
// (α=0.1, γ=0.9, ε=0.05).
func DefaultOnline() Params { return Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 0.05} }

// Learner performs temporal-difference updates on a Q-table.
type Learner struct {
	table  *QTable
	params Params
	rng    *sim.RNG
}

// NewLearner wraps table with the given hyper-parameters and RNG stream.
func NewLearner(table *QTable, params Params, rng *sim.RNG) (*Learner, error) {
	if table == nil {
		return nil, errors.New("mdp: nil table")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("mdp: nil rng")
	}
	return &Learner{table: table, params: params, rng: rng}, nil
}

// Table returns the underlying Q-table.
func (l *Learner) Table() *QTable { return l.table }

// RNG exposes the learner's exploration stream so agent checkpoints can
// capture and restore it; resuming with the same stream state replays the
// exact ε-greedy choices an uninterrupted run would have made.
func (l *Learner) RNG() *sim.RNG { return l.rng }

// Params returns the hyper-parameters.
func (l *Learner) Params() Params { return l.params }

// SetEpsilon adjusts the exploration rate (used when switching between batch
// training and online decision making, paper §5.5).
func (l *Learner) SetEpsilon(eps float64) {
	if eps < 0 {
		eps = 0
	}
	if eps > 1 {
		eps = 1
	}
	l.params.Epsilon = eps
}

// SelectAction picks an action for state with ε-greedy exploration over the
// allowed action indices. Allowed must be non-empty.
func (l *Learner) SelectAction(state string, allowed []int) int {
	if len(allowed) == 0 {
		panic("mdp: SelectAction with no allowed actions")
	}
	if l.rng.Float64() < l.params.Epsilon {
		return allowed[l.rng.Intn(len(allowed))]
	}
	row := l.table.ReadRow(state)
	best := allowed[0]
	bestV := row[best]
	for _, a := range allowed[1:] {
		if row[a] > bestV {
			best, bestV = a, row[a]
		}
	}
	return best
}

// UpdateSARSA applies the on-policy TD update of paper Algorithm 1:
//
//	Q(s,a) += α [ r + γ Q(s',a') − Q(s,a) ]
//
// and returns the absolute TD error.
func (l *Learner) UpdateSARSA(state string, action int, reward float64, next string, nextAction int) float64 {
	cur := l.table.Get(state, action)
	target := reward + l.params.Gamma*l.table.Get(next, nextAction)
	delta := target - cur
	l.table.Set(state, action, cur+l.params.Alpha*delta)
	if delta < 0 {
		return -delta
	}
	return delta
}

// UpdateQ applies the off-policy Q-learning update
//
//	Q(s,a) += α [ r + γ max_a' Q(s',a') − Q(s,a) ]
//
// and returns the absolute TD error.
func (l *Learner) UpdateQ(state string, action int, reward float64, next string) float64 {
	cur := l.table.Get(state, action)
	target := reward + l.params.Gamma*l.table.MaxValue(next)
	delta := target - cur
	l.table.Set(state, action, cur+l.params.Alpha*delta)
	if delta < 0 {
		return -delta
	}
	return delta
}
