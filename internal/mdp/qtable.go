// Package mdp implements the tabular reinforcement-learning machinery of the
// paper: a Q-value table keyed by state strings, temporal-difference updates
// (paper Algorithm 1), ε-greedy action selection, and batch sweep training
// over a deterministic model of the configuration MDP.
//
// The package is independent of web-system specifics: states are opaque
// string keys and actions are dense indices, so the same learner is reused by
// the offline policy-initialization pass and the online agent.
package mdp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// QTable maps state keys to per-action Q values. All rows have the same
// action count. The zero value is unusable; construct with NewQTable.
type QTable struct {
	actions int
	rows    map[string][]float64
	initial float64
	seeder  Seeder
	shared  *SharedRows
}

// Seeder produces initial Q-value rows for states the table has never seen.
// It is how an initialization policy (paper §4.1) primes online learning: the
// returned slice must have the table's action count, or nil to fall back to
// the constant initial value. Seeders must be deterministic.
type Seeder func(state string) []float64

// NewQTable returns an empty table for the given action count. Unvisited
// states read as rows filled with initial (optimistic initialization uses a
// positive value; the paper's offline training starts from zero).
func NewQTable(actions int, initial float64) *QTable {
	if actions < 1 {
		panic("mdp: QTable needs at least one action")
	}
	return &QTable{
		actions: actions,
		rows:    make(map[string][]float64),
		initial: initial,
	}
}

// Actions returns the per-state action count.
func (q *QTable) Actions() int { return q.actions }

// Len returns the number of materialized state rows.
func (q *QTable) Len() int { return len(q.rows) }

// SetSeeder installs (or clears, with nil) the initial-row producer. Already
// materialized rows are unaffected; switching seeders only changes how states
// visited in the future are primed.
func (q *QTable) SetSeeder(s Seeder) { q.seeder = s }

// SetShared installs (or clears, with nil) a shared copy-on-write row store.
// With a store installed the table serves unvisited states from the store's
// memoized seeded rows (identical values to seeding directly, computed once
// per store instead of once per table), interns state keys through it, and
// materializes a private row only on write. A table's shared store takes
// precedence over its own seeder.
func (q *QTable) SetShared(s *SharedRows) {
	if s != nil && s.actions != q.actions {
		panic("mdp: SharedRows action count does not match table")
	}
	q.shared = s
}

// Row returns the mutable Q-value row for state, materializing it on first
// access from the shared store or seeder (if any) or the constant initial
// value.
func (q *QTable) Row(state string) []float64 {
	row, ok := q.rows[state]
	if !ok {
		row = q.freshRow(state)
		if q.shared != nil {
			state = q.shared.Intern(state)
		}
		q.rows[state] = row
	}
	return row
}

// ReadRow returns a read-only view of the row the table serves for state: the
// materialized row if present, else the shared store's seeded row without
// materializing a private copy. Tables without a shared store materialize via
// Row, preserving the historical read path. Callers must not mutate the
// returned slice — it may be shared across tables.
func (q *QTable) ReadRow(state string) []float64 {
	if row, ok := q.rows[state]; ok {
		return row
	}
	if q.shared != nil {
		if row := q.shared.row(state); len(row) == q.actions {
			return row
		}
	}
	return q.Row(state)
}

func (q *QTable) freshRow(state string) []float64 {
	if q.shared != nil {
		if seeded := q.shared.row(state); len(seeded) == q.actions {
			row := make([]float64, q.actions)
			copy(row, seeded)
			return row
		}
	} else if q.seeder != nil {
		if seeded := q.seeder(state); len(seeded) == q.actions {
			row := make([]float64, q.actions)
			copy(row, seeded)
			return row
		}
	}
	row := make([]float64, q.actions)
	for i := range row {
		row[i] = q.initial
	}
	return row
}

// snapshotRow copies the row the table would serve for state into dst without
// materializing it: the existing row if present, else the seeder's values,
// else the constant initial value. dst must have the table's action count.
// It is the dense batch trainer's read side.
func (q *QTable) snapshotRow(state string, dst []float64) {
	if row, ok := q.rows[state]; ok {
		copy(dst, row)
		return
	}
	if q.shared != nil {
		if seeded := q.shared.row(state); len(seeded) == q.actions {
			copy(dst, seeded)
			return
		}
	} else if q.seeder != nil {
		if seeded := q.seeder(state); len(seeded) == q.actions {
			copy(dst, seeded)
			return
		}
	}
	for i := range dst {
		dst[i] = q.initial
	}
}

// setRow materializes state's row directly from values, bypassing the seeder:
// the dense batch trainer already folded seeded values into its training
// array, so consulting the seeder again would be wasted work.
func (q *QTable) setRow(state string, values []float64) {
	row, ok := q.rows[state]
	if !ok {
		row = make([]float64, q.actions)
		if q.shared != nil {
			state = q.shared.Intern(state)
		}
		q.rows[state] = row
	}
	copy(row, values)
}

// Get returns Q(state, action) without materializing the row.
func (q *QTable) Get(state string, action int) float64 {
	if row, ok := q.rows[state]; ok {
		return row[action]
	}
	if q.shared != nil {
		if seeded := q.shared.row(state); len(seeded) == q.actions {
			return seeded[action]
		}
	} else if q.seeder != nil {
		if seeded := q.seeder(state); len(seeded) == q.actions {
			return seeded[action]
		}
	}
	return q.initial
}

// Set assigns Q(state, action).
func (q *QTable) Set(state string, action int, value float64) {
	q.Row(state)[action] = value
}

// Best returns the greedy action for state and its value. Ties break toward
// the lowest action index so greedy policies are deterministic. Unvisited
// states consult the seeder without materializing a row.
func (q *QTable) Best(state string) (int, float64) {
	row, ok := q.rows[state]
	if !ok {
		if q.shared != nil {
			if seeded := q.shared.row(state); len(seeded) == q.actions {
				row = seeded
			}
		} else if q.seeder != nil {
			if seeded := q.seeder(state); len(seeded) == q.actions {
				row = seeded
			}
		}
		if row == nil {
			return 0, q.initial
		}
	}
	best, bestV := 0, row[0]
	for i := 1; i < len(row); i++ {
		if row[i] > bestV {
			best, bestV = i, row[i]
		}
	}
	return best, bestV
}

// MaxValue returns max_a Q(state, a).
func (q *QTable) MaxValue(state string) float64 {
	_, v := q.Best(state)
	return v
}

// Visited reports whether the state has a materialized row.
func (q *QTable) Visited(state string) bool {
	_, ok := q.rows[state]
	return ok
}

// Clone returns a deep copy of the table, sharing the seeder and any shared
// row store.
func (q *QTable) Clone() *QTable {
	out := NewQTable(q.actions, q.initial)
	out.seeder = q.seeder
	out.shared = q.shared
	for k, row := range q.rows {
		cp := make([]float64, len(row))
		copy(cp, row)
		out.rows[k] = cp
	}
	return out
}

// States returns the materialized state keys in sorted order.
func (q *QTable) States() []string {
	keys := make([]string, 0, len(q.rows))
	for k := range q.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// qtableJSON is the serialized form of a QTable.
type qtableJSON struct {
	Actions int                  `json:"actions"`
	Initial float64              `json:"initial"`
	Rows    map[string][]float64 `json:"rows"`
}

// Save writes the table as JSON.
func (q *QTable) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(qtableJSON{Actions: q.actions, Initial: q.initial, Rows: q.rows})
}

// LoadQTable reads a table previously written by Save.
func LoadQTable(r io.Reader) (*QTable, error) {
	var raw qtableJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("mdp: decode qtable: %w", err)
	}
	if raw.Actions < 1 {
		return nil, fmt.Errorf("mdp: qtable with %d actions", raw.Actions)
	}
	q := NewQTable(raw.Actions, raw.Initial)
	for k, row := range raw.Rows {
		if len(row) != raw.Actions {
			return nil, fmt.Errorf("mdp: state %q has %d actions, want %d", k, len(row), raw.Actions)
		}
		q.rows[k] = row
	}
	return q, nil
}

// MaxAbsDiff returns the largest absolute per-entry difference between two
// tables over the union of their states. Tables with different action counts
// return +Inf.
func MaxAbsDiff(a, b *QTable) float64 {
	if a.actions != b.actions {
		return math.Inf(1)
	}
	var max float64
	seen := make(map[string]bool, len(a.rows))
	for k, row := range a.rows {
		seen[k] = true
		other, ok := b.rows[k]
		for i, v := range row {
			var ov float64 = b.initial
			if ok {
				ov = other[i]
			}
			if d := math.Abs(v - ov); d > max {
				max = d
			}
		}
	}
	for k, row := range b.rows {
		if seen[k] {
			continue
		}
		for _, v := range row {
			if d := math.Abs(v - a.initial); d > max {
				max = d
			}
		}
	}
	return max
}
