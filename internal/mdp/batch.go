package mdp

import (
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/sim"
)

// Model describes a deterministic MDP over string-keyed states, as induced by
// a configuration lattice: taking an action in a state leads to exactly one
// next state, and the reward of a transition depends on the state it reaches.
type Model interface {
	// States enumerates every state key of the model.
	States() []string
	// Next returns the state reached by taking action from state, and
	// whether the action is feasible there. Infeasible actions are skipped
	// by batch training and must not be selected online.
	Next(state string, action int) (string, bool)
	// Reward returns the immediate reward received on entering state.
	Reward(state string) float64
	// Actions returns the total number of actions.
	Actions() int
}

// BatchConfig controls a batch training run (the offline RL process of paper
// Algorithm 1 and the per-interval retraining of Algorithm 3).
type BatchConfig struct {
	Params Params
	// StepsPerState is the inner trajectory length per sweep (Algorithm 1's
	// LIMIT).
	StepsPerState int
	// MaxSweeps bounds the number of full state sweeps.
	MaxSweeps int
	// Theta is the convergence threshold on the largest per-sweep TD error
	// (Algorithm 1's θ).
	Theta float64
}

// DefaultBatchConfig returns the training schedule used by the experiments:
// the paper's hyper-parameters, eight-step inner trajectories, and a 0.01
// convergence threshold. The sweep bound keeps offline training over the
// ~10⁴-state group lattice in the sub-second range; under ε-greedy
// exploration the TD error stays stochastic, so the bound — not θ — usually
// terminates training (see Algorithm 1).
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		Params:        DefaultOffline(),
		StepsPerState: 8,
		MaxSweeps:     60,
		Theta:         0.01,
	}
}

// BatchResult reports how a batch training run converged.
type BatchResult struct {
	Sweeps    int
	FinalErr  float64
	Converged bool
}

// IndexedModel is a Model whose states are densely indexed 0..len(States())-1
// in States() order, with transitions and rewards addressable by index. Models
// implementing it get BatchTrain's SoA fast path: the whole training state —
// Q values, feasible-action lists, transitions, rewards — lives in flat arrays
// indexed by (state, action), so the inner sweep loop performs no string
// hashing and no map lookups. The fast path consumes the RNG stream in
// exactly the same order and applies bit-identical floating-point updates, so
// the resulting table is byte-for-byte the one the generic path produces.
//
// NextIndex must be closed over the index range: a returned index i must
// satisfy 0 <= i < len(States()), or be negative for an infeasible action.
type IndexedModel interface {
	Model
	// NextIndex returns the index of the state reached by taking action in
	// state s, or a negative value when the action is infeasible there.
	NextIndex(s, action int) int
	// RewardIndex returns the immediate reward received on entering state s.
	RewardIndex(s int) float64
}

// Structure is the immutable skeleton of an IndexedModel: its state keys,
// transition table and flattened feasible-action lists in dense array form.
// Rewards are deliberately excluded — they change between training calls
// (measured samples refine them) while the lattice shape does not, so a
// Structure built once can back every retraining pass over the same region
// and be shared read-only across agents tuning the same context.
type Structure struct {
	states  []string
	actions int
	// trans[s*actions+a] is the index reached by taking a in s, or -1 when
	// infeasible. feas[off[s]:off[s+1]] lists s's feasible actions ascending.
	trans []int32
	off   []int32
	feas  []int32
}

// States returns the model's state keys in index order. The slice is shared;
// callers must not mutate it.
func (st *Structure) States() []string { return st.states }

// Actions returns the per-state action count.
func (st *Structure) Actions() int { return st.actions }

// NewStructure materializes model's transitions and feasible-action lists
// into a Structure, validating the same closure invariants BatchTrain
// enforces: every transition stays inside the enumerated states and every
// state has at least one feasible action.
func NewStructure(model IndexedModel) (*Structure, error) {
	states := model.States()
	n := len(states)
	if n == 0 {
		return nil, errors.New("mdp: model has no states")
	}
	actions := model.Actions()
	st := &Structure{
		states:  states,
		actions: actions,
		trans:   make([]int32, n*actions),
		off:     make([]int32, n+1),
		feas:    make([]int32, 0, n*actions),
	}
	for s := 0; s < n; s++ {
		st.off[s] = int32(len(st.feas))
		for a := 0; a < actions; a++ {
			next := model.NextIndex(s, a)
			if next >= n {
				return nil, fmt.Errorf("mdp: state %q action %d leads to index %d outside the model's %d states",
					states[s], a, next, n)
			}
			if next < 0 {
				st.trans[s*actions+a] = -1
				continue
			}
			st.trans[s*actions+a] = int32(next)
			st.feas = append(st.feas, int32(a))
		}
		if int(st.off[s]) == len(st.feas) {
			return nil, fmt.Errorf("mdp: state %q has no feasible actions", states[s])
		}
	}
	st.off[n] = int32(len(st.feas))
	return st, nil
}

// Structured is an IndexedModel that exposes a prebuilt (usually cached and
// shared) Structure. BatchTrain uses it instead of rebuilding the transition
// arrays per call — the structure must describe exactly the model's current
// States()/NextIndex lattice.
type Structured interface {
	IndexedModel
	Structure() (*Structure, error)
}

// BatchTrain runs Algorithm 1 over the model: repeated sweeps over all
// states, each starting an ε-greedy trajectory of StepsPerState SARSA
// updates, until the largest TD error of a sweep drops below Theta or
// MaxSweeps is exhausted. The table is updated in place. Models implementing
// IndexedModel are trained on the dense SoA fast path with identical results.
func BatchTrain(table *QTable, model Model, cfg BatchConfig, rng *sim.RNG) (BatchResult, error) {
	if table == nil {
		return BatchResult{}, errors.New("mdp: nil table")
	}
	if model == nil {
		return BatchResult{}, errors.New("mdp: nil model")
	}
	if table.Actions() != model.Actions() {
		return BatchResult{}, fmt.Errorf("mdp: table has %d actions, model %d",
			table.Actions(), model.Actions())
	}
	if cfg.StepsPerState < 1 {
		cfg.StepsPerState = 1
	}
	if cfg.MaxSweeps < 1 {
		cfg.MaxSweeps = 1
	}
	learner, err := NewLearner(table, cfg.Params, rng)
	if err != nil {
		return BatchResult{}, err
	}

	states := model.States()
	if len(states) == 0 {
		return BatchResult{}, errors.New("mdp: model has no states")
	}
	if im, ok := model.(IndexedModel); ok {
		return batchTrainIndexed(table, im, cfg, rng, states)
	}
	// Precompute feasible action lists per state: the lattice does not change
	// between sweeps.
	feasible := make(map[string][]int, len(states))
	for _, s := range states {
		acts := make([]int, 0, model.Actions())
		for a := 0; a < model.Actions(); a++ {
			if _, ok := model.Next(s, a); ok {
				acts = append(acts, a)
			}
		}
		if len(acts) == 0 {
			return BatchResult{}, fmt.Errorf("mdp: state %q has no feasible actions", s)
		}
		feasible[s] = acts
	}

	var res BatchResult
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		var maxErr float64
		for _, start := range states {
			state := start
			action := learner.SelectAction(state, feasible[state])
			for step := 0; step < cfg.StepsPerState; step++ {
				next, ok := model.Next(state, action)
				if !ok {
					// Defensive: SelectAction only chooses feasible actions.
					break
				}
				nextFeasible, known := feasible[next]
				if !known {
					// The model's transition left the enumerated region;
					// treat the region boundary as absorbing for this
					// trajectory. Models should keep Next closed over
					// States(), but a bounded sweep must never panic.
					break
				}
				reward := model.Reward(next)
				nextAction := learner.SelectAction(next, nextFeasible)
				if err := learner.UpdateSARSA(state, action, reward, next, nextAction); err > maxErr {
					maxErr = err
				}
				state, action = next, nextAction
			}
		}
		res.Sweeps = sweep + 1
		res.FinalErr = maxErr
		if maxErr < cfg.Theta {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// batchTrainIndexed is BatchTrain's SoA fast path. All training state is held
// in flat arrays: q is the Q-table in row-major (state, action) layout seeded
// exactly as lazy row materialization would seed it; feasible-action lists are
// flattened into one backing array addressed by per-state offsets. Every
// random draw, comparison and floating-point update mirrors the generic
// Learner path operation for operation, which is what makes the result
// byte-identical — determinism tests across the repo pin that equivalence.
func batchTrainIndexed(table *QTable, model IndexedModel, cfg BatchConfig, rng *sim.RNG, states []string) (BatchResult, error) {
	n := len(states)
	actions := model.Actions()

	// Materialize the model's skeleton into flat arrays — transitions by
	// (state, action) index plus flattened feasible-action lists, ascending
	// like the generic path — unless the model carries a prebuilt Structure
	// (cached across retraining calls and shared across agents). The sweep
	// loop then runs on pure array indexing, with no interface dispatch per
	// step. Rewards change call to call, so they are read fresh either way.
	var (
		st  *Structure
		err error
	)
	if sm, ok := model.(Structured); ok {
		st, err = sm.Structure()
	} else {
		st, err = NewStructure(model)
	}
	if err != nil {
		return BatchResult{}, err
	}
	if len(st.states) != n || st.actions != actions {
		return BatchResult{}, fmt.Errorf("mdp: structure shape %dx%d does not match model %dx%d",
			len(st.states), st.actions, n, actions)
	}
	trans, off, feas := st.trans, st.off, st.feas
	rewards := make([]float64, n)
	for s := 0; s < n; s++ {
		rewards[s] = model.RewardIndex(s)
	}

	// Dense Q storage, seeded with the values lazy materialization would
	// produce: the existing row where one is materialized, else the seeder,
	// else the constant initial value.
	q := make([]float64, n*actions)
	for s, state := range states {
		table.snapshotRow(state, q[s*actions:(s+1)*actions])
	}

	var (
		alpha = cfg.Params.Alpha
		gamma = cfg.Params.Gamma
		eps   = cfg.Params.Epsilon
	)
	// Greedy-action cache: the argmax of each row with strict-greater ties
	// toward the lowest action index — exactly what Learner.SelectAction's
	// ascending scan produces. Each SARSA step changes one (state, action)
	// cell, so the cache is maintained in O(1) per update, with a full row
	// rescan only when the cached best entry itself decreases (a lower-index
	// action tied at the new value would then win the scan). This turns the
	// greedy select from an O(actions) scan into an array load.
	best := make([]int32, n)
	bestV := make([]float64, n)
	rescan := func(s int) {
		allowed := feas[off[s]:off[s+1]]
		row := q[s*actions : (s+1)*actions]
		b := allowed[0]
		bv := row[b]
		for _, a := range allowed[1:] {
			if row[a] > bv {
				b, bv = a, row[a]
			}
		}
		best[s], bestV[s] = b, bv
	}
	for s := 0; s < n; s++ {
		rescan(s)
	}
	// selectAction replicates Learner.SelectAction on the dense arrays: an
	// ε draw, then either a uniform feasible pick or the cached row argmax.
	selectAction := func(s int) int {
		if rng.Float64() < eps {
			allowed := feas[off[s]:off[s+1]]
			return int(allowed[rng.Intn(len(allowed))])
		}
		return int(best[s])
	}

	var res BatchResult
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		var maxErr float64
		for start := 0; start < n; start++ {
			state := start
			action := selectAction(state)
			for step := 0; step < cfg.StepsPerState; step++ {
				next := int(trans[state*actions+action])
				if next < 0 {
					// Defensive: selectAction only chooses feasible actions.
					break
				}
				reward := rewards[next]
				nextAction := selectAction(next)
				// SARSA update, in Learner.UpdateSARSA's operation order.
				cur := q[state*actions+action]
				target := reward + gamma*q[next*actions+nextAction]
				delta := target - cur
				newV := cur + alpha*delta
				q[state*actions+action] = newV
				// Maintain the greedy cache for the dirtied row.
				switch a32 := int32(action); {
				case a32 == best[state]:
					if newV >= bestV[state] {
						bestV[state] = newV
					} else {
						rescan(state)
					}
				case newV > bestV[state]:
					best[state], bestV[state] = a32, newV
				case newV == bestV[state] && a32 < best[state]:
					best[state] = a32
				}
				if delta < 0 {
					delta = -delta
				}
				if delta > maxErr {
					maxErr = delta
				}
				state, action = next, nextAction
			}
		}
		res.Sweeps = sweep + 1
		res.FinalErr = maxErr
		if maxErr < cfg.Theta {
			res.Converged = true
			break
		}
	}

	// Scatter the trained rows back. The generic path materializes every row
	// (each state starts a trajectory), so writing all rows matches it.
	for s, state := range states {
		table.setRow(state, q[s*actions:(s+1)*actions])
	}
	return res, nil
}
