package mdp

import (
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/sim"
)

// Model describes a deterministic MDP over string-keyed states, as induced by
// a configuration lattice: taking an action in a state leads to exactly one
// next state, and the reward of a transition depends on the state it reaches.
type Model interface {
	// States enumerates every state key of the model.
	States() []string
	// Next returns the state reached by taking action from state, and
	// whether the action is feasible there. Infeasible actions are skipped
	// by batch training and must not be selected online.
	Next(state string, action int) (string, bool)
	// Reward returns the immediate reward received on entering state.
	Reward(state string) float64
	// Actions returns the total number of actions.
	Actions() int
}

// BatchConfig controls a batch training run (the offline RL process of paper
// Algorithm 1 and the per-interval retraining of Algorithm 3).
type BatchConfig struct {
	Params Params
	// StepsPerState is the inner trajectory length per sweep (Algorithm 1's
	// LIMIT).
	StepsPerState int
	// MaxSweeps bounds the number of full state sweeps.
	MaxSweeps int
	// Theta is the convergence threshold on the largest per-sweep TD error
	// (Algorithm 1's θ).
	Theta float64
}

// DefaultBatchConfig returns the training schedule used by the experiments:
// the paper's hyper-parameters, eight-step inner trajectories, and a 0.01
// convergence threshold. The sweep bound keeps offline training over the
// ~10⁴-state group lattice in the sub-second range; under ε-greedy
// exploration the TD error stays stochastic, so the bound — not θ — usually
// terminates training (see Algorithm 1).
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		Params:        DefaultOffline(),
		StepsPerState: 8,
		MaxSweeps:     60,
		Theta:         0.01,
	}
}

// BatchResult reports how a batch training run converged.
type BatchResult struct {
	Sweeps    int
	FinalErr  float64
	Converged bool
}

// BatchTrain runs Algorithm 1 over the model: repeated sweeps over all
// states, each starting an ε-greedy trajectory of StepsPerState SARSA
// updates, until the largest TD error of a sweep drops below Theta or
// MaxSweeps is exhausted. The table is updated in place.
func BatchTrain(table *QTable, model Model, cfg BatchConfig, rng *sim.RNG) (BatchResult, error) {
	if table == nil {
		return BatchResult{}, errors.New("mdp: nil table")
	}
	if model == nil {
		return BatchResult{}, errors.New("mdp: nil model")
	}
	if table.Actions() != model.Actions() {
		return BatchResult{}, fmt.Errorf("mdp: table has %d actions, model %d",
			table.Actions(), model.Actions())
	}
	if cfg.StepsPerState < 1 {
		cfg.StepsPerState = 1
	}
	if cfg.MaxSweeps < 1 {
		cfg.MaxSweeps = 1
	}
	learner, err := NewLearner(table, cfg.Params, rng)
	if err != nil {
		return BatchResult{}, err
	}

	states := model.States()
	if len(states) == 0 {
		return BatchResult{}, errors.New("mdp: model has no states")
	}
	// Precompute feasible action lists per state: the lattice does not change
	// between sweeps.
	feasible := make(map[string][]int, len(states))
	for _, s := range states {
		acts := make([]int, 0, model.Actions())
		for a := 0; a < model.Actions(); a++ {
			if _, ok := model.Next(s, a); ok {
				acts = append(acts, a)
			}
		}
		if len(acts) == 0 {
			return BatchResult{}, fmt.Errorf("mdp: state %q has no feasible actions", s)
		}
		feasible[s] = acts
	}

	var res BatchResult
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		var maxErr float64
		for _, start := range states {
			state := start
			action := learner.SelectAction(state, feasible[state])
			for step := 0; step < cfg.StepsPerState; step++ {
				next, ok := model.Next(state, action)
				if !ok {
					// Defensive: SelectAction only chooses feasible actions.
					break
				}
				nextFeasible, known := feasible[next]
				if !known {
					// The model's transition left the enumerated region;
					// treat the region boundary as absorbing for this
					// trajectory. Models should keep Next closed over
					// States(), but a bounded sweep must never panic.
					break
				}
				reward := model.Reward(next)
				nextAction := learner.SelectAction(next, nextFeasible)
				if err := learner.UpdateSARSA(state, action, reward, next, nextAction); err > maxErr {
					maxErr = err
				}
				state, action = next, nextAction
			}
		}
		res.Sweeps = sweep + 1
		res.FinalErr = maxErr
		if maxErr < cfg.Theta {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
