package mdp

import (
	"bytes"
	"strconv"
	"testing"

	"github.com/rac-project/rac/internal/sim"
)

// indexedChain wraps chainModel with dense-index transitions, making it
// eligible for the SoA fast path.
type indexedChain struct {
	chainModel
}

func (c indexedChain) NextIndex(s, action int) int {
	switch action {
	case 0:
		return s
	case 1:
		if s+1 >= c.n {
			return -1
		}
		return s + 1
	case 2:
		if s-1 < 0 {
			return -1
		}
		return s - 1
	}
	return -1
}

func (c indexedChain) RewardIndex(s int) float64 {
	d := s - c.goal
	if d < 0 {
		d = -d
	}
	return -float64(d)
}

// genericOnly hides the indexed methods of a model so BatchTrain takes the
// string-keyed path even for models that implement IndexedModel.
type genericOnly struct {
	m Model
}

func (g genericOnly) States() []string                    { return g.m.States() }
func (g genericOnly) Actions() int                        { return g.m.Actions() }
func (g genericOnly) Next(s string, a int) (string, bool) { return g.m.Next(s, a) }
func (g genericOnly) Reward(s string) float64             { return g.m.Reward(s) }

func qtableBytes(t *testing.T, q *QTable) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchTrainIndexedMatchesGeneric pins the fast path's contract: training
// an IndexedModel on the dense SoA path produces a Q-table byte-identical to
// the one the generic string-keyed path produces, for the same seed —
// including under exploration, convergence cutoffs, and seeded initial rows.
func TestBatchTrainIndexedMatchesGeneric(t *testing.T) {
	model := indexedChain{chainModel{n: 9, goal: 6}}
	seeder := func(state string) []float64 {
		i, err := strconv.Atoi(state)
		if err != nil {
			return nil
		}
		return []float64{float64(i) * 0.25, -0.5, float64(i%3) - 1}
	}
	cases := []struct {
		name string
		cfg  func() BatchConfig
		seed Seeder
	}{
		{"default", DefaultBatchConfig, nil},
		{"seeded-rows", DefaultBatchConfig, seeder},
		{"converging", func() BatchConfig {
			cfg := DefaultBatchConfig()
			cfg.Params.Epsilon = 0
			cfg.MaxSweeps = 5000
			cfg.Theta = 0.001
			return cfg
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				qFast := NewQTable(model.Actions(), 0.1)
				qFast.SetSeeder(tc.seed)
				resFast, err := BatchTrain(qFast, model, tc.cfg(), sim.NewRNG(seed))
				if err != nil {
					t.Fatal(err)
				}
				qSlow := NewQTable(model.Actions(), 0.1)
				qSlow.SetSeeder(tc.seed)
				resSlow, err := BatchTrain(qSlow, genericOnly{model}, tc.cfg(), sim.NewRNG(seed))
				if err != nil {
					t.Fatal(err)
				}
				if resFast != resSlow {
					t.Fatalf("seed %d: results diverge: fast %+v, slow %+v", seed, resFast, resSlow)
				}
				fast, slow := qtableBytes(t, qFast), qtableBytes(t, qSlow)
				if !bytes.Equal(fast, slow) {
					t.Fatalf("seed %d: Q-tables diverge between dense and generic training", seed)
				}
			}
		})
	}
}

// badIndexModel claims more states than NextIndex stays within.
type badIndexModel struct {
	indexedChain
}

func (badIndexModel) NextIndex(s, action int) int { return 99 }

func TestBatchTrainIndexedRejectsEscapingIndex(t *testing.T) {
	model := badIndexModel{indexedChain{chainModel{n: 3, goal: 1}}}
	if _, err := BatchTrain(NewQTable(3, 0), model, DefaultBatchConfig(), sim.NewRNG(1)); err == nil {
		t.Fatal("out-of-range NextIndex accepted")
	}
}

// deadEndIndexed has no feasible actions anywhere, via the indexed path.
type deadEndIndexed struct {
	deadEndModel
}

func (deadEndIndexed) NextIndex(int, int) int  { return -1 }
func (deadEndIndexed) RewardIndex(int) float64 { return 0 }

func TestBatchTrainIndexedRejectsDeadEnds(t *testing.T) {
	if _, err := BatchTrain(NewQTable(1, 0), deadEndIndexed{}, DefaultBatchConfig(), sim.NewRNG(1)); err == nil {
		t.Fatal("dead-end indexed model accepted")
	}
}
