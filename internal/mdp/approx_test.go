package mdp

import (
	"math"
	"strconv"
	"testing"

	"github.com/rac-project/rac/internal/sim"
)

// chainFeatures maps the chainModel's integer states to [1, x, x²] with x
// normalized to [0,1].
func chainFeatures(n int) Features {
	return func(state string) []float64 {
		i, err := strconv.Atoi(state)
		if err != nil {
			return []float64{1, 0, 0}
		}
		x := float64(i) / float64(n-1)
		return []float64{1, x, x * x}
	}
}

func TestNewLinearQValidation(t *testing.T) {
	feats := chainFeatures(5)
	if _, err := NewLinearQ(nil, 3, 2); err == nil {
		t.Fatal("nil features accepted")
	}
	if _, err := NewLinearQ(feats, 0, 2); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewLinearQ(feats, 3, 0); err == nil {
		t.Fatal("zero actions accepted")
	}
}

func TestLinearQValueAndBest(t *testing.T) {
	q, err := NewLinearQ(chainFeatures(5), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-set weights: action 0 value = 1; action 1 value = 2x.
	w := q.weights
	w[0][0] = 1
	w[1][1] = 2
	v0, err := q.Value("0", 0)
	if err != nil || v0 != 1 {
		t.Fatalf("Value(0,0) = %v, %v", v0, err)
	}
	v1, err := q.Value("4", 1) // x=1 → 2
	if err != nil || v1 != 2 {
		t.Fatalf("Value(4,1) = %v, %v", v1, err)
	}
	a, v, err := q.Best("4", []int{0, 1})
	if err != nil || a != 1 || v != 2 {
		t.Fatalf("Best = %d,%v,%v", a, v, err)
	}
	a, _, err = q.Best("0", []int{0, 1})
	if err != nil || a != 0 {
		t.Fatalf("Best at x=0 = %d", a)
	}
	if _, err := q.Value("0", 5); err == nil {
		t.Fatal("out-of-range action accepted")
	}
	if _, _, err := q.Best("0", nil); err == nil {
		t.Fatal("empty allowed accepted")
	}
}

func TestLinearQWeightsAreCopies(t *testing.T) {
	q, _ := NewLinearQ(chainFeatures(5), 3, 2)
	w := q.Weights()
	w[0][0] = 99
	if v, _ := q.Value("0", 0); v != 0 {
		t.Fatal("Weights() exposed internal state")
	}
}

func TestLinearQFeatureDimMismatch(t *testing.T) {
	bad := func(string) []float64 { return []float64{1} }
	q, err := NewLinearQ(bad, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Value("s", 0); err == nil {
		t.Fatal("dim mismatch not detected")
	}
}

func TestApproxLearnerValidation(t *testing.T) {
	q, _ := NewLinearQ(chainFeatures(5), 3, 2)
	rng := sim.NewRNG(1)
	if _, err := NewApproxLearner(nil, DefaultOnline(), rng); err == nil {
		t.Fatal("nil q accepted")
	}
	if _, err := NewApproxLearner(q, Params{}, rng); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := NewApproxLearner(q, DefaultOnline(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestApproxLearnerRegressesToTarget(t *testing.T) {
	// A single state, single action, fixed reward and γ=0: the weight must
	// converge so Q(s,0) → r.
	feats := func(string) []float64 { return []float64{1} }
	q, _ := NewLinearQ(feats, 1, 1)
	l, err := NewApproxLearner(q, Params{Alpha: 0.5, Gamma: 0, Epsilon: 0}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.UpdateSARSA("s", 0, 3.0, "s", 0); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := q.Value("s", 0)
	if math.Abs(v-3) > 1e-6 {
		t.Fatalf("Q = %v, want 3", v)
	}
}

// quadChainModel is chainModel with a quadratic reward peak, exactly
// representable by the [1, x, x²] feature basis.
type quadChainModel struct{ chainModel }

func (c quadChainModel) Reward(state string) float64 {
	i, _ := strconv.Atoi(state)
	d := float64(i - c.goal)
	return -d * d
}

func TestApproxLearnerSolvesChain(t *testing.T) {
	// Gradient SARSA with quadratic features must learn to walk the chain
	// toward the goal, like the tabular learner.
	model := quadChainModel{chainModel{n: 9, goal: 6}}
	q, err := NewLinearQ(chainFeatures(model.n), 3, model.Actions())
	if err != nil {
		t.Fatal(err)
	}
	learner, err := NewApproxLearner(q, Params{Alpha: 0.3, Gamma: 0.9, Epsilon: 0.3}, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	feasible := func(state string) []int {
		var out []int
		for a := 0; a < model.Actions(); a++ {
			if _, ok := model.Next(state, a); ok {
				out = append(out, a)
			}
		}
		return out
	}
	// Train with episodes from every start state.
	for episode := 0; episode < 3000; episode++ {
		state := strconv.Itoa(episode % model.n)
		action, err := learner.SelectAction(state, feasible(state))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			next, _ := model.Next(state, action)
			nextAction, err := learner.SelectAction(next, feasible(next))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := learner.UpdateSARSA(state, action, model.Reward(next), next, nextAction); err != nil {
				t.Fatal(err)
			}
			state, action = next, nextAction
		}
	}
	// The greedy policy must reach the goal from every state.
	for start := 0; start < model.n; start++ {
		state := strconv.Itoa(start)
		for step := 0; step < model.n+2 && state != strconv.Itoa(model.goal); step++ {
			a, _, err := q.Best(state, feasible(state))
			if err != nil {
				t.Fatal(err)
			}
			next, ok := model.Next(state, a)
			if !ok || next == state {
				t.Fatalf("greedy policy stuck at %s (from %d)", state, start)
			}
			state = next
		}
		if state != strconv.Itoa(model.goal) {
			t.Fatalf("greedy policy from %d ended at %s", start, state)
		}
	}
}

func TestApproxGeneralizesToUnseenStates(t *testing.T) {
	// Train on even states of a linear value landscape; the approximator
	// must rank unseen odd states consistently (what a tabular Q cannot do).
	feats := chainFeatures(11)
	q, _ := NewLinearQ(feats, 3, 1)
	l, _ := NewApproxLearner(q, Params{Alpha: 0.3, Gamma: 0, Epsilon: 0}, sim.NewRNG(3))
	for i := 0; i < 2000; i++ {
		s := strconv.Itoa((i * 2) % 10) // even states only
		x, _ := strconv.Atoi(s)
		reward := float64(x) // value rises with the state index
		if _, err := l.UpdateSARSA(s, 0, reward, s, 0); err != nil {
			t.Fatal(err)
		}
	}
	v3, _ := q.Value("3", 0)
	v7, _ := q.Value("7", 0)
	if v7 <= v3 {
		t.Fatalf("no generalization: Q(7)=%v <= Q(3)=%v", v7, v3)
	}
}
