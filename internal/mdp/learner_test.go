package mdp

import (
	"math"
	"strconv"
	"testing"

	"github.com/rac-project/rac/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"defaults offline", DefaultOffline(), true},
		{"defaults online", DefaultOnline(), true},
		{"zero alpha", Params{Alpha: 0, Gamma: 0.9, Epsilon: 0.1}, false},
		{"alpha above one", Params{Alpha: 1.5, Gamma: 0.9, Epsilon: 0.1}, false},
		{"gamma one", Params{Alpha: 0.1, Gamma: 1, Epsilon: 0.1}, false},
		{"negative gamma", Params{Alpha: 0.1, Gamma: -0.1, Epsilon: 0.1}, false},
		{"epsilon above one", Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 1.1}, false},
		{"zero epsilon ok", Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 0}, true},
	}
	for _, tt := range tests {
		if err := tt.p.Validate(); (err == nil) != tt.ok {
			t.Errorf("%s: err=%v", tt.name, err)
		}
	}
}

func TestPaperHyperParameters(t *testing.T) {
	off := DefaultOffline()
	if off.Alpha != 0.1 || off.Gamma != 0.9 || off.Epsilon != 0.1 {
		t.Fatalf("offline params %+v differ from the paper", off)
	}
	on := DefaultOnline()
	if on.Alpha != 0.1 || on.Gamma != 0.9 || on.Epsilon != 0.05 {
		t.Fatalf("online params %+v differ from the paper", on)
	}
}

func TestNewLearnerValidation(t *testing.T) {
	q := NewQTable(2, 0)
	rng := sim.NewRNG(1)
	if _, err := NewLearner(nil, DefaultOnline(), rng); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := NewLearner(q, Params{}, rng); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewLearner(q, DefaultOnline(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestUpdateSARSA(t *testing.T) {
	q := NewQTable(2, 0)
	l, err := NewLearner(q, Params{Alpha: 0.5, Gamma: 0.9, Epsilon: 0}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	q.Set("s2", 1, 10)
	tdErr := l.UpdateSARSA("s1", 0, 1, "s2", 1)
	// target = 1 + 0.9*10 = 10; delta = 10; new Q = 0 + 0.5*10 = 5.
	if math.Abs(tdErr-10) > 1e-12 {
		t.Fatalf("td error %v", tdErr)
	}
	if got := q.Get("s1", 0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Q after update %v", got)
	}
}

func TestUpdateQUsesMax(t *testing.T) {
	q := NewQTable(3, 0)
	l, err := NewLearner(q, Params{Alpha: 1, Gamma: 0.5, Epsilon: 0}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	q.Set("s2", 0, 1)
	q.Set("s2", 1, 4)
	q.Set("s2", 2, 2)
	l.UpdateQ("s1", 0, 2, "s2")
	// target = 2 + 0.5*max(1,4,2) = 4.
	if got := q.Get("s1", 0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Q after update %v", got)
	}
}

func TestUpdateReturnsAbsError(t *testing.T) {
	q := NewQTable(1, 0)
	l, _ := NewLearner(q, Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 0}, sim.NewRNG(1))
	if e := l.UpdateSARSA("a", 0, -5, "b", 0); e != 5 {
		t.Fatalf("negative delta abs = %v", e)
	}
}

func TestSelectActionGreedy(t *testing.T) {
	q := NewQTable(3, 0)
	q.Set("s", 0, 1)
	q.Set("s", 1, 9)
	q.Set("s", 2, 5)
	l, _ := NewLearner(q, Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 0}, sim.NewRNG(1))
	for i := 0; i < 20; i++ {
		if got := l.SelectAction("s", []int{0, 1, 2}); got != 1 {
			t.Fatalf("greedy selection = %d", got)
		}
	}
	// Restricting the allowed set must be honored.
	if got := l.SelectAction("s", []int{0, 2}); got != 2 {
		t.Fatalf("restricted selection = %d", got)
	}
}

func TestSelectActionExplores(t *testing.T) {
	q := NewQTable(3, 0)
	q.Set("s", 0, 100)
	l, _ := NewLearner(q, Params{Alpha: 0.1, Gamma: 0.9, Epsilon: 0.5}, sim.NewRNG(7))
	nonGreedy := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if l.SelectAction("s", []int{0, 1, 2}) != 0 {
			nonGreedy++
		}
	}
	// ε=0.5 with 3 actions → 1/3 of explorations hit the greedy arm anyway:
	// expect ~n/3 non-greedy picks.
	frac := float64(nonGreedy) / n
	if frac < 0.25 || frac > 0.42 {
		t.Fatalf("non-greedy fraction %v, want ~0.33", frac)
	}
}

func TestSelectActionPanicsOnEmpty(t *testing.T) {
	q := NewQTable(1, 0)
	l, _ := NewLearner(q, DefaultOnline(), sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty allowed set")
		}
	}()
	l.SelectAction("s", nil)
}

func TestSetEpsilonClamps(t *testing.T) {
	q := NewQTable(1, 0)
	l, _ := NewLearner(q, DefaultOnline(), sim.NewRNG(1))
	l.SetEpsilon(-1)
	if l.Params().Epsilon != 0 {
		t.Fatal("negative epsilon not clamped")
	}
	l.SetEpsilon(2)
	if l.Params().Epsilon != 1 {
		t.Fatal("epsilon above one not clamped")
	}
}

// chainModel is a deterministic 1-D random walk MDP: states 0..n-1, actions
// left/right/stay, reward peaks at the goal state.
type chainModel struct {
	n    int
	goal int
}

func (c chainModel) States() []string {
	out := make([]string, c.n)
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}

func (c chainModel) Actions() int { return 3 }

func (c chainModel) Next(state string, action int) (string, bool) {
	i, err := strconv.Atoi(state)
	if err != nil {
		return state, false
	}
	switch action {
	case 0:
		return state, true
	case 1:
		if i+1 >= c.n {
			return state, false
		}
		return strconv.Itoa(i + 1), true
	case 2:
		if i-1 < 0 {
			return state, false
		}
		return strconv.Itoa(i - 1), true
	}
	return state, false
}

func (c chainModel) Reward(state string) float64 {
	i, _ := strconv.Atoi(state)
	d := i - c.goal
	if d < 0 {
		d = -d
	}
	return -float64(d)
}

func TestBatchTrainFindsGoal(t *testing.T) {
	model := chainModel{n: 9, goal: 6}
	q := NewQTable(model.Actions(), 0)
	res, err := BatchTrain(q, model, DefaultBatchConfig(), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps == 0 {
		t.Fatal("no sweeps ran")
	}
	// The greedy policy over feasible actions must walk to the goal from any
	// state. (Greedy queries must restrict to feasible actions, as the online
	// agent does: infeasible edge actions keep their optimistic initial value
	// because training never updates them.)
	bestFeasible := func(state string) (int, bool) {
		row := q.Row(state)
		best, bestV, found := 0, 0.0, false
		for a := 0; a < model.Actions(); a++ {
			if _, ok := model.Next(state, a); !ok {
				continue
			}
			if !found || row[a] > bestV {
				best, bestV, found = a, row[a], true
			}
		}
		return best, found
	}
	for start := 0; start < model.n; start++ {
		state := strconv.Itoa(start)
		for step := 0; step < model.n+2; step++ {
			if state == strconv.Itoa(model.goal) {
				break
			}
			a, ok := bestFeasible(state)
			if !ok {
				t.Fatalf("no feasible action at %s", state)
			}
			next, ok := model.Next(state, a)
			if !ok || next == state {
				t.Fatalf("greedy policy stuck at %s (from %d)", state, start)
			}
			state = next
		}
		if state != strconv.Itoa(model.goal) {
			t.Fatalf("greedy policy from %d ended at %s, want %d", start, state, model.goal)
		}
	}
}

func TestBatchTrainConverges(t *testing.T) {
	// With ε=0 the trajectories are deterministic, so the per-sweep TD error
	// must fall below θ. (Under ε-greedy exploration the error stays noisy
	// and training stops at the sweep bound instead — see Algorithm 1.)
	model := chainModel{n: 5, goal: 2}
	q := NewQTable(model.Actions(), 0)
	cfg := DefaultBatchConfig()
	cfg.Params.Epsilon = 0
	cfg.MaxSweeps = 5000
	cfg.Theta = 0.001
	res, err := BatchTrain(q, model, cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final err %v after %d sweeps", res.FinalErr, res.Sweeps)
	}
}

func TestBatchTrainValidation(t *testing.T) {
	model := chainModel{n: 3, goal: 1}
	rng := sim.NewRNG(1)
	if _, err := BatchTrain(nil, model, DefaultBatchConfig(), rng); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := BatchTrain(NewQTable(3, 0), nil, DefaultBatchConfig(), rng); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := BatchTrain(NewQTable(2, 0), model, DefaultBatchConfig(), rng); err == nil {
		t.Fatal("action-count mismatch accepted")
	}
}

// deadEndModel has a state with no feasible actions.
type deadEndModel struct{}

func (deadEndModel) States() []string                { return []string{"dead"} }
func (deadEndModel) Actions() int                    { return 1 }
func (deadEndModel) Next(string, int) (string, bool) { return "", false }
func (deadEndModel) Reward(string) float64           { return 0 }

func TestBatchTrainRejectsDeadEnds(t *testing.T) {
	if _, err := BatchTrain(NewQTable(1, 0), deadEndModel{}, DefaultBatchConfig(), sim.NewRNG(1)); err == nil {
		t.Fatal("dead-end model accepted")
	}
}
