package mdp

import "sync"

// SharedRows is the copy-on-write backing store for Q-tables that share an
// initialization policy: many tenants tuning the same workload context seed
// their online tables from the same deterministic Seeder, so the seeded rows
// are computed once here and served read-only to every table. A QTable with a
// SharedRows installed (SetShared) materializes a private row only when it
// writes — per-tenant memory holds learned deltas, the common structure is
// O(contexts) not O(tenants).
//
// State-key strings are interned alongside the rows, so ten thousand tables
// keying the same visited states hold one copy of each key.
//
// All methods are safe for concurrent use; the seeder runs under the write
// lock, so it may touch shared policy state without its own synchronization.
// Seeded rows are immutable once published — callers must never write through
// a slice returned by row.
type SharedRows struct {
	actions int
	seeder  Seeder

	mu   sync.RWMutex
	rows map[string][]float64
	keys map[string]string
}

// NewSharedRows returns an empty shared store serving rows of the given
// action count from seeder. A nil seeder is allowed: the store then only
// interns keys and every lookup misses (tables fall back to their constant
// initial value).
func NewSharedRows(actions int, seeder Seeder) *SharedRows {
	if actions < 1 {
		panic("mdp: SharedRows needs at least one action")
	}
	return &SharedRows{
		actions: actions,
		seeder:  seeder,
		rows:    make(map[string][]float64),
		keys:    make(map[string]string),
	}
}

// Actions returns the per-state action count.
func (s *SharedRows) Actions() int { return s.actions }

// Len returns the number of memoized seeded rows (including negative entries
// for states the seeder declined).
func (s *SharedRows) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// Intern returns the canonical copy of state, so every table sharing the
// store keys its rows by the same string backing array.
func (s *SharedRows) Intern(state string) string {
	s.mu.RLock()
	k, ok := s.keys[state]
	s.mu.RUnlock()
	if ok {
		return k
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.internLocked(state)
}

func (s *SharedRows) internLocked(state string) string {
	if k, ok := s.keys[state]; ok {
		return k
	}
	s.keys[state] = state
	return state
}

// row returns the shared seeded row for state, computing and memoizing it on
// first access. States the seeder declines (nil or wrong length) memoize as
// nil so the seeder runs at most once per state. The returned slice is shared
// and must be treated as immutable.
func (s *SharedRows) row(state string) []float64 {
	s.mu.RLock()
	row, ok := s.rows[state]
	s.mu.RUnlock()
	if ok {
		return row
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if row, ok := s.rows[state]; ok {
		return row
	}
	var fresh []float64
	if s.seeder != nil {
		if seeded := s.seeder(state); len(seeded) == s.actions {
			fresh = make([]float64, s.actions)
			copy(fresh, seeded)
		}
	}
	state = s.internLocked(state)
	s.rows[state] = fresh
	return fresh
}
