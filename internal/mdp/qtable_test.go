package mdp

import (
	"bytes"
	"math"
	"testing"
)

func TestQTableBasics(t *testing.T) {
	q := NewQTable(3, 0.5)
	if q.Actions() != 3 {
		t.Fatalf("Actions = %d", q.Actions())
	}
	if q.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	if got := q.Get("s", 1); got != 0.5 {
		t.Fatalf("unvisited Get = %v, want initial", got)
	}
	q.Set("s", 1, 2.0)
	if got := q.Get("s", 1); got != 2.0 {
		t.Fatalf("Get after Set = %v", got)
	}
	if got := q.Get("s", 0); got != 0.5 {
		t.Fatalf("other action = %v, want initial", got)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQTableBest(t *testing.T) {
	q := NewQTable(3, 0)
	a, v := q.Best("unseen")
	if a != 0 || v != 0 {
		t.Fatalf("unseen Best = %d,%v", a, v)
	}
	q.Set("s", 0, 1)
	q.Set("s", 1, 5)
	q.Set("s", 2, 5)
	a, v = q.Best("s")
	if a != 1 || v != 5 {
		t.Fatalf("Best = %d,%v; ties must break low", a, v)
	}
	if q.MaxValue("s") != 5 {
		t.Fatal("MaxValue mismatch")
	}
}

func TestQTablePanicsOnBadActions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewQTable(0) did not panic")
		}
	}()
	NewQTable(0, 0)
}

func TestQTableSeeder(t *testing.T) {
	q := NewQTable(2, 0)
	q.SetSeeder(func(state string) []float64 {
		if state == "seeded" {
			return []float64{3, 7}
		}
		return nil
	})
	// Get without materializing.
	if got := q.Get("seeded", 1); got != 7 {
		t.Fatalf("seeded Get = %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("Get materialized a row")
	}
	a, v := q.Best("seeded")
	if a != 1 || v != 7 {
		t.Fatalf("seeded Best = %d,%v", a, v)
	}
	// Row materializes a copy of the seed.
	row := q.Row("seeded")
	if row[0] != 3 || row[1] != 7 {
		t.Fatalf("seeded Row = %v", row)
	}
	row[0] = 100
	if q.Get("seeded", 0) != 100 {
		t.Fatal("Row is not the live row")
	}
	// Fallback for unknown states.
	if got := q.Get("other", 0); got != 0 {
		t.Fatalf("unseeded Get = %v", got)
	}
	// Wrong-length seeds are ignored.
	q2 := NewQTable(2, -1)
	q2.SetSeeder(func(string) []float64 { return []float64{1} })
	if got := q2.Get("x", 0); got != -1 {
		t.Fatalf("short seed used: %v", got)
	}
}

func TestQTableSeederDoesNotAffectExistingRows(t *testing.T) {
	q := NewQTable(2, 0)
	q.Set("s", 0, 9)
	q.SetSeeder(func(string) []float64 { return []float64{1, 1} })
	if q.Get("s", 0) != 9 {
		t.Fatal("seeder overwrote existing row")
	}
}

func TestQTableClone(t *testing.T) {
	q := NewQTable(2, 0)
	q.Set("s", 0, 1)
	c := q.Clone()
	c.Set("s", 0, 5)
	if q.Get("s", 0) != 1 {
		t.Fatal("clone aliases original")
	}
	if c.Actions() != 2 {
		t.Fatal("clone lost action count")
	}
}

func TestQTableStatesSorted(t *testing.T) {
	q := NewQTable(1, 0)
	for _, s := range []string{"c", "a", "b"} {
		q.Row(s)
	}
	states := q.States()
	if len(states) != 3 || states[0] != "a" || states[2] != "c" {
		t.Fatalf("States = %v", states)
	}
}

func TestQTableSaveLoad(t *testing.T) {
	q := NewQTable(3, 0.25)
	q.Set("a", 0, 1.5)
	q.Set("b", 2, -2)
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(q, loaded) != 0 {
		t.Fatal("round trip changed values")
	}
	if loaded.Get("unseen", 0) != 0.25 {
		t.Fatal("initial value lost")
	}
}

func TestLoadQTableRejectsGarbage(t *testing.T) {
	if _, err := LoadQTable(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage loaded")
	}
	if _, err := LoadQTable(bytes.NewBufferString(`{"actions":0,"rows":{}}`)); err == nil {
		t.Fatal("zero actions loaded")
	}
	if _, err := LoadQTable(bytes.NewBufferString(`{"actions":2,"rows":{"s":[1]}}`)); err == nil {
		t.Fatal("ragged row loaded")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewQTable(2, 0)
	b := NewQTable(2, 0)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("empty tables differ")
	}
	a.Set("s", 0, 3)
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Fatalf("diff = %v", got)
	}
	b.Set("t", 1, -4)
	if got := MaxAbsDiff(a, b); got != 4 {
		t.Fatalf("diff = %v", got)
	}
	c := NewQTable(3, 0)
	if !math.IsInf(MaxAbsDiff(a, c), 1) {
		t.Fatal("different action counts should be +Inf")
	}
}
