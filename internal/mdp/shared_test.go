package mdp

import (
	"bytes"
	"testing"
)

// TestSharedRowsCopyOnWrite is the COW contract at the table layer: two
// Q-tables bound to one SharedRows read identical seeded rows, a write
// through one table's materialized row never shows through the other, and
// the shared storage itself stays pristine.
func TestSharedRowsCopyOnWrite(t *testing.T) {
	seeder := func(state string) []float64 {
		if state == "declined" {
			return nil
		}
		return []float64{1, 2, 3}
	}
	shared := NewSharedRows(3, seeder)
	q1 := NewQTable(3, 0)
	q1.SetShared(shared)
	q2 := NewQTable(3, 0)
	q2.SetShared(shared)

	// Both tables read the seeded row without materializing.
	r1 := q1.ReadRow("s0")
	r2 := q2.ReadRow("s0")
	if r1[0] != 1 || r2[2] != 3 {
		t.Fatalf("seeded reads: %v, %v", r1, r2)
	}

	// Mutating q1's materialized copy must not leak into q2 or the shared row.
	row := q1.Row("s0")
	row[0] = 99
	if got := q2.ReadRow("s0"); got[0] != 1 {
		t.Errorf("q1 write leaked into q2: %v", got)
	}
	if got := shared.row("s0"); got[0] != 1 {
		t.Errorf("q1 write leaked into shared storage: %v", got)
	}
	if got := q1.ReadRow("s0"); got[0] != 99 {
		t.Errorf("q1 lost its own write: %v", got)
	}

	// Get/Best see the shared row for unmaterialized states.
	if v := q2.Get("s0", 2); v != 3 {
		t.Errorf("Get through shared = %v, want 3", v)
	}
	if a, v := q2.Best("s0"); a != 2 || v != 3 {
		t.Errorf("Best through shared = (%d, %v), want (2, 3)", a, v)
	}

	// Declined states fall back to zero rows on both paths.
	if v := q2.Get("declined", 0); v != 0 {
		t.Errorf("declined state Get = %v", v)
	}

	// Serialization stays delta-only: q2 never materialized, so its saved
	// table carries no rows, while q1 carries exactly its one write.
	var b1, b2 bytes.Buffer
	if err := q1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := q2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if len(b2.Bytes()) >= len(b1.Bytes()) {
		t.Errorf("empty-delta table serialized to %d bytes, learner table %d", b2.Len(), b1.Len())
	}

	// Interning: the same state key is computed once and memoized.
	if n := shared.Len(); n != 2 {
		t.Errorf("shared memoized %d rows, want 2 (s0 + declined)", n)
	}
}

// TestSharedRowsActionMismatch pins the wiring guards.
func TestSharedRowsActionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetShared with mismatched actions did not panic")
		}
	}()
	q := NewQTable(2, 0)
	q.SetShared(NewSharedRows(3, func(string) []float64 { return []float64{1, 2, 3} }))
}
