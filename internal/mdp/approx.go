package mdp

import (
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/sim"
)

// Features maps a state key to a feature vector of fixed length. Feature
// extractors must be deterministic; including a constant 1 as the first
// feature (a bias term) is conventional.
type Features func(state string) []float64

// LinearQ approximates the action-value function with one linear model per
// action: Q(s,a) = w_a · φ(s). It is the paper's §7 "function approximation"
// future-work direction: instead of materializing a Q-table row per visited
// configuration, values generalize across the lattice through the features,
// trading the tabular method's asymptotic exactness for immediate
// generalization and constant memory.
type LinearQ struct {
	features Features
	dim      int
	actions  int
	weights  [][]float64
}

// NewLinearQ builds an approximator with the given feature extractor, whose
// output length must always be dim.
func NewLinearQ(features Features, dim, actions int) (*LinearQ, error) {
	if features == nil {
		return nil, errors.New("mdp: nil feature extractor")
	}
	if dim < 1 {
		return nil, fmt.Errorf("mdp: feature dimension %d < 1", dim)
	}
	if actions < 1 {
		return nil, fmt.Errorf("mdp: action count %d < 1", actions)
	}
	w := make([][]float64, actions)
	for a := range w {
		w[a] = make([]float64, dim)
	}
	return &LinearQ{features: features, dim: dim, actions: actions, weights: w}, nil
}

// Actions returns the action count.
func (l *LinearQ) Actions() int { return l.actions }

// Dim returns the feature dimensionality.
func (l *LinearQ) Dim() int { return l.dim }

// phi extracts and validates the features of a state.
func (l *LinearQ) phi(state string) ([]float64, error) {
	f := l.features(state)
	if len(f) != l.dim {
		return nil, fmt.Errorf("mdp: feature extractor returned %d values, want %d", len(f), l.dim)
	}
	return f, nil
}

// Value returns Q(state, action).
func (l *LinearQ) Value(state string, action int) (float64, error) {
	if action < 0 || action >= l.actions {
		return 0, fmt.Errorf("mdp: action %d outside [0,%d)", action, l.actions)
	}
	f, err := l.phi(state)
	if err != nil {
		return 0, err
	}
	return dot(l.weights[action], f), nil
}

// Best returns the greedy action among allowed and its value. Allowed must
// be non-empty.
func (l *LinearQ) Best(state string, allowed []int) (int, float64, error) {
	if len(allowed) == 0 {
		return 0, 0, errors.New("mdp: Best with no allowed actions")
	}
	f, err := l.phi(state)
	if err != nil {
		return 0, 0, err
	}
	best := allowed[0]
	bestV := dot(l.weights[best], f)
	for _, a := range allowed[1:] {
		if a < 0 || a >= l.actions {
			return 0, 0, fmt.Errorf("mdp: action %d outside [0,%d)", a, l.actions)
		}
		if v := dot(l.weights[a], f); v > bestV {
			best, bestV = a, v
		}
	}
	return best, bestV, nil
}

// Weights returns a deep copy of the per-action weight vectors.
func (l *LinearQ) Weights() [][]float64 {
	out := make([][]float64, len(l.weights))
	for a, w := range l.weights {
		cp := make([]float64, len(w))
		copy(cp, w)
		out[a] = cp
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ApproxLearner performs gradient SARSA updates on a LinearQ.
type ApproxLearner struct {
	q      *LinearQ
	params Params
	rng    *sim.RNG
}

// NewApproxLearner wraps the approximator with hyper-parameters and an RNG.
// The learning rate is applied per unit feature norm; callers should
// normalize features to keep updates stable.
func NewApproxLearner(q *LinearQ, params Params, rng *sim.RNG) (*ApproxLearner, error) {
	if q == nil {
		return nil, errors.New("mdp: nil approximator")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("mdp: nil rng")
	}
	return &ApproxLearner{q: q, params: params, rng: rng}, nil
}

// Q returns the underlying approximator.
func (l *ApproxLearner) Q() *LinearQ { return l.q }

// SelectAction picks an action ε-greedily among allowed.
func (l *ApproxLearner) SelectAction(state string, allowed []int) (int, error) {
	if len(allowed) == 0 {
		return 0, errors.New("mdp: SelectAction with no allowed actions")
	}
	if l.rng.Float64() < l.params.Epsilon {
		return allowed[l.rng.Intn(len(allowed))], nil
	}
	a, _, err := l.q.Best(state, allowed)
	return a, err
}

// UpdateSARSA applies the gradient on-policy TD update
//
//	w_a += α · (r + γ Q(s',a') − Q(s,a)) · φ(s) / (1 + ‖φ(s)‖²)
//
// (a normalized step, which keeps the update stable for unscaled features)
// and returns the absolute TD error.
func (l *ApproxLearner) UpdateSARSA(state string, action int, reward float64, next string, nextAction int) (float64, error) {
	f, err := l.q.phi(state)
	if err != nil {
		return 0, err
	}
	if action < 0 || action >= l.q.actions {
		return 0, fmt.Errorf("mdp: action %d outside [0,%d)", action, l.q.actions)
	}
	nextV, err := l.q.Value(next, nextAction)
	if err != nil {
		return 0, err
	}
	cur := dot(l.q.weights[action], f)
	delta := reward + l.params.Gamma*nextV - cur

	norm := 1.0
	for _, x := range f {
		norm += x * x
	}
	step := l.params.Alpha * delta / norm
	w := l.q.weights[action]
	for i := range w {
		w[i] += step * f[i]
	}
	if delta < 0 {
		return -delta, nil
	}
	return delta, nil
}
