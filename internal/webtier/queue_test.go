package webtier

import (
	"testing"
	"testing/quick"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

func TestQueueFIFO(t *testing.T) {
	var q queue
	for i := 0; i < 10; i++ {
		q.push(i)
	}
	for i := 0; i < 10; i++ {
		if got := q.pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after draining", q.len())
	}
}

func TestQueueCompaction(t *testing.T) {
	// Interleaved push/pop across the compaction threshold must preserve
	// FIFO order exactly.
	var q queue
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if got := q.pop(); got != expect {
				t.Fatalf("round %d: pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for q.len() > 0 {
		if got := q.pop(); got != expect {
			t.Fatalf("drain: pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect, next)
	}
}

func TestQueueFIFOProperty(t *testing.T) {
	// Any interleaving of pushes and pops yields pops in push order.
	check := func(ops []bool) bool {
		var q queue
		pushed, popped := 0, 0
		for _, push := range ops {
			if push {
				q.push(pushed)
				pushed++
			} else if q.len() > 0 {
				if q.pop() != popped {
					return false
				}
				popped++
			}
		}
		for q.len() > 0 {
			if q.pop() != popped {
				return false
			}
			popped++
		}
		return popped == pushed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueReset(t *testing.T) {
	var q queue
	q.push(1)
	q.push(2)
	q.reset()
	if q.len() != 0 {
		t.Fatal("reset did not clear")
	}
	q.push(7)
	if q.pop() != 7 {
		t.Fatal("queue unusable after reset")
	}
}

func TestFifoExpiry(t *testing.T) {
	var f fifoExpiry
	f.push(1.0)
	f.push(2.0)
	f.push(3.0)
	if f.len() != 3 {
		t.Fatalf("len = %d", f.len())
	}
	f.prune(0.5)
	if f.len() != 3 {
		t.Fatal("prune removed unexpired entries")
	}
	f.prune(2.0) // expiries <= now drop
	if f.len() != 1 {
		t.Fatalf("len after prune(2.0) = %d", f.len())
	}
	f.prune(10)
	if f.len() != 0 {
		t.Fatal("prune left expired entries")
	}
	f.reset()
	f.push(5)
	if f.len() != 1 {
		t.Fatal("unusable after reset")
	}
}

func TestFifoExpiryMonotonePruneProperty(t *testing.T) {
	// Pruning at increasing times is monotone: the count never grows and
	// every remaining expiry exceeds the prune time.
	check := func(seed uint8) bool {
		var f fifoExpiry
		exp := 0.0
		for i := 0; i < 40; i++ {
			exp += float64((int(seed)+i)%7) * 0.3
			f.push(exp)
		}
		prev := f.len()
		for now := 0.0; now < exp+1; now += 0.9 {
			f.prune(now)
			if f.len() > prev {
				return false
			}
			prev = f.len()
		}
		return f.len() == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxClampHelpers(t *testing.T) {
	if minInt(2, 3) != 2 || minInt(3, 2) != 2 {
		t.Fatal("minInt wrong")
	}
	if maxInt(2, 3) != 3 || maxInt(3, 2) != 3 {
		t.Fatal("maxInt wrong")
	}
	if clampInt(5, 1, 10) != 5 || clampInt(-1, 1, 10) != 1 || clampInt(99, 1, 10) != 10 {
		t.Fatal("clampInt wrong")
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	m := newTestModel(t, tpcw.Shopping, 10, vmenv.Level1, 1)
	prev := 1.0
	for n := 1; n <= 600; n += 13 {
		e := m.efficiency(n, 2)
		if e > prev+1e-12 {
			t.Fatalf("efficiency increased at n=%d: %v > %v", n, e, prev)
		}
		if e <= 0 || e > 1 {
			t.Fatalf("efficiency out of range at n=%d: %v", n, e)
		}
		prev = e
	}
	if m.efficiency(1, 2) != 1 {
		t.Fatal("under-committed VM not at full efficiency")
	}
}
