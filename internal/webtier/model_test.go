package webtier

import (
	"testing"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// fastCal returns a calibration with a coarser tick for faster tests.
func fastCal() *Calibration {
	cal := DefaultCalibration()
	cal.TickSeconds = 0.05
	return &cal
}

func newTestModel(t *testing.T, mix tpcw.Mix, clients int, level vmenv.Level, seed uint64) *Model {
	t.Helper()
	m, err := New(Options{
		Calibration: fastCal(),
		Workload:    tpcw.Workload{Mix: mix, Clients: clients},
		AppLevel:    level,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	good := tpcw.Workload{Mix: tpcw.Shopping, Clients: 10}
	if _, err := New(Options{Workload: tpcw.Workload{}}); err == nil {
		t.Fatal("empty workload accepted")
	}
	bad := DefaultParams()
	bad.MaxClients = 0
	if _, err := New(Options{Workload: good, Params: &bad}); err == nil {
		t.Fatal("invalid params accepted")
	}
	zeroTick := DefaultCalibration()
	zeroTick.TickSeconds = 0
	if _, err := New(Options{Workload: good, Calibration: &zeroTick}); err == nil {
		t.Fatal("zero tick accepted")
	}
}

func TestDefaultLevelIsLevel1(t *testing.T) {
	m, err := New(Options{Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if m.AppLevel() != vmenv.Level1 {
		t.Fatalf("default level %v", m.AppLevel())
	}
}

func TestRunProducesTraffic(t *testing.T) {
	m := newTestModel(t, tpcw.Shopping, 100, vmenv.Level1, 1)
	st, err := m.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if st.MeanRT <= 0 {
		t.Fatalf("MeanRT = %v", st.MeanRT)
	}
	if st.P95RT < st.MeanRT*0.5 {
		t.Fatalf("implausible P95 %v vs mean %v", st.P95RT, st.MeanRT)
	}
	if st.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	// Closed-loop sanity: throughput cannot exceed clients/think-time floor.
	if st.Throughput > 100 {
		t.Fatalf("throughput %v exceeds any feasible rate", st.Throughput)
	}
}

func TestRunRejectsNonPositive(t *testing.T) {
	m := newTestModel(t, tpcw.Shopping, 10, vmenv.Level1, 1)
	if _, err := m.Run(0); err == nil {
		t.Fatal("Run(0) accepted")
	}
	if _, err := m.Run(-5); err == nil {
		t.Fatal("Run(-5) accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		m := newTestModel(t, tpcw.Ordering, 80, vmenv.Level2, 99)
		m.Warmup(60)
		st, err := m.Run(120)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.MeanRT != b.MeanRT || a.Completed != b.Completed ||
		a.Throughput != b.Throughput || a.P95RT != b.P95RT ||
		a.Retransmits != b.Retransmits || a.Timeouts != b.Timeouts {
		t.Fatalf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
	if len(a.PerClass) != len(b.PerClass) {
		t.Fatal("per-class maps differ")
	}
	for class, cs := range a.PerClass {
		if b.PerClass[class] != cs {
			t.Fatalf("class %v stats differ: %+v vs %+v", class, cs, b.PerClass[class])
		}
	}
}

func TestSeedsChangeOutcome(t *testing.T) {
	rt := func(seed uint64) float64 {
		m := newTestModel(t, tpcw.Ordering, 80, vmenv.Level2, seed)
		m.Warmup(30)
		st, _ := m.Run(60)
		return st.MeanRT
	}
	if rt(1) == rt(2) {
		t.Fatal("different seeds produced identical response times")
	}
}

func TestInvariantsHoldDuringRun(t *testing.T) {
	m := newTestModel(t, tpcw.Ordering, 120, vmenv.Level3, 7)
	for i := 0; i < 60; i++ {
		m.Warmup(5)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after %ds: %v", (i+1)*5, err)
		}
	}
}

func TestInvariantsAcrossReconfiguration(t *testing.T) {
	m := newTestModel(t, tpcw.Ordering, 100, vmenv.Level1, 11)
	m.Warmup(60)
	p := m.Params()
	p.MaxClients = 50
	p.MaxThreads = 50
	if err := m.Configure(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Warmup(5)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after shrink, step %d: %v", i, err)
		}
	}
	p.MaxClients = 600
	p.MaxThreads = 600
	if err := m.Configure(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Warmup(5)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after grow, step %d: %v", i, err)
		}
	}
}

func TestConfigureRejectsInvalid(t *testing.T) {
	m := newTestModel(t, tpcw.Shopping, 10, vmenv.Level1, 1)
	p := m.Params()
	p.SessionTimeoutMin = 0
	if err := m.Configure(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSetWorkloadSwitchesMix(t *testing.T) {
	m := newTestModel(t, tpcw.Shopping, 50, vmenv.Level1, 3)
	m.Warmup(30)
	if err := m.SetWorkload(tpcw.Workload{Mix: tpcw.Ordering, Clients: 80}); err != nil {
		t.Fatal(err)
	}
	if m.Workload().Mix != tpcw.Ordering || m.Workload().Clients != 80 {
		t.Fatalf("workload = %v", m.Workload())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 {
		t.Fatal("no traffic after workload change")
	}
	if err := m.SetWorkload(tpcw.Workload{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestSetAppLevelTakesEffect(t *testing.T) {
	m := newTestModel(t, tpcw.Ordering, 150, vmenv.Level1, 5)
	if err := m.SetAppLevel(vmenv.Level3); err != nil {
		t.Fatal(err)
	}
	if m.AppLevel() != vmenv.Level3 {
		t.Fatal("level not applied")
	}
	if err := m.SetAppLevel(vmenv.Level{}); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestWeakerVMIsSlower(t *testing.T) {
	measure := func(level vmenv.Level) float64 {
		var total float64
		for seed := uint64(1); seed <= 3; seed++ {
			m := newTestModel(t, tpcw.Ordering, 400, level, seed)
			m.Warmup(120)
			st, err := m.Run(240)
			if err != nil {
				t.Fatal(err)
			}
			total += st.MeanRT
		}
		return total / 3
	}
	l1 := measure(vmenv.Level1)
	l3 := measure(vmenv.Level3)
	if l3 <= l1 {
		t.Fatalf("Level-3 (%v s) not slower than Level-1 (%v s)", l3, l1)
	}
}

func TestOrderingHeavierDownstream(t *testing.T) {
	// Ordering-dominated traffic must load the app/db VM markedly harder
	// than browsing-dominated traffic (the structural property behind paper
	// Fig. 1; the mixes' mean response times can sit close at light load, so
	// utilization is the robust discriminator).
	measure := func(mix tpcw.Mix) (rt, util float64) {
		for seed := uint64(1); seed <= 3; seed++ {
			m := newTestModel(t, mix, 800, vmenv.Level3, seed)
			m.Warmup(120)
			st, err := m.Run(300)
			if err != nil {
				t.Fatal(err)
			}
			rt += st.MeanRT / 3
			util += st.AppVMUtil / 3
		}
		return rt, util
	}
	oRT, oUtil := measure(tpcw.Ordering)
	bRT, bUtil := measure(tpcw.Browsing)
	if oUtil <= bUtil {
		t.Fatalf("ordering app/db utilization %v not above browsing %v", oUtil, bUtil)
	}
	if oRT < bRT*0.5 {
		t.Fatalf("ordering RT %v implausibly below browsing %v", oRT, bRT)
	}
}

func TestMoreClientsMoreThroughput(t *testing.T) {
	x := func(clients int) float64 {
		m := newTestModel(t, tpcw.Shopping, clients, vmenv.Level1, 17)
		m.Warmup(60)
		st, err := m.Run(120)
		if err != nil {
			t.Fatal(err)
		}
		return st.Throughput
	}
	if x50, x200 := x(50), x(200); x200 <= x50 {
		t.Fatalf("throughput did not scale: %v vs %v", x50, x200)
	}
}

func TestLowMaxClientsLimitsInFlight(t *testing.T) {
	p := DefaultParams()
	p.MaxClients = 50
	m, err := New(Options{
		Calibration: fastCal(),
		Params:      &p,
		Workload:    tpcw.Workload{Mix: tpcw.Ordering, Clients: 600},
		AppLevel:    vmenv.Level3,
		Seed:        23,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(120)
	st, err := m.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanInFlight > 50.5 {
		t.Fatalf("in-flight %v exceeds MaxClients 50", st.MeanInFlight)
	}
	if snap := m.Snapshot(); snap.InFlight > 50 {
		t.Fatalf("snapshot in-flight %d exceeds cap", snap.InFlight)
	}
}

func TestJammedSystemStillReportsSignal(t *testing.T) {
	// A pathological configuration must still produce a strong negative
	// signal (large response time), not a zero measurement.
	p := DefaultParams()
	p.MaxClients = 1
	p.MaxThreads = 1
	m, err := New(Options{
		Calibration: fastCal(),
		Params:      &p,
		Workload:    tpcw.Workload{Mix: tpcw.Ordering, Clients: 500},
		AppLevel:    vmenv.Level3,
		Seed:        29,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(60)
	st, err := m.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanRT < 1 {
		t.Fatalf("jammed system reported MeanRT %v", st.MeanRT)
	}
}

func TestSnapshotConsistentWithInvariants(t *testing.T) {
	m := newTestModel(t, tpcw.Shopping, 100, vmenv.Level2, 31)
	m.Warmup(90)
	snap := m.Snapshot()
	if snap.WebSpawned < 1 || snap.AppSpawned < 1 {
		t.Fatalf("pools empty: %+v", snap)
	}
	if snap.DBConns > DefaultCalibration().DBMaxConns {
		t.Fatalf("db connections %d over cap", snap.DBConns)
	}
	if snap.IdleConns > snap.Conns {
		t.Fatalf("idle %d > total conns %d", snap.IdleConns, snap.Conns)
	}
}

func TestParamsFromConfigRoundTrip(t *testing.T) {
	space := configDefault(t)
	cfg := space.DefaultConfig()
	p, err := ParamsFromConfig(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxClients != 150 || p.MaxThreads != 200 {
		t.Fatalf("params %+v", p)
	}
	if p.KeepAliveTimeoutSec != 15 {
		t.Fatalf("keepalive %v", p.KeepAliveTimeoutSec)
	}
}

func TestParamsValidateBounds(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.KeepAliveTimeoutSec = -1
	if bad.Validate() == nil {
		t.Fatal("negative keepalive accepted")
	}
	bad = p
	bad.MinSpareServers = -1
	if bad.Validate() == nil {
		t.Fatal("negative spare accepted")
	}
	bad = p
	bad.MaxThreads = 0
	if bad.Validate() == nil {
		t.Fatal("zero MaxThreads accepted")
	}
}

func TestAbandonmentBoundsJam(t *testing.T) {
	// A collapse-prone configuration (huge MaxClients on the weak VM) must
	// stay bounded by the browser timeout and keep invariants intact.
	p := DefaultParams()
	p.MaxClients = 600
	p.MaxThreads = 600
	m, err := New(Options{
		Calibration: fastCal(),
		Params:      &p,
		Workload:    tpcw.Workload{Mix: tpcw.Ordering, Clients: 1100},
		AppLevel:    vmenv.Level3,
		Seed:        41,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(200)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	timeout := DefaultCalibration().RequestTimeoutSec
	if st.MeanRT > timeout+1 {
		t.Fatalf("mean RT %v exceeds browser timeout %v", st.MeanRT, timeout)
	}
	if st.MeanRT < 2 {
		t.Fatalf("premise broken: MaxClients=600 at Level-3 should jam, got %v", st.MeanRT)
	}
	// Recovery: a sane configuration must drain the jam within a few
	// intervals.
	good := DefaultParams()
	good.MaxClients = 150
	if err := m.Configure(good); err != nil {
		t.Fatal(err)
	}
	m.Warmup(120)
	st2, err := m.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st2.MeanRT >= st.MeanRT {
		t.Fatalf("system did not recover: %v -> %v", st.MeanRT, st2.MeanRT)
	}
}

func TestPerClassBreakdown(t *testing.T) {
	m := newTestModel(t, tpcw.Ordering, 200, vmenv.Level1, 9)
	m.Warmup(60)
	st, err := m.Run(180)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerClass) == 0 {
		t.Fatal("no per-class stats")
	}
	total := 0
	for class, cs := range st.PerClass {
		if cs.Completed <= 0 || cs.MeanRT <= 0 {
			t.Fatalf("%v: %+v", class, cs)
		}
		total += cs.Completed
	}
	if total != st.Completed {
		t.Fatalf("per-class counts sum to %d, completed %d", total, st.Completed)
	}
	// Under the ordering mix, cart+buy must be a substantial share.
	orderShare := float64(st.PerClass[tpcw.ClassShoppingCart].Completed+
		st.PerClass[tpcw.ClassBuyConfirm].Completed) / float64(total)
	if orderShare < 0.35 || orderShare > 0.65 {
		t.Fatalf("ordering share %v, want ~0.5", orderShare)
	}
}
