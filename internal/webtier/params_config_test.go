package webtier

import (
	"testing"

	"github.com/rac-project/rac/internal/config"
)

// configDefault builds the Table 1 space for tests, failing fast on error.
func configDefault(t *testing.T) *config.Space {
	t.Helper()
	return config.Default()
}

func TestParamsFromConfigPartialSpace(t *testing.T) {
	// A reduced space tuning only MaxClients keeps other defaults.
	space, err := config.NewSpace([]config.Def{{
		Param: config.MaxClients, Name: "MaxClients", Tier: config.TierWeb,
		Group: config.GroupCapacity, Min: 50, Max: 600, Step: 50, Default: 150,
	}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Config{300}
	p, err := ParamsFromConfig(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxClients != 300 {
		t.Fatalf("MaxClients = %d", p.MaxClients)
	}
	def := DefaultParams()
	if p.MaxThreads != def.MaxThreads || p.SessionTimeoutMin != def.SessionTimeoutMin {
		t.Fatalf("defaults not preserved: %+v", p)
	}
}

func TestParamsFromConfigRejectsOffLattice(t *testing.T) {
	space := configDefault(t)
	cfg := space.DefaultConfig()
	cfg[0] = 47
	if _, err := ParamsFromConfig(space, cfg); err == nil {
		t.Fatal("off-lattice config accepted")
	}
}

func TestParamsFromConfigAllLatticePoints(t *testing.T) {
	// Every per-parameter extreme maps to valid Params.
	space := configDefault(t)
	base := space.DefaultConfig()
	for i, d := range space.Defs() {
		for _, v := range []int{d.Min, d.Max} {
			cfg := base.Clone()
			cfg[i] = v
			if _, err := ParamsFromConfig(space, cfg); err != nil {
				t.Fatalf("%s=%d: %v", d.Name, v, err)
			}
		}
	}
}

func TestCalibrationDefaultsSane(t *testing.T) {
	cal := DefaultCalibration()
	if cal.TickSeconds <= 0 || cal.TickSeconds > 0.2 {
		t.Fatalf("tick %v", cal.TickSeconds)
	}
	if cal.WebVCPUs < 1 || cal.WebMemMB <= 0 {
		t.Fatal("web VM unusable")
	}
	if cal.DBMaxConns < 1 {
		t.Fatal("no db connections")
	}
	if cal.ListenBacklog < 1 {
		t.Fatal("no listen backlog")
	}
	if cal.RetransmitMaxSec < cal.RetransmitBaseSec {
		t.Fatal("retransmit cap below base")
	}
	if cal.ThrashMax < 1 {
		t.Fatal("thrash ceiling below 1")
	}
	if cal.LongThinkProb < 0 || cal.LongThinkProb > 1 {
		t.Fatal("long-think probability out of range")
	}
}
