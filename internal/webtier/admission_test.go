package webtier

import (
	"testing"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// gatedModel builds a model with admission caps (and optionally the
// epoch-adaptive loop) on top of the Table 1 defaults.
func gatedModel(t *testing.T, clients, conc, queue, epoch int, seed uint64) *Model {
	t.Helper()
	p := DefaultParams()
	p.AdmitConcurrency = conc
	p.AdmitQueue = queue
	m, err := New(Options{
		Calibration: fastCal(),
		Params:      &p,
		Workload:    tpcw.Workload{Mix: tpcw.Shopping, Clients: clients},
		AppLevel:    vmenv.Level1,
		Seed:        seed,
		AdmitEpoch:  epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGateRejectsUnderTightCaps(t *testing.T) {
	m := gatedModel(t, 400, 20, 10, 0, 11)
	m.Warmup(30)
	st, err := m.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("tight gate under heavy load rejected nothing")
	}
	if st.Completed == 0 {
		t.Fatal("gated system completed nothing")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Per-class rejections account for every rejection.
	sum := 0
	for _, cs := range st.PerClass {
		sum += cs.Rejected
	}
	if sum != st.Rejected {
		t.Fatalf("per-class rejections sum to %d, total %d", sum, st.Rejected)
	}
	// Occupancy respects the gate capacity.
	if snap := m.Snapshot(); snap.GateHeld > 30 {
		t.Fatalf("gate held %d > capacity 30", snap.GateHeld)
	}
}

// TestGateWideOpenMatchesUngated pins the byte-identity contract: an enabled
// gate whose caps are never hit produces exactly the stats of the ungated
// (pre-gate) system, because the gate draws no randomness and touches no
// queue on the admit path.
func TestGateWideOpenMatchesUngated(t *testing.T) {
	run := func(conc, queue int) Stats {
		m := gatedModel(t, 150, conc, queue, 0, 42)
		m.Warmup(60)
		st, err := m.Run(120)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	gated, ungated := run(600, 600), run(0, 0)
	if gated.Rejected != 0 {
		t.Fatalf("wide-open gate rejected %d", gated.Rejected)
	}
	gated.Rejected, ungated.Rejected = 0, 0
	if gated.Completed != ungated.Completed || gated.MeanRT != ungated.MeanRT ||
		gated.P95RT != ungated.P95RT || gated.P99RT != ungated.P99RT ||
		gated.Throughput != ungated.Throughput || gated.Timeouts != ungated.Timeouts ||
		gated.Retransmits != ungated.Retransmits {
		t.Fatalf("wide-open gate diverged from ungated run:\n%+v\n%+v", gated, ungated)
	}
}

func TestGateEpochAdaptsUnderOverload(t *testing.T) {
	m := gatedModel(t, 600, 5, 2, 200, 13)
	m.Warmup(60)
	if _, err := m.Run(240); err != nil {
		t.Fatal(err)
	}
	scale, regime, epochs := m.AdmissionState()
	if epochs == 0 {
		t.Fatal("epoch loop never decided")
	}
	if scale >= 1 {
		t.Fatalf("sustained overload left scale at %g, want < 1", scale)
	}
	if regime.String() != "spread" {
		t.Fatalf("regime %v under sustained overload, want spread", regime)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGateDeterminism replays an epoch-adaptive overload run and requires
// identical stats, including the rejection counters: the epoch loop ticks on
// request counts, never wall clock.
func TestGateDeterminism(t *testing.T) {
	run := func() Stats {
		m := gatedModel(t, 300, 30, 15, 150, 99)
		m.Warmup(60)
		st, err := m.Run(180)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Rejected != b.Rejected || a.Completed != b.Completed ||
		a.MeanRT != b.MeanRT || a.P99RT != b.P99RT || a.Timeouts != b.Timeouts {
		t.Fatalf("same seed produced different gated stats:\n%+v\n%+v", a, b)
	}
	for class, cs := range a.PerClass {
		if b.PerClass[class] != cs {
			t.Fatalf("class %v stats differ: %+v vs %+v", class, cs, b.PerClass[class])
		}
	}
}

// TestGateReconfigurePreservesScale checks the agent's reconfiguration path:
// new caps apply, the epoch loop's learned scale survives.
func TestGateReconfigureAppliesNewCaps(t *testing.T) {
	m := gatedModel(t, 400, 20, 10, 200, 7)
	m.Warmup(120)
	scaleBefore, _, epochs := m.AdmissionState()
	if epochs == 0 {
		t.Fatal("no epoch decisions during warmup")
	}
	p := m.Params()
	p.AdmitConcurrency = 40
	p.AdmitQueue = 20
	if err := m.Configure(p); err != nil {
		t.Fatal(err)
	}
	scaleAfter, _, _ := m.AdmissionState()
	if scaleAfter != scaleBefore {
		t.Fatalf("reconfiguration reset the epoch scale: %g -> %g", scaleBefore, scaleAfter)
	}
	m.Warmup(30)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
