package webtier

// Calibration bundles the physical constants of the simulated testbed. The
// defaults are chosen so the paper's qualitative curves appear at the default
// workload sizes; they are exported so ablation benches can probe
// sensitivity, and EXPERIMENTS.md records the calibrated values used for the
// reported figures.
type Calibration struct {
	// TickSeconds is the simulation time slice.
	TickSeconds float64

	// Web VM (fixed allocation; the paper only reallocates the app/db VM).
	WebVCPUs int
	WebMemMB float64

	// Memory footprints, MB.
	WebBaseMemMB   float64 // OS + Apache parent
	WorkerMemMB    float64 // per Apache worker process
	ConnMemMB      float64 // per open keep-alive connection
	AppBaseMemMB   float64 // OS + JVM + MySQL code on the app/db VM
	ThreadMemMB    float64 // per Tomcat worker thread
	SessionMemMB   float64 // per live HTTP session
	DBConnMemMB    float64 // per active database connection
	DBRefCacheMB   float64 // buffer-cache size at which DB I/O factor is 1
	DBMinCacheMB   float64 // cache floor under memory pressure
	DBIOExponent   float64 // miss amplification: (ref/cache)^exponent
	ThrashExponent float64 // web-VM overcommit penalty exponent
	ThrashCoeff    float64
	ThrashMax      float64 // swap penalty ceiling (the OS starts refusing work)

	// CPU contention: efficiency = 1/(1 + lin*excess + quad*excess²) with
	// excess = max(0, runnable-vcpus). The quadratic term models scheduler
	// and cache-pressure collapse at extreme concurrency.
	CtxSwitchCoeff float64
	CtxSwitchQuad  float64

	// Disk subsystem of the app/db VM: concurrent I/O capacity in
	// I/O-seconds per second.
	DiskCapacity float64

	// Connection and session management costs, in reference-vCPU seconds.
	ConnectCostSec       float64 // TCP+TLS-less accept on a fresh connection
	SessionCreateCostSec float64 // building a new server-side session

	// Pool dynamics.
	WorkerSpawnPerSec float64 // Apache child-spawn rate cap
	WorkerReapPerSec  float64 // Apache kills at most one idle child per second
	ThreadSpawnPerSec float64
	ThreadReapPerSec  float64

	// Database concurrency cap (the paper keeps MySQL defaults;
	// max_connections defaults to 100).
	DBMaxConns int

	// Think-time model: a small fraction of thinks are long "walked away"
	// pauses, which is what makes low session timeouts costly.
	LongThinkProb    float64
	LongThinkMeanSec float64

	// ListenBacklog is the accept-queue depth. Fresh connections arriving
	// while the backlog is full are dropped and retransmitted with
	// exponential backoff — the classic latency cliff of an undersized
	// MaxClients. Requests reusing a keep-alive connection bypass the
	// backlog.
	ListenBacklog     int
	RetransmitBaseSec float64
	RetransmitMaxSec  float64

	// The app/db VM suffers periodic service stalls (JVM garbage collection,
	// MySQL checkpoints) during which it processes nothing. Stalls create the
	// admission bursts that MaxClients must absorb; their duration scales
	// inversely with the VM's CPU capacity.
	StallMeanIntervalSec float64
	StallBaseDurSec      float64 // duration at 4 vCPUs; scaled by 4/vcpus

	// RequestTimeoutSec is how long an emulated browser waits before
	// abandoning a request (TPC-W's web-interaction response-time limit).
	// Abandonment bounds the damage of pathological configurations and lets
	// a jammed system recover once reconfigured; an abandoned request is
	// recorded at the full timeout, a strong negative reward.
	RequestTimeoutSec float64
}

// DefaultCalibration returns the constants used for all reported figures.
func DefaultCalibration() Calibration {
	return Calibration{
		TickSeconds: 0.025,

		WebVCPUs: 1,
		WebMemMB: 1024,

		WebBaseMemMB:   256,
		WorkerMemMB:    3,
		ConnMemMB:      0.2,
		AppBaseMemMB:   700,
		ThreadMemMB:    1.2,
		SessionMemMB:   0.1,
		DBConnMemMB:    2,
		DBRefCacheMB:   1536,
		DBMinCacheMB:   192,
		DBIOExponent:   1.2,
		ThrashExponent: 1.5,
		ThrashCoeff:    3,
		ThrashMax:      3,

		CtxSwitchCoeff: 0.002,
		CtxSwitchQuad:  0.00002,

		DiskCapacity: 16,

		ConnectCostSec:       0.0020,
		SessionCreateCostSec: 0.0060,

		WorkerSpawnPerSec: 24,
		WorkerReapPerSec:  1,
		ThreadSpawnPerSec: 40,
		ThreadReapPerSec:  2,

		DBMaxConns: 100,

		LongThinkProb:    0.08,
		LongThinkMeanSec: 45,

		ListenBacklog:     64,
		RetransmitBaseSec: 3.0,
		RetransmitMaxSec:  8.0,

		StallMeanIntervalSec: 22,
		StallBaseDurSec:      2.2,

		RequestTimeoutSec: 30,
	}
}
