// Package webtier simulates the paper's testbed: a three-tier
// Apache/Tomcat/MySQL website deployed on two VMs (web tier on one, app and
// database tiers on the other), driven by a closed population of TPC-W
// emulated browsers.
//
// The simulation is time-sliced: each tick, admitted requests share the CPU
// of the VM hosting their current stage (with a context-switching efficiency
// loss at high concurrency), database work splits into a CPU part and a disk
// part whose size depends on how much memory is left for the buffer cache,
// and worker/thread pools grow and shrink with the spare-pool rules of
// Apache prefork and Tomcat. These mechanisms jointly reproduce the
// qualitative response-time surface of the paper: every parameter has a
// concave-upward effect (paper Fig. 4), the surface shifts with the traffic
// mix (Fig. 1) and with the VM allocation (Figs. 2-3), and the optimal
// MaxClients falls as the VM gets stronger (§2.2).
package webtier

import (
	"fmt"

	"github.com/rac-project/rac/internal/config"
)

// Params are the eight tunable knobs of paper Table 1 in natural units.
type Params struct {
	// Web tier (Apache).
	MaxClients          int     // concurrent in-flight request cap
	KeepAliveTimeoutSec float64 // how long an idle connection is kept open
	MinSpareServers     int
	MaxSpareServers     int

	// Application tier (Tomcat).
	MaxThreads        int
	SessionTimeoutMin float64 // server-side session expiry, minutes
	MinSpareThreads   int
	MaxSpareThreads   int

	// SLO admission gate in front of the web tier. Both zero (the default)
	// disables the gate entirely — the pre-gate system, byte for byte.
	AdmitConcurrency int // concurrent requests admitted past the gate
	AdmitQueue       int // admitted-but-waiting queue depth
}

// ParamsFromConfig maps a configuration vector over the given space into
// natural-unit parameters. Missing parameters keep the Table 1 defaults, so
// reduced spaces (single-parameter experiments) also work.
func ParamsFromConfig(s *config.Space, c config.Config) (Params, error) {
	if err := s.Validate(c); err != nil {
		return Params{}, err
	}
	p := DefaultParams()
	set := func(param config.Param, dst func(int)) {
		if v, ok := c.Get(s, param); ok {
			dst(v)
		}
	}
	set(config.MaxClients, func(v int) { p.MaxClients = v })
	set(config.KeepAliveTimeout, func(v int) { p.KeepAliveTimeoutSec = float64(v) })
	set(config.MinSpareServers, func(v int) { p.MinSpareServers = v })
	set(config.MaxSpareServers, func(v int) { p.MaxSpareServers = v })
	set(config.MaxThreads, func(v int) { p.MaxThreads = v })
	set(config.SessionTimeout, func(v int) { p.SessionTimeoutMin = float64(v) })
	set(config.MinSpareThreads, func(v int) { p.MinSpareThreads = v })
	set(config.MaxSpareThreads, func(v int) { p.MaxSpareThreads = v })
	set(config.AdmitConcurrency, func(v int) { p.AdmitConcurrency = v })
	set(config.AdmitQueue, func(v int) { p.AdmitQueue = v })
	return p, p.Validate()
}

// DefaultParams returns the Table 1 default configuration in natural units.
func DefaultParams() Params {
	return Params{
		MaxClients:          150,
		KeepAliveTimeoutSec: 15,
		MinSpareServers:     5,
		MaxSpareServers:     15,
		MaxThreads:          200,
		SessionTimeoutMin:   30,
		MinSpareThreads:     5,
		MaxSpareThreads:     50,
	}
}

// Validate checks the parameters are individually sane.
func (p Params) Validate() error {
	if p.MaxClients < 1 {
		return fmt.Errorf("webtier: MaxClients %d < 1", p.MaxClients)
	}
	if p.KeepAliveTimeoutSec < 0 {
		return fmt.Errorf("webtier: negative KeepAliveTimeout %v", p.KeepAliveTimeoutSec)
	}
	if p.MinSpareServers < 0 || p.MaxSpareServers < 0 {
		return fmt.Errorf("webtier: negative spare-server bound")
	}
	if p.MaxThreads < 1 {
		return fmt.Errorf("webtier: MaxThreads %d < 1", p.MaxThreads)
	}
	if p.SessionTimeoutMin <= 0 {
		return fmt.Errorf("webtier: SessionTimeout %v <= 0", p.SessionTimeoutMin)
	}
	if p.MinSpareThreads < 0 || p.MaxSpareThreads < 0 {
		return fmt.Errorf("webtier: negative spare-thread bound")
	}
	if p.AdmitConcurrency < 0 || p.AdmitQueue < 0 {
		return fmt.Errorf("webtier: negative admission cap")
	}
	return nil
}
