package webtier

import (
	"errors"
	"fmt"
	"math"

	"github.com/rac-project/rac/internal/admission"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/stats"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// phase is the position of an in-flight request in the pipeline. A request
// holds its web worker for its whole residence (the web tier proxies and
// blocks), its app thread from app admission until the database responds, and
// a database connection during both database phases.
type phase int

const (
	phaseNone    phase = iota
	phaseWebWait       // queued for admission (MaxClients / worker pool)
	phaseWeb           // consuming web-VM CPU
	phaseAppWait       // queued for a Tomcat thread (MaxThreads / pool)
	phaseApp           // consuming app/db-VM CPU
	phaseDBWait        // queued for a database connection
	phaseDBCPU         // consuming app/db-VM CPU inside MySQL
	phaseDBIO          // waiting on disk I/O
)

// clientMode is what an emulated browser is currently doing.
type clientMode int

const (
	modeThinking clientMode = iota + 1
	modeInFlight
)

type client struct {
	mode       clientMode
	thinkUntil float64

	// Open keep-alive connection, if any.
	hasConn     bool
	connExpires float64

	// Server-side session state.
	hasSession     bool
	sessionExpires float64

	// Current request.
	phase     phase
	remaining float64
	webWork   float64
	appWork   float64
	dbCPUWork float64
	dbIOWork  float64
	started   float64
	class     tpcw.Class

	// SYN-retransmit state for requests bounced off a full listen backlog.
	retryPending bool
	retries      int
}

// Stats summarize one measurement interval of the simulated system.
type Stats struct {
	// Interval is the measured virtual duration in seconds.
	Interval float64
	// Completed is the number of requests that finished in the interval.
	Completed int
	// MeanRT, P95RT, P99RT are response-time statistics in seconds.
	MeanRT float64
	P95RT  float64
	P99RT  float64
	// Throughput is completed requests per second.
	Throughput float64
	// MeanInFlight is the time-averaged number of admitted requests.
	MeanInFlight float64
	// MeanWaiting is the time-averaged admission-queue length.
	MeanWaiting float64
	// AppVMUtil is the time-averaged CPU utilization of the app/db VM.
	AppVMUtil float64
	// WebWorkers and AppThreads are time-averaged pool sizes.
	WebWorkers float64
	AppThreads float64
	// IOFactor is the time-averaged DB cache miss amplification.
	IOFactor float64
	// Retransmits counts connection attempts bounced off a full backlog.
	Retransmits int
	// Timeouts counts requests abandoned at the browser timeout.
	Timeouts int
	// GoodCompleted counts completions within the SLO threshold given at
	// construction (Options.SLOSeconds) — the numerator of SLO-goodput. When
	// no threshold was set it equals Completed.
	GoodCompleted int
	// Rejected counts arrivals fast-rejected (503) by the admission gate.
	// Rejections are not response-time samples: the gate's point is to keep
	// excess arrivals off the latency books.
	Rejected int
	// Arrivals counts requests reaching the admission decision (admitted +
	// rejected). Retransmit bounces and retry-timeout giveups never reach the
	// gate and are excluded, so Arrivals − Completed − Rejected trends the
	// in-system backlog: the offered-vs-completed signal saturation analysis
	// keys on.
	Arrivals int
	// PerClass breaks completed-request response times down by interaction
	// class (TPC-W reports per-interaction WIRT compliance).
	PerClass map[tpcw.Class]ClassStats
}

// ClassStats summarizes one interaction class within an interval.
type ClassStats struct {
	Completed int
	MeanRT    float64
	Rejected  int
}

// Model is the simulated three-tier website. It is not safe for concurrent
// use; drive it from a single goroutine.
type Model struct {
	cal      Calibration
	params   Params
	workload tpcw.Workload
	gen      *tpcw.Generator
	rng      *sim.RNG

	appVM *vmenv.VM
	now   float64

	// SLO admission gate in front of the web tier. gateHeld counts requests
	// admitted past the gate and still resident (every modeInFlight client,
	// queued or in service); the epoch loop inside the controller ticks on
	// request counts, so replays stay byte-identical at any -procs setting.
	gate     *admission.Controller
	gateHeld int

	// slo is the GoodCompleted threshold (Options.SLOSeconds; 0 = none).
	slo float64

	// Stall process of the app/db VM (GC / checkpoint pauses).
	stallUntil float64
	nextStall  float64

	clients []client

	// FIFO queues of client indices.
	webQueue queue
	appQueue queue
	dbQueue  queue

	// Pool state.
	webSpawned  int
	appSpawned  int
	webSpawnCr  float64
	webReapCr   float64
	appSpawnCr  float64
	appReapCr   float64
	deadSession fifoExpiry

	// Derived counters, maintained incrementally (see CheckInvariants).
	inFlight  int // requests holding a web worker slot
	webActive int // requests in phaseWeb
	appActive int // requests in phaseApp
	dbCPU     int // requests in phaseDBCPU
	dbIO      int // requests in phaseDBIO
	threads   int // busy Tomcat threads: phaseApp..phaseDBIO + dbQueue
	dbConns   int // busy DB connections: phaseDBCPU + phaseDBIO
	conns     int // open keep-alive connections (idle + in-flight)
	idleConns int // open connections of thinking/queued clients

	// Measurement accumulators.
	recording  bool
	retransmit int
	timeouts   int
	rejected   int
	arrivals   int
	rts        []float64
	classRT    map[tpcw.Class]*stats.Running
	classRej   map[tpcw.Class]int
	recStart   float64
	gInFlight  float64
	gWaiting   float64
	gUtil      float64
	gWorkers   float64
	gThreads   float64
	gIOFactor  float64
	gaugeTicks int
}

// Options configure a new Model.
type Options struct {
	// Calibration defaults to DefaultCalibration when zero-valued.
	Calibration *Calibration
	// Params defaults to DefaultParams when nil.
	Params *Params
	// Workload is required.
	Workload tpcw.Workload
	// AppLevel is the initial allocation of the app/db VM; defaults to
	// Level-1.
	AppLevel vmenv.Level
	// Seed drives all randomness.
	Seed uint64
	// AdmitEpoch enables the gate's epoch-adaptive loop with the given epoch
	// size in requests (0 disables adaptation: the configured caps apply
	// unscaled). Only meaningful when the Params enable the gate.
	AdmitEpoch int
	// SLOSeconds, when positive, makes Stats.GoodCompleted count only the
	// completions at or under this response time. Pure accounting: it never
	// changes the simulation itself.
	SLOSeconds float64
}

// New builds a simulated website.
func New(opts Options) (*Model, error) {
	cal := DefaultCalibration()
	if opts.Calibration != nil {
		cal = *opts.Calibration
	}
	if cal.TickSeconds <= 0 {
		return nil, fmt.Errorf("webtier: non-positive tick %v", cal.TickSeconds)
	}
	params := DefaultParams()
	if opts.Params != nil {
		params = *opts.Params
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Workload.Validate(); err != nil {
		return nil, err
	}
	level := opts.AppLevel
	if !level.Valid() {
		level = vmenv.Level1
	}
	appVM, err := vmenv.NewVM("appdb", level)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(opts.Seed)
	gen, err := tpcw.NewGenerator(opts.Workload.Mix, rng.Split())
	if err != nil {
		return nil, err
	}
	epoch := admission.EpochConfig{}
	if opts.AdmitEpoch > 0 {
		epoch = admission.EpochWith(opts.AdmitEpoch)
	}
	gate, err := admission.NewController(admission.Params{
		MaxConcurrent: params.AdmitConcurrency,
		MaxQueue:      params.AdmitQueue,
	}, epoch)
	if err != nil {
		return nil, err
	}
	m := &Model{
		cal:      cal,
		params:   params,
		workload: opts.Workload,
		gen:      gen,
		rng:      rng,
		appVM:    appVM,
		gate:     gate,
		slo:      opts.SLOSeconds,
	}
	m.resetPopulation()
	return m, nil
}

// resetPopulation rebuilds the browser population from scratch: all clients
// thinking with staggered timers, pools at their spare minimums, queues
// empty. Used at construction and when the workload changes.
func (m *Model) resetPopulation() {
	m.clients = make([]client, m.workload.Clients)
	for i := range m.clients {
		m.clients[i] = client{
			mode:       modeThinking,
			thinkUntil: m.now + m.rng.ExpFloat64(tpcw.MeanThinkTimeSeconds),
		}
	}
	m.webQueue.reset()
	m.appQueue.reset()
	m.dbQueue.reset()
	m.deadSession.reset()
	m.inFlight, m.webActive, m.appActive, m.dbCPU, m.dbIO = 0, 0, 0, 0, 0
	m.threads, m.dbConns, m.conns, m.idleConns = 0, 0, 0, 0
	// The abrupt restart drops every resident request; the gate's learned
	// scale survives — it is the epoch loop's short-term memory.
	m.gateHeld = 0
	m.webSpawned = clampInt(m.params.MinSpareServers, 1, m.params.MaxClients)
	m.appSpawned = clampInt(m.params.MinSpareThreads, 1, m.params.MaxThreads)
	m.webSpawnCr, m.webReapCr, m.appSpawnCr, m.appReapCr = 0, 0, 0, 0
	m.stallUntil = m.now
	m.nextStall = m.now + m.rng.ExpFloat64(m.cal.StallMeanIntervalSec)
}

// Params returns the current configuration.
func (m *Model) Params() Params { return m.params }

// Workload returns the current workload.
func (m *Model) Workload() tpcw.Workload { return m.workload }

// AppLevel returns the current app/db VM allocation.
func (m *Model) AppLevel() vmenv.Level { return m.appVM.Level() }

// Now returns the virtual time in seconds since construction.
func (m *Model) Now() float64 { return m.now }

// Configure applies a new configuration to the running system. Pools shrink
// gracefully: spawned workers above the new cap are reaped down to the busy
// count immediately (a graceful restart), the rest adjust via pool dynamics.
func (m *Model) Configure(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.params = p
	if m.webSpawned > p.MaxClients {
		m.webSpawned = maxInt(m.webBusy(), p.MaxClients)
	}
	if m.appSpawned > p.MaxThreads {
		m.appSpawned = maxInt(m.threads, p.MaxThreads)
	}
	// The gate picks up the new caps for subsequent arrivals; the epoch
	// loop's scale and counters ride across the reconfiguration.
	return m.gate.SetParams(admission.Params{
		MaxConcurrent: p.AdmitConcurrency,
		MaxQueue:      p.AdmitQueue,
	})
}

// SetWorkload replaces the traffic: mix and/or population size. The browser
// population restarts (in-flight requests are abandoned), modelling an abrupt
// traffic change.
func (m *Model) SetWorkload(w tpcw.Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if w.Mix != m.workload.Mix {
		gen, err := tpcw.NewGenerator(w.Mix, m.rng.Split())
		if err != nil {
			return err
		}
		m.gen = gen
	}
	m.workload = w
	m.resetPopulation()
	return nil
}

// SetAppLevel reallocates the app/db VM. In-flight work continues at the new
// capacity from the next tick, like a Xen credit/balloon adjustment.
func (m *Model) SetAppLevel(level vmenv.Level) error {
	return m.appVM.Reallocate(level)
}

// Run advances the simulation by the given virtual duration and returns the
// interval statistics.
func (m *Model) Run(seconds float64) (Stats, error) {
	if seconds <= 0 {
		return Stats{}, errors.New("webtier: non-positive run duration")
	}
	m.startRecording()
	ticks := int(math.Ceil(seconds / m.cal.TickSeconds))
	for i := 0; i < ticks; i++ {
		m.tick()
	}
	return m.stopRecording(), nil
}

// Warmup advances the simulation without recording, letting pools, sessions
// and queues reach steady state.
func (m *Model) Warmup(seconds float64) {
	if seconds <= 0 {
		return
	}
	ticks := int(math.Ceil(seconds / m.cal.TickSeconds))
	for i := 0; i < ticks; i++ {
		m.tick()
	}
}

func (m *Model) startRecording() {
	m.recording = true
	m.retransmit = 0
	m.timeouts = 0
	m.rejected = 0
	m.arrivals = 0
	m.rts = m.rts[:0]
	m.classRT = make(map[tpcw.Class]*stats.Running)
	m.classRej = make(map[tpcw.Class]int)
	m.recStart = m.now
	m.gInFlight, m.gWaiting, m.gUtil = 0, 0, 0
	m.gWorkers, m.gThreads, m.gIOFactor = 0, 0, 0
	m.gaugeTicks = 0
}

func (m *Model) stopRecording() Stats {
	m.recording = false
	interval := m.now - m.recStart
	s := Stats{
		Interval:    interval,
		Completed:   len(m.rts),
		Retransmits: m.retransmit,
		Timeouts:    m.timeouts,
		Rejected:    m.rejected,
		Arrivals:    m.arrivals,
	}
	if len(m.classRT) > 0 || len(m.classRej) > 0 {
		s.PerClass = make(map[tpcw.Class]ClassStats, len(m.classRT)+len(m.classRej))
		for class, run := range m.classRT {
			s.PerClass[class] = ClassStats{Completed: run.Count(), MeanRT: run.Mean()}
		}
		for class, n := range m.classRej {
			cs := s.PerClass[class]
			cs.Rejected = n
			s.PerClass[class] = cs
		}
	}
	s.GoodCompleted = s.Completed
	if m.slo > 0 {
		s.GoodCompleted = 0
		for _, rt := range m.rts {
			if rt <= m.slo {
				s.GoodCompleted++
			}
		}
	}
	if len(m.rts) > 0 {
		sum := stats.Summarize(m.rts)
		s.MeanRT = sum.Mean
		s.P95RT = sum.P95
		s.P99RT = sum.P99
	} else {
		// No completions: the system is jammed. Report the age of the oldest
		// in-flight request as a pessimistic response-time stand-in so the
		// agent still receives a strong negative signal.
		oldest := 0.0
		for i := range m.clients {
			c := &m.clients[i]
			if c.mode == modeInFlight {
				if age := m.now - c.started; age > oldest {
					oldest = age
				}
			}
		}
		s.MeanRT = math.Max(oldest, interval)
		s.P95RT = s.MeanRT
		s.P99RT = s.MeanRT
	}
	if interval > 0 {
		s.Throughput = float64(len(m.rts)) / interval
	}
	if m.gaugeTicks > 0 {
		n := float64(m.gaugeTicks)
		s.MeanInFlight = m.gInFlight / n
		s.MeanWaiting = m.gWaiting / n
		s.AppVMUtil = m.gUtil / n
		s.WebWorkers = m.gWorkers / n
		s.AppThreads = m.gThreads / n
		s.IOFactor = m.gIOFactor / n
	}
	return s
}

// tick advances the simulation by one time slice.
func (m *Model) tick() {
	dt := m.cal.TickSeconds
	t := m.now

	// 1. Expire idle keep-alive connections (freeing their workers).
	for i := range m.clients {
		c := &m.clients[i]
		if c.mode == modeThinking && c.hasConn && c.connExpires <= t {
			c.hasConn = false
			m.conns--
			m.idleConns--
		}
	}

	// 2. Abandon requests older than the browser timeout, then issue new
	// requests for clients whose think time elapsed.
	if m.cal.RequestTimeoutSec > 0 {
		for i := range m.clients {
			c := &m.clients[i]
			if c.mode == modeInFlight && t-c.started >= m.cal.RequestTimeoutSec {
				m.abandonRequest(i, t)
			}
		}
	}
	for i := range m.clients {
		c := &m.clients[i]
		if c.mode != modeThinking || c.thinkUntil > t {
			continue
		}
		m.issueRequest(i, t)
	}

	// 3. Pool dynamics.
	m.adjustPools(dt)

	// 4. Admissions, upstream first so freed capacity is reused this tick.
	m.admitDB()
	m.admitApp()
	m.admitWeb()

	// 5. CPU and disk processing.
	ioFactor := m.dbIOFactor()
	m.process(dt, t, ioFactor)

	// 6. Gauges.
	if m.recording {
		m.gInFlight += float64(m.inFlight)
		m.gWaiting += float64(m.webQueue.len())
		m.gUtil += m.appVMUtilNow()
		m.gWorkers += float64(m.webSpawned)
		m.gThreads += float64(m.appSpawned)
		m.gIOFactor += ioFactor
		m.gaugeTicks++
	}

	m.deadSession.prune(t)
	m.now = t + dt
}

// issueRequest turns a thinking client into a queued request, or bounces it
// off a full listen backlog with a retransmit delay when the client has no
// established connection.
func (m *Model) issueRequest(i int, t float64) {
	c := &m.clients[i]
	if !c.retryPending {
		class := m.gen.NextClass()
		demand := m.gen.RequestDemand(class)

		c.webWork = demand.Web
		if !c.hasConn {
			c.webWork += m.cal.ConnectCostSec
		}
		c.appWork = demand.App
		if !c.hasSession || c.sessionExpires <= t {
			c.appWork += m.cal.SessionCreateCostSec
			c.hasSession = false
		}
		c.dbCPUWork = demand.DB
		c.dbIOWork = demand.IO
		c.started = t
		c.class = class
		c.retries = 0
	}

	// A retrying browser gives up once the request is older than the
	// timeout, like its in-flight counterparts.
	if c.retryPending && m.cal.RequestTimeoutSec > 0 && t-c.started >= m.cal.RequestTimeoutSec {
		if m.recording {
			m.rts = append(m.rts, t-c.started)
			m.recordClass(c.class, t-c.started)
			m.timeouts++
		}
		c.retryPending = false
		c.retries = 0
		c.thinkUntil = t + m.rng.ExpFloat64(tpcw.MeanThinkTimeSeconds)
		return
	}

	// A fresh connection must pass the accept queue; an established
	// keep-alive connection is already past it.
	if !c.hasConn && m.webQueue.len() >= m.cal.ListenBacklog {
		delay := m.cal.RetransmitBaseSec * float64(int(1)<<uint(minInt(c.retries, 10)))
		if delay > m.cal.RetransmitMaxSec {
			delay = m.cal.RetransmitMaxSec
		}
		c.retries++
		c.retryPending = true
		c.thinkUntil = t + delay
		if m.recording {
			m.retransmit++
		}
		return
	}

	// SLO admission gate: a fast 503 on the accepted connection, before the
	// request touches the web tier's queue or workers. The rejected browser
	// thinks again; its response time is deliberately not recorded — the
	// gate's job is to keep excess arrivals off the latency books, and
	// Stats.Rejected carries the separate truth.
	if !m.gate.Admit(m.gateHeld, 0, c.class) {
		m.gate.Observe(true)
		if m.recording {
			m.arrivals++
			m.rejected++
			m.classRej[c.class]++
		}
		c.retryPending = false
		c.retries = 0
		c.thinkUntil = t + m.rng.ExpFloat64(tpcw.MeanThinkTimeSeconds)
		return
	}
	m.gate.Observe(false)
	m.gateHeld++
	if m.recording {
		m.arrivals++
	}

	c.retryPending = false
	c.mode = modeInFlight
	c.phase = phaseWebWait
	c.remaining = c.webWork
	m.webQueue.push(i)
}

// admitWeb moves queued requests into web service, bounded by MaxClients and
// the spawned worker pool.
// webBusy returns the number of occupied request workers. Keep-alive
// connections are handled by the event loop (Apache event-MPM style), so only
// in-flight requests occupy workers; idle connections cost memory.
func (m *Model) webBusy() int { return m.inFlight }

func (m *Model) admitWeb() {
	for m.webQueue.len() > 0 && m.webBusy() < m.params.MaxClients && m.webSpawned > m.webBusy() {
		i := m.webQueue.pop()
		c := &m.clients[i]
		if c.mode != modeInFlight || c.phase != phaseWebWait {
			continue // stale entry: the request was abandoned
		}
		c.phase = phaseWeb
		m.inFlight++
		m.webActive++
		if c.hasConn {
			m.idleConns-- // the connection goes active
		} else {
			c.hasConn = true
			m.conns++
		}
		// The connection stays fresh while the request is in flight.
		c.connExpires = math.Inf(1)
	}
}

// admitApp moves requests from the app queue onto Tomcat threads.
func (m *Model) admitApp() {
	for m.appQueue.len() > 0 && m.threads < m.params.MaxThreads && m.appSpawned > m.threads {
		i := m.appQueue.pop()
		c := &m.clients[i]
		if c.mode != modeInFlight || c.phase != phaseAppWait {
			continue // stale entry: the request was abandoned
		}
		c.phase = phaseApp
		c.remaining = c.appWork
		m.threads++
		m.appActive++
	}
}

// admitDB moves requests from the DB queue onto database connections.
func (m *Model) admitDB() {
	for m.dbQueue.len() > 0 && m.dbConns < m.cal.DBMaxConns {
		i := m.dbQueue.pop()
		c := &m.clients[i]
		if c.mode != modeInFlight || c.phase != phaseDBWait {
			continue // stale entry: the request was abandoned
		}
		c.phase = phaseDBCPU
		c.remaining = c.dbCPUWork
		m.dbConns++
		m.dbCPU++
	}
}

// adjustPools applies Apache/Tomcat spare-pool rules.
func (m *Model) adjustPools(dt float64) {
	// Web workers.
	idle := m.webSpawned - m.webBusy()
	switch {
	case idle < m.params.MinSpareServers && m.webSpawned < m.params.MaxClients:
		m.webSpawnCr += m.cal.WorkerSpawnPerSec * dt
		n := int(m.webSpawnCr)
		if n > 0 {
			m.webSpawnCr -= float64(n)
			m.webSpawned = minInt(m.webSpawned+n, m.params.MaxClients)
		}
		m.webReapCr = 0
	case idle > m.params.MaxSpareServers:
		m.webReapCr += m.cal.WorkerReapPerSec * dt
		n := int(m.webReapCr)
		if n > 0 {
			m.webReapCr -= float64(n)
			m.webSpawned = maxInt(m.webSpawned-n, maxInt(m.webBusy(), 1))
		}
		m.webSpawnCr = 0
	default:
		m.webSpawnCr, m.webReapCr = 0, 0
	}

	// App threads.
	idleT := m.appSpawned - m.threads
	switch {
	case idleT < m.params.MinSpareThreads && m.appSpawned < m.params.MaxThreads:
		m.appSpawnCr += m.cal.ThreadSpawnPerSec * dt
		n := int(m.appSpawnCr)
		if n > 0 {
			m.appSpawnCr -= float64(n)
			m.appSpawned = minInt(m.appSpawned+n, m.params.MaxThreads)
		}
		m.appReapCr = 0
	case idleT > m.params.MaxSpareThreads:
		m.appReapCr += m.cal.ThreadReapPerSec * dt
		n := int(m.appReapCr)
		if n > 0 {
			m.appReapCr -= float64(n)
			m.appSpawned = maxInt(m.appSpawned-n, maxInt(m.threads, 1))
		}
		m.appSpawnCr = 0
	default:
		m.appSpawnCr, m.appReapCr = 0, 0
	}
}

// liveSessions counts server-side session objects: sessions of current
// clients that have not expired plus abandoned sessions still within their
// timeout.
func (m *Model) liveSessions() int {
	n := m.deadSession.len()
	for i := range m.clients {
		c := &m.clients[i]
		if c.hasSession && c.sessionExpires > m.now {
			n++
		}
	}
	return n
}

// appVMMemUsedMB returns the committed memory on the app/db VM outside the
// database buffer cache.
func (m *Model) appVMMemUsedMB() float64 {
	return m.cal.AppBaseMemMB +
		m.cal.ThreadMemMB*float64(m.appSpawned) +
		m.cal.SessionMemMB*float64(m.liveSessions()) +
		m.cal.DBConnMemMB*float64(m.dbConns)
}

// dbIOFactor returns the current cache-miss amplification: the leaner the
// remaining buffer cache, the more physical I/O each query performs.
func (m *Model) dbIOFactor() float64 {
	cache := float64(m.appVM.Level().MemoryMB) - m.appVMMemUsedMB()
	if cache < m.cal.DBMinCacheMB {
		cache = m.cal.DBMinCacheMB
	}
	return math.Pow(m.cal.DBRefCacheMB/cache, m.cal.DBIOExponent)
}

// webThrash returns the web-VM memory overcommit penalty multiplier.
func (m *Model) webThrash() float64 {
	used := m.cal.WebBaseMemMB +
		m.cal.WorkerMemMB*float64(m.webSpawned) +
		m.cal.ConnMemMB*float64(m.conns)
	over := used/m.cal.WebMemMB - 1
	if over <= 0 {
		return 1
	}
	thrash := 1 + m.cal.ThrashCoeff*math.Pow(over, m.cal.ThrashExponent)
	if m.cal.ThrashMax > 1 && thrash > m.cal.ThrashMax {
		thrash = m.cal.ThrashMax
	}
	return thrash
}

// efficiency returns the scheduling efficiency of a VM running n runnable
// jobs on the given core count.
func (m *Model) efficiency(active, vcpus int) float64 {
	excess := float64(active - vcpus)
	if excess <= 0 {
		return 1
	}
	return 1 / (1 + m.cal.CtxSwitchCoeff*excess + m.cal.CtxSwitchQuad*excess*excess)
}

// appVMUtilNow estimates instantaneous app/db VM CPU utilization.
func (m *Model) appVMUtilNow() float64 {
	active := m.appActive + m.dbCPU
	if active == 0 {
		return 0
	}
	cap2 := m.appVM.Level().CPUCapacity()
	used := math.Min(float64(active), cap2)
	return used / cap2
}

// process advances every in-service request by one tick of CPU or disk.
func (m *Model) process(dt, t, ioFactor float64) {
	// Per-job processing rates, computed from tick-start occupancies. A job
	// can use at most one core.
	var webRate, appRate, ioRate float64
	if m.webActive > 0 {
		// The web tier (event-driven static serving) degrades only linearly
		// with concurrency; the quadratic collapse term applies to the
		// app/db VM, whose resources the experiments vary.
		excess := float64(m.webActive - m.cal.WebVCPUs)
		eff := 1.0
		if excess > 0 {
			eff = 1 / (1 + m.cal.CtxSwitchCoeff*excess)
		}
		cap1 := float64(m.cal.WebVCPUs) * eff / m.webThrash()
		webRate = math.Min(1, cap1/float64(m.webActive))
	}
	vm2Active := m.appActive + m.dbCPU
	if vm2Active > 0 {
		level := m.appVM.Level()
		cap2 := level.CPUCapacity() * m.efficiency(vm2Active, level.VCPUs)
		appRate = math.Min(1, cap2/float64(vm2Active))
	}
	if m.dbIO > 0 {
		ioRate = math.Min(1, m.cal.DiskCapacity/float64(m.dbIO))
	}

	// GC / checkpoint stalls freeze the app/db VM. Durations scale with VM
	// weakness and are clipped at three times their mean so a single unlucky
	// draw cannot jam the whole measurement interval.
	if t < m.stallUntil {
		appRate, ioRate = 0, 0
	} else if t >= m.nextStall {
		level := m.appVM.Level()
		dur := m.cal.StallBaseDurSec * 4 / level.CPUCapacity()
		draw := math.Min(m.rng.ExpFloat64(dur), 3*dur)
		m.stallUntil = t + draw
		m.nextStall = m.stallUntil + m.rng.ExpFloat64(m.cal.StallMeanIntervalSec)
		appRate, ioRate = 0, 0
	}

	for i := range m.clients {
		c := &m.clients[i]
		if c.mode != modeInFlight {
			continue
		}
		switch c.phase {
		case phaseWeb:
			c.remaining -= webRate * dt
			if c.remaining <= 0 {
				c.phase = phaseAppWait
				m.webActive--
				m.appQueue.push(i)
			}
		case phaseApp:
			c.remaining -= appRate * dt
			if c.remaining <= 0 {
				c.phase = phaseDBWait
				m.appActive--
				m.dbQueue.push(i)
			}
		case phaseDBCPU:
			c.remaining -= appRate * dt
			if c.remaining <= 0 {
				c.phase = phaseDBIO
				c.remaining = c.dbIOWork * ioFactor
				m.dbCPU--
				m.dbIO++
			}
		case phaseDBIO:
			c.remaining -= ioRate * dt
			if c.remaining <= 0 {
				m.completeRequest(i, t+dt)
			}
		}
	}
}

// completeRequest finishes the request of client i at time t.
func (m *Model) completeRequest(i int, t float64) {
	c := &m.clients[i]
	if m.recording {
		m.rts = append(m.rts, t-c.started)
		m.recordClass(c.class, t-c.started)
	}
	// Release resources.
	m.dbIO--
	m.dbConns--
	m.threads--
	m.inFlight--
	m.gateHeld--

	// Session bookkeeping: the interaction refreshes the session.
	timeout := m.params.SessionTimeoutMin * 60
	c.hasSession = true
	c.sessionExpires = t + timeout

	c.mode = modeThinking
	c.phase = phaseNone

	if m.gen.SessionOver() {
		// The user leaves: the connection closes, the abandoned session
		// lingers server-side until its timeout, and the client re-enters as
		// a fresh user after a long pause.
		if c.hasConn {
			c.hasConn = false
			m.conns--
		}
		c.hasSession = false
		m.deadSession.push(t + timeout)
		c.thinkUntil = t + m.rng.ExpFloat64(m.cal.LongThinkMeanSec)
		return
	}

	// Keep-alive: the connection stays open (holding its worker) for the
	// timeout.
	m.idleConns++
	c.connExpires = t + m.params.KeepAliveTimeoutSec
	think := m.gen.ThinkTime()
	if m.rng.Bool(m.cal.LongThinkProb) {
		think = m.rng.ExpFloat64(m.cal.LongThinkMeanSec)
	}
	c.thinkUntil = t + think
}

// abandonRequest gives up on client i's in-flight request at time t: all
// held resources are released, the response time is recorded at the timeout,
// and the frustrated user closes the connection and thinks again.
func (m *Model) abandonRequest(i int, t float64) {
	c := &m.clients[i]
	switch c.phase {
	case phaseWebWait:
		// Not yet admitted: only the (lazily skipped) queue entry is held.
	case phaseWeb:
		m.webActive--
		m.inFlight--
	case phaseAppWait:
		m.inFlight--
	case phaseApp:
		m.appActive--
		m.threads--
		m.inFlight--
	case phaseDBWait:
		m.threads--
		m.inFlight--
	case phaseDBCPU:
		m.dbCPU--
		m.dbConns--
		m.threads--
		m.inFlight--
	case phaseDBIO:
		m.dbIO--
		m.dbConns--
		m.threads--
		m.inFlight--
	}
	// Every in-flight request, queued or in service, passed the gate.
	m.gateHeld--
	if c.hasConn {
		// The connection is torn down; a queued request's connection still
		// counts as idle-held.
		if c.phase == phaseWebWait {
			m.idleConns--
		}
		m.conns--
		c.hasConn = false
	}
	if m.recording {
		m.rts = append(m.rts, t-c.started)
		m.recordClass(c.class, t-c.started)
		m.timeouts++
	}
	c.mode = modeThinking
	c.phase = phaseNone
	c.retryPending = false
	c.retries = 0
	c.thinkUntil = t + m.rng.ExpFloat64(tpcw.MeanThinkTimeSeconds)
}

// recordClass folds a response time into its class accumulator.
func (m *Model) recordClass(class tpcw.Class, rt float64) {
	run, ok := m.classRT[class]
	if !ok {
		run = &stats.Running{}
		m.classRT[class] = run
	}
	run.Add(rt)
}

// Snapshot exposes internal occupancy counters for tests and diagnostics.
type Snapshot struct {
	InFlight   int
	WebActive  int
	AppActive  int
	DBCPU      int
	DBIO       int
	Threads    int
	DBConns    int
	Conns      int
	IdleConns  int
	WebSpawned int
	AppSpawned int
	WebQueue   int
	AppQueue   int
	DBQueue    int
	Sessions   int
	GateHeld   int
}

// Snapshot returns the current occupancy counters.
func (m *Model) Snapshot() Snapshot {
	return Snapshot{
		InFlight:   m.inFlight,
		WebActive:  m.webActive,
		AppActive:  m.appActive,
		DBCPU:      m.dbCPU,
		DBIO:       m.dbIO,
		Threads:    m.threads,
		DBConns:    m.dbConns,
		Conns:      m.conns,
		IdleConns:  m.idleConns,
		WebSpawned: m.webSpawned,
		AppSpawned: m.appSpawned,
		WebQueue:   m.webQueue.len(),
		AppQueue:   m.appQueue.len(),
		DBQueue:    m.dbQueue.len(),
		Sessions:   m.liveSessions(),
		GateHeld:   m.gateHeld,
	}
}

// AdmissionState reports the gate's epoch-adaptive state: the current cap
// scale, the stance of the latest epoch decision, and how many epoch
// decisions have been made.
func (m *Model) AdmissionState() (scale float64, regime admission.Regime, epochs int) {
	return m.gate.Scale(), m.gate.Regime(), m.gate.Epochs()
}

// CheckInvariants recounts occupancy from client states and compares with the
// incremental counters, returning an error on any mismatch. Tests call this
// to guard the bookkeeping.
func (m *Model) CheckInvariants() error {
	var inFlight, webActive, appActive, dbCPU, dbIO, threads, dbConns, conns, idleConns, gateHeld int
	for i := range m.clients {
		c := &m.clients[i]
		if c.hasConn {
			conns++
			if c.mode == modeThinking || c.phase == phaseWebWait {
				idleConns++
			}
		}
		if c.mode != modeInFlight {
			continue
		}
		gateHeld++
		inFlight0 := c.phase != phaseWebWait
		if inFlight0 {
			inFlight++
		}
		switch c.phase {
		case phaseWeb:
			webActive++
		case phaseApp:
			appActive++
			threads++
		case phaseDBWait:
			threads++
		case phaseDBCPU:
			dbCPU++
			threads++
			dbConns++
		case phaseDBIO:
			dbIO++
			threads++
			dbConns++
		}
	}
	// Requests queued between web and app still hold their worker.
	type pair struct {
		name string
		got  int
		want int
	}
	checks := []pair{
		{"inFlight", m.inFlight, inFlight},
		{"webActive", m.webActive, webActive},
		{"appActive", m.appActive, appActive},
		{"dbCPU", m.dbCPU, dbCPU},
		{"dbIO", m.dbIO, dbIO},
		{"threads", m.threads, threads},
		{"dbConns", m.dbConns, dbConns},
		{"conns", m.conns, conns},
		{"idleConns", m.idleConns, idleConns},
		{"gateHeld", m.gateHeld, gateHeld},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("webtier: counter %s=%d, recount %d", c.name, c.got, c.want)
		}
	}
	// Pools may transiently exceed a freshly lowered cap (reaping is one
	// worker per second), but never fall below one worker or below the busy
	// count.
	if m.webSpawned < 1 || m.webSpawned < m.inFlight && m.inFlight <= m.params.MaxClients {
		return fmt.Errorf("webtier: webSpawned %d below busy %d", m.webSpawned, m.inFlight)
	}
	if m.appSpawned < 1 {
		return fmt.Errorf("webtier: appSpawned %d < 1", m.appSpawned)
	}
	if m.dbConns > m.cal.DBMaxConns {
		return fmt.Errorf("webtier: dbConns %d > cap %d", m.dbConns, m.cal.DBMaxConns)
	}
	return nil
}

// queue is an index FIFO with amortized O(1) operations.
type queue struct {
	items []int
	head  int
}

func (q *queue) push(i int) { q.items = append(q.items, i) }

func (q *queue) pop() int {
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return v
}

func (q *queue) len() int { return len(q.items) - q.head }

func (q *queue) reset() {
	q.items = q.items[:0]
	q.head = 0
}

// fifoExpiry tracks expiry timestamps pushed in nondecreasing order.
type fifoExpiry struct {
	q queue64
}

func (f *fifoExpiry) push(expiry float64) { f.q.push(expiry) }

func (f *fifoExpiry) prune(now float64) {
	for f.q.len() > 0 && f.q.peek() <= now {
		f.q.pop()
	}
}

func (f *fifoExpiry) len() int { return f.q.len() }

func (f *fifoExpiry) reset() { f.q.reset() }

// queue64 is a float64 FIFO mirroring queue.
type queue64 struct {
	items []float64
	head  int
}

func (q *queue64) push(v float64) { q.items = append(q.items, v) }

func (q *queue64) peek() float64 { return q.items[q.head] }

func (q *queue64) pop() float64 {
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return v
}

func (q *queue64) len() int { return len(q.items) - q.head }

func (q *queue64) reset() {
	q.items = q.items[:0]
	q.head = 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
