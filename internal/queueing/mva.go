// Package queueing implements exact Mean Value Analysis (MVA) for closed,
// single-class queueing networks with load-dependent service stations. It is
// the analytical counterpart of the webtier simulator: the same configuration
// maps onto a network of load-dependent stations, and the solver returns the
// steady-state response time and throughput in microseconds instead of
// simulated minutes.
//
// The load-dependent recursion follows Reiser & Lavenberg's exact MVA with
// marginal queue-length probabilities:
//
//	R_i(n)   = Σ_{j=1..n} (j/μ_i(j)) · p_i(j-1 | n-1)
//	X(n)     = n / (Z + Σ_i R_i(n))
//	p_i(j|n) = (X(n)/μ_i(j)) · p_i(j-1 | n-1)          j = 1..n
//	p_i(0|n) = 1 − Σ_{j=1..n} p_i(j|n)
//
// Fixed-rate and multi-server stations are special cases of the rate
// function μ_i(j).
package queueing

// Station is one service center of a closed network.
type Station struct {
	// Name identifies the station in results.
	Name string
	// Demand is the mean service demand per visit in seconds (at rate 1).
	Demand float64
	// Rate returns the relative service rate with j jobs present (j >= 1);
	// the absolute completion rate is Rate(j)/Demand. A nil Rate means a
	// fixed-rate (single-server) station, i.e. Rate(j) = 1.
	Rate func(j int) float64
}

// MultiServer returns a rate function for a station with c parallel servers:
// Rate(j) = min(j, c).
func MultiServer(c int) func(int) float64 {
	return func(j int) float64 {
		if j < c {
			return float64(j)
		}
		return float64(c)
	}
}

// Capped returns a rate function equal to inner up to cap jobs in service;
// beyond the cap the rate stays flat (extra jobs queue). It models admission
// limits such as MaxClients.
func Capped(inner func(int) float64, cap int) func(int) float64 {
	return func(j int) float64 {
		if j > cap {
			j = cap
		}
		return inner(j)
	}
}

// Result is the steady-state solution of the network.
type Result struct {
	// N is the population the network was solved for.
	N int
	// Throughput is the system throughput X(N) in jobs/second.
	Throughput float64
	// ResponseTime is the total residence time Σ R_i in seconds (excluding
	// think time).
	ResponseTime float64
	// StationResidence holds per-station residence times in station order.
	StationResidence []float64
	// StationUtilization holds per-station utilization estimates
	// (1 − p_i(0|N)).
	StationUtilization []float64
}

// Solve runs exact load-dependent MVA for a closed network with population n
// and think time z seconds. It uses a private Solver, so the returned Result
// owns its slices; repeated solves should hold a Solver and call its method
// to reuse scratch buffers.
func Solve(n int, z float64, stations []Station) (Result, error) {
	var sv Solver
	return sv.Solve(n, z, stations)
}

// rate returns the station's relative rate with j jobs, defaulting to 1.
func (s Station) rate(j int) float64 {
	if s.Rate == nil {
		return 1
	}
	r := s.Rate(j)
	if r <= 0 {
		// A zero rate with jobs present would deadlock the recursion; treat
		// it as a minimal trickle instead.
		return 1e-9
	}
	return r
}
