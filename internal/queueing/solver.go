package queueing

import (
	"errors"
	"fmt"
	"math"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// Solver carries reusable scratch buffers for repeated network solves. Policy
// initialization sweeps the analytic surface over thousands of lattice
// points; allocating the marginal-probability and queue-length buffers from a
// solver instead of per call keeps that inner loop allocation-free.
//
// The slices inside a Result returned by a Solver method are owned by the
// Solver and remain valid only until its next call; callers that retain a
// Result across calls must copy them. The package-level Solve and SolveApprox
// wrappers use a private Solver per call, so their results have no such
// aliasing. A Solver is not safe for concurrent use; parallel sweeps give
// each worker its own.
type Solver struct {
	flat     []float64   // backing storage for marg
	marg     [][]float64 // per-station marginal queue-length probabilities
	q        []float64   // approximate-MVA mean queue lengths
	resid    []float64   // per-station residence scratch
	residOut []float64   // Result.StationResidence backing
	utilOut  []float64   // Result.StationUtilization backing
}

// NewSolver returns an empty solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// grow returns buf resized to length k, reallocating only when it has never
// been that large. Contents are unspecified; callers overwrite every element.
func grow(buf []float64, k int) []float64 {
	if cap(buf) < k {
		return make([]float64, k)
	}
	return buf[:k]
}

func validate(n int, z float64, stations []Station) error {
	if n < 1 {
		return fmt.Errorf("queueing: population %d < 1", n)
	}
	if z < 0 {
		return errors.New("queueing: negative think time")
	}
	if len(stations) == 0 {
		return errors.New("queueing: no stations")
	}
	for _, s := range stations {
		if s.Demand < 0 {
			return fmt.Errorf("queueing: station %q has negative demand", s.Name)
		}
	}
	return nil
}

// Solve runs exact load-dependent MVA on the solver's scratch buffers. It
// computes exactly what the package-level Solve computes; see the Solver type
// for the result-aliasing contract.
func (sv *Solver) Solve(n int, z float64, stations []Station) (Result, error) {
	if err := validate(n, z, stations); err != nil {
		return Result{}, err
	}

	k := len(stations)
	// p[i][j] = p_i(j | current population); updated in place per iteration.
	sv.flat = grow(sv.flat, k*(n+1))
	for i := range sv.flat {
		sv.flat[i] = 0
	}
	if cap(sv.marg) < k {
		sv.marg = make([][]float64, k)
	}
	p := sv.marg[:k]
	for i := range p {
		p[i] = sv.flat[i*(n+1) : (i+1)*(n+1)]
		p[i][0] = 1
	}
	sv.resid = grow(sv.resid, k)
	resid := sv.resid

	var x float64
	for pop := 1; pop <= n; pop++ {
		var total float64
		for i, s := range stations {
			if s.Demand == 0 {
				resid[i] = 0
				continue
			}
			var r float64
			for j := 1; j <= pop; j++ {
				r += float64(j) * s.Demand / s.rate(j) * p[i][j-1]
			}
			resid[i] = r
			total += r
		}
		x = float64(pop) / (z + total)
		// Update marginal probabilities from high to low so p[i][j-1] is
		// still the (pop-1)-population value when computing p[i][j].
		for i, s := range stations {
			if s.Demand == 0 {
				continue
			}
			var sum float64
			for j := pop; j >= 1; j-- {
				p[i][j] = x * s.Demand / s.rate(j) * p[i][j-1]
				sum += p[i][j]
			}
			if sum > 1 {
				// Numerical guard: renormalize rather than emit a negative
				// idle probability.
				for j := 1; j <= pop; j++ {
					p[i][j] /= sum
				}
				sum = 1
			}
			p[i][0] = 1 - sum
		}
	}

	sv.residOut = grow(sv.residOut, k)
	sv.utilOut = grow(sv.utilOut, k)
	res := Result{
		N:                  n,
		Throughput:         x,
		StationResidence:   sv.residOut,
		StationUtilization: sv.utilOut,
	}
	for i := range stations {
		res.StationResidence[i] = resid[i]
		res.ResponseTime += resid[i]
		res.StationUtilization[i] = 1 - p[i][0]
	}
	if math.IsNaN(res.Throughput) || math.IsInf(res.Throughput, 0) {
		return Result{}, errors.New("queueing: MVA diverged")
	}
	return res, nil
}

// SolveApprox runs Schweitzer-style approximate MVA on the solver's scratch
// buffers. It computes exactly what the package-level SolveApprox computes;
// see the Solver type for the result-aliasing contract.
func (sv *Solver) SolveApprox(n int, z float64, stations []Station) (Result, error) {
	if err := validate(n, z, stations); err != nil {
		return Result{}, err
	}

	k := len(stations)
	sv.q = grow(sv.q, k)
	sv.resid = grow(sv.resid, k)
	q, resid := sv.q, sv.resid
	for i := range q {
		q[i] = float64(n) / float64(k+1)
	}

	const (
		maxIter = 2000
		damping = 0.5
		tol     = 1e-9
	)
	var x float64
	scale := float64(n-1) / float64(n)
	for iter := 0; iter < maxIter; iter++ {
		var total float64
		for i, s := range stations {
			if s.Demand == 0 {
				resid[i] = 0
				continue
			}
			// Evaluate the service rate at the current mean occupancy.
			at := int(math.Round(q[i])) + 1
			if at < 1 {
				at = 1
			}
			if at > n {
				at = n
			}
			rate := s.rate(at)
			resid[i] = s.Demand / rate * (1 + q[i]*scale)
			total += resid[i]
		}
		x = float64(n) / (z + total)
		var drift float64
		for i := range stations {
			want := x * resid[i]
			delta := want - q[i]
			if d := math.Abs(delta); d > drift {
				drift = d
			}
			q[i] += damping * delta
		}
		if drift < tol {
			break
		}
	}

	sv.residOut = grow(sv.residOut, k)
	sv.utilOut = grow(sv.utilOut, k)
	res := Result{
		N:                  n,
		Throughput:         x,
		StationResidence:   sv.residOut,
		StationUtilization: sv.utilOut,
	}
	for i, s := range stations {
		res.StationResidence[i] = resid[i]
		res.ResponseTime += resid[i]
		res.StationUtilization[i] = 0
		if s.Demand > 0 {
			at := int(math.Round(q[i])) + 1
			if at < 1 {
				at = 1
			}
			if at > n {
				at = n
			}
			res.StationUtilization[i] = math.Min(1, x*s.Demand/s.rate(at))
		}
	}
	if math.IsNaN(res.Throughput) || math.IsInf(res.Throughput, 0) {
		return Result{}, errors.New("queueing: approximate MVA diverged")
	}
	return res, nil
}

// WebsiteSolver evaluates the analytic website surface with fully reused
// machinery: the three stations and their rate closures are bound once to the
// solver's per-call state, so a sweep over a configuration lattice performs
// no per-call station or scratch allocation (only the two small slice copies
// that let the returned WebsiteResult outlive the solver's next call).
//
// A WebsiteSolver is not safe for concurrent use; parallel sweeps give each
// worker its own.
type WebsiteSolver struct {
	sv       Solver
	stations [3]Station

	// Per-call state read by the station rate closures.
	cal        webtier.Calibration
	level      vmenv.Level
	maxClients int
	maxThreads int
	thrash     float64
	ioFactor   float64
}

// NewWebsiteSolver returns a website solver with its stations bound.
func NewWebsiteSolver() *WebsiteSolver {
	ws := &WebsiteSolver{}
	ws.stations[0] = Station{
		Name: "web",
		Rate: func(j int) float64 {
			if j > ws.maxClients {
				j = ws.maxClients
			}
			return float64(ws.cal.WebVCPUs) * efficiency(ws.cal, j, ws.cal.WebVCPUs) / ws.thrash * boundedBy(j, ws.cal.WebVCPUs)
		},
	}
	ws.stations[1] = Station{
		Name: "appdb",
		Rate: func(j int) float64 {
			if j > ws.maxThreads {
				j = ws.maxThreads
			}
			return ws.level.CPUCapacity() * efficiency(ws.cal, j, ws.level.VCPUs) * boundedBy(j, ws.level.VCPUs)
		},
	}
	ws.stations[2] = Station{
		Name: "disk",
		Rate: func(j int) float64 {
			return math.Min(float64(j), ws.cal.DiskCapacity)
		},
	}
	return ws
}

// Solve predicts the steady-state performance of one configuration. It
// computes exactly what the package-level SolveWebsite computes (which
// delegates here); the returned WebsiteResult owns its slices and may be
// retained across calls.
func (ws *WebsiteSolver) Solve(cal webtier.Calibration, p webtier.Params, w tpcw.Workload, level vmenv.Level) (WebsiteResult, error) {
	if err := p.Validate(); err != nil {
		return WebsiteResult{}, err
	}
	if err := w.Validate(); err != nil {
		return WebsiteResult{}, err
	}

	demand := tpcw.MeanDemand(w.Mix)

	// Connection reuse: a think shorter than the keep-alive timeout reuses
	// the connection. Long thinks and session ends always reconnect.
	shortThink := 1 - cal.LongThinkProb
	pReuse := shortThink * (1 - math.Exp(-p.KeepAliveTimeoutSec/tpcw.MeanThinkTimeSeconds)) *
		(1 - 1/float64(tpcw.MeanSessionLength))
	webDemand := demand.Web + (1-pReuse)*cal.ConnectCostSec

	// Session creation: new sessions at session start plus timeout expiries
	// during long thinks.
	pExpire := cal.LongThinkProb * math.Exp(-p.SessionTimeoutMin*60/cal.LongThinkMeanSec)
	pCreate := 1/float64(tpcw.MeanSessionLength) + pExpire
	appDemand := demand.App + pCreate*cal.SessionCreateCostSec

	// Effective think time per interaction, including the long-pause mixture
	// and the end-of-session pause.
	think := shortThink*tpcw.MeanThinkTimeSeconds + cal.LongThinkProb*cal.LongThinkMeanSec
	z := (1-1/float64(tpcw.MeanSessionLength))*think + 1/float64(tpcw.MeanSessionLength)*cal.LongThinkMeanSec

	ws.cal, ws.level = cal, level
	ws.maxClients, ws.maxThreads = p.MaxClients, p.MaxThreads

	// Fixed-point over occupancy-dependent factors.
	var (
		res Result
		err error
	)
	ws.ioFactor = 1.0
	inFlight := math.Min(float64(w.Clients)/4, float64(p.MaxClients))
	for iter := 0; iter < 5; iter++ {
		conns := estimateConns(p, w, z, res)
		workers := math.Min(inFlight+float64(p.MinSpareServers+p.MaxSpareServers)/2, float64(p.MaxClients))
		ws.thrash = webThrash(cal, workers, conns)

		threads := math.Min(inFlight+float64(p.MinSpareThreads+p.MaxSpareThreads)/2, float64(p.MaxThreads))
		sessions := estimateSessions(p, w, z, res)
		ws.ioFactor = dbIOFactor(cal, level, threads, sessions)

		ws.stations[0].Demand = webDemand
		ws.stations[1].Demand = appDemand + demand.DB
		ws.stations[2].Demand = demand.IO * ws.ioFactor
		res, err = ws.sv.SolveApprox(w.Clients, z, ws.stations[:])
		if err != nil {
			return WebsiteResult{}, err
		}
		inFlight = res.Throughput * res.ResponseTime // Little's law
	}

	// Detach the network slices from the solver scratch: the WebsiteResult
	// must survive the solver's next call.
	res.StationResidence = append([]float64(nil), res.StationResidence...)
	res.StationUtilization = append([]float64(nil), res.StationUtilization...)
	return WebsiteResult{
		MeanRT:     res.ResponseTime,
		Throughput: res.Throughput,
		Network:    res,
		IOFactor:   ws.ioFactor,
	}, nil
}

// SolveWebsiteBatch evaluates many configurations of one workload context
// through a single shared solver, returning results in input order. It is
// the array-shaped entry point for lattice sweeps: callers that fan a sweep
// across workers chunk the lattice and give each worker its own solver.
func SolveWebsiteBatch(cal webtier.Calibration, ps []webtier.Params, w tpcw.Workload, level vmenv.Level) ([]WebsiteResult, error) {
	ws := NewWebsiteSolver()
	out := make([]WebsiteResult, len(ps))
	for i := range ps {
		r, err := ws.Solve(cal, ps[i], w, level)
		if err != nil {
			return nil, fmt.Errorf("queueing: batch config %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}
