package queueing

import (
	"errors"
	"fmt"
	"math"
)

// SolveApprox solves the closed network with a Schweitzer-style approximate
// MVA extended to load-dependent stations: each station's service rate is
// evaluated at its current mean queue length, and the classic Schweitzer
// residence estimate
//
//	R_i = (D_i / rate_i(Q_i)) · (1 + Q_i·(N−1)/N)
//
// is iterated with damping until the queue lengths stabilize.
//
// Exact load-dependent MVA (Solve) is numerically fragile for large
// populations near saturation — the marginal idle probabilities underflow —
// while the fixed point below is stable for any population and converges to
// the same answers in the regimes where both work. The website surface uses
// this solver.
func SolveApprox(n int, z float64, stations []Station) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("queueing: population %d < 1", n)
	}
	if z < 0 {
		return Result{}, errors.New("queueing: negative think time")
	}
	if len(stations) == 0 {
		return Result{}, errors.New("queueing: no stations")
	}
	for _, s := range stations {
		if s.Demand < 0 {
			return Result{}, fmt.Errorf("queueing: station %q has negative demand", s.Name)
		}
	}

	k := len(stations)
	q := make([]float64, k)
	resid := make([]float64, k)
	for i := range q {
		q[i] = float64(n) / float64(k+1)
	}

	const (
		maxIter = 2000
		damping = 0.5
		tol     = 1e-9
	)
	var x float64
	scale := float64(n-1) / float64(n)
	for iter := 0; iter < maxIter; iter++ {
		var total float64
		for i, s := range stations {
			if s.Demand == 0 {
				resid[i] = 0
				continue
			}
			// Evaluate the service rate at the current mean occupancy.
			at := int(math.Round(q[i])) + 1
			if at < 1 {
				at = 1
			}
			if at > n {
				at = n
			}
			rate := s.rate(at)
			resid[i] = s.Demand / rate * (1 + q[i]*scale)
			total += resid[i]
		}
		x = float64(n) / (z + total)
		var drift float64
		for i := range stations {
			want := x * resid[i]
			delta := want - q[i]
			if d := math.Abs(delta); d > drift {
				drift = d
			}
			q[i] += damping * delta
		}
		if drift < tol {
			break
		}
	}

	res := Result{
		N:                  n,
		Throughput:         x,
		StationResidence:   make([]float64, k),
		StationUtilization: make([]float64, k),
	}
	for i, s := range stations {
		res.StationResidence[i] = resid[i]
		res.ResponseTime += resid[i]
		if s.Demand > 0 {
			at := int(math.Round(q[i])) + 1
			if at < 1 {
				at = 1
			}
			if at > n {
				at = n
			}
			res.StationUtilization[i] = math.Min(1, x*s.Demand/s.rate(at))
		}
	}
	if math.IsNaN(res.Throughput) || math.IsInf(res.Throughput, 0) {
		return Result{}, errors.New("queueing: approximate MVA diverged")
	}
	return res, nil
}
