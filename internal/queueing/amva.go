package queueing

// SolveApprox solves the closed network with a Schweitzer-style approximate
// MVA extended to load-dependent stations: each station's service rate is
// evaluated at its current mean queue length, and the classic Schweitzer
// residence estimate
//
//	R_i = (D_i / rate_i(Q_i)) · (1 + Q_i·(N−1)/N)
//
// is iterated with damping until the queue lengths stabilize.
//
// Exact load-dependent MVA (Solve) is numerically fragile for large
// populations near saturation — the marginal idle probabilities underflow —
// while the fixed point below is stable for any population and converges to
// the same answers in the regimes where both work. The website surface uses
// this solver.
// It uses a private Solver, so the returned Result owns its slices; repeated
// solves should hold a Solver and call its method to reuse scratch buffers.
func SolveApprox(n int, z float64, stations []Station) (Result, error) {
	var sv Solver
	return sv.SolveApprox(n, z, stations)
}
