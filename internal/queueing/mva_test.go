package queueing

import (
	"math"
	"testing"
)

func TestSolveValidation(t *testing.T) {
	st := []Station{{Name: "s", Demand: 1}}
	if _, err := Solve(0, 1, st); err == nil {
		t.Fatal("zero population accepted")
	}
	if _, err := Solve(1, -1, st); err == nil {
		t.Fatal("negative think time accepted")
	}
	if _, err := Solve(1, 1, nil); err == nil {
		t.Fatal("no stations accepted")
	}
	if _, err := Solve(1, 1, []Station{{Demand: -1}}); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestSingleStationNoThink(t *testing.T) {
	// One fixed-rate station, no think time: the station is always busy, so
	// X = 1/D and R = N·D for any N.
	const d = 0.25
	for n := 1; n <= 10; n++ {
		res, err := Solve(n, 0, []Station{{Name: "cpu", Demand: d}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Throughput-1/d) > 1e-9 {
			t.Fatalf("N=%d: X=%v, want %v", n, res.Throughput, 1/d)
		}
		if math.Abs(res.ResponseTime-float64(n)*d) > 1e-9 {
			t.Fatalf("N=%d: R=%v, want %v", n, res.ResponseTime, float64(n)*d)
		}
	}
}

func TestSinglePopulationResponseEqualsDemand(t *testing.T) {
	// With N=1 there is no queueing anywhere: R = sum of demands.
	st := []Station{
		{Name: "a", Demand: 0.1},
		{Name: "b", Demand: 0.3},
		{Name: "c", Demand: 0.05, Rate: MultiServer(4)},
	}
	res, err := Solve(1, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ResponseTime-0.45) > 1e-9 {
		t.Fatalf("R = %v, want 0.45", res.ResponseTime)
	}
	wantX := 1 / (2 + 0.45)
	if math.Abs(res.Throughput-wantX) > 1e-9 {
		t.Fatalf("X = %v, want %v", res.Throughput, wantX)
	}
}

func TestInteractiveResponseTimeLaw(t *testing.T) {
	// R = N/X − Z must hold exactly for any network.
	st := []Station{
		{Name: "cpu", Demand: 0.02, Rate: MultiServer(2)},
		{Name: "disk", Demand: 0.05},
	}
	for _, n := range []int{1, 5, 20, 100} {
		res, err := Solve(n, 3, st)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n)/res.Throughput - 3
		if math.Abs(res.ResponseTime-want) > 1e-6*want+1e-9 {
			t.Fatalf("N=%d: R=%v, law says %v", n, res.ResponseTime, want)
		}
	}
}

func TestThroughputBounds(t *testing.T) {
	// X(N) ≤ min(N/(Z+ΣD), 1/Dmax) — the classic asymptotic bounds.
	st := []Station{
		{Name: "a", Demand: 0.04},
		{Name: "b", Demand: 0.02},
	}
	const z = 5.0
	total := 0.06
	for _, n := range []int{1, 3, 10, 50, 200} {
		res, err := Solve(n, z, st)
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Min(float64(n)/(z+total), 1/0.04)
		if res.Throughput > bound+1e-9 {
			t.Fatalf("N=%d: X=%v exceeds bound %v", n, res.Throughput, bound)
		}
	}
}

func TestThroughputMonotoneInPopulation(t *testing.T) {
	st := []Station{
		{Name: "cpu", Demand: 0.03, Rate: MultiServer(2)},
		{Name: "disk", Demand: 0.06},
	}
	prev := 0.0
	for n := 1; n <= 120; n += 7 {
		res, err := Solve(n, 4, st)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput < prev-1e-9 {
			t.Fatalf("X decreased at N=%d: %v < %v", n, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestMultiServerBeatsSingle(t *testing.T) {
	single := []Station{{Name: "cpu", Demand: 0.1}}
	multi := []Station{{Name: "cpu", Demand: 0.1, Rate: MultiServer(4)}}
	s, err := Solve(40, 2, single)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Solve(40, 2, multi)
	if err != nil {
		t.Fatal(err)
	}
	if m.ResponseTime >= s.ResponseTime {
		t.Fatalf("multi-server RT %v not better than single %v", m.ResponseTime, s.ResponseTime)
	}
}

func TestMultiServerSaturationThroughput(t *testing.T) {
	// A c-server station saturates at c/D.
	const (
		d = 0.1
		c = 3
	)
	res, err := Solve(500, 0.1, []Station{{Name: "cpu", Demand: d, Rate: MultiServer(c)}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-c/d) > 0.05*c/d {
		t.Fatalf("saturated X = %v, want ~%v", res.Throughput, c/d)
	}
}

func TestCappedRate(t *testing.T) {
	inner := MultiServer(100)
	capped := Capped(inner, 10)
	if capped(5) != 5 {
		t.Fatal("below cap altered")
	}
	if capped(50) != 10 {
		t.Fatalf("above cap: %v", capped(50))
	}
}

func TestCappedStationLimitsThroughput(t *testing.T) {
	// Admission cap of 4 on a 100-server station behaves like 4 servers.
	capped := []Station{{Name: "cpu", Demand: 0.1, Rate: Capped(MultiServer(100), 4)}}
	four := []Station{{Name: "cpu", Demand: 0.1, Rate: MultiServer(4)}}
	a, err := Solve(200, 1, capped)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(200, 1, four)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Throughput-b.Throughput) > 1e-6*b.Throughput {
		t.Fatalf("capped X %v != 4-server X %v", a.Throughput, b.Throughput)
	}
}

func TestZeroDemandStationIgnored(t *testing.T) {
	with, err := Solve(10, 1, []Station{
		{Name: "cpu", Demand: 0.05},
		{Name: "noop", Demand: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(10, 1, []Station{{Name: "cpu", Demand: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with.Throughput-without.Throughput) > 1e-9 {
		t.Fatal("zero-demand station changed the solution")
	}
	if with.StationResidence[1] != 0 {
		t.Fatal("zero-demand station has residence")
	}
}

func TestUtilizationInRange(t *testing.T) {
	st := []Station{
		{Name: "cpu", Demand: 0.03, Rate: MultiServer(2)},
		{Name: "disk", Demand: 0.08},
	}
	res, err := Solve(60, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.StationUtilization {
		if u < -1e-9 || u > 1+1e-9 {
			t.Fatalf("station %d utilization %v", i, u)
		}
	}
	// The disk is the bottleneck (D=0.08): near saturation its utilization
	// must exceed the CPU's.
	if res.StationUtilization[1] <= res.StationUtilization[0] {
		t.Fatalf("bottleneck utilization ordering wrong: %v", res.StationUtilization)
	}
}

func TestApproxMatchesExactModerateLoad(t *testing.T) {
	// Where exact MVA is stable, the approximation must land close.
	st := []Station{
		{Name: "cpu", Demand: 0.02, Rate: MultiServer(2)},
		{Name: "disk", Demand: 0.05},
	}
	for _, n := range []int{1, 5, 20, 60} {
		exact, err := Solve(n, 3, st)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := SolveApprox(n, 3, st)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(approx.Throughput-exact.Throughput) / exact.Throughput; rel > 0.1 {
			t.Fatalf("N=%d: approx X %v vs exact %v (rel %v)", n, approx.Throughput, exact.Throughput, rel)
		}
	}
}

func TestApproxSaturationWithDegradingRates(t *testing.T) {
	// A station whose rate degrades with queue length and is capped: in deep
	// saturation, throughput must approach rate(cap)/D — the regime where
	// exact load-dependent MVA loses numerical stability.
	degrading := func(j int) float64 {
		eff := 1 / (1 + 0.002*float64(j))
		return 2 * eff
	}
	st := []Station{{Name: "cpu", Demand: 0.02, Rate: Capped(degrading, 200)}}
	res, err := SolveApprox(800, 10, st)
	if err != nil {
		t.Fatal(err)
	}
	want := degrading(200) / 0.02
	// The station must be saturated and throughput within 15% of the capped
	// service rate.
	if math.Abs(res.Throughput-want)/want > 0.15 {
		t.Fatalf("saturated X %v, want ~%v", res.Throughput, want)
	}
}

func TestApproxValidation(t *testing.T) {
	st := []Station{{Name: "s", Demand: 1}}
	if _, err := SolveApprox(0, 1, st); err == nil {
		t.Fatal("zero population accepted")
	}
	if _, err := SolveApprox(1, -1, st); err == nil {
		t.Fatal("negative think accepted")
	}
	if _, err := SolveApprox(1, 1, nil); err == nil {
		t.Fatal("no stations accepted")
	}
}

func TestApproxResponseTimeLaw(t *testing.T) {
	st := []Station{
		{Name: "cpu", Demand: 0.03, Rate: MultiServer(3)},
		{Name: "disk", Demand: 0.06},
	}
	for _, n := range []int{10, 100, 500} {
		res, err := SolveApprox(n, 5, st)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n)/res.Throughput - 5
		if math.Abs(res.ResponseTime-want) > 1e-6*want+1e-6 {
			t.Fatalf("N=%d: R=%v, law says %v", n, res.ResponseTime, want)
		}
	}
}
