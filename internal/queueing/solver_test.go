package queueing

import (
	"reflect"
	"testing"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

func solverStations() []Station {
	return []Station{
		{Name: "cpu", Demand: 0.010, Rate: MultiServer(4)},
		{Name: "disk", Demand: 0.006},
		{Name: "net", Demand: 0.002, Rate: Capped(MultiServer(8), 32)},
	}
}

// TestSolverMatchesPackageFunctions pins the scratch-reuse contract: a Solver
// produces bit-identical results to the allocating package functions, even
// when its buffers are warm from solves of other shapes and populations.
func TestSolverMatchesPackageFunctions(t *testing.T) {
	sv := NewSolver()
	// Warm the scratch with a larger problem so reuse paths are exercised.
	if _, err := sv.Solve(300, 5, solverStations()); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.SolveApprox(900, 5, solverStations()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7, 50, 200} {
		want, err := Solve(n, 12, solverStations())
		if err != nil {
			t.Fatal(err)
		}
		got, err := sv.Solve(n, 12, solverStations())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: Solver.Solve %+v != Solve %+v", n, got, want)
		}
		wantA, err := SolveApprox(n, 12, solverStations())
		if err != nil {
			t.Fatal(err)
		}
		gotA, err := sv.SolveApprox(n, 12, solverStations())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotA, wantA) {
			t.Fatalf("n=%d: Solver.SolveApprox %+v != SolveApprox %+v", n, gotA, wantA)
		}
	}
}

// TestWebsiteSolverMatchesSolveWebsite pins the website fast path against the
// package function across configurations, mixes and VM levels.
func TestWebsiteSolverMatchesSolveWebsite(t *testing.T) {
	cal := webtier.DefaultCalibration()
	ws := NewWebsiteSolver()
	small := webtier.DefaultParams()
	small.MaxClients = 120
	small.MaxThreads = 40
	cases := []struct {
		p       webtier.Params
		mix     tpcw.Mix
		clients int
		level   vmenv.Level
	}{
		{webtier.DefaultParams(), tpcw.Shopping, 400, vmenv.Level1},
		{small, tpcw.Browsing, 700, vmenv.Level3},
		{webtier.DefaultParams(), tpcw.Ordering, 150, vmenv.Level2},
	}
	for i, tc := range cases {
		w := tpcw.Workload{Mix: tc.mix, Clients: tc.clients}
		want, err := SolveWebsite(cal, tc.p, w, tc.level)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ws.Solve(cal, tc.p, w, tc.level)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: WebsiteSolver.Solve %+v != SolveWebsite %+v", i, got, want)
		}
	}
}

// TestSolveWebsiteBatchMatchesSingles pins the batch entry point to the
// per-call results, in input order.
func TestSolveWebsiteBatchMatchesSingles(t *testing.T) {
	cal := webtier.DefaultCalibration()
	w := tpcw.Workload{Mix: tpcw.Shopping, Clients: 500}
	ps := make([]webtier.Params, 4)
	for i := range ps {
		ps[i] = webtier.DefaultParams()
		ps[i].MaxClients = 100 + 150*i
	}
	batch, err := SolveWebsiteBatch(cal, ps, w, vmenv.Level2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ps) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(ps))
	}
	for i, p := range ps {
		want, err := SolveWebsite(cal, p, w, vmenv.Level2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("config %d: batch %+v != single %+v", i, batch[i], want)
		}
	}
}

// TestSolverHotPathAllocFree asserts the scratch buffers actually remove the
// per-call allocations: warm solver methods must not allocate at all, and a
// warm website solve performs only the two small copies that detach its
// result from the scratch.
func TestSolverHotPathAllocFree(t *testing.T) {
	sv := NewSolver()
	stations := solverStations()
	if _, err := sv.Solve(200, 12, stations); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := sv.Solve(200, 12, stations); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm Solver.Solve allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := sv.SolveApprox(800, 12, stations); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm Solver.SolveApprox allocates %.1f per run, want 0", allocs)
	}

	ws := NewWebsiteSolver()
	cal := webtier.DefaultCalibration()
	p := webtier.DefaultParams()
	w := tpcw.Workload{Mix: tpcw.Shopping, Clients: 400}
	if _, err := ws.Solve(cal, p, w, vmenv.Level1); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := ws.Solve(cal, p, w, vmenv.Level1); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Fatalf("warm WebsiteSolver.Solve allocates %.1f per run, want <= 2 (result detach copies)", allocs)
	}
}

func BenchmarkWebsiteSolverSolve(b *testing.B) {
	ws := NewWebsiteSolver()
	cal := webtier.DefaultCalibration()
	p := webtier.DefaultParams()
	w := tpcw.Workload{Mix: tpcw.Shopping, Clients: 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.Solve(cal, p, w, vmenv.Level1); err != nil {
			b.Fatal(err)
		}
	}
}
