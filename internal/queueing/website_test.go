package queueing

import (
	"testing"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

func solve(t *testing.T, p webtier.Params, mix tpcw.Mix, clients int, level vmenv.Level) WebsiteResult {
	t.Helper()
	res, err := SolveWebsite(webtier.DefaultCalibration(), p,
		tpcw.Workload{Mix: mix, Clients: clients}, level)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSolveWebsiteValidation(t *testing.T) {
	cal := webtier.DefaultCalibration()
	bad := webtier.DefaultParams()
	bad.MaxClients = 0
	if _, err := SolveWebsite(cal, bad, tpcw.Workload{Mix: tpcw.Shopping, Clients: 10}, vmenv.Level1); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := SolveWebsite(cal, webtier.DefaultParams(), tpcw.Workload{}, vmenv.Level1); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestSolveWebsitePositive(t *testing.T) {
	res := solve(t, webtier.DefaultParams(), tpcw.Shopping, 400, vmenv.Level1)
	if res.MeanRT <= 0 || res.Throughput <= 0 {
		t.Fatalf("non-positive solution %+v", res)
	}
	if res.IOFactor <= 0 {
		t.Fatalf("io factor %v", res.IOFactor)
	}
}

func TestWeakerVMSlowerAnalytically(t *testing.T) {
	p := webtier.DefaultParams()
	l1 := solve(t, p, tpcw.Ordering, 800, vmenv.Level1)
	l3 := solve(t, p, tpcw.Ordering, 800, vmenv.Level3)
	if l3.MeanRT <= l1.MeanRT {
		t.Fatalf("Level-3 RT %v not worse than Level-1 %v", l3.MeanRT, l1.MeanRT)
	}
	if l3.IOFactor <= l1.IOFactor {
		t.Fatalf("Level-3 IO factor %v not worse than Level-1 %v", l3.IOFactor, l1.IOFactor)
	}
}

func TestOrderingHeavierAnalytically(t *testing.T) {
	p := webtier.DefaultParams()
	b := solve(t, p, tpcw.Browsing, 800, vmenv.Level3)
	o := solve(t, p, tpcw.Ordering, 800, vmenv.Level3)
	if o.MeanRT <= b.MeanRT {
		t.Fatalf("ordering %v not heavier than browsing %v", o.MeanRT, b.MeanRT)
	}
}

func TestMoreClientsSlower(t *testing.T) {
	p := webtier.DefaultParams()
	small := solve(t, p, tpcw.Ordering, 200, vmenv.Level3)
	large := solve(t, p, tpcw.Ordering, 1000, vmenv.Level3)
	if large.MeanRT <= small.MeanRT {
		t.Fatalf("1000 clients (%v) not slower than 200 (%v)", large.MeanRT, small.MeanRT)
	}
	if large.Throughput <= small.Throughput {
		t.Fatalf("1000 clients throughput %v below 200's %v", large.Throughput, small.Throughput)
	}
}

func TestHugeMaxClientsHurtsUnderPressure(t *testing.T) {
	// Analytically, an oversized admission cap lets concurrency climb into
	// the context-switch collapse region when the population is large.
	// (The *low*-MaxClients penalty is transient — stall herds bouncing off
	// the listen backlog — so it exists only in the simulator; the analytic
	// surface deliberately underestimates it, which is exactly why the
	// paper's online refinement beats a purely offline policy.)
	moderate := webtier.DefaultParams()
	moderate.MaxClients = 100
	huge := moderate
	huge.MaxClients = 600
	m := solve(t, moderate, tpcw.Ordering, 3000, vmenv.Level3)
	h := solve(t, huge, tpcw.Ordering, 3000, vmenv.Level3)
	if h.MeanRT <= m.MeanRT {
		t.Fatalf("MaxClients=600 RT %v not worse than 100 RT %v under pressure", h.MeanRT, m.MeanRT)
	}
}

func TestLongSessionTimeoutCostsMemoryOnWeakVM(t *testing.T) {
	short := webtier.DefaultParams()
	short.SessionTimeoutMin = 3
	long := webtier.DefaultParams()
	long.SessionTimeoutMin = 35
	s := solve(t, short, tpcw.Ordering, 800, vmenv.Level3)
	l := solve(t, long, tpcw.Ordering, 800, vmenv.Level3)
	if l.IOFactor <= s.IOFactor {
		t.Fatalf("long sessions io %v not worse than short %v", l.IOFactor, s.IOFactor)
	}
}

func TestAnalyticMatchesSimulatorOrdering(t *testing.T) {
	// The analytic surface and the simulator must agree on coarse ordering:
	// Level-3 is worse than Level-1 under the same config, and the ratio is
	// within a factor-five band (transients push the simulator higher).
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	p := webtier.DefaultParams()
	ana1 := solve(t, p, tpcw.Ordering, 800, vmenv.Level1)
	ana3 := solve(t, p, tpcw.Ordering, 800, vmenv.Level3)

	simRT := func(level vmenv.Level) float64 {
		var total float64
		for seed := uint64(1); seed <= 2; seed++ {
			m, err := webtier.New(webtier.Options{
				Params:   &p,
				Workload: tpcw.Workload{Mix: tpcw.Ordering, Clients: 800},
				AppLevel: level,
				Seed:     seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			m.Warmup(150)
			st, err := m.Run(300)
			if err != nil {
				t.Fatal(err)
			}
			total += st.MeanRT
		}
		return total / 2
	}
	sim1, sim3 := simRT(vmenv.Level1), simRT(vmenv.Level3)
	if (ana3.MeanRT > ana1.MeanRT) != (sim3 > sim1) {
		t.Fatalf("level ordering disagrees: analytic %v/%v, sim %v/%v",
			ana1.MeanRT, ana3.MeanRT, sim1, sim3)
	}
	if sim1 > ana1.MeanRT*25 || ana1.MeanRT > sim1*25 {
		t.Fatalf("analytic %v and simulated %v wildly apart at Level-1", ana1.MeanRT, sim1)
	}
}
