package queueing

import (
	"math"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// WebsiteResult is the analytic steady-state prediction for a configured
// three-tier website.
type WebsiteResult struct {
	// MeanRT is the predicted mean response time in seconds.
	MeanRT float64
	// Throughput is the predicted completion rate in requests/second.
	Throughput float64
	// Result is the final underlying network solution.
	Network Result
	// IOFactor is the converged DB cache-miss amplification.
	IOFactor float64
}

// SolveWebsite predicts the steady-state performance of the simulated
// three-tier website analytically. The configuration maps onto a closed
// network of three load-dependent stations (web CPU, app/db CPU, disk) plus
// a delay station for think time. Occupancy-dependent quantities (worker
// pools, open connections, session memory, hence the DB I/O factor and web
// thrash) are resolved by a short fixed-point iteration: solve, re-estimate
// occupancies from the solution, repeat.
//
// The analytic model deliberately omits the simulator's transient mechanisms
// (GC stalls, listen-backlog retransmits, pool spawn latency); it is the
// smooth surface those transients fluctuate around, which is what the policy
// initializer needs.
func SolveWebsite(cal webtier.Calibration, p webtier.Params, w tpcw.Workload, level vmenv.Level) (WebsiteResult, error) {
	if err := p.Validate(); err != nil {
		return WebsiteResult{}, err
	}
	if err := w.Validate(); err != nil {
		return WebsiteResult{}, err
	}

	demand := tpcw.MeanDemand(w.Mix)

	// Connection reuse: a think shorter than the keep-alive timeout reuses
	// the connection. Long thinks and session ends always reconnect.
	shortThink := 1 - cal.LongThinkProb
	pReuse := shortThink * (1 - math.Exp(-p.KeepAliveTimeoutSec/tpcw.MeanThinkTimeSeconds)) *
		(1 - 1/float64(tpcw.MeanSessionLength))
	webDemand := demand.Web + (1-pReuse)*cal.ConnectCostSec

	// Session creation: new sessions at session start plus timeout expiries
	// during long thinks.
	pExpire := cal.LongThinkProb * math.Exp(-p.SessionTimeoutMin*60/cal.LongThinkMeanSec)
	pCreate := 1/float64(tpcw.MeanSessionLength) + pExpire
	appDemand := demand.App + pCreate*cal.SessionCreateCostSec

	// Effective think time per interaction, including the long-pause mixture
	// and the end-of-session pause.
	think := shortThink*tpcw.MeanThinkTimeSeconds + cal.LongThinkProb*cal.LongThinkMeanSec
	z := (1-1/float64(tpcw.MeanSessionLength))*think + 1/float64(tpcw.MeanSessionLength)*cal.LongThinkMeanSec

	// Fixed-point over occupancy-dependent factors.
	var (
		res      Result
		ioFactor = 1.0
		inFlight = math.Min(float64(w.Clients)/4, float64(p.MaxClients))
		err      error
	)
	for iter := 0; iter < 5; iter++ {
		conns := estimateConns(p, w, z, res)
		workers := math.Min(inFlight+float64(p.MinSpareServers+p.MaxSpareServers)/2, float64(p.MaxClients))
		thrash := webThrash(cal, workers, conns)

		threads := math.Min(inFlight+float64(p.MinSpareThreads+p.MaxSpareThreads)/2, float64(p.MaxThreads))
		sessions := estimateSessions(p, w, z, res)
		ioFactor = dbIOFactor(cal, level, threads, sessions)

		stations := []Station{
			{
				Name:   "web",
				Demand: webDemand,
				Rate: Capped(func(j int) float64 {
					return float64(cal.WebVCPUs) * efficiency(cal, j, cal.WebVCPUs) / thrash * boundedBy(j, cal.WebVCPUs)
				}, p.MaxClients),
			},
			{
				Name:   "appdb",
				Demand: appDemand + demand.DB,
				Rate: Capped(func(j int) float64 {
					return level.CPUCapacity() * efficiency(cal, j, level.VCPUs) * boundedBy(j, level.VCPUs)
				}, p.MaxThreads),
			},
			{
				Name:   "disk",
				Demand: demand.IO * ioFactor,
				Rate: func(j int) float64 {
					return math.Min(float64(j), cal.DiskCapacity)
				},
			},
		}
		res, err = SolveApprox(w.Clients, z, stations)
		if err != nil {
			return WebsiteResult{}, err
		}
		inFlight = res.Throughput * res.ResponseTime // Little's law
	}

	return WebsiteResult{
		MeanRT:     res.ResponseTime,
		Throughput: res.Throughput,
		Network:    res,
		IOFactor:   ioFactor,
	}, nil
}

// boundedBy limits a station's rate with fewer jobs than cores: each job can
// use at most one core, so rate scales with j until the core count.
func boundedBy(j, cores int) float64 {
	if j < cores {
		return float64(j) / float64(cores)
	}
	return 1
}

// efficiency mirrors webtier's context-switch model.
func efficiency(cal webtier.Calibration, active, vcpus int) float64 {
	excess := float64(active - vcpus)
	if excess <= 0 {
		return 1
	}
	return 1 / (1 + cal.CtxSwitchCoeff*excess + cal.CtxSwitchQuad*excess*excess)
}

// estimateConns predicts the number of open keep-alive connections from the
// hold time per cycle.
func estimateConns(p webtier.Params, w tpcw.Workload, z float64, res Result) float64 {
	rt := res.ResponseTime // zero on the first iteration
	hold := tpcw.MeanThinkTimeSeconds * (1 - math.Exp(-p.KeepAliveTimeoutSec/tpcw.MeanThinkTimeSeconds))
	return float64(w.Clients) * (hold + rt) / (z + rt)
}

// estimateSessions predicts live server-side session objects: one per active
// client plus abandoned sessions lingering until their timeout.
func estimateSessions(p webtier.Params, w tpcw.Workload, z float64, res Result) float64 {
	live := float64(w.Clients)
	x := res.Throughput
	if x <= 0 {
		x = float64(w.Clients) / (z + 1)
	}
	endRate := x / float64(tpcw.MeanSessionLength)
	return live + endRate*p.SessionTimeoutMin*60
}

// webThrash mirrors webtier's web-VM memory penalty.
func webThrash(cal webtier.Calibration, workers, conns float64) float64 {
	used := cal.WebBaseMemMB + cal.WorkerMemMB*workers + cal.ConnMemMB*conns
	over := used/cal.WebMemMB - 1
	if over <= 0 {
		return 1
	}
	thrash := 1 + cal.ThrashCoeff*math.Pow(over, cal.ThrashExponent)
	if cal.ThrashMax > 1 && thrash > cal.ThrashMax {
		thrash = cal.ThrashMax
	}
	return thrash
}

// dbIOFactor mirrors webtier's buffer-cache model.
func dbIOFactor(cal webtier.Calibration, level vmenv.Level, threads, sessions float64) float64 {
	used := cal.AppBaseMemMB + cal.ThreadMemMB*threads + cal.SessionMemMB*sessions
	cache := float64(level.MemoryMB) - used
	if cache < cal.DBMinCacheMB {
		cache = cal.DBMinCacheMB
	}
	return math.Pow(cal.DBRefCacheMB/cache, cal.DBIOExponent)
}
