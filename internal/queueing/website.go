package queueing

import (
	"math"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// WebsiteResult is the analytic steady-state prediction for a configured
// three-tier website.
type WebsiteResult struct {
	// MeanRT is the predicted mean response time in seconds.
	MeanRT float64
	// Throughput is the predicted completion rate in requests/second.
	Throughput float64
	// Result is the final underlying network solution.
	Network Result
	// IOFactor is the converged DB cache-miss amplification.
	IOFactor float64
}

// SolveWebsite predicts the steady-state performance of the simulated
// three-tier website analytically. The configuration maps onto a closed
// network of three load-dependent stations (web CPU, app/db CPU, disk) plus
// a delay station for think time. Occupancy-dependent quantities (worker
// pools, open connections, session memory, hence the DB I/O factor and web
// thrash) are resolved by a short fixed-point iteration: solve, re-estimate
// occupancies from the solution, repeat.
//
// The analytic model deliberately omits the simulator's transient mechanisms
// (GC stalls, listen-backlog retransmits, pool spawn latency); it is the
// smooth surface those transients fluctuate around, which is what the policy
// initializer needs.
// It uses a private WebsiteSolver per call; repeated evaluations (lattice
// sweeps) should hold a WebsiteSolver and call its Solve method to reuse the
// station closures and scratch buffers.
func SolveWebsite(cal webtier.Calibration, p webtier.Params, w tpcw.Workload, level vmenv.Level) (WebsiteResult, error) {
	return NewWebsiteSolver().Solve(cal, p, w, level)
}

// boundedBy limits a station's rate with fewer jobs than cores: each job can
// use at most one core, so rate scales with j until the core count.
func boundedBy(j, cores int) float64 {
	if j < cores {
		return float64(j) / float64(cores)
	}
	return 1
}

// efficiency mirrors webtier's context-switch model.
func efficiency(cal webtier.Calibration, active, vcpus int) float64 {
	excess := float64(active - vcpus)
	if excess <= 0 {
		return 1
	}
	return 1 / (1 + cal.CtxSwitchCoeff*excess + cal.CtxSwitchQuad*excess*excess)
}

// estimateConns predicts the number of open keep-alive connections from the
// hold time per cycle.
func estimateConns(p webtier.Params, w tpcw.Workload, z float64, res Result) float64 {
	rt := res.ResponseTime // zero on the first iteration
	hold := tpcw.MeanThinkTimeSeconds * (1 - math.Exp(-p.KeepAliveTimeoutSec/tpcw.MeanThinkTimeSeconds))
	return float64(w.Clients) * (hold + rt) / (z + rt)
}

// estimateSessions predicts live server-side session objects: one per active
// client plus abandoned sessions lingering until their timeout.
func estimateSessions(p webtier.Params, w tpcw.Workload, z float64, res Result) float64 {
	live := float64(w.Clients)
	x := res.Throughput
	if x <= 0 {
		x = float64(w.Clients) / (z + 1)
	}
	endRate := x / float64(tpcw.MeanSessionLength)
	return live + endRate*p.SessionTimeoutMin*60
}

// webThrash mirrors webtier's web-VM memory penalty.
func webThrash(cal webtier.Calibration, workers, conns float64) float64 {
	used := cal.WebBaseMemMB + cal.WorkerMemMB*workers + cal.ConnMemMB*conns
	over := used/cal.WebMemMB - 1
	if over <= 0 {
		return 1
	}
	thrash := 1 + cal.ThrashCoeff*math.Pow(over, cal.ThrashExponent)
	if cal.ThrashMax > 1 && thrash > cal.ThrashMax {
		thrash = cal.ThrashMax
	}
	return thrash
}

// dbIOFactor mirrors webtier's buffer-cache model.
func dbIOFactor(cal webtier.Calibration, level vmenv.Level, threads, sessions float64) float64 {
	used := cal.AppBaseMemMB + cal.ThreadMemMB*threads + cal.SessionMemMB*sessions
	cache := float64(level.MemoryMB) - used
	if cache < cal.DBMinCacheMB {
		cache = cal.DBMinCacheMB
	}
	return math.Pow(cal.DBRefCacheMB/cache, cal.DBIOExponent)
}
