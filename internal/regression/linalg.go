package regression

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("regression: singular system")

// solveLinear solves A x = b in place using Gaussian elimination with partial
// pivoting. A is a square matrix in row-major [][]float64 form; both A and b
// are clobbered. The returned slice aliases b.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("regression: dimension mismatch")
	}
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in column.
		pivot := col
		best := math.Abs(a[col][col])
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a[row][col]); v > best {
				best, pivot = v, row
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a[col][col]
		for row := col + 1; row < n; row++ {
			factor := a[row][col] * inv
			if factor == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= factor * a[col][k]
			}
			b[row] -= factor * b[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := b[col]
		for k := col + 1; k < n; k++ {
			sum -= a[col][k] * b[k]
		}
		b[col] = sum / a[col][col]
	}
	return b, nil
}

// leastSquares solves min ||X beta - y||^2 via the normal equations
// (X'X) beta = X'y. X has one row per observation.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("regression: dimension mismatch")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("regression: no features")
	}
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p {
			return nil, errors.New("regression: ragged design matrix")
		}
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	// Tiny ridge term keeps near-collinear designs solvable without visibly
	// biasing the fit.
	for i := 0; i < p; i++ {
		xtx[i][i] += 1e-9
	}
	return solveLinear(xtx, xty)
}
