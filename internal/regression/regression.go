// Package regression implements the polynomial least-squares fits used by the
// RAC policy-initialization step (paper §4.1, Fig. 4): from a small sample of
// measured configurations it builds a smooth predictor of response time over
// the whole configuration lattice.
//
// Two fit families are provided: one-dimensional polynomials of arbitrary
// degree (used for single-parameter sweeps such as Fig. 4) and full quadratic
// surfaces in d dimensions (used to interpolate the grouped configuration
// space during policy initialization).
package regression

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Poly is a one-dimensional polynomial c0 + c1 x + c2 x^2 + ...
type Poly struct {
	coeffs []float64
}

// FitPoly fits a polynomial of the given degree to the sample (xs, ys) by
// least squares. It requires at least degree+1 points.
func FitPoly(xs, ys []float64, degree int) (*Poly, error) {
	if degree < 0 {
		return nil, errors.New("regression: negative degree")
	}
	if len(xs) != len(ys) {
		return nil, errors.New("regression: x/y length mismatch")
	}
	if len(xs) < degree+1 {
		return nil, fmt.Errorf("regression: need %d points for degree %d, have %d",
			degree+1, degree, len(xs))
	}
	design := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree+1)
		v := 1.0
		for d := 0; d <= degree; d++ {
			row[d] = v
			v *= x
		}
		design[i] = row
	}
	coeffs, err := leastSquares(design, ys)
	if err != nil {
		return nil, err
	}
	return &Poly{coeffs: coeffs}, nil
}

// Eval evaluates the polynomial at x using Horner's rule.
func (p *Poly) Eval(x float64) float64 {
	var y float64
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		y = y*x + p.coeffs[i]
	}
	return y
}

// Degree returns the fitted polynomial degree.
func (p *Poly) Degree() int { return len(p.coeffs) - 1 }

// Coeffs returns a copy of the coefficients, constant term first.
func (p *Poly) Coeffs() []float64 {
	out := make([]float64, len(p.coeffs))
	copy(out, p.coeffs)
	return out
}

// String renders the polynomial for diagnostics.
func (p *Poly) String() string {
	var b strings.Builder
	for i, c := range p.coeffs {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.4g", c)
		if i == 1 {
			b.WriteString("·x")
		} else if i > 1 {
			fmt.Fprintf(&b, "·x^%d", i)
		}
	}
	return b.String()
}

// Quadratic is a full quadratic surface over d-dimensional inputs:
// y = c0 + Σ bi xi + Σ_{i<=j} qij xi xj.
type Quadratic struct {
	dim    int
	coeffs []float64
}

// quadraticFeatures expands x into the quadratic feature vector
// [1, x1..xd, x1x1, x1x2, ..., xdxd].
func quadraticFeatures(x []float64) []float64 {
	d := len(x)
	feats := make([]float64, 0, 1+d+d*(d+1)/2)
	feats = append(feats, 1)
	feats = append(feats, x...)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			feats = append(feats, x[i]*x[j])
		}
	}
	return feats
}

// FitQuadratic fits a full quadratic surface to the samples. Each row of xs
// must have the same dimensionality d, and at least 1 + d + d(d+1)/2 samples
// are required.
func FitQuadratic(xs [][]float64, ys []float64) (*Quadratic, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("regression: x/y length mismatch")
	}
	d := len(xs[0])
	if d == 0 {
		return nil, errors.New("regression: zero-dimensional input")
	}
	want := 1 + d + d*(d+1)/2
	if len(xs) < want {
		return nil, fmt.Errorf("regression: need %d points for %d-dim quadratic, have %d",
			want, d, len(xs))
	}
	design := make([][]float64, len(xs))
	for i, x := range xs {
		if len(x) != d {
			return nil, errors.New("regression: ragged input")
		}
		design[i] = quadraticFeatures(x)
	}
	coeffs, err := leastSquares(design, ys)
	if err != nil {
		return nil, err
	}
	return &Quadratic{dim: d, coeffs: coeffs}, nil
}

// QuadraticFromCoeffs rebuilds a quadratic surface from serialized
// coefficients (as returned by Coeffs) for the given input dimensionality.
func QuadraticFromCoeffs(dim int, coeffs []float64) (*Quadratic, error) {
	if dim < 1 {
		return nil, errors.New("regression: non-positive dimension")
	}
	want := 1 + dim + dim*(dim+1)/2
	if len(coeffs) != want {
		return nil, fmt.Errorf("regression: %d-dim quadratic needs %d coefficients, got %d",
			dim, want, len(coeffs))
	}
	cp := make([]float64, len(coeffs))
	copy(cp, coeffs)
	return &Quadratic{dim: dim, coeffs: cp}, nil
}

// Dim returns the input dimensionality of the surface.
func (q *Quadratic) Dim() int { return q.dim }

// Coeffs returns a copy of the surface coefficients in feature order
// (constant, linear terms, then upper-triangular quadratic terms).
func (q *Quadratic) Coeffs() []float64 {
	out := make([]float64, len(q.coeffs))
	copy(out, q.coeffs)
	return out
}

// Eval evaluates the surface at x. It panics if len(x) != Dim().
func (q *Quadratic) Eval(x []float64) float64 {
	if len(x) != q.dim {
		panic("regression: Quadratic.Eval dimension mismatch")
	}
	feats := quadraticFeatures(x)
	var y float64
	for i, f := range feats {
		y += q.coeffs[i] * f
	}
	return y
}

// RSquared returns the coefficient of determination of predictions preds
// against observations ys. It returns 1 for a perfect fit and can be negative
// for fits worse than the mean.
func RSquared(ys, preds []float64) float64 {
	if len(ys) == 0 || len(ys) != len(preds) {
		return math.NaN()
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i, y := range ys {
		r := y - preds[i]
		ssRes += r * r
		t := y - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}
