package regression

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitPolyExactQuadratic(t *testing.T) {
	// y = 2 + 3x - 0.5x^2 sampled exactly.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x - 0.5*x*x
	}
	p, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Coeffs()
	want := []float64{2, 3, -0.5}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-8 {
			t.Fatalf("coeffs = %v, want %v", c, want)
		}
	}
	if p.Degree() != 2 {
		t.Fatalf("Degree = %d", p.Degree())
	}
	// Interpolation at an unseen point.
	if got := p.Eval(1.5); math.Abs(got-(2+4.5-1.125)) > 1e-8 {
		t.Fatalf("Eval(1.5) = %v", got)
	}
}

func TestFitPolyUnderdetermined(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Fatal("expected error for too few points")
	}
}

func TestFitPolyMismatchedLengths(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2, 3}, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected error for mismatched inputs")
	}
}

func TestFitPolyNegativeDegree(t *testing.T) {
	if _, err := FitPoly([]float64{1}, []float64{1}, -1); err == nil {
		t.Fatal("expected error for negative degree")
	}
}

func TestFitPolyConstant(t *testing.T) {
	p, err := FitPoly([]float64{1, 2, 3}, []float64{5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The tiny ridge regularizer perturbs the constant at the 1e-9 level.
	if got := p.Eval(100); math.Abs(got-5) > 1e-6 {
		t.Fatalf("constant fit Eval = %v", got)
	}
}

func TestFitPolyRecoversNoisyLine(t *testing.T) {
	// y = 1 + 2x with small deterministic perturbation: the fit should land
	// close to the true line.
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		x := float64(i) / 5
		noise := 0.01 * math.Sin(float64(i)*12.9898)
		xs = append(xs, x)
		ys = append(ys, 1+2*x+noise)
	}
	p, err := FitPoly(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Coeffs()
	if math.Abs(c[0]-1) > 0.05 || math.Abs(c[1]-2) > 0.02 {
		t.Fatalf("noisy line fit %v", c)
	}
}

func TestQuadraticSurfaceExact(t *testing.T) {
	// y = 1 + 2a - b + 0.5a² + ab - 0.25b²
	f := func(a, b float64) float64 {
		return 1 + 2*a - b + 0.5*a*a + a*b - 0.25*b*b
	}
	var xs [][]float64
	var ys []float64
	for a := -2.0; a <= 2; a++ {
		for b := -2.0; b <= 2; b++ {
			xs = append(xs, []float64{a, b})
			ys = append(ys, f(a, b))
		}
	}
	q, err := FitQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dim() != 2 {
		t.Fatalf("Dim = %d", q.Dim())
	}
	for _, probe := range [][]float64{{0.5, 0.5}, {-1.5, 2.5}, {3, -3}} {
		want := f(probe[0], probe[1])
		if got := q.Eval(probe); math.Abs(got-want) > 1e-6 {
			t.Fatalf("Eval(%v) = %v, want %v", probe, got, want)
		}
	}
}

func TestQuadraticUnderdetermined(t *testing.T) {
	xs := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	ys := []float64{1, 2, 3}
	if _, err := FitQuadratic(xs, ys); err == nil {
		t.Fatal("expected error: 2-dim quadratic needs 6 points")
	}
}

func TestQuadraticRaggedInput(t *testing.T) {
	xs := [][]float64{{1, 1}, {2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}}
	ys := []float64{1, 2, 3, 4, 5, 6}
	if _, err := FitQuadratic(xs, ys); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestQuadraticEvalDimPanics(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 6; i++ {
		a, b := float64(i), float64(i*i%5)
		xs = append(xs, []float64{a, b})
		ys = append(ys, a+b)
	}
	q, err := FitQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong dim did not panic")
		}
	}()
	q.Eval([]float64{1})
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	if got := RSquared(ys, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect fit R² = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := RSquared(ys, mean); math.Abs(got) > 1e-12 {
		t.Fatalf("mean predictor R² = %v", got)
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Fatal("empty R² should be NaN")
	}
	if !math.IsNaN(RSquared(ys, ys[:2])) {
		t.Fatal("mismatched R² should be NaN")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x=2, y=1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution %v", x)
	}
}

func TestPolyEvalHornerProperty(t *testing.T) {
	// Horner evaluation equals naive power evaluation.
	check := func(c0, c1, c2, c3, x float64) bool {
		// Constrain quick's unbounded floats to a numerically sane range.
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 100)
		}
		c0, c1, c2, c3, x = bound(c0), bound(c1), bound(c2), bound(c3), bound(x)
		p := &Poly{coeffs: []float64{c0, c1, c2, c3}}
		naive := c0 + c1*x + c2*x*x + c3*x*x*x
		got := p.Eval(x)
		scale := math.Max(1, math.Abs(naive))
		return math.Abs(got-naive) <= 1e-9*scale
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
