package httpd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(webtier.DefaultParams(), vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestNewServerValidation(t *testing.T) {
	bad := webtier.DefaultParams()
	bad.MaxClients = 0
	if _, err := NewServer(bad, vmenv.Level1); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewServer(webtier.DefaultParams(), vmenv.Level{}); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestPagesServe(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/home", "/detail?q=x", "/search?q=systems", "/cart", "/buy", "/admin-task", "/healthz"} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, code, body)
		}
	}
}

func TestSearchFindsCatalogue(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/search?q=systems")
	if code != http.StatusOK || !strings.Contains(body, "hits=") {
		t.Fatalf("search response %d %q", code, body)
	}
	if strings.Contains(body, "hits=0") {
		t.Fatal("search found nothing for a known subject")
	}
}

func TestBuyPlacesOrders(t *testing.T) {
	srv, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		code, body := get(t, ts.URL+"/buy")
		if code != http.StatusOK || !strings.Contains(body, "order=") {
			t.Fatalf("buy response %d %q", code, body)
		}
	}
	if srv.Stats().Served < 3 {
		t.Fatalf("stats %+v", srv.Stats())
	}
}

func TestSessionsPersistViaCookies(t *testing.T) {
	_, ts := newTestServer(t)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Jar: jar, Timeout: 5 * time.Second}

	fetch := func() string {
		resp, err := client.Get(ts.URL + "/home")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return sessionField(string(body))
	}
	s1 := fetch()
	s2 := fetch()
	if s1 == "" || s1 != s2 {
		t.Fatalf("session not sticky: %q vs %q", s1, s2)
	}

	// Without a jar each request gets a fresh session.
	bare := &http.Client{Timeout: 5 * time.Second}
	resp, err := bare.Get(ts.URL + "/home")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if sessionField(string(body)) == s1 {
		t.Fatal("jarless client reused a session")
	}
}

func sessionField(body string) string {
	for _, f := range strings.Fields(body) {
		if strings.HasPrefix(f, "session=") {
			return f
		}
	}
	return ""
}

func TestReconfigureLive(t *testing.T) {
	srv, ts := newTestServer(t)
	p := srv.Params()
	p.MaxClients = 77
	p.SessionTimeoutMin = 5
	if err := srv.Reconfigure(p); err != nil {
		t.Fatal(err)
	}
	if srv.Params().MaxClients != 77 {
		t.Fatal("reconfigure did not take")
	}
	// The server still serves afterwards.
	code, _ := get(t, ts.URL+"/home")
	if code != http.StatusOK {
		t.Fatalf("status %d after reconfigure", code)
	}
	bad := p
	bad.MaxThreads = 0
	if err := srv.Reconfigure(bad); err == nil {
		t.Fatal("invalid reconfigure accepted")
	}
}

func TestAdminConfigEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	// GET returns the current config.
	code, body := get(t, ts.URL+"/admin/config")
	if code != http.StatusOK {
		t.Fatalf("GET config: %d", code)
	}
	var got webtier.Params
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.MaxClients != srv.Params().MaxClients {
		t.Fatalf("config mismatch: %+v", got)
	}
	// POST applies a new one.
	got.MaxThreads = 123
	buf, _ := json.Marshal(got)
	resp, err := http.Post(ts.URL+"/admin/config", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST config: %d", resp.StatusCode)
	}
	if srv.Params().MaxThreads != 123 {
		t.Fatal("POSTed config not applied")
	}
	// Garbage rejected.
	resp, err = http.Post(ts.URL+"/admin/config", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST: %d", resp.StatusCode)
	}
}

func TestAdminLevelEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/admin/level?name=Level-3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST level: %d", resp.StatusCode)
	}
	if srv.Level() != vmenv.Level3 {
		t.Fatal("level not applied")
	}
	code, body := get(t, ts.URL+"/admin/level")
	if code != http.StatusOK || !strings.Contains(body, "Level-3") {
		t.Fatalf("GET level: %d %q", code, body)
	}
	resp, err = http.Post(ts.URL+"/admin/level?name=Level-9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level POST: %d", resp.StatusCode)
	}
}

func TestMaxClientsRejectsWhenSaturated(t *testing.T) {
	srv, err := NewServer(webtier.DefaultParams(), vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	p := srv.Params()
	p.MaxClients = 1
	if err := srv.Reconfigure(p); err != nil {
		t.Fatal(err)
	}
	// Hold the only slot.
	if !srv.webSlots.tryAcquire(time.Second) {
		t.Fatal("could not take the only slot")
	}
	defer srv.webSlots.release()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/home")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server returned %d", resp.StatusCode)
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestStartShutdown(t *testing.T) {
	srv, err := NewServer(webtier.DefaultParams(), vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The serve goroutine has exited (Shutdown waits on done).
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

func TestShutdownBoundedByDeadline(t *testing.T) {
	srv, err := NewServer(webtier.DefaultParams(), vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	// A handler that never finishes within the shutdown deadline.
	stuck := make(chan struct{})
	t.Cleanup(func() { close(stuck) })
	srv.Mount("/stuck", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stuck:
		case <-time.After(30 * time.Second):
		}
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	go func() {
		close(started)
		http.Get("http://" + addr + "/stuck") //nolint:errcheck — cut by shutdown
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the request reach the handler

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	begin := time.Now()
	err = srv.Shutdown(ctx)
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v despite the 200ms deadline", elapsed)
	}
	if err == nil {
		t.Fatal("Shutdown reported a clean drain with a stuck in-flight request")
	}
}

func TestMountServesExtraRoutes(t *testing.T) {
	srv, err := NewServer(webtier.DefaultParams(), vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	srv.Mount("/admin/fleet", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fleet here") //nolint:errcheck
	}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if code, body := get(t, ts.URL+"/admin/fleet"); code != http.StatusOK || body != "fleet here" {
		t.Fatalf("mounted route: %d %q", code, body)
	}
	// The built-in routes are untouched.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz broken by Mount: %d", code)
	}
}

func TestSemaphoreResize(t *testing.T) {
	s := newSemaphore(1)
	if !s.tryAcquire(time.Millisecond) {
		t.Fatal("fresh semaphore empty")
	}
	if s.tryAcquire(5 * time.Millisecond) {
		t.Fatal("over-acquired")
	}
	s.resize(2)
	if !s.tryAcquire(100 * time.Millisecond) {
		t.Fatal("resize did not free capacity")
	}
	s.release()
	s.release()
}

func TestSessionStoreTTL(t *testing.T) {
	st := newSessionStore(20 * time.Millisecond)
	id := st.create()
	if !st.touch(id) {
		t.Fatal("fresh session dead")
	}
	time.Sleep(40 * time.Millisecond)
	if st.touch(id) {
		t.Fatal("expired session alive")
	}
	if st.touch("nope") {
		t.Fatal("unknown session alive")
	}
}

func TestScaled(t *testing.T) {
	if got := scaled(1.0); got != time.Duration(float64(time.Second)/TimeScale) {
		t.Fatalf("scaled(1s) = %v", got)
	}
}
