// Package httpd implements a real, runnable three-tier web application over
// net/http with the same eight knobs as the paper's testbed: a web front
// with an in-flight request cap (MaxClients) and keep-alive control, an
// application layer with a bounded thread pool (MaxThreads) and TTL'd
// sessions (SessionTimeout), and an in-memory bookstore database with
// artificial service times that scale with a VM level.
//
// It exists so the RAC agent can be demonstrated against live HTTP traffic —
// the agent only sees response times from the load generator and
// configuration knobs through Reconfigure, exactly matching the paper's
// non-intrusive design. The time scale is compressed: service demands are in
// the hundreds of microseconds so examples converge in seconds.
package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rac-project/rac/internal/admission"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// TimeScale compresses the paper's service demands: live demands are the
// TPC-W class demands divided by this factor, so a 20 ms database query
// becomes 200 µs and whole tuning sessions run in seconds.
const TimeScale = 100.0

// Server is the live three-tier stack.
type Server struct {
	mu     sync.Mutex
	params webtier.Params
	level  vmenv.Level

	webSlots   *semaphore
	appThreads *semaphore
	sessions   *sessionStore
	db         *bookstore

	// gate is the SLO admission controller: the fast-reject path answers 503
	// before the request touches the web tier's semaphore wait. Always
	// constructed; with zero caps it admits everything.
	gate *admission.Gate

	httpSrv  *http.Server
	listener net.Listener
	done     chan struct{}

	// Idle keep-alive connections are reaped by per-connection timers so the
	// timeout can change at runtime (http.Server.IdleTimeout cannot be
	// mutated while serving).
	idleMu     sync.Mutex
	idleTimers map[net.Conn]*time.Timer

	// Counters (atomic; exposed via /admin/stats).
	served   atomic.Int64
	rejected atomic.Int64

	// Telemetry: per-class latency histograms and request counters on the
	// request hot path, exposed in Prometheus text form at /metrics.
	tel         *telemetry.Registry
	reqLatency  map[tpcw.Class]*telemetry.Histogram
	reqServed   map[tpcw.Class]*telemetry.Counter
	rejWeb      *telemetry.Counter
	rejApp      *telemetry.Counter
	sessGauge   *telemetry.Gauge
	admAdmitted *telemetry.Counter
	admRejected *telemetry.Counter
	admScale    *telemetry.Gauge
	admRegime   *telemetry.Gauge

	// trace, when set, is served as JSON at /admin/trace (the agent's
	// decision ring; attached by the experiment driver, not the server).
	traceMu sync.Mutex
	trace   *telemetry.Trace

	// extra routes mounted by the embedding process (e.g. the fleet admin
	// API at /admin/fleet), registered before Start.
	extraMu sync.Mutex
	extra   map[string]http.Handler
}

// NewServer builds the stack with the given initial configuration and level.
func NewServer(params webtier.Params, level vmenv.Level) (*Server, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if !level.Valid() {
		return nil, fmt.Errorf("httpd: invalid level %+v", level)
	}
	s := &Server{
		params:     params,
		level:      level,
		webSlots:   newSemaphore(params.MaxClients),
		appThreads: newSemaphore(params.MaxThreads),
		sessions:   newSessionStore(time.Duration(params.SessionTimeoutMin * float64(time.Minute) / TimeScale)),
		db:         newBookstore(level),
		done:       make(chan struct{}),
		tel:        telemetry.NewRegistry(),
		reqLatency: make(map[tpcw.Class]*telemetry.Histogram, len(tpcw.Classes())),
		reqServed:  make(map[tpcw.Class]*telemetry.Counter, len(tpcw.Classes())),
	}
	for _, class := range tpcw.Classes() {
		labels := telemetry.Labels{"class": class.String()}
		s.reqLatency[class] = s.tel.Histogram("httpd_request_seconds",
			"Request latency by TPC-W page class, in paper-scale seconds.", nil, labels)
		s.reqServed[class] = s.tel.Counter("httpd_requests_total",
			"Requests served by TPC-W page class.", labels)
	}
	s.rejWeb = s.tel.Counter("httpd_rejected_total",
		"Requests rejected by tier admission control.", telemetry.Labels{"tier": "web"})
	s.rejApp = s.tel.Counter("httpd_rejected_total",
		"Requests rejected by tier admission control.", telemetry.Labels{"tier": "app"})
	s.sessGauge = s.tel.Gauge("httpd_sessions",
		"Live sessions in the TTL'd session store.", nil)
	s.admAdmitted = s.tel.Counter("rac_admission_admitted_total",
		"Arrivals admitted past the SLO gate.", nil)
	s.admRejected = s.tel.Counter("rac_admission_rejected_total",
		"Arrivals fast-rejected (503) by the SLO gate.", nil)
	s.admScale = s.tel.Gauge("rac_admission_scale",
		"Epoch-adaptive cap scale of the SLO gate.", nil)
	s.admRegime = s.tel.Gauge("rac_admission_regime",
		"Epoch regime of the SLO gate (0=hold, 1=exploit, 2=spread).", nil)
	s.admScale.Set(1)
	gate, err := admission.NewGate(admission.Params{
		MaxConcurrent: params.AdmitConcurrency,
		MaxQueue:      params.AdmitQueue,
	}, admission.DefaultEpoch())
	if err != nil {
		return nil, err
	}
	gate.OnDecision(s.onAdmissionDecision)
	s.gate = gate
	return s, nil
}

// onAdmissionDecision publishes each epoch decision of the gate's adaptive
// loop: gauges for the scrape path, a trace event for the decision ring.
func (s *Server) onAdmissionDecision(d admission.Decision) {
	s.admScale.Set(d.Scale)
	s.admRegime.Set(float64(d.Regime))
	s.traceMu.Lock()
	tr := s.trace
	s.traceMu.Unlock()
	if tr != nil {
		tr.Add(telemetry.Event{
			Kind:       telemetry.KindAdmission,
			Iteration:  d.Epoch,
			RejectRate: d.RejectRate,
			Detail:     d.Regime.String(),
		})
	}
}

// Telemetry returns the server's metrics registry so other layers (agent,
// load driver, live adapter) can register their instruments on the same
// /metrics page.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// SetTrace attaches the decision-trace ring served at /admin/trace.
func (s *Server) SetTrace(t *telemetry.Trace) {
	s.traceMu.Lock()
	s.trace = t
	s.traceMu.Unlock()
}

// Mount registers an extra handler on the server's mux under the given
// pattern — how the fleet admin API lands next to /metrics and /admin/trace.
// Call before Start (or Handler); later calls only affect subsequently built
// handlers.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.extraMu.Lock()
	if s.extra == nil {
		s.extra = make(map[string]http.Handler)
	}
	s.extra[pattern] = h
	s.extraMu.Unlock()
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("httpd: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.idleTimers = make(map[net.Conn]*time.Timer)
	s.httpSrv = &http.Server{
		Handler: s.Handler(),
		// A generous fixed ceiling; the configured keep-alive timeout is
		// enforced dynamically by per-connection reaper timers.
		IdleTimeout: time.Duration(30 * float64(time.Second) / TimeScale),
		ReadTimeout: 10 * time.Second,
		ConnState:   s.trackConn,
	}
	srv := s.httpSrv
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal shutdown signal.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The error cannot be returned; it surfaces through failed
			// requests at the load generator.
			_ = err
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops the server gracefully: the listener closes immediately (no
// new connections), in-flight requests drain, and the wait is bounded by ctx —
// when the deadline expires before the drain completes, remaining connections
// are cut with Close so Shutdown always returns by the deadline instead of
// hanging on a stuck request.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// Bounded drain: the deadline passed with connections still open.
		_ = srv.Close()
	}
	<-s.done
	// Stop any leftover reaper timers.
	s.idleMu.Lock()
	for c, t := range s.idleTimers {
		t.Stop()
		delete(s.idleTimers, c)
	}
	s.idleMu.Unlock()
	return err
}

func (s *Server) keepAlive() time.Duration {
	return time.Duration(s.params.KeepAliveTimeoutSec * float64(time.Second) / TimeScale)
}

// Params returns the current configuration.
func (s *Server) Params() webtier.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params
}

// Level returns the simulated VM level of the app/db tier.
func (s *Server) Level() vmenv.Level {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.level
}

// Reconfigure applies a new configuration at runtime: semaphores resize
// live, the session TTL changes for subsequent touches.
func (s *Server) Reconfigure(params webtier.Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.params = params
	s.webSlots.resize(params.MaxClients)
	s.appThreads.resize(params.MaxThreads)
	s.sessions.setTTL(time.Duration(params.SessionTimeoutMin * float64(time.Minute) / TimeScale))
	// The keep-alive change applies to connections that go idle from now on
	// via the per-connection reaper timers.
	return s.gate.SetParams(admission.Params{
		MaxConcurrent: params.AdmitConcurrency,
		MaxQueue:      params.AdmitQueue,
	})
}

// trackConn reaps connections that stay idle beyond the configured
// keep-alive timeout.
func (s *Server) trackConn(c net.Conn, state http.ConnState) {
	switch state {
	case http.StateIdle:
		ttl := s.keepAliveLocked()
		s.idleMu.Lock()
		if old, ok := s.idleTimers[c]; ok {
			old.Stop()
		}
		s.idleTimers[c] = time.AfterFunc(ttl, func() { c.Close() })
		s.idleMu.Unlock()
	case http.StateActive, http.StateHijacked, http.StateClosed:
		s.idleMu.Lock()
		if t, ok := s.idleTimers[c]; ok {
			t.Stop()
			delete(s.idleTimers, c)
		}
		s.idleMu.Unlock()
	}
}

// keepAliveLocked reads the configured keep-alive timeout under the lock.
func (s *Server) keepAliveLocked() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keepAlive()
}

// SetLevel reallocates the simulated VM hosting the app and db tiers.
func (s *Server) SetLevel(level vmenv.Level) error {
	if !level.Valid() {
		return fmt.Errorf("httpd: invalid level %+v", level)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.level = level
	s.db.setLevel(level)
	return nil
}

// Stats is the server-side counter snapshot. Rejected aggregates every 503
// (gate, web tier, app tier); GateRejected isolates the SLO gate's share, and
// GateScale/GateRegime expose the epoch-adaptive loop's current stance.
type Stats struct {
	Served       int64   `json:"served"`
	Rejected     int64   `json:"rejected"`
	Sessions     int     `json:"sessions"`
	GateAdmitted int64   `json:"gate_admitted,omitempty"`
	GateRejected int64   `json:"gate_rejected,omitempty"`
	GateScale    float64 `json:"gate_scale,omitempty"`
	GateRegime   string  `json:"gate_regime,omitempty"`
}

// Stats returns the counter snapshot.
func (s *Server) Stats() Stats {
	snap := s.gate.Snapshot()
	st := Stats{
		Served:       s.served.Load(),
		Rejected:     s.rejected.Load(),
		Sessions:     s.sessions.len(),
		GateAdmitted: snap.Admitted,
		GateRejected: snap.Rejected,
	}
	if s.gate.Enabled() {
		st.GateScale = snap.Scale
		st.GateRegime = snap.Regime.String()
	}
	return st
}

// Handler returns the HTTP routes (also usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/home", s.page(tpcw.ClassHome))
	mux.HandleFunc("/detail", s.page(tpcw.ClassProductDetail))
	mux.HandleFunc("/search", s.page(tpcw.ClassSearch))
	mux.HandleFunc("/cart", s.page(tpcw.ClassShoppingCart))
	mux.HandleFunc("/buy", s.page(tpcw.ClassBuyConfirm))
	mux.HandleFunc("/admin-task", s.page(tpcw.ClassAdmin))
	mux.HandleFunc("/admin/config", s.handleConfig)
	mux.HandleFunc("/admin/stats", s.handleStats)
	mux.HandleFunc("/admin/level", s.handleLevel)
	mux.HandleFunc("/admin/trace", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.extraMu.Lock()
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.extraMu.Unlock()
	return mux
}

// page builds the three-tier request path for one interaction class.
func (s *Server) page(class tpcw.Class) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()

		// SLO admission gate: one mutex acquisition decides the arrival, so a
		// rejection costs microseconds — before the web tier's semaphore wait
		// can queue the request for up to its full 2 s timeout.
		release, ok := s.gate.Enter(class)
		if !ok {
			s.rejected.Add(1)
			s.admRejected.Inc()
			http.Error(w, "admission gate", http.StatusServiceUnavailable)
			return
		}
		defer release()
		s.admAdmitted.Inc()

		// Web tier admission: MaxClients.
		if !s.webSlots.tryAcquire(2 * time.Second) {
			s.rejected.Add(1)
			s.rejWeb.Inc()
			http.Error(w, "server busy", http.StatusServiceUnavailable)
			return
		}
		defer s.webSlots.release()

		demand := tpcw.ClassDemand(class)
		spin(scaled(demand.Web))

		// Session handling (app tier entry).
		sid, fresh := s.sessionFor(w, r)
		if fresh {
			spin(scaled(webtier.DefaultCalibration().SessionCreateCostSec))
		}

		// App tier: bounded thread pool.
		if !s.appThreads.tryAcquire(2 * time.Second) {
			s.rejected.Add(1)
			s.rejApp.Inc()
			http.Error(w, "app pool exhausted", http.StatusServiceUnavailable)
			return
		}
		result := func() string {
			defer s.appThreads.release()
			spin(scaled(demand.App))
			// Database tier.
			return s.db.query(class, r.URL.Query().Get("q"))
		}()

		s.served.Add(1)
		s.reqServed[class].Inc()
		// Latency in paper-scale seconds, directly comparable with the
		// simulator's response times and the agent's SLA.
		s.reqLatency[class].Observe(time.Since(start).Seconds() * TimeScale)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "class=%s session=%s result=%s\n", class, sid, result)
	}
}

// sessionFor resolves or creates the request's session.
func (s *Server) sessionFor(w http.ResponseWriter, r *http.Request) (string, bool) {
	if c, err := r.Cookie("RACSESSION"); err == nil {
		if s.sessions.touch(c.Value) {
			return c.Value, false
		}
	}
	sid := s.sessions.create()
	http.SetCookie(w, &http.Cookie{Name: "RACSESSION", Value: sid, Path: "/"})
	return sid, true
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		params := s.params
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(params); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPost, http.MethodPut:
		var params webtier.Params
		if err := json.NewDecoder(r.Body).Decode(&params); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Reconfigure(params); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves the Prometheus text exposition of every instrument
// registered on the server's telemetry registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Gauges with no natural write path are sampled at scrape time.
	s.sessGauge.Set(float64(s.sessions.len()))
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	if err := s.tel.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleTrace serves the attached decision-trace ring as a JSON array
// (empty when no trace is attached), oldest event first.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.traceMu.Lock()
	tr := s.trace
	s.traceMu.Unlock()
	events := []telemetry.Event{}
	if tr != nil {
		events = tr.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(events); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLevel(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		fmt.Fprintln(w, s.Level().Name)
	case http.MethodPost, http.MethodPut:
		name := r.URL.Query().Get("name")
		level, err := vmenv.ByName(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.SetLevel(level); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// scaled converts a paper-scale demand (seconds) to the compressed live
// duration.
func scaled(seconds float64) time.Duration {
	return time.Duration(seconds / TimeScale * float64(time.Second))
}

// spin simulates CPU work for the given duration. Sleeping (rather than
// burning cycles) keeps tests cheap while preserving latency structure.
func spin(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// semaphore is a resizable counting semaphore.
type semaphore struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int
	inUse int
}

func newSemaphore(capacity int) *semaphore {
	s := &semaphore{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tryAcquire waits up to timeout for a slot.
func (s *semaphore) tryAcquire(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.inUse >= s.cap {
		if time.Now().After(deadline) {
			return false
		}
		// Wake periodically to honor the deadline without a dedicated timer
		// goroutine per waiter.
		waker := time.AfterFunc(10*time.Millisecond, s.cond.Broadcast)
		s.cond.Wait()
		waker.Stop()
	}
	s.inUse++
	return true
}

func (s *semaphore) release() {
	s.mu.Lock()
	s.inUse--
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *semaphore) resize(capacity int) {
	s.mu.Lock()
	s.cap = capacity
	s.mu.Unlock()
	s.cond.Broadcast()
}

// sessionStore is a TTL'd session table.
type sessionStore struct {
	mu   sync.Mutex
	ttl  time.Duration
	next int64
	data map[string]time.Time // session id → expiry
}

func newSessionStore(ttl time.Duration) *sessionStore {
	if ttl <= 0 {
		ttl = time.Second
	}
	return &sessionStore{ttl: ttl, data: make(map[string]time.Time)}
}

func (st *sessionStore) setTTL(ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	st.mu.Lock()
	st.ttl = ttl
	st.mu.Unlock()
}

func (st *sessionStore) create() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	id := "s" + strconv.FormatInt(st.next, 36)
	st.data[id] = time.Now().Add(st.ttl)
	st.gcLocked()
	return id
}

// touch refreshes the session and reports whether it was alive.
func (st *sessionStore) touch(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	expiry, ok := st.data[id]
	if !ok || time.Now().After(expiry) {
		delete(st.data, id)
		return false
	}
	st.data[id] = time.Now().Add(st.ttl)
	return true
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gcLocked()
	return len(st.data)
}

// gcLocked drops expired sessions; called with the lock held.
func (st *sessionStore) gcLocked() {
	now := time.Now()
	for id, expiry := range st.data {
		if now.After(expiry) {
			delete(st.data, id)
		}
	}
}
