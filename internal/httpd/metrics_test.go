package httpd

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/telemetry"
)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/home", "/home", "/search?q=systems"} {
		if code, body := get(t, ts.URL+path); code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, code, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != telemetry.PrometheusContentType {
		t.Errorf("content type %q, want %q", got, telemetry.PrometheusContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE httpd_request_seconds histogram",
		`httpd_request_seconds_bucket{class="home",le="+Inf"} 2`,
		`httpd_request_seconds_count{class="home"} 2`,
		`httpd_requests_total{class="home"} 2`,
		`httpd_requests_total{class="search"} 1`,
		`httpd_rejected_total{tier="web"} 0`,
		"# TYPE httpd_sessions gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}

func TestMetricsSharedRegistry(t *testing.T) {
	srv, ts := newTestServer(t)
	// A foreign layer registering on the server's registry (the way the
	// agent and load driver do) must appear on the same /metrics page.
	srv.Telemetry().Counter("rac_agent_steps_total", "steps", nil).Add(3)

	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, "rac_agent_steps_total 3") {
		t.Fatalf("agent counter not exposed:\n%s", body)
	}
}

func TestAdminTraceEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)

	// Without a trace attached the endpoint serves an empty array.
	code, body := get(t, ts.URL+"/admin/trace")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty trace: %d %q", code, body)
	}

	tr := telemetry.NewTrace(8)
	tr.Add(telemetry.Event{Kind: telemetry.KindStep, Iteration: 1, State: "30|10", Reward: 0.4})
	tr.Add(telemetry.Event{Kind: telemetry.KindPolicySwitch, Iteration: 2, Policy: "ctx-2"})
	srv.SetTrace(tr)

	_, body = get(t, ts.URL+"/admin/trace")
	var events []telemetry.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, body)
	}
	if len(events) != 2 || events[0].Kind != telemetry.KindStep || events[1].Policy != "ctx-2" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("sequence numbers = %d, %d", events[0].Seq, events[1].Seq)
	}
}
