package httpd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// LoadDriver is what the live system needs from a load generator; package
// loadgen provides the production implementation (an interface here avoids
// an import cycle and lets tests fake traffic).
type LoadDriver interface {
	Run(ctx context.Context, duration time.Duration) (MeasureResult, error)
	SetWorkload(w tpcw.Workload) error
	Workload() tpcw.Workload
}

// MeasureResult is one live measurement interval, in paper-scale seconds.
// Offered and Shed are only populated by open-loop drivers: the offered
// schedule is fixed in advance, and arrivals the harness could not admit in
// time are shed (counted, not silently delayed) so recorded latencies stay
// free of coordinated omission.
type MeasureResult struct {
	MeanRT     float64
	P95RT      float64
	Throughput float64
	Completed  int
	Errors     int
	Offered    int
	Shed       int
	// Rejected counts arrivals the server's SLO admission gate answered with
	// 503 — deliberate load-shedding by the system under test, kept apart
	// from Errors (the system failing) and Shed (the harness holding back).
	Rejected int
	// OfferedRate is the interval's offered load in paper-scale requests per
	// second. Under a workload schedule it varies interval to interval, which
	// is how the agent's context detection sees the drift.
	OfferedRate float64
}

// Live adapts the real HTTP stack plus a load generator to the
// system.System interface, so the RAC agent tunes live traffic exactly as it
// tunes the simulator.
type Live struct {
	space  *config.Space
	server *Server
	driver LoadDriver
	cfg    config.Config

	// Interval is the wall-clock measurement window per Measure call.
	Interval time.Duration
	// Timeout bounds one Measure call end to end; a driver that has not
	// returned by then yields a transient error instead of wedging the agent
	// loop. 0 means Interval + 5s.
	Timeout time.Duration

	// Measurement instruments on the server's shared registry.
	intervals *telemetry.Counter
	reqErrors *telemetry.Counter
	empty     *telemetry.Counter
	timeouts  *telemetry.Counter
}

var (
	_ system.System     = (*Live)(nil)
	_ system.Adjustable = (*Live)(nil)
)

// NewLive wraps a started server and a load driver. The initial
// configuration must match what the server is running.
func NewLive(space *config.Space, server *Server, driver LoadDriver, initial config.Config) (*Live, error) {
	if space == nil {
		space = config.Default()
	}
	if server == nil {
		return nil, errors.New("httpd: nil server")
	}
	if driver == nil {
		return nil, errors.New("httpd: nil driver")
	}
	if initial == nil {
		initial = space.DefaultConfig()
	}
	if err := space.Validate(initial); err != nil {
		return nil, err
	}
	reg := server.Telemetry()
	return &Live{
		space:    space,
		server:   server,
		driver:   driver,
		cfg:      initial.Clone(),
		Interval: 2 * time.Second,
		intervals: reg.Counter("live_measure_intervals_total",
			"Measurement intervals driven against the live stack.", nil),
		reqErrors: reg.Counter("live_request_errors_total",
			"Failed or timed-out requests observed by the load driver during measurement.", nil),
		empty: reg.Counter("live_measure_empty_total",
			"Measurement intervals that completed no requests at all.", nil),
		timeouts: reg.Counter("live_measure_timeouts_total",
			"Measurement intervals abandoned because the load driver missed its deadline.", nil),
	}, nil
}

// Space returns the configuration space.
func (l *Live) Space() *config.Space { return l.space }

// Config returns the applied configuration.
func (l *Live) Config() config.Config { return l.cfg.Clone() }

// Apply reconfigures the live server. Reconfiguration is in-process and
// quick, so the context is only checked on entry.
func (l *Live) Apply(ctx context.Context, cfg config.Config) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := l.space.Validate(cfg); err != nil {
		return err
	}
	params, err := webtier.ParamsFromConfig(l.space, cfg)
	if err != nil {
		return err
	}
	if err := l.server.Reconfigure(params); err != nil {
		return err
	}
	l.cfg = cfg.Clone()
	return nil
}

// Measure generates load for one interval and returns application-level
// metrics in paper-scale units. Request errors and timeouts are reported in
// the returned Metrics (and counted on the registry) rather than folded into
// a generic failure; the interval only errors when nothing completed, and
// that error distinguishes an idle interval from an all-errors one.
//
// The whole call runs under a deadline (Timeout, default Interval + 5s): a
// wedged driver produces a classified transient error the agent's resilience
// policy can retry or degrade on, never a hung loop. Empty intervals and
// driver failures are transient for the same reason — the next interval may
// well be fine. Caller cancellation (ctx) is different: it aborts the
// in-flight interval and returns ctx.Err() unwrapped, so a draining daemon's
// cancel is never retried as if it were a flaky measurement.
func (l *Live) Measure(ctx context.Context) (system.Metrics, error) {
	timeout := l.Timeout
	if timeout <= 0 {
		timeout = l.Interval + 5*time.Second
	}
	mctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	type outcome struct {
		res MeasureResult
		err error
	}
	done := make(chan outcome, 1) // buffered: a late driver must not leak its goroutine
	go func() {
		res, err := l.driver.Run(mctx, l.Interval)
		done <- outcome{res, err}
	}()

	var res MeasureResult
	select {
	case <-mctx.Done():
		if err := ctx.Err(); err != nil {
			return system.Metrics{}, err
		}
		l.timeouts.Inc()
		return system.Metrics{}, system.Transient(fmt.Errorf("httpd: measure: driver missed its %v deadline", timeout))
	case out := <-done:
		if out.err != nil {
			if err := ctx.Err(); err != nil {
				return system.Metrics{}, err
			}
			return system.Metrics{}, system.Transient(fmt.Errorf("httpd: measure: %w", out.err))
		}
		res = out.res
	}
	l.intervals.Inc()
	if res.Errors > 0 {
		l.reqErrors.Add(int64(res.Errors))
	}
	if res.Completed == 0 {
		l.empty.Inc()
		if res.Errors > 0 {
			return system.Metrics{}, system.Transient(fmt.Errorf("httpd: interval completed no requests (%d errored or timed out)", res.Errors))
		}
		if res.Rejected > 0 {
			return system.Metrics{}, system.Transient(fmt.Errorf("httpd: interval completed no requests (%d rejected by the admission gate)", res.Rejected))
		}
		return system.Metrics{}, system.Transient(errors.New("httpd: interval completed no requests"))
	}
	return system.Metrics{
		MeanRT:          res.MeanRT,
		P95RT:           res.P95RT,
		Throughput:      res.Throughput,
		Completed:       res.Completed,
		Errors:          res.Errors,
		Offered:         res.Offered,
		Shed:            res.Shed,
		Rejected:        res.Rejected,
		OfferedRate:     res.OfferedRate,
		IntervalSeconds: l.Interval.Seconds() * TimeScale,
	}, nil
}

// SetWorkload changes the generated traffic (driver-side context change).
func (l *Live) SetWorkload(w tpcw.Workload) error { return l.driver.SetWorkload(w) }

// SetAppLevel reallocates the simulated app/db VM.
func (l *Live) SetAppLevel(level vmenv.Level) error { return l.server.SetLevel(level) }

// Workload returns the generated traffic.
func (l *Live) Workload() tpcw.Workload { return l.driver.Workload() }

// AppLevel returns the app/db VM level.
func (l *Live) AppLevel() vmenv.Level { return l.server.Level() }
