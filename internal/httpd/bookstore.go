package httpd

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// bookstore is the in-memory database tier: a small TPC-W-like catalogue
// with realistic query shapes (point lookups, scans, inserts) plus an
// artificial service delay scaled by the VM level, standing in for the
// MySQL instance of the paper's testbed.
type bookstore struct {
	mu     sync.RWMutex
	level  vmenv.Level
	items  []item
	orders []order
	nextID int
	// Catalogue popularity is Zipf-skewed, as in TPC-W's item access
	// pattern; the sampler is guarded by mu.
	zipf *sim.Zipf
}

type item struct {
	ID      int
	Title   string
	Author  string
	Subject string
	PriceC  int // cents
}

type order struct {
	ID     int
	ItemID int
	When   time.Time
}

func newBookstore(level vmenv.Level) *bookstore {
	b := &bookstore{level: level}
	b.zipf = sim.NewZipf(sim.NewRNG(0xB00C), 1.0, 600)
	subjects := []string{"systems", "databases", "networks", "learning", "queues", "virtualization"}
	for i := 0; i < 600; i++ {
		b.items = append(b.items, item{
			ID:      i + 1,
			Title:   fmt.Sprintf("Book %03d on %s", i+1, subjects[i%len(subjects)]),
			Author:  fmt.Sprintf("Author %02d", i%37),
			Subject: subjects[i%len(subjects)],
			PriceC:  995 + (i%40)*100,
		})
	}
	return b
}

func (b *bookstore) setLevel(level vmenv.Level) {
	b.mu.Lock()
	b.level = level
	b.mu.Unlock()
}

// delayFactor scales database service time with VM strength: Level-1 is the
// reference. The factor is quadratic in the CPU ratio so the effect stays
// visible above the fixed per-request HTTP overhead of the compressed time
// scale (halving the vCPUs roughly quadruples the artificial delay,
// approximating the combined CPU and buffer-cache loss).
func (b *bookstore) delayFactor() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r := vmenv.Level1.CPUCapacity() / b.level.CPUCapacity()
	return r * r
}

// query runs the class's database work and returns a short result string.
func (b *bookstore) query(class tpcw.Class, q string) string {
	demand := tpcw.ClassDemand(class)
	// The DB CPU and I/O shares both burn at the db tier here.
	spin(scaled((demand.DB + demand.IO) * b.delayFactor()))

	switch class {
	case tpcw.ClassSearch:
		return b.search(q)
	case tpcw.ClassBuyConfirm:
		return b.placeOrder()
	case tpcw.ClassProductDetail:
		return b.detail()
	default:
		return b.bestSellers()
	}
}

func (b *bookstore) search(q string) string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	q = strings.ToLower(q)
	hits := 0
	for i := range b.items {
		if q == "" || strings.Contains(strings.ToLower(b.items[i].Title), q) {
			hits++
		}
	}
	return fmt.Sprintf("hits=%d", hits)
}

func (b *bookstore) detail() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Item popularity follows a Zipf law, like TPC-W's catalogue access.
	idx := b.zipf.Next() % len(b.items)
	it := b.items[idx]
	return fmt.Sprintf("item=%d price=%d", it.ID, it.PriceC)
}

func (b *bookstore) placeOrder() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.orders = append(b.orders, order{
		ID:     b.nextID,
		ItemID: b.items[b.nextID%len(b.items)].ID,
		When:   time.Now(),
	})
	// Keep the order table bounded in long-running demos.
	if len(b.orders) > 10000 {
		b.orders = append(b.orders[:0], b.orders[5000:]...)
	}
	return fmt.Sprintf("order=%d", b.nextID)
}

func (b *bookstore) bestSellers() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return fmt.Sprintf("catalogue=%d orders=%d", len(b.items), len(b.orders))
}
