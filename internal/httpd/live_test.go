package httpd

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

// scriptDriver is a LoadDriver stub whose Run behavior is pluggable.
type scriptDriver struct {
	run  func(ctx context.Context, d time.Duration) (MeasureResult, error)
	work tpcw.Workload
}

func (s *scriptDriver) Run(ctx context.Context, d time.Duration) (MeasureResult, error) {
	return s.run(ctx, d)
}
func (s *scriptDriver) SetWorkload(w tpcw.Workload) error { s.work = w; return nil }
func (s *scriptDriver) Workload() tpcw.Workload           { return s.work }

func liveWith(t *testing.T, driver LoadDriver) *Live {
	t.Helper()
	space := config.Default()
	params, err := webtier.ParamsFromConfig(space, space.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(params, vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewLive(space, srv, driver, nil)
	if err != nil {
		t.Fatal(err)
	}
	return live
}

// TestMeasureDeadlineStalledDriver is the wedged-monitor regression test: a
// driver that never returns — but honors its context — must yield a
// classified transient error at the deadline, not hang the agent loop.
func TestMeasureDeadlineStalledDriver(t *testing.T) {
	driver := &scriptDriver{run: func(ctx context.Context, d time.Duration) (MeasureResult, error) {
		<-ctx.Done() // stalled until the deadline fires
		return MeasureResult{}, ctx.Err()
	}}
	live := liveWith(t, driver)
	live.Interval = 20 * time.Millisecond
	live.Timeout = 60 * time.Millisecond

	start := time.Now()
	_, err := live.Measure(context.Background())
	if err == nil {
		t.Fatal("stalled driver measured successfully")
	}
	if !system.IsTransient(err) {
		t.Fatalf("deadline error not transient: %v", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error does not name the deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Measure blocked %v despite the deadline", elapsed)
	}
}

// TestMeasureDeadlineDriverIgnoresContext covers the worse stall: the driver
// ignores cancellation entirely. Measure must still return at the deadline;
// the driver's goroutine finishes later into a buffered channel.
func TestMeasureDeadlineDriverIgnoresContext(t *testing.T) {
	driver := &scriptDriver{run: func(ctx context.Context, d time.Duration) (MeasureResult, error) {
		time.Sleep(500 * time.Millisecond) // deaf to ctx
		return MeasureResult{Completed: 1, MeanRT: 1}, nil
	}}
	live := liveWith(t, driver)
	live.Interval = 20 * time.Millisecond
	live.Timeout = 60 * time.Millisecond

	start := time.Now()
	_, err := live.Measure(context.Background())
	if err == nil || !system.IsTransient(err) {
		t.Fatalf("err = %v, want transient deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("Measure waited %v for a driver that ignores its context", elapsed)
	}
}

func TestMeasureClassifiesDriverFailuresTransient(t *testing.T) {
	cases := []struct {
		name string
		run  func(ctx context.Context, d time.Duration) (MeasureResult, error)
	}{
		{"driver error", func(ctx context.Context, d time.Duration) (MeasureResult, error) {
			return MeasureResult{}, errors.New("connection refused")
		}},
		{"empty interval", func(ctx context.Context, d time.Duration) (MeasureResult, error) {
			return MeasureResult{}, nil
		}},
		{"all errored", func(ctx context.Context, d time.Duration) (MeasureResult, error) {
			return MeasureResult{Errors: 42}, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := liveWith(t, &scriptDriver{run: tc.run})
			live.Interval = 10 * time.Millisecond
			_, err := live.Measure(context.Background())
			if err == nil {
				t.Fatal("no error")
			}
			if !system.IsTransient(err) {
				t.Fatalf("not transient: %v", err)
			}
		})
	}
}

func TestMeasureCleanIntervalUnchanged(t *testing.T) {
	live := liveWith(t, &scriptDriver{run: func(ctx context.Context, d time.Duration) (MeasureResult, error) {
		return MeasureResult{MeanRT: 0.8, P95RT: 1.6, Throughput: 120, Completed: 240, Errors: 2}, nil
	}})
	live.Interval = 10 * time.Millisecond
	m, err := live.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanRT != 0.8 || m.Completed != 240 || m.Errors != 2 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Invalid {
		t.Fatal("clean interval marked invalid")
	}
}

// TestApplyValidationStaysFatal pins the transient/fatal split: a config the
// space rejects is a programming error, not a fault to retry.
func TestApplyValidationStaysFatal(t *testing.T) {
	live := liveWith(t, &scriptDriver{run: func(ctx context.Context, d time.Duration) (MeasureResult, error) {
		return MeasureResult{Completed: 1, MeanRT: 1}, nil
	}})
	bad := live.Config()
	bad[0] = -1
	err := live.Apply(context.Background(), bad)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if system.IsTransient(err) {
		t.Fatalf("validation failure classified transient: %v", err)
	}
}
