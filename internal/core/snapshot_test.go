package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/rac-project/rac/internal/system"
)

// exportJSON serializes an agent's state, failing the test on error.
func exportJSON(t *testing.T, a *Agent) []byte {
	t.Helper()
	st, err := a.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

func TestAgentStateRoundTripByteIdentical(t *testing.T) {
	sys := newBowlSystem([]float64{400, 20, 30, 60})
	a, err := NewAgent(sys, AgentOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	first := exportJSON(t, a)

	// Restore into a freshly constructed agent and re-export: the two
	// snapshots must match byte for byte.
	sys2 := newBowlSystem([]float64{400, 20, 30, 60})
	b, err := NewAgent(sys2, AgentOptions{Seed: 99}) // different seed: restore overwrites it
	if err != nil {
		t.Fatal(err)
	}
	st, err := LoadAgentState(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	second := exportJSON(t, b)
	if !bytes.Equal(first, second) {
		t.Fatalf("snapshot round trip not byte-identical:\n%s\nvs\n%s", first, second)
	}
}

func TestAgentResumeMatchesUninterruptedRun(t *testing.T) {
	const total, cut = 30, 13
	targets := []float64{420, 25, 35, 55}

	// Reference: one uninterrupted run.
	ref, err := NewAgent(newBowlSystem(targets), AgentOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var refSteps []StepResult
	for i := 0; i < total; i++ {
		s, err := ref.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		refSteps = append(refSteps, s)
	}

	// Interrupted: run to the cut, export, rebuild everything from scratch
	// (new system, new agent), restore, and finish the run.
	sysA := newBowlSystem(targets)
	a, err := NewAgent(sysA, AgentOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	blob := exportJSON(t, a)

	sysB := newBowlSystem(targets)
	// The bowl system is memoryless given its configuration; re-apply the
	// snapshot's configuration as the fleet restore path does.
	st, err := LoadAgentState(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := sysB.Apply(context.Background(), append([]int(nil), st.Config...)); err != nil {
		t.Fatal(err)
	}
	b, err := NewAgent(sysB, AgentOptions{Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < total; i++ {
		s, err := b.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := refSteps[i]
		if s.Iteration != want.Iteration || s.Config.Key() != want.Config.Key() ||
			s.MeanRT != want.MeanRT || s.Reward != want.Reward || s.Action != want.Action {
			t.Fatalf("resumed step %d diverged: got %+v want %+v", i+1, s, want)
		}
	}

	// Final learned state must be byte-identical too.
	refBlob := exportJSON(t, ref)
	resBlob := exportJSON(t, b)
	if !bytes.Equal(refBlob, resBlob) {
		t.Fatal("resumed run's final state differs from the uninterrupted run")
	}
}

func TestAgentResumeWithSnapshottableSystem(t *testing.T) {
	// A noisy analytic system consumes its RNG every Measure; resuming must
	// restore the system state too, or the streams diverge.
	mk := func() *system.Analytic {
		sys, err := system.NewAnalytic(system.AnalyticOptions{Seed: 11, NoiseSigma: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	const total, cut = 16, 7

	refSys := mk()
	ref, err := NewAgent(refSys, AgentOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var refRTs []float64
	for i := 0; i < total; i++ {
		s, err := ref.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		refRTs = append(refRTs, s.MeanRT)
	}

	sysA := mk()
	a, err := NewAgent(sysA, AgentOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	agentBlob := exportJSON(t, a)
	sysBlob, err := sysA.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	sysB := mk()
	if err := sysB.ImportState(sysBlob); err != nil {
		t.Fatal(err)
	}
	b, err := NewAgent(sysB, AgentOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := LoadAgentState(bytes.NewReader(agentBlob))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < total; i++ {
		s, err := b.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if s.MeanRT != refRTs[i] {
			t.Fatalf("step %d: resumed rt %v, uninterrupted %v", i+1, s.MeanRT, refRTs[i])
		}
	}
}

func TestAgentRestoreRejectsBadSnapshots(t *testing.T) {
	sys := newBowlSystem([]float64{400, 20, 30, 60})
	a, err := NewAgent(sys, AgentOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	good, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	if err := a.RestoreState(nil); err == nil {
		t.Error("nil state accepted")
	}

	bad := *good
	bad.Version = AgentStateVersion + 1
	if err := a.RestoreState(&bad); err == nil {
		t.Error("future version accepted")
	}

	bad = *good
	bad.PolicyName = "never-trained"
	if err := a.RestoreState(&bad); err == nil {
		t.Error("unknown policy accepted")
	}

	bad = *good
	bad.Config = []int{1, 2}
	if err := a.RestoreState(&bad); err == nil {
		t.Error("wrong-arity config accepted")
	}

	bad = *good
	bad.QTable = nil
	if err := a.RestoreState(&bad); err == nil {
		t.Error("missing Q-table accepted")
	}

	bad = *good
	bad.QTable = json.RawMessage(`{"actions":3,"initial":0,"rows":{}}`)
	if err := a.RestoreState(&bad); err == nil {
		t.Error("wrong action count accepted")
	}

	// The pristine snapshot still restores after all the rejected attempts.
	if err := a.RestoreState(good); err != nil {
		t.Fatalf("good snapshot rejected after failed restores: %v", err)
	}
}

func TestForcePolicySwitchesImmediately(t *testing.T) {
	targets := []float64{400, 20, 30, 60}
	sys := newBowlSystem(targets)
	p := bowlPolicy(t, targets, "forced")
	a, err := NewAgent(sys, AgentOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	a.ForcePolicy(p)
	if a.Policy() != p {
		t.Fatal("ForcePolicy did not install the policy")
	}
	s, err := a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.PolicyName != "forced" {
		t.Fatalf("step after ForcePolicy reports policy %q", s.PolicyName)
	}
	a.ForcePolicy(nil)
	if a.Policy() != nil {
		t.Fatal("ForcePolicy(nil) did not clear the policy")
	}
}
