package core

import (
	"testing"

	"github.com/rac-project/rac/internal/config"
)

// The group-lattice hot path — model transitions during offline sweeps and
// state-key resolution during online seeding — must stay allocation-free:
// every BatchTrain sweep visits every lattice state several times, and the
// seeder runs inside the agent's per-interval retraining. State keys are
// interned in the lattice at construction, so nothing below may build a
// string. Same discipline as the telemetry 0-alloc benchmarks.

func latticeModelForBench(tb testing.TB) (*groupLattice, *groupModel) {
	tb.Helper()
	defs, err := groupDefs(config.Default())
	if err != nil {
		tb.Fatal(err)
	}
	lat := newGroupLattice(defs)
	return lat, newGroupModel(lat, func(vals []int) float64 { return 1 }, 2)
}

func TestGroupModelHotPathAllocFree(t *testing.T) {
	lat, model := latticeModelForBench(t)
	states := model.States()
	if allocs := testing.AllocsPerRun(200, func() {
		for a := 0; a < model.Actions(); a++ {
			model.Next(states[len(states)/2], a)
		}
		model.Reward(states[0])
	}); allocs != 0 {
		t.Fatalf("groupModel Next/Reward allocate %.1f per run, want 0", allocs)
	}

	p := &Policy{defs: lat.defs, lat: lat}
	cfg := config.Default().DefaultConfig()
	if allocs := testing.AllocsPerRun(200, func() {
		p.groupStateKey(cfg)
	}); allocs != 0 {
		t.Fatalf("groupStateKey allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkGroupModelNext(b *testing.B) {
	_, model := latticeModelForBench(b)
	states := model.States()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Next(states[i%len(states)], i%model.Actions())
	}
}

func BenchmarkGroupStateKey(b *testing.B) {
	lat, _ := latticeModelForBench(b)
	p := &Policy{defs: lat.defs, lat: lat}
	cfg := config.Default().DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.groupStateKey(cfg)
	}
}
