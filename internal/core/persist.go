package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/regression"
)

// policyJSON is the serialized form of a Policy. The configuration space is
// not serialized; loading requires the same space the policy was trained on
// (validated structurally via the group lattices).
type policyJSON struct {
	Name    string           `json:"name"`
	SLA     float64          `json:"slaSeconds"`
	FloorRT float64          `json:"floorRtSeconds"`
	Groups  []groupDefJSON   `json:"groups"`
	Coeffs  []float64        `json:"regressionCoeffs"`
	QTable  *json.RawMessage `json:"qtable"`
}

type groupDefJSON struct {
	Group   int   `json:"group"`
	Members []int `json:"members"`
	Min     int   `json:"min"`
	Max     int   `json:"max"`
	Step    int   `json:"step"`
}

// Save writes the policy as JSON. Policies embed the offline-trained group
// Q-table and the regression surface, so a saved policy restores without
// re-sampling the system.
func (p *Policy) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := p.q.Save(&buf); err != nil {
		return fmt.Errorf("core: save qtable: %w", err)
	}
	qbuf := json.RawMessage(buf.Bytes())
	out := policyJSON{
		Name:    p.name,
		SLA:     p.sla,
		FloorRT: p.floorRT,
		Coeffs:  p.quad.Coeffs(),
		QTable:  &qbuf,
	}
	for _, d := range p.defs {
		out.Groups = append(out.Groups, groupDefJSON{
			Group:   int(d.group),
			Members: d.members,
			Min:     d.min,
			Max:     d.max,
			Step:    d.step,
		})
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadPolicy reads a policy previously written by Save, binding it to the
// given configuration space. The space must structurally match the one the
// policy was trained on (same parameters and group lattices).
func LoadPolicy(r io.Reader, space *config.Space) (*Policy, error) {
	if space == nil {
		return nil, errors.New("core: nil space")
	}
	var raw policyJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decode policy: %w", err)
	}
	defs, err := groupDefs(space)
	if err != nil {
		return nil, err
	}
	if len(defs) != len(raw.Groups) {
		return nil, fmt.Errorf("core: policy has %d groups, space %d", len(raw.Groups), len(defs))
	}
	for i, g := range raw.Groups {
		d := defs[i]
		if int(d.group) != g.Group || d.min != g.Min || d.max != g.Max || d.step != g.Step {
			return nil, fmt.Errorf("core: group %d lattice mismatch (policy %+v, space %+v)", i, g, d)
		}
		if len(d.members) != len(g.Members) {
			return nil, fmt.Errorf("core: group %d member mismatch", i)
		}
	}
	if raw.SLA <= 0 {
		return nil, fmt.Errorf("core: policy SLA %v", raw.SLA)
	}
	quad, err := regression.QuadraticFromCoeffs(len(defs), raw.Coeffs)
	if err != nil {
		return nil, err
	}
	if raw.QTable == nil {
		return nil, errors.New("core: policy lacks a Q-table")
	}
	q, err := mdp.LoadQTable(bytes.NewReader(*raw.QTable))
	if err != nil {
		return nil, err
	}
	if q.Actions() != 2*len(defs)+1 {
		return nil, fmt.Errorf("core: policy Q-table has %d actions, want %d",
			q.Actions(), 2*len(defs)+1)
	}
	paramGroup := make([]int, space.Len())
	for gi, d := range defs {
		for _, idx := range d.members {
			paramGroup[idx] = gi
		}
	}
	return &Policy{
		name:       raw.Name,
		space:      space,
		defs:       defs,
		lat:        newGroupLattice(defs),
		paramGroup: paramGroup,
		q:          q,
		quad:       quad,
		sla:        raw.SLA,
		floorRT:    raw.FloorRT,
		intern:     &policyIntern{},
	}, nil
}
