package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/regression"
)

// groupDef is the lattice of one parameter group: the intersection of its
// members' ranges at the finest member step.
type groupDef struct {
	group   config.Group
	members []int // parameter indices in the space
	min     int
	max     int
	step    int
}

func (g groupDef) levels() int { return (g.max-g.min)/g.step + 1 }

func (g groupDef) clamp(v int) int {
	if v <= g.min {
		return g.min
	}
	if v >= g.max {
		return g.max
	}
	return g.min + (v-g.min+g.step/2)/g.step*g.step
}

// groupDefs derives the group lattices of a space, in config.Groups() order.
func groupDefs(space *config.Space) ([]groupDef, error) {
	members := config.GroupMembers(space)
	var defs []groupDef
	for _, g := range config.Groups() {
		idx := members[g]
		if len(idx) == 0 {
			continue
		}
		d := groupDef{
			group:   g,
			members: idx,
			min:     space.Def(idx[0]).Min,
			max:     space.Def(idx[0]).Max,
			step:    space.Def(idx[0]).Step,
		}
		for _, i := range idx[1:] {
			pd := space.Def(i)
			if pd.Min > d.min {
				d.min = pd.Min
			}
			if pd.Max < d.max {
				d.max = pd.Max
			}
			if pd.Step < d.step {
				d.step = pd.Step
			}
		}
		if d.max < d.min {
			return nil, fmt.Errorf("core: group %s member ranges do not overlap", g)
		}
		// Align the top of the lattice to the step grid.
		d.max = d.min + (d.max-d.min)/d.step*d.step
		defs = append(defs, d)
	}
	if len(defs) == 0 {
		return nil, errors.New("core: space has no groups")
	}
	return defs, nil
}

// groupKey renders group lattice values as a state key.
func groupKey(vals []int) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Policy is an initial configuration policy for one system context: a
// regression predictor of the response-time surface plus a Q-table trained
// offline over the grouped sublattice (paper Algorithm 2). It seeds the
// online Q-table for unvisited states and supplies reward estimates for
// states without measurements.
type Policy struct {
	name  string
	space *config.Space
	defs  []groupDef
	// paramGroup maps each parameter index to its position in defs.
	paramGroup []int
	q          *mdp.QTable
	quad       *regression.Quadratic
	sla        float64
	// floorRT guards against regression extrapolation below zero.
	floorRT float64
}

// Name returns the policy's label (usually the context it was trained for).
func (p *Policy) Name() string { return p.name }

// Space returns the configuration space the policy covers.
func (p *Policy) Space() *config.Space { return p.space }

// SLA returns the SLA the policy was trained against.
func (p *Policy) SLA() float64 { return p.sla }

// PredictRT estimates the mean response time of a configuration from the
// fitted regression surface (a log-space quadratic; see LearnPolicy).
func (p *Policy) PredictRT(cfg config.Config) float64 {
	vec := p.groupVector(cfg)
	rt := math.Exp(p.quad.Eval(vec))
	if rt < p.floorRT {
		rt = p.floorRT
	}
	return rt
}

// groupVector projects a configuration onto per-group mean values in defs
// order.
func (p *Policy) groupVector(cfg config.Config) []float64 {
	vec := make([]float64, len(p.defs))
	for gi, d := range p.defs {
		var sum float64
		for _, i := range d.members {
			if i < len(cfg) {
				sum += float64(cfg[i])
			}
		}
		vec[gi] = sum / float64(len(d.members))
	}
	return vec
}

// groupState snaps a configuration onto the group lattice.
func (p *Policy) groupState(cfg config.Config) []int {
	vec := p.groupVector(cfg)
	vals := make([]int, len(p.defs))
	for gi, d := range p.defs {
		vals[gi] = d.clamp(int(math.Round(vec[gi])))
	}
	return vals
}

// Seeder returns an mdp.Seeder that initializes a full-lattice Q row from
// the group-level policy: a full action touching parameter i inherits the
// group action's value for i's group; keep inherits keep.
func (p *Policy) Seeder() mdp.Seeder {
	nActions := 2*p.space.Len() + 1
	return func(state string) []float64 {
		cfg, err := config.ParseKey(state)
		if err != nil || len(cfg) != p.space.Len() {
			return nil
		}
		gRow := p.q.Row(groupKey(p.groupState(cfg)))
		row := make([]float64, nActions)
		row[0] = gRow[0]
		for i := 0; i < p.space.Len(); i++ {
			gi := p.paramGroup[i]
			row[1+2*i] = gRow[1+2*gi] // increase
			row[2+2*i] = gRow[2+2*gi] // decrease
		}
		return row
	}
}

// GroupQTable exposes the offline-trained group Q-table (diagnostics).
func (p *Policy) GroupQTable() *mdp.QTable { return p.q }

// groupModel is the deterministic MDP over the group lattice used for
// offline training: actions move one group one step; the reward of entering
// a state is SLA − predictedRT.
type groupModel struct {
	defs    []groupDef
	actions int
	reward  map[string]float64
	states  []string
}

var _ mdp.Model = (*groupModel)(nil)

func newGroupModel(defs []groupDef, predict func(vals []int) float64, sla float64) *groupModel {
	m := &groupModel{
		defs:    defs,
		actions: 2*len(defs) + 1,
		reward:  make(map[string]float64),
	}
	// Enumerate the lattice.
	var rec func(i int)
	var cur []int
	rec = func(i int) {
		if i == len(defs) {
			key := groupKey(cur)
			m.states = append(m.states, key)
			m.reward[key] = sla - predict(cur)
			return
		}
		for v := defs[i].min; v <= defs[i].max; v += defs[i].step {
			cur = append(cur, v)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return m
}

func (m *groupModel) States() []string { return m.states }

func (m *groupModel) Actions() int { return m.actions }

func (m *groupModel) Reward(state string) float64 { return m.reward[state] }

func (m *groupModel) Next(state string, action int) (string, bool) {
	if action == 0 {
		return state, true
	}
	gi := (action - 1) / 2
	dir := 1
	if (action-1)%2 == 1 {
		dir = -1
	}
	if gi < 0 || gi >= len(m.defs) {
		return state, false
	}
	vals, err := parseGroupKey(state, len(m.defs))
	if err != nil {
		return state, false
	}
	d := m.defs[gi]
	v := vals[gi] + dir*d.step
	if v < d.min || v > d.max {
		return state, false
	}
	vals[gi] = v
	return groupKey(vals), true
}

func parseGroupKey(key string, want int) ([]int, error) {
	parts := strings.Split(key, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("core: group key %q has %d fields, want %d", key, len(parts), want)
	}
	vals := make([]int, want)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("core: bad group key %q: %w", key, err)
		}
		vals[i] = v
	}
	return vals, nil
}
