package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/regression"
)

// groupDef is the lattice of one parameter group: the intersection of its
// members' ranges at the finest member step.
type groupDef struct {
	group   config.Group
	members []int // parameter indices in the space
	min     int
	max     int
	step    int
}

func (g groupDef) levels() int { return (g.max-g.min)/g.step + 1 }

func (g groupDef) clamp(v int) int {
	if v <= g.min {
		return g.min
	}
	if v >= g.max {
		return g.max
	}
	return g.min + (v-g.min+g.step/2)/g.step*g.step
}

// groupDefs derives the group lattices of a space, in config.Groups() order.
func groupDefs(space *config.Space) ([]groupDef, error) {
	members := config.GroupMembers(space)
	var defs []groupDef
	for _, g := range config.Groups() {
		idx := members[g]
		if len(idx) == 0 {
			continue
		}
		d := groupDef{
			group:   g,
			members: idx,
			min:     space.Def(idx[0]).Min,
			max:     space.Def(idx[0]).Max,
			step:    space.Def(idx[0]).Step,
		}
		for _, i := range idx[1:] {
			pd := space.Def(i)
			if pd.Min > d.min {
				d.min = pd.Min
			}
			if pd.Max < d.max {
				d.max = pd.Max
			}
			if pd.Step < d.step {
				d.step = pd.Step
			}
		}
		if d.max < d.min {
			return nil, fmt.Errorf("core: group %s member ranges do not overlap", g)
		}
		// Align the top of the lattice to the step grid.
		d.max = d.min + (d.max-d.min)/d.step*d.step
		defs = append(defs, d)
	}
	if len(defs) == 0 {
		return nil, errors.New("core: space has no groups")
	}
	return defs, nil
}

// groupKey renders group lattice values as a state key.
func groupKey(vals []int) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// groupLattice is the enumerated group lattice shared by policies and the
// offline training model: interned state-key strings plus the flattened-index
// geometry (strides, per-group level counts) needed to navigate the lattice
// without rebuilding key strings per visit. Groups are ordered as in defs;
// the last group varies fastest, matching the historical enumeration order.
type groupLattice struct {
	defs    []groupDef
	levels  []int
	strides []int
	keys    []string       // interned groupKey per flattened index
	index   map[string]int // inverse of keys
}

func newGroupLattice(defs []groupDef) *groupLattice {
	l := &groupLattice{
		defs:    defs,
		levels:  make([]int, len(defs)),
		strides: make([]int, len(defs)),
	}
	total := 1
	for gi := len(defs) - 1; gi >= 0; gi-- {
		l.levels[gi] = defs[gi].levels()
		l.strides[gi] = total
		total *= l.levels[gi]
	}
	l.keys = make([]string, total)
	l.index = make(map[string]int, total)
	vals := make([]int, len(defs))
	var rec func(gi, idx int)
	rec = func(gi, idx int) {
		if gi == len(defs) {
			key := groupKey(vals)
			l.keys[idx] = key
			l.index[key] = idx
			return
		}
		d := defs[gi]
		for li := 0; li < l.levels[gi]; li++ {
			vals[gi] = d.min + li*d.step
			rec(gi+1, idx+li*l.strides[gi])
		}
	}
	rec(0, 0)
	return l
}

// value returns group gi's lattice value at flattened state index idx.
func (l *groupLattice) value(idx, gi int) int {
	return l.defs[gi].min + (idx/l.strides[gi])%l.levels[gi]*l.defs[gi].step
}

// Policy is an initial configuration policy for one system context: a
// regression predictor of the response-time surface plus a Q-table trained
// offline over the grouped sublattice (paper Algorithm 2). It seeds the
// online Q-table for unvisited states and supplies reward estimates for
// states without measurements.
type Policy struct {
	name  string
	space *config.Space
	defs  []groupDef
	lat   *groupLattice
	// paramGroup maps each parameter index to its position in defs.
	paramGroup []int
	q          *mdp.QTable
	quad       *regression.Quadratic
	sla        float64
	// floorRT guards against regression extrapolation below zero.
	floorRT float64

	// intern holds the structure memoized across every agent warm-started
	// from this policy. It lives behind a pointer so a Policy value can be
	// copied (renamed store entries do this) without copying locks; copies
	// share the memo, which is correct — they share q and lat too.
	intern *policyIntern
}

// policyIntern is the per-policy shared-structure memo: the copy-on-write
// seeded row store (built on first SharedRows call) and interned retraining
// region skeletons keyed by sample-key set (see regionShapeFor).
type policyIntern struct {
	sharedOnce sync.Once
	shared     *mdp.SharedRows
	shapeMu    sync.Mutex
	shapes     map[string]*regionShape
}

// Name returns the policy's label (usually the context it was trained for).
func (p *Policy) Name() string { return p.name }

// Space returns the configuration space the policy covers.
func (p *Policy) Space() *config.Space { return p.space }

// SLA returns the SLA the policy was trained against.
func (p *Policy) SLA() float64 { return p.sla }

// PredictRT estimates the mean response time of a configuration from the
// fitted regression surface (a log-space quadratic; see LearnPolicy).
func (p *Policy) PredictRT(cfg config.Config) float64 {
	vec := p.groupVector(cfg)
	rt := math.Exp(p.quad.Eval(vec))
	if rt < p.floorRT {
		rt = p.floorRT
	}
	return rt
}

// groupVector projects a configuration onto per-group mean values in defs
// order.
func (p *Policy) groupVector(cfg config.Config) []float64 {
	vec := make([]float64, len(p.defs))
	for gi, d := range p.defs {
		var sum float64
		for _, i := range d.members {
			if i < len(cfg) {
				sum += float64(cfg[i])
			}
		}
		vec[gi] = sum / float64(len(d.members))
	}
	return vec
}

// groupStateIndex snaps a configuration onto the group lattice and returns
// its flattened index. It is the allocation-free core of the seeding hot
// path: the per-group mean, clamp and flatten are all done in registers, and
// the state-key string is served interned from the lattice.
func (p *Policy) groupStateIndex(cfg config.Config) int {
	idx := 0
	for gi, d := range p.defs {
		var sum float64
		for _, i := range d.members {
			if i < len(cfg) {
				sum += float64(cfg[i])
			}
		}
		v := d.clamp(int(math.Round(sum / float64(len(d.members)))))
		idx += (v - d.min) / d.step * p.lat.strides[gi]
	}
	return idx
}

// groupStateKey returns the interned state key of the configuration's group
// lattice point, without building a string.
func (p *Policy) groupStateKey(cfg config.Config) string {
	return p.lat.keys[p.groupStateIndex(cfg)]
}

// Seeder returns an mdp.Seeder that initializes a full-lattice Q row from
// the group-level policy: a full action touching parameter i inherits the
// group action's value for i's group; keep inherits keep.
func (p *Policy) Seeder() mdp.Seeder {
	nActions := 2*p.space.Len() + 1
	return func(state string) []float64 {
		cfg, err := config.ParseKey(state)
		if err != nil || len(cfg) != p.space.Len() {
			return nil
		}
		gRow := p.q.Row(p.groupStateKey(cfg))
		row := make([]float64, nActions)
		row[0] = gRow[0]
		for i := 0; i < p.space.Len(); i++ {
			gi := p.paramGroup[i]
			row[1+2*i] = gRow[1+2*gi] // increase
			row[2+2*i] = gRow[2+2*gi] // decrease
		}
		return row
	}
}

// SharedRows returns the policy's copy-on-write row store: seeded Q rows
// computed once (from Seeder) and served read-only to every agent table that
// installs it. Agents sharing a context thereby share the seeded structure —
// memory O(contexts) — while their own updates stay in private delta rows.
func (p *Policy) SharedRows() *mdp.SharedRows {
	p.intern.sharedOnce.Do(func() {
		p.intern.shared = mdp.NewSharedRows(2*p.space.Len()+1, p.Seeder())
	})
	return p.intern.shared
}

// Recommend returns the configuration the offline policy considers best: the
// group-lattice point minimizing the fitted response-time surface, expanded
// to a full configuration. This is policy initialization put to operational
// use — an agent deployed with an offline-trained policy applies its
// recommendation up front and lets online learning refine from there,
// instead of walking out of the vendor default one reconfiguration per
// measurement interval. Ties and the argmin are resolved in lattice
// enumeration order, so the recommendation is deterministic for a given
// trained policy.
func (p *Policy) Recommend() (config.Config, error) {
	best, bestRT := -1, 0.0
	vals := make([]int, len(p.defs))
	vec := make([]float64, len(p.defs))
	for idx := range p.lat.keys {
		for gi := range p.defs {
			vals[gi] = p.lat.value(idx, gi)
			vec[gi] = float64(vals[gi])
		}
		rt := math.Exp(p.quad.Eval(vec))
		if best < 0 || rt < bestRT {
			best, bestRT = idx, rt
		}
	}
	assign := make(map[config.Group]int, len(p.defs))
	for gi, d := range p.defs {
		assign[d.group] = p.lat.value(best, gi)
	}
	return config.GroupedConfig(p.space, assign)
}

// GroupQTable exposes the offline-trained group Q-table (diagnostics).
func (p *Policy) GroupQTable() *mdp.QTable { return p.q }

// groupModel is the deterministic MDP over the group lattice used for
// offline training: actions move one group one step; the reward of entering
// a state is SLA − predictedRT. State keys, rewards and transitions are all
// precomputed at construction, so the training hot path (Reward/Next, called
// per state per sweep) rebuilds no strings and allocates nothing.
type groupModel struct {
	lat     *groupLattice
	actions int
	rewards []float64 // by flattened state index
	// next[idx*actions+a] is the flattened successor index, or -1 when the
	// move leaves the lattice.
	next []int32
}

var _ mdp.IndexedModel = (*groupModel)(nil)

func newGroupModel(lat *groupLattice, predict func(vals []int) float64, sla float64) *groupModel {
	defs := lat.defs
	m := &groupModel{
		lat:     lat,
		actions: 2*len(defs) + 1,
		rewards: make([]float64, len(lat.keys)),
		next:    make([]int32, len(lat.keys)*(2*len(defs)+1)),
	}
	vals := make([]int, len(defs))
	for idx := range lat.keys {
		for gi := range defs {
			vals[gi] = lat.value(idx, gi)
		}
		m.rewards[idx] = sla - predict(vals)
		base := idx * m.actions
		m.next[base] = int32(idx) // keep
		for gi, d := range defs {
			li := (vals[gi] - d.min) / d.step
			m.next[base+1+2*gi] = -1 // increase
			m.next[base+2+2*gi] = -1 // decrease
			if li+1 < lat.levels[gi] {
				m.next[base+1+2*gi] = int32(idx + lat.strides[gi])
			}
			if li > 0 {
				m.next[base+2+2*gi] = int32(idx - lat.strides[gi])
			}
		}
	}
	return m
}

func (m *groupModel) States() []string { return m.lat.keys }

func (m *groupModel) Actions() int { return m.actions }

func (m *groupModel) Reward(state string) float64 {
	idx, ok := m.lat.index[state]
	if !ok {
		return 0
	}
	return m.rewards[idx]
}

func (m *groupModel) Next(state string, action int) (string, bool) {
	idx, ok := m.lat.index[state]
	if !ok || action < 0 || action >= m.actions {
		return state, false
	}
	t := m.next[idx*m.actions+action]
	if t < 0 {
		return state, false
	}
	return m.lat.keys[t], true
}

// NextIndex and RewardIndex expose the precomputed transition and reward
// arrays directly, making the model eligible for mdp.BatchTrain's dense SoA
// fast path (no string keys in the offline training sweep).
func (m *groupModel) NextIndex(s, action int) int { return int(m.next[s*m.actions+action]) }

func (m *groupModel) RewardIndex(s int) float64 { return m.rewards[s] }

func parseGroupKey(key string, want int) ([]int, error) {
	parts := strings.Split(key, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("core: group key %q has %d fields, want %d", key, len(parts), want)
	}
	vals := make([]int, want)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("core: bad group key %q: %w", key, err)
		}
		vals[i] = v
	}
	return vals, nil
}
