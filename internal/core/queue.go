package core

import "sync"

// experienceQueue decouples measurement from learning: Step hands each
// measured interval to a single background learner goroutine and returns, so
// the per-interval batch retraining overlaps whatever the caller does between
// steps — the live daemon's wall-clock wait for the next measurement interval
// above all. Tasks run strictly FIFO on one goroutine, and every Q-table read
// drains the queue first, so a queued agent's learned state is byte-identical
// to a synchronous agent's at every observation point.
type experienceQueue struct {
	tasks   chan func() error
	stopped chan struct{}
	stop    sync.Once

	// pending counts enqueued-but-unapplied tasks. Enqueue and drain are
	// called from the agent's goroutine only, so Add never races with Wait.
	pending sync.WaitGroup

	mu  sync.Mutex
	err error // first deferred learning error; sticky until reset
}

// newExperienceQueue starts the learner goroutine with room for depth queued
// tasks; enqueue blocks once the buffer is full, trading latency for bounded
// memory.
func newExperienceQueue(depth int) *experienceQueue {
	q := &experienceQueue{
		tasks:   make(chan func() error, depth),
		stopped: make(chan struct{}),
	}
	go q.loop()
	return q
}

func (q *experienceQueue) loop() {
	defer close(q.stopped)
	for task := range q.tasks {
		if err := task(); err != nil {
			q.mu.Lock()
			if q.err == nil {
				q.err = err
			}
			q.mu.Unlock()
		}
		q.pending.Done()
	}
}

// enqueue schedules one learning task behind everything already queued.
func (q *experienceQueue) enqueue(task func() error) {
	q.pending.Add(1)
	q.tasks <- task
}

// drain blocks until every queued task has been applied, then reports the
// first deferred learning error. The error is sticky: like the synchronous
// path's returned error, a failed retrain poisons the run rather than being
// silently skipped.
func (q *experienceQueue) drain() error {
	q.pending.Wait()
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// reset drains and forgets any deferred error — for callers about to replace
// the learned state wholesale (snapshot restore), where the failed state is
// discarded anyway.
func (q *experienceQueue) reset() {
	q.pending.Wait()
	q.mu.Lock()
	q.err = nil
	q.mu.Unlock()
}

// close drains, stops the learner goroutine, and reports the first deferred
// error. Safe to call more than once.
func (q *experienceQueue) close() error {
	err := q.drain()
	q.stop.Do(func() { close(q.tasks) })
	<-q.stopped
	return err
}

// drainQueue applies every queued experience before the caller reads or
// replaces learned state (Q-table, sample table, agent RNG). Agents without
// a queue return immediately.
func (a *Agent) drainQueue() error {
	if a.queue == nil {
		return nil
	}
	return a.queue.drain()
}

// Close applies everything still queued and stops the background learner,
// returning the first deferred learning error. Agents without an experience
// queue return nil. After Close the agent learns synchronously again; Close
// is idempotent.
func (a *Agent) Close() error {
	if a.queue == nil {
		return nil
	}
	err := a.queue.close()
	a.queue = nil
	return err
}
