package core

import (
	"strconv"
	"sync"
	"testing"

	"github.com/rac-project/rac/internal/config"
)

// TestPolicyStoreConcurrentPublish exercises the store's locking under
// `go test -race`: writers publish policies while readers match, list and
// look up by name, the access pattern of parallel per-context training
// feeding a store that agents are already consuming.
func TestPolicyStoreConcurrentPublish(t *testing.T) {
	space := config.Default()
	base := bowlPolicyForPersist(t, space)
	store := NewPolicyStore(base)
	cfg := space.DefaultConfig()

	const writers, readers, perWriter = 4, 4, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := *base
				p.name = "w" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				store.Add(&p)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if _, err := store.Match(cfg, 1.0); err != nil {
					t.Error(err)
					return
				}
				store.ByName("persist")
				if store.Len() > len(store.Policies()) {
					// Policies() snapshots after Len(); it can only grow.
					t.Error("snapshot shrank")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := store.Len(), 1+writers*perWriter; got != want {
		t.Fatalf("store has %d policies, want %d", got, want)
	}
	if store.ByName("w3-7") == nil {
		t.Fatal("published policy not visible")
	}
}
