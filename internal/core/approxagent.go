package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/system"
)

// ApproxAgent is the function-approximation variant of the RAC agent — the
// paper's §7 future-work direction. Instead of a tabular Q-table seeded by
// an offline policy, it learns per-action linear models over a quadratic
// feature basis of the configuration, so every measurement generalizes
// across the whole lattice immediately and memory stays constant in the
// number of visited states.
//
// It runs proper online SARSA: the action evaluated at each step was chosen
// at the end of the previous step, keeping the update strictly on-policy.
type ApproxAgent struct {
	sys     system.System
	space   *config.Space
	opts    Options
	actions []config.Action
	learner *mdp.ApproxLearner

	cur       config.Config
	pending   int // action chosen for cur, applied on the next Step
	hasPend   bool
	iteration int
}

var _ Tuner = (*ApproxAgent)(nil)

// NewApproxAgent builds a function-approximation agent over the system's
// configuration space.
func NewApproxAgent(sys system.System, opts Options, seed uint64) (*ApproxAgent, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	if opts == (Options{}) {
		opts = DefaultOptions()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	space := sys.Space()
	feats, dim := config.Features(space)
	actions := config.Actions(space)
	q, err := mdp.NewLinearQ(feats, dim, len(actions))
	if err != nil {
		return nil, err
	}
	learner, err := mdp.NewApproxLearner(q, opts.Online, sim.NewRNG(seed|1))
	if err != nil {
		return nil, err
	}
	return &ApproxAgent{
		sys:     sys,
		space:   space,
		opts:    opts,
		actions: actions,
		learner: learner,
		cur:     sys.Config(),
	}, nil
}

// Q exposes the underlying approximator for diagnostics.
func (a *ApproxAgent) Q() *mdp.LinearQ { return a.learner.Q() }

// Config returns the agent's current configuration.
func (a *ApproxAgent) Config() config.Config { return a.cur.Clone() }

// Step performs one online SARSA iteration: apply the pending action,
// measure, choose the next action, and update the weights.
func (a *ApproxAgent) Step(ctx context.Context) (StepResult, error) {
	a.iteration++

	if !a.hasPend {
		choice, err := a.learner.SelectAction(a.cur.Key(), a.feasible(a.cur))
		if err != nil {
			return StepResult{}, fmt.Errorf("core: approx select: %w", err)
		}
		a.pending = choice
		a.hasPend = true
	}
	action := a.actions[a.pending]
	next, _ := action.Apply(a.space, a.cur)
	if err := a.sys.Apply(ctx, next); err != nil {
		return StepResult{}, fmt.Errorf("core: approx apply %s: %w", next.Key(), err)
	}
	m, err := a.sys.Measure(ctx)
	if err != nil {
		return StepResult{}, fmt.Errorf("core: approx measure: %w", err)
	}
	reward := a.opts.RewardOf(m)

	nextChoice, err := a.learner.SelectAction(next.Key(), a.feasible(next))
	if err != nil {
		return StepResult{}, fmt.Errorf("core: approx select next: %w", err)
	}
	if _, err := a.learner.UpdateSARSA(a.cur.Key(), a.pending, reward, next.Key(), nextChoice); err != nil {
		return StepResult{}, fmt.Errorf("core: approx update: %w", err)
	}

	res := StepResult{
		Iteration:  a.iteration,
		Action:     action,
		Config:     next.Clone(),
		MeanRT:     m.MeanRT,
		Throughput: m.Throughput,
		Reward:     reward,
	}
	a.cur = next
	a.pending = nextChoice
	return res, nil
}

func (a *ApproxAgent) feasible(cfg config.Config) []int {
	out := make([]int, 0, len(a.actions))
	for i, act := range a.actions {
		if _, ok := act.Apply(a.space, cfg); ok {
			out = append(out, i)
		}
	}
	return out
}
