package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
)

// bowlSystem is a synthetic System whose response-time surface is a smooth
// bowl over the group means, with a switchable "context" that relocates the
// bowl. It lets agent tests run instantly and with exact expectations.
type bowlSystem struct {
	space   *config.Space
	cfg     config.Config
	targets []float64
	shift   float64 // additive RT offset (simulates a context with worse base RT)
	applied int
	metered int
}

func newBowlSystem(targets []float64) *bowlSystem {
	space := config.Default()
	return &bowlSystem{
		space:   space,
		cfg:     space.DefaultConfig(),
		targets: targets,
	}
}

func (b *bowlSystem) rt(cfg config.Config) float64 {
	vec := config.GroupVector(b.space, cfg)
	rt := 0.2 + b.shift
	for i, v := range vec {
		d := (v - b.targets[i]) / 100
		rt += d * d
	}
	return rt
}

func (b *bowlSystem) Space() *config.Space  { return b.space }
func (b *bowlSystem) Config() config.Config { return b.cfg.Clone() }

func (b *bowlSystem) Apply(ctx context.Context, cfg config.Config) error {
	if err := b.space.Validate(cfg); err != nil {
		return err
	}
	b.cfg = cfg.Clone()
	b.applied++
	return nil
}

func (b *bowlSystem) Measure(ctx context.Context) (system.Metrics, error) {
	b.metered++
	rt := b.rt(b.cfg)
	return system.Metrics{MeanRT: rt, P95RT: 2 * rt, Throughput: 50, Completed: 5000, IntervalSeconds: 300}, nil
}

var _ system.System = (*bowlSystem)(nil)

// bowlPolicyCache avoids re-running the (deliberately long) converged
// offline training for every test that needs the same synthetic policy.
var (
	bowlPolicyMu    sync.Mutex
	bowlPolicyCache = map[string]*Policy{}
)

func bowlPolicy(t *testing.T, targets []float64, name string) *Policy {
	t.Helper()
	key := fmt.Sprint(name, targets)
	bowlPolicyMu.Lock()
	defer bowlPolicyMu.Unlock()
	if p, ok := bowlPolicyCache[key]; ok {
		return p
	}
	space := config.Default()
	ref := newBowlSystem(targets)
	sampler := func(cfg config.Config) (float64, error) { return ref.rt(cfg), nil }
	p, err := LearnPolicy(name, space, sampler, InitOptions{CoarseLevels: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bowlPolicyCache[key] = p
	return p
}

var bowlTargets = []float64{300, 11, 45, 55}

func TestAgentConvergesTowardOptimum(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	policy := bowlPolicy(t, bowlTargets, "bowl")
	agent, err := NewAgent(sys, AgentOptions{Policy: policy, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	startRT := sys.rt(sys.Config())
	var last StepResult
	for i := 0; i < 25; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Iteration != i+1 {
			t.Fatalf("iteration %d, want %d", res.Iteration, i+1)
		}
		last = res
	}
	if last.MeanRT >= startRT {
		t.Fatalf("agent did not improve: start %v, final %v", startRT, last.MeanRT)
	}
	// Within 25 iterations (the paper's bound) the agent should be well
	// below half the default's excess response time.
	excessStart := startRT - 0.2
	excessEnd := last.MeanRT - 0.2
	if excessEnd > excessStart*0.6 {
		t.Fatalf("agent converged poorly: excess %v → %v", excessStart, excessEnd)
	}
}

func TestAgentWithoutPolicyStillLearns(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewAgent(sys, AgentOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	first, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sumEarly, sumLate float64
	for i := 0; i < 60; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if i < 20 {
			sumEarly += res.MeanRT
		}
		if i >= 40 {
			sumLate += res.MeanRT
		}
	}
	if sumLate/20 > sumEarly/20+0.05 {
		t.Fatalf("uninitialized agent regressed: early %v late %v (first %v)",
			sumEarly/20, sumLate/20, first.MeanRT)
	}
}

func TestAgentRewardMatchesSLA(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewAgent(sys, AgentOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultOptions().SLASeconds - res.MeanRT
	if math.Abs(res.Reward-want) > 1e-12 {
		t.Fatalf("reward %v, want %v", res.Reward, want)
	}
}

func TestAgentFrozenFollowsPolicyWithoutLearning(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	policy := bowlPolicy(t, bowlTargets, "bowl")
	agent, err := NewAgent(sys, AgentOptions{Policy: policy, Frozen: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var rts []float64
	for i := 0; i < 20; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, res.MeanRT)
	}
	// Frozen agents are deterministic (ε=0) and must not record samples.
	if len(agent.samples) != 0 {
		t.Fatalf("frozen agent recorded %d samples", len(agent.samples))
	}
	if rts[len(rts)-1] > rts[0] {
		t.Fatalf("frozen policy walked uphill: %v → %v", rts[0], rts[len(rts)-1])
	}
}

func TestAgentStepMovesAtMostOneStep(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewAgent(sys, AgentOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	prev := sys.Config()
	for i := 0; i < 30; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		diffs := 0
		for j := range res.Config {
			if res.Config[j] != prev[j] {
				diffs++
				step := sys.space.Def(j).Step
				if d := res.Config[j] - prev[j]; d != step && d != -step {
					t.Fatalf("iteration %d: parameter %d jumped by %d", i, j, d)
				}
			}
		}
		if diffs > 1 {
			t.Fatalf("iteration %d changed %d parameters", i, diffs)
		}
		prev = res.Config
	}
}

func TestAgentDetectsContextChangeAndSwitches(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	pA := bowlPolicy(t, bowlTargets, "ctx-A")
	otherTargets := []float64{100, 3, 15, 85}
	pB := bowlPolicy(t, otherTargets, "ctx-B")
	store := NewPolicyStore(pA, pB)

	agent, err := NewAgent(sys, AgentOptions{Policy: pA, Store: store, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Relocate the bowl and raise the floor: a drastic context change.
	sys.targets = otherTargets
	sys.shift = 3

	switched := false
	switchedAt := 0
	for i := 0; i < 15; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Switched {
			switched = true
			switchedAt = i + 1
			if res.PolicyName != "ctx-B" {
				t.Fatalf("switched to %q, want ctx-B", res.PolicyName)
			}
			break
		}
	}
	if !switched {
		t.Fatal("agent never detected the context change")
	}
	// Detection needs s_thr=5 consecutive violations, so the delay is a few
	// iterations (the paper's "policy switching delay"); large self-induced
	// improvements before the change can pre-charge the violation counter,
	// so the lower bound is loose.
	if switchedAt < 1 || switchedAt > 10 {
		t.Fatalf("switched after %d iterations", switchedAt)
	}
}

func TestAgentNoSwitchWithoutStore(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	pA := bowlPolicy(t, bowlTargets, "ctx-A")
	agent, err := NewAgent(sys, AgentOptions{Policy: pA, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	sys.shift = 5
	for i := 0; i < 10; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Switched {
			t.Fatal("agent without a store switched policies")
		}
	}
}

func TestAgentValidation(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	if _, err := NewAgent(nil, AgentOptions{}); err == nil {
		t.Fatal("nil system accepted")
	}
	bad := DefaultOptions()
	bad.Window = 0
	if _, err := NewAgent(sys, AgentOptions{Options: bad}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero SLA", func(o *Options) { o.SLASeconds = 0 }},
		{"bad online", func(o *Options) { o.Online.Alpha = 0 }},
		{"bad batch", func(o *Options) { o.Batch.Gamma = 1 }},
		{"zero vthr", func(o *Options) { o.ViolationThreshold = 0 }},
		{"zero sthr", func(o *Options) { o.SwitchThreshold = 0 }},
		{"zero window", func(o *Options) { o.Window = 0 }},
	}
	for _, tt := range tests {
		o := DefaultOptions()
		tt.mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.ViolationThreshold != 0.3 || o.SwitchThreshold != 5 || o.Window != 10 {
		t.Fatalf("context-detection constants %+v differ from the paper", o)
	}
	if o.Online.Epsilon != 0.05 || o.Batch.Epsilon != 0.1 {
		t.Fatalf("exploration rates differ from the paper: %+v", o)
	}
}

func TestRegionModel(t *testing.T) {
	space := config.Default()
	base := space.DefaultConfig()
	samples := map[string]float64{base.Key(): 1.0}
	predict := func(cfg config.Config) float64 { return 2.0 }
	m := newRegionModel(space, samples, predict, 2.0)

	// Region = sampled state + its one-step neighbours.
	acts := config.Actions(space)
	feasible := 0
	for _, a := range acts[1:] {
		if _, ok := a.Apply(space, base); ok {
			feasible++
		}
	}
	if len(m.States()) != feasible+1 {
		t.Fatalf("region has %d states, want %d", len(m.States()), feasible+1)
	}
	// Measured reward beats predicted reward (rt 1.0 vs 2.0, SLA 2).
	if got := m.Reward(base.Key()); got != 1.0 {
		t.Fatalf("measured reward %v", got)
	}
	next, _ := acts[1].Apply(space, base)
	if got := m.Reward(next.Key()); got != 0.0 {
		t.Fatalf("predicted reward %v", got)
	}
	// Transitions stay closed over the region.
	for _, s := range m.States() {
		for a := 0; a < m.Actions(); a++ {
			if to, ok := m.Next(s, a); ok {
				if _, in := m.shape.index[to]; !in {
					t.Fatalf("transition escapes region: %s -a%d-> %s", s, a, to)
				}
			}
		}
	}
}

func TestRegionModelSkipsCorruptKeys(t *testing.T) {
	space := config.Default()
	samples := map[string]float64{"garbage": 1.0, "1,2": 2.0}
	m := newRegionModel(space, samples, nil, 2.0)
	if len(m.States()) != 0 {
		t.Fatalf("corrupt keys produced %d states", len(m.States()))
	}
}

func TestPolicyStoreMatch(t *testing.T) {
	pA := bowlPolicy(t, bowlTargets, "A")
	pB := bowlPolicy(t, []float64{100, 3, 15, 85}, "B")
	store := NewPolicyStore(pA, pB, nil)
	if store.Len() != 2 {
		t.Fatalf("store len %d", store.Len())
	}
	space := config.Default()
	cfg := space.DefaultConfig()
	// Measured RT equals policy A's prediction → A matches.
	got, err := store.Match(cfg, pA.PredictRT(cfg))
	if err != nil || got.Name() != "A" {
		t.Fatalf("Match = %v, %v", got, err)
	}
	got, err = store.Match(cfg, pB.PredictRT(cfg))
	if err != nil || got.Name() != "B" {
		t.Fatalf("Match = %v, %v", got, err)
	}
	if p := store.ByName("A"); p == nil || p.Name() != "A" {
		t.Fatal("ByName failed")
	}
	if store.ByName("Z") != nil {
		t.Fatal("ByName invented a policy")
	}
	empty := NewPolicyStore()
	if _, err := empty.Match(cfg, 1); err == nil {
		t.Fatal("empty store matched")
	}
}

func TestAgentOnRealSimulator(t *testing.T) {
	// Integration: the full agent tuning the discrete-time simulator.
	if testing.Short() {
		t.Skip("simulator integration is slow")
	}
	ctx := system.Context{
		Workload: tpcw.Workload{Mix: tpcw.Ordering, Clients: 300},
		Level:    vmenv.Level3,
	}
	sys, err := system.NewSimulated(system.SimulatedOptions{
		Context:        ctx,
		Seed:           77,
		SettleSeconds:  10,
		MeasureSeconds: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(sys, AgentOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanRT <= 0 {
			t.Fatalf("iteration %d: MeanRT %v", i, res.MeanRT)
		}
		if err := sys.Space().Validate(res.Config); err != nil {
			t.Fatalf("iteration %d: invalid config: %v", i, err)
		}
	}
}

func ExampleAgent() {
	sys := newBowlSystem([]float64{300, 11, 45, 55})
	agent, _ := NewAgent(sys, AgentOptions{Seed: 1})
	res, _ := agent.Step(context.Background())
	fmt.Println(res.Iteration)
	// Output: 1
}

func TestAgentDeterministicAcrossRuns(t *testing.T) {
	// The full agent trajectory must be reproducible from its seed (map
	// iteration order must not leak into learning).
	run := func() []string {
		sys := newBowlSystem(bowlTargets)
		agent, err := NewAgent(sys, AgentOptions{Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for i := 0; i < 15; i++ {
			res, err := agent.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, res.Config.Key())
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverged at step %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestThroughputReward(t *testing.T) {
	o := DefaultOptions()
	m := system.Metrics{MeanRT: 0.5, Throughput: 80}
	if got := o.RewardOf(m); got != o.SLASeconds-0.5 {
		t.Fatalf("default reward %v", got)
	}
	o.ThroughputSLA = 70
	if got := o.RewardOf(m); got != 10 {
		t.Fatalf("throughput reward %v, want 10", got)
	}
	// An agent driven by throughput reward still runs.
	sys := newBowlSystem(bowlTargets)
	agent, err := NewAgent(sys, AgentOptions{Options: o, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reward != res.Throughput-70 {
		t.Fatalf("step reward %v, throughput %v", res.Reward, res.Throughput)
	}
}

// TestRewardOfGateHealthyRejections is the regression test for the
// double-penalization bug: an interval where the admission gate healthily
// turned every arrival away (zero completions, no errors) used to be scored
// on the producer's pessimistic jammed-system MeanRT stand-in, punishing
// every rejection as an SLA miss on top of the lost throughput. Consistent
// with resilience's validity rules (rejected ≠ error), such intervals now
// score the neutral SLA point.
func TestRewardOfGateHealthyRejections(t *testing.T) {
	o := DefaultOptions()

	// Gate-healthy full-rejection interval: the webtier reports a huge
	// stand-in MeanRT because nothing completed.
	m := system.Metrics{MeanRT: 270, Completed: 0, Rejected: 900}
	if got := o.RewardOf(m); got != 0 {
		t.Fatalf("gate-healthy rejection interval reward %v, want neutral 0", got)
	}

	// With errors present the stand-in is real distress: the fallback must
	// not mask a failing system.
	m.Errors = 50
	if got := o.RewardOf(m); got != o.SLASeconds-270 {
		t.Fatalf("erroring interval reward %v, want %v", got, o.SLASeconds-270)
	}

	// An interval with completions is scored on its measured MeanRT as
	// before, however many rejections rode along.
	m = system.Metrics{MeanRT: 0.8, Completed: 40, Rejected: 900}
	if got := o.RewardOf(m); got != o.SLASeconds-0.8 {
		t.Fatalf("mixed interval reward %v, want %v", got, o.SLASeconds-0.8)
	}
}

func TestRewardOfCapacityCost(t *testing.T) {
	o := DefaultOptions()
	o.CapacityCost = 0.25
	m := system.Metrics{MeanRT: 0.5, Completed: 100, CapacityUnits: 3}
	want := o.SLASeconds - 0.5 - 0.25*3
	if got := o.RewardOf(m); got != want {
		t.Fatalf("cost-priced reward %v, want %v", got, want)
	}
	// Untracked capacity costs nothing, so the paper's reward is unchanged.
	m.CapacityUnits = 0
	if got := o.RewardOf(m); got != o.SLASeconds-0.5 {
		t.Fatalf("untracked-capacity reward %v", got)
	}
	// The price also applies to the throughput signal.
	o.ThroughputSLA = 70
	m = system.Metrics{Throughput: 80, Completed: 100, CapacityUnits: 2}
	if got := o.RewardOf(m); got != 10-0.25*2 {
		t.Fatalf("throughput cost-priced reward %v", got)
	}
	// Negative prices are rejected.
	o = DefaultOptions()
	o.CapacityCost = -1
	if err := o.Validate(); err == nil {
		t.Fatal("negative capacity cost accepted")
	}
}

func TestAgentViolationCountingAndReset(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	pA := bowlPolicy(t, bowlTargets, "ctx-A")
	pB := bowlPolicy(t, []float64{100, 3, 15, 85}, "ctx-B")
	store := NewPolicyStore(pA, pB)
	agent, err := NewAgent(sys, AgentOptions{Policy: pA, Store: store, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// Stabilize.
	for i := 0; i < 15; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// A drastic shift: violations must count up monotonically until the
	// switch, then reset to zero.
	sys.shift = 4
	prev := 0
	for i := 0; i < 12; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Switched {
			// The switch step reports the violation count that triggered it.
			if res.Violations < DefaultOptions().SwitchThreshold {
				t.Fatalf("switch triggered at %d violations", res.Violations)
			}
			return
		}
		if res.Violations < prev {
			t.Fatalf("violations went backwards: %d -> %d without a switch", prev, res.Violations)
		}
		prev = res.Violations
	}
	t.Fatal("no switch within 12 iterations of a drastic shift")
}

func TestAgentQTableGrowsOnlyWithVisits(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewAgent(sys, AgentOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// The materialized table covers the visited region (visited states plus
	// their one-step frontier), far below the full lattice.
	if n := agent.QTable().Len(); n == 0 || n > 11*(2*8+1)+11 {
		t.Fatalf("q-table has %d rows", n)
	}
}
