package core

import (
	"context"
	"testing"
)

// TestAgentsSharePolicyStructureWithoutCrosstalk is the end-to-end COW
// regression for the fleet's shared Q-structure: many agents warm-started
// from one Policy instance share its seeded rows and interned MDP structure,
// and one agent's online learning must never bleed into another's decisions.
// Agent b shares a policy with a heavily-stepped agent a; agent c holds an
// identically-trained but independent policy. b and c run the same seed over
// identical systems, so their trajectories must match exactly.
func TestAgentsSharePolicyStructureWithoutCrosstalk(t *testing.T) {
	shared := bowlPolicy(t, bowlTargets, "cow-shared")
	control := bowlPolicy(t, bowlTargets, "cow-control")

	sysA := newBowlSystem(bowlTargets)
	a, err := NewAgent(sysA, AgentOptions{Policy: shared, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// a learns hard against the shared policy first, materializing deltas
	// over many of the seeded states.
	for i := 0; i < 20; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	run := func(p *Policy) []StepResult {
		t.Helper()
		sys := newBowlSystem(bowlTargets)
		ag, err := NewAgent(sys, AgentOptions{Policy: p, Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 12)
		for i := range out {
			res, err := ag.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}

	got := run(shared)
	want := run(control)
	for i := range want {
		if got[i].Config.Key() != want[i].Config.Key() ||
			got[i].MeanRT != want[i].MeanRT ||
			got[i].Reward != want[i].Reward {
			t.Fatalf("step %d diverged: shared-policy agent %+v, control %+v — agent a's learning leaked through the shared rows",
				i, got[i], want[i])
		}
	}

	// The snapshot of a fresh shared-policy agent stays delta-only: its
	// Q-table serialization must not embed the policy's full seeded table.
	sysFresh := newBowlSystem(bowlTargets)
	fresh, err := NewAgent(sysFresh, AgentOptions{Policy: shared, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := fresh.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	stA, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.QTable) >= len(stA.QTable) {
		t.Errorf("fresh agent snapshot carries %d qtable bytes, learner %d — deltas are not sparse",
			len(st.QTable), len(stA.QTable))
	}
}
