package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/telemetry"
)

// AgentStateVersion is the current AgentState schema version. Restore rejects
// snapshots from a different version instead of guessing at field meanings.
const AgentStateVersion = 1

// AgentState is the complete learned and procedural state of an Agent,
// captured mid-run so a restarted process can resume the exact trajectory an
// uninterrupted run would have taken: the online Q-table, the per-state
// sample table, the context-detection window and counters, the resilience
// bookkeeping (last-known-good configuration, SLA streak), and both RNG
// streams (action selection and retraining) mid-sequence.
//
// The active initial policy travels by name only — Q-tables embed everything
// learned from it, and policies themselves are persisted separately (policy
// registry, PolicyStore). RestoreState re-binds the name against the agent's
// store.
type AgentState struct {
	// Version is the schema version (AgentStateVersion).
	Version int `json:"version"`
	// Iteration is the number of completed steps.
	Iteration int `json:"iteration"`
	// Config is the agent's current configuration.
	Config []int `json:"config"`
	// Samples is the per-state response-time table feeding retraining.
	Samples map[string]float64 `json:"samples,omitempty"`
	// Window holds the context-detection window samples, oldest first.
	Window []float64 `json:"window,omitempty"`
	// Violations is the consecutive-violation counter.
	Violations int `json:"violations,omitempty"`
	// PolicyName names the active initial policy ("" when uninitialized).
	PolicyName string `json:"policy,omitempty"`
	// LastGood is the last configuration that satisfied the SLA (nil: none).
	LastGood []int `json:"last_good,omitempty"`
	// LastRT is the last believable mean response time.
	LastRT float64 `json:"last_rt,omitempty"`
	// SLAStreak is the consecutive bad-interval count feeding rollback.
	SLAStreak int `json:"sla_streak,omitempty"`
	// AgentRNG and LearnerRNG are the two exploration streams mid-sequence.
	AgentRNG   uint64 `json:"agent_rng"`
	LearnerRNG uint64 `json:"learner_rng"`
	// QTable is the serialized online Q-table (mdp.QTable.Save).
	QTable json.RawMessage `json:"qtable"`
}

// ExportState captures the agent's complete resumable state. The returned
// value shares no mutable storage with the agent, so it can be serialized
// after the agent keeps stepping. Exporting between steps (never mid-step)
// is the caller's responsibility — the fleet scheduler checkpoints at round
// barriers, and racagent snapshots after the in-flight interval finishes.
func (a *Agent) ExportState() (*AgentState, error) {
	// A queued agent's learned state is only complete once every enqueued
	// interval has been applied; a deferred retrain error makes the snapshot
	// unusable, so it surfaces here.
	if err := a.drainQueue(); err != nil {
		return nil, fmt.Errorf("core: export: %w", err)
	}
	var qbuf bytes.Buffer
	if err := a.q.Save(&qbuf); err != nil {
		return nil, fmt.Errorf("core: export qtable: %w", err)
	}
	st := &AgentState{
		Version:    AgentStateVersion,
		Iteration:  a.iteration,
		Config:     a.cur.Clone(),
		Samples:    make(map[string]float64, len(a.samples)),
		Window:     a.window.Values(),
		Violations: a.violations,
		LastRT:     a.lastRT,
		SLAStreak:  a.slaStreak,
		AgentRNG:   a.rng.State(),
		LearnerRNG: a.learner.RNG().State(),
		QTable:     json.RawMessage(qbuf.Bytes()),
	}
	for k, v := range a.samples {
		st.Samples[k] = v
	}
	if a.policy != nil {
		st.PolicyName = a.policy.Name()
	}
	if a.lastGood != nil {
		st.LastGood = a.lastGood.Clone()
	}
	return st, nil
}

// RestoreState rebuilds the agent from a snapshot taken by ExportState on an
// agent with the same configuration space and options. The snapshot's policy
// name is re-bound against the agent's construction-time policy and store; a
// name that resolves nowhere is an error rather than a silent cold start.
//
// After a successful restore the agent's future Step sequence is exactly the
// one the exporting agent would have produced — provided the system it tunes
// was restored too (system.Snapshottable) or is memoryless given its applied
// configuration, like the noise-free analytic model.
func (a *Agent) RestoreState(st *AgentState) error {
	if st == nil {
		return errors.New("core: nil agent state")
	}
	// Wait for any in-flight retrain before swapping the learned state out
	// from under it. A deferred learning error is forgotten: the snapshot
	// replaces the exact state that failed.
	if a.queue != nil {
		a.queue.reset()
	}
	if st.Version != AgentStateVersion {
		return fmt.Errorf("core: agent state version %d, want %d", st.Version, AgentStateVersion)
	}
	cur := config.Config(st.Config)
	if err := a.space.Validate(cur); err != nil {
		return fmt.Errorf("core: restore config: %w", err)
	}
	var lastGood config.Config
	if st.LastGood != nil {
		lastGood = config.Config(st.LastGood)
		if err := a.space.Validate(lastGood); err != nil {
			return fmt.Errorf("core: restore last-good config: %w", err)
		}
	}
	if len(st.Window) > a.opts.Window {
		return fmt.Errorf("core: snapshot window has %d samples, agent window holds %d",
			len(st.Window), a.opts.Window)
	}

	// Re-bind the initial policy by name before rebuilding the Q-table so the
	// restored table seeds future states from the right policy.
	policy := a.policy
	switch {
	case st.PolicyName == "":
		policy = nil
	case policy != nil && policy.Name() == st.PolicyName:
		// The construction-time policy is the active one.
	case a.store != nil && a.store.ByName(st.PolicyName) != nil:
		policy = a.store.ByName(st.PolicyName)
	default:
		return fmt.Errorf("core: snapshot references unknown policy %q", st.PolicyName)
	}

	if st.QTable == nil {
		return errors.New("core: snapshot lacks a Q-table")
	}
	q, err := mdp.LoadQTable(bytes.NewReader(st.QTable))
	if err != nil {
		return fmt.Errorf("core: restore qtable: %w", err)
	}
	if q.Actions() != len(a.actions) {
		return fmt.Errorf("core: snapshot Q-table has %d actions, agent %d",
			q.Actions(), len(a.actions))
	}
	if policy != nil {
		q.SetShared(policy.SharedRows())
	}
	learner, err := mdp.NewLearner(q, a.learner.Params(), sim.RestoreRNG(st.LearnerRNG))
	if err != nil {
		return err
	}

	a.policy = policy
	a.q = q
	a.learner = learner
	a.region = nil
	a.rng = sim.RestoreRNG(st.AgentRNG)
	a.iteration = st.Iteration
	a.cur = cur.Clone()
	a.samples = make(map[string]float64, len(st.Samples))
	for k, v := range st.Samples {
		a.samples[k] = v
	}
	a.window.Reset()
	for _, v := range st.Window {
		a.window.Add(v)
	}
	a.violations = st.Violations
	a.lastGood = nil
	if lastGood != nil {
		a.lastGood = lastGood.Clone()
	}
	a.lastRT = st.LastRT
	a.slaStreak = st.SLAStreak
	if a.tel != nil {
		a.tel.violations.Set(float64(a.violations))
	}
	return nil
}

// ForcePolicy makes p the active initial policy immediately, bypassing the
// violation-counter detection — the fleet admin API's manual override. The
// Q-table is re-seeded and the measurement window cleared, exactly as on a
// detected context change. A nil p clears the policy (cold Q-table).
func (a *Agent) ForcePolicy(p *Policy) {
	// The background learner must not retrain into a Q-table that is being
	// re-seeded; a deferred error stays queued for the next Step to surface.
	_ = a.drainQueue()
	oldName := ""
	if a.policy != nil {
		oldName = a.policy.Name()
	}
	a.policy = p
	a.resetQ()
	a.samples = make(map[string]float64)
	a.window.Reset()
	a.violations = 0
	newName := ""
	if p != nil {
		newName = p.Name()
	}
	if a.tel != nil {
		a.tel.switches.Inc()
	}
	if a.trace != nil {
		a.trace.Add(telemetry.Event{
			Kind:      telemetry.KindPolicySwitch,
			Iteration: a.iteration,
			Policy:    newName,
			Detail:    "forced: " + oldName + " -> " + newName,
		})
	}
}

// Save writes st as JSON — the snapshot sibling of Policy.Save.
func (st *AgentState) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(st)
}

// LoadAgentState reads a snapshot previously written by AgentState.Save.
func LoadAgentState(r io.Reader) (*AgentState, error) {
	var st AgentState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decode agent state: %w", err)
	}
	return &st, nil
}
