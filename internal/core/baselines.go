package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
)

// StaticAgent is the paper's first baseline: it never reconfigures, holding
// the static default settings of Table 1 (or whatever the system started
// with).
type StaticAgent struct {
	sys       system.System
	opts      Options
	iteration int
}

var _ Tuner = (*StaticAgent)(nil)

// NewStaticAgent wraps a system without ever reconfiguring it.
func NewStaticAgent(sys system.System, opts Options) (*StaticAgent, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	if opts == (Options{}) {
		opts = DefaultOptions()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &StaticAgent{sys: sys, opts: opts}, nil
}

// Step measures one interval under the unchanged configuration.
func (s *StaticAgent) Step(ctx context.Context) (StepResult, error) {
	s.iteration++
	m, err := s.sys.Measure(ctx)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{
		Iteration:     s.iteration,
		Action:        config.Action{Dir: config.Keep},
		Config:        s.sys.Config(),
		MeanRT:        m.MeanRT,
		P99RT:         m.P99RT,
		Throughput:    m.Throughput,
		Goodput:       m.Goodput,
		Reward:        s.opts.RewardOf(m),
		Level:         m.Level,
		CapacityUnits: m.CapacityUnits,
	}, nil
}

// TrialAndErrorAgent is the paper's second baseline (§5.2): it mimics a
// human administrator tuning one parameter at a time. For each parameter in
// turn it tries every lattice value (one measurement interval each), fixes
// the best, and moves to the next parameter; after the last parameter it
// starts a new round. Because parameters are tuned independently it is prone
// to local optima (paper: ~30% worse stable states than RAC).
type TrialAndErrorAgent struct {
	sys   system.System
	space *config.Space
	opts  Options

	iteration int
	param     int // parameter currently being tuned
	level     int // next lattice level to try
	bestRT    float64
	bestValue int
	cur       config.Config
}

var _ Tuner = (*TrialAndErrorAgent)(nil)

// NewTrialAndErrorAgent builds the coordinate-descent baseline.
func NewTrialAndErrorAgent(sys system.System, opts Options) (*TrialAndErrorAgent, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	if opts == (Options{}) {
		opts = DefaultOptions()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &TrialAndErrorAgent{
		sys:   sys,
		space: sys.Space(),
		opts:  opts,
		cur:   sys.Config(),
	}, nil
}

// Step tries the next value of the parameter under tuning.
func (t *TrialAndErrorAgent) Step(ctx context.Context) (StepResult, error) {
	t.iteration++
	def := t.space.Def(t.param)

	// Set the parameter to the next candidate level.
	trial := t.cur.Clone()
	oldVal := trial[t.param]
	trial[t.param] = def.Value(t.level)
	if err := t.sys.Apply(ctx, trial); err != nil {
		return StepResult{}, fmt.Errorf("core: trial apply: %w", err)
	}
	m, err := t.sys.Measure(ctx)
	if err != nil {
		return StepResult{}, err
	}
	rt := m.MeanRT

	if t.level == 0 || rt < t.bestRT {
		t.bestRT = rt
		t.bestValue = trial[t.param]
	}

	dir := config.Keep
	switch {
	case trial[t.param] > oldVal:
		dir = config.Increase
	case trial[t.param] < oldVal:
		dir = config.Decrease
	}
	res := StepResult{
		Iteration:     t.iteration,
		Action:        config.Action{ParamIndex: t.param, Dir: dir},
		Config:        trial.Clone(),
		MeanRT:        rt,
		P99RT:         m.P99RT,
		Throughput:    m.Throughput,
		Goodput:       m.Goodput,
		Reward:        t.opts.RewardOf(m),
		Level:         m.Level,
		CapacityUnits: m.CapacityUnits,
	}

	// Advance the schedule: after the last level, fix the best value found
	// and move to the next parameter (wrapping into a new tuning round).
	t.level++
	if t.level >= def.Levels() {
		t.cur[t.param] = t.bestValue
		t.level = 0
		t.param = (t.param + 1) % t.space.Len()
	}
	return res, nil
}

// Config returns the baseline's current best configuration.
func (t *TrialAndErrorAgent) Config() config.Config { return t.cur.Clone() }

// HillClimbAgent is an additional baseline beyond the paper's two: steepest
// descent over one-step lattice neighbours, restarting exploration when no
// neighbour improves. It probes one neighbour per iteration (a fair
// comparison: every agent gets one measurement per interval).
type HillClimbAgent struct {
	sys   system.System
	space *config.Space
	opts  Options

	iteration int
	actions   []config.Action
	next      int // next action to probe
	baseRT    float64
	baseSet   bool
	bestRT    float64
	bestCfg   config.Config
	cur       config.Config
}

var _ Tuner = (*HillClimbAgent)(nil)

// NewHillClimbAgent builds the hill-climbing baseline.
func NewHillClimbAgent(sys system.System, opts Options) (*HillClimbAgent, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	if opts == (Options{}) {
		opts = DefaultOptions()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &HillClimbAgent{
		sys:     sys,
		space:   sys.Space(),
		opts:    opts,
		actions: config.Actions(sys.Space()),
		cur:     sys.Config(),
	}, nil
}

// Step probes the next neighbour; when the probe cycle completes, it moves
// to the best neighbour if it improves on the current point.
func (h *HillClimbAgent) Step(ctx context.Context) (StepResult, error) {
	h.iteration++

	if !h.baseSet {
		// Measure the starting point first.
		m, err := h.measure(ctx, h.cur)
		if err != nil {
			return StepResult{}, err
		}
		h.baseRT = m
		h.baseSet = true
		h.bestRT = m
		h.bestCfg = h.cur.Clone()
		h.next = 1 // skip the global keep action
		return StepResult{
			Iteration: h.iteration,
			Action:    config.Action{Dir: config.Keep},
			Config:    h.cur.Clone(),
			MeanRT:    m,
			Reward:    h.opts.Reward(m),
		}, nil
	}

	// Find the next feasible neighbour action.
	for h.next < len(h.actions) {
		if _, ok := h.actions[h.next].Apply(h.space, h.cur); ok {
			break
		}
		h.next++
	}
	if h.next >= len(h.actions) {
		// Probe cycle complete: move to the best neighbour (or stay), then
		// restart the cycle.
		improved := h.bestRT < h.baseRT
		if improved {
			h.cur = h.bestCfg.Clone()
			h.baseRT = h.bestRT
		}
		h.next = 1
		h.bestRT = h.baseRT
		h.bestCfg = h.cur.Clone()
		m, err := h.measure(ctx, h.cur)
		if err != nil {
			return StepResult{}, err
		}
		// Refresh the base measurement (the environment may have drifted).
		h.baseRT = m
		return StepResult{
			Iteration: h.iteration,
			Action:    config.Action{Dir: config.Keep},
			Config:    h.cur.Clone(),
			MeanRT:    m,
			Reward:    h.opts.Reward(m),
		}, nil
	}

	action := h.actions[h.next]
	h.next++
	trial, _ := action.Apply(h.space, h.cur)
	m, err := h.measure(ctx, trial)
	if err != nil {
		return StepResult{}, err
	}
	if m < h.bestRT {
		h.bestRT = m
		h.bestCfg = trial.Clone()
	}
	return StepResult{
		Iteration: h.iteration,
		Action:    action,
		Config:    trial,
		MeanRT:    m,
		Reward:    h.opts.Reward(m),
	}, nil
}

func (h *HillClimbAgent) measure(ctx context.Context, cfg config.Config) (float64, error) {
	if err := h.sys.Apply(ctx, cfg); err != nil {
		return 0, fmt.Errorf("core: hillclimb apply: %w", err)
	}
	m, err := h.sys.Measure(ctx)
	if err != nil {
		return 0, err
	}
	return m.MeanRT, nil
}
