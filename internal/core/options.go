// Package core implements the paper's contribution: RAC, a reinforcement-
// learning agent for online auto-configuration of multi-tier web systems.
//
// The agent is assembled from three components mirroring the paper's
// architecture (§3.1): a performance monitor (the System.Measure calls), an
// RL-based decision maker (a Q-table over configuration states, retrained in
// batch every interval — Algorithms 1 and 3), and a configuration controller
// (System.Apply). Policy initialization (Algorithm 2) samples a coarse
// grouped sublattice, fits a polynomial-regression predictor, and trains an
// initial group-level Q-table offline; the resulting Policy seeds the online
// Q-table for states it has never visited.
package core

import (
	"fmt"

	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/system"
)

// Options are the agent's hyper-parameters. The defaults are the paper's
// published settings.
type Options struct {
	// SLASeconds is the reference response time of the service-level
	// agreement; the immediate reward is SLASeconds − measuredRT (§3.2).
	SLASeconds float64

	// ThroughputSLA switches the reward signal to throughput when positive:
	// r = measuredThroughput − ThroughputSLA (requests/second). The paper
	// names both response time and throughput as admissible application-level
	// signals (§3.1); response time is the default.
	ThroughputSLA float64

	// Online are the online learning parameters (paper: α=0.1, γ=0.9,
	// ε=0.05).
	Online mdp.Params
	// Batch are the per-interval batch retraining parameters (paper: ε=0.1).
	Batch mdp.Params

	// ViolationThreshold is v_thr: the relative deviation of the current
	// response time from the recent average that counts as a violation
	// (paper: 0.3).
	ViolationThreshold float64
	// SwitchThreshold is s_thr: consecutive violations before the agent
	// declares a context change and switches initial policy (paper: 5).
	SwitchThreshold int
	// Window is n: how many recent measurements form the reference average
	// (paper: 10).
	Window int

	// BatchSweeps bounds the per-interval batch retraining sweeps.
	BatchSweeps int
	// BatchStepsPerState is the trajectory length per swept state.
	BatchStepsPerState int
	// BatchTheta is the retraining convergence threshold.
	BatchTheta float64

	// Resilience is the fault-handling policy (retry, invalid-measurement
	// rejection, rollback-to-safe). The zero value reproduces the
	// pre-resilience agent; DefaultOptions enables retries and degraded-
	// interval rejection, which never fire on clean runs.
	Resilience Resilience

	// CapacityCost prices elastic capacity into the reward when positive:
	// r = SLA − responseTime − CapacityCost·level, where level is the
	// interval's Metrics.CapacityUnits (the vmenv capacity ordinal). Zero —
	// the default — reproduces the paper's reward exactly; without a price a
	// capacity-aware agent would always provision the biggest VM.
	CapacityCost float64
}

// DefaultOptions returns the paper's hyper-parameters with an SLA of two
// seconds (positive reward at well-configured operating points in every
// Table 2 context, negative when misconfigured).
func DefaultOptions() Options {
	return Options{
		SLASeconds:         2.0,
		Online:             mdp.DefaultOnline(),
		Batch:              mdp.DefaultOffline(),
		ViolationThreshold: 0.3,
		SwitchThreshold:    5,
		Window:             10,
		BatchSweeps:        12,
		BatchStepsPerState: 6,
		BatchTheta:         0.01,
		Resilience: Resilience{
			MaxAttempts:   3,
			MinCompleted:  10,
			MaxErrorRatio: 0.5,
		},
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.SLASeconds <= 0 {
		return fmt.Errorf("core: non-positive SLA %v", o.SLASeconds)
	}
	if err := o.Online.Validate(); err != nil {
		return fmt.Errorf("core: online params: %w", err)
	}
	if err := o.Batch.Validate(); err != nil {
		return fmt.Errorf("core: batch params: %w", err)
	}
	if o.ViolationThreshold <= 0 {
		return fmt.Errorf("core: non-positive violation threshold %v", o.ViolationThreshold)
	}
	if o.SwitchThreshold < 1 {
		return fmt.Errorf("core: switch threshold %d < 1", o.SwitchThreshold)
	}
	if o.Window < 1 {
		return fmt.Errorf("core: window %d < 1", o.Window)
	}
	if err := o.Resilience.Validate(); err != nil {
		return err
	}
	if o.CapacityCost < 0 {
		return fmt.Errorf("core: negative capacity cost %v", o.CapacityCost)
	}
	return nil
}

// Reward converts a measured mean response time into the paper's immediate
// reward r = SLA − perf.
func (o Options) Reward(meanRT float64) float64 {
	return o.SLASeconds - meanRT
}

// RewardOf computes the immediate reward from a full measurement, honoring
// the configured signal (response time by default, throughput when
// ThroughputSLA is set) and subtracting the capacity price when
// CapacityCost is set.
//
// An interval that completed nothing while the admission gate healthily
// turned arrivals away (Completed == 0, Rejected > 0, no errors) carries no
// response-time signal: producers report a pessimistic stand-in MeanRT for
// jammed systems, but resilience's validity rules say rejected ≠ error — the
// gate deliberately trading requests away is not the system failing. Scoring
// that stand-in would double-penalize every rejection as an SLA miss, so the
// reward falls back to the neutral SLA point (zero base reward), matching the
// degraded-interval convention.
func (o Options) RewardOf(m system.Metrics) float64 {
	var r float64
	if o.ThroughputSLA > 0 {
		r = m.Throughput - o.ThroughputSLA
	} else {
		rt := m.MeanRT
		if m.Completed == 0 && m.Rejected > 0 && m.Errors == 0 {
			rt = o.SLASeconds
		}
		r = o.Reward(rt)
	}
	if o.CapacityCost > 0 && m.CapacityUnits > 0 {
		r -= o.CapacityCost * float64(m.CapacityUnits)
	}
	return r
}
