package core

import (
	"context"
	"testing"

	"github.com/rac-project/rac/internal/config"
)

func TestStaticAgentNeverReconfigures(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewStaticAgent(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	initial := sys.Config()
	for i := 0; i < 10; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Config.Equal(initial) {
			t.Fatalf("static agent moved to %v", res.Config)
		}
		if res.Action.Dir != config.Keep {
			t.Fatal("static agent reported a non-keep action")
		}
	}
	if sys.applied != 0 {
		t.Fatalf("static agent applied %d configurations", sys.applied)
	}
}

func TestStaticAgentValidation(t *testing.T) {
	if _, err := NewStaticAgent(nil, Options{}); err == nil {
		t.Fatal("nil system accepted")
	}
	bad := DefaultOptions()
	bad.SLASeconds = -1
	if _, err := NewStaticAgent(newBowlSystem(bowlTargets), bad); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestTrialAndErrorSchedule(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewTrialAndErrorAgent(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	space := sys.Space()
	firstDef := space.Def(0)

	// The first Levels() steps sweep parameter 0 across its lattice.
	seen := make(map[int]bool)
	for i := 0; i < firstDef.Levels(); i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Config[0]] = true
		// Other parameters stay at their defaults during parameter 0's sweep.
		for j := 1; j < space.Len(); j++ {
			if res.Config[j] != sys.space.DefaultConfig()[j] {
				t.Fatalf("step %d: parameter %d moved during sweep of 0", i, j)
			}
		}
	}
	if len(seen) != firstDef.Levels() {
		t.Fatalf("sweep covered %d values, want %d", len(seen), firstDef.Levels())
	}

	// After the sweep, parameter 0 is fixed at its best value: the bowl's
	// capacity-group target is a mean of 300, and with MaxThreads still at
	// its default 200, the best MaxClients alone is 400.
	res, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if agent.Config()[0] != 400 {
		t.Fatalf("parameter 0 fixed at %d, want 400", agent.Config()[0])
	}
	_ = res
}

func TestTrialAndErrorEventuallyNearOptimal(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewTrialAndErrorAgent(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One full round over all parameters.
	total := 0
	for _, d := range sys.Space().Defs() {
		total += d.Levels()
	}
	for i := 0; i < total; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	final := agent.Config()
	rt := sys.rt(final)
	def := sys.rt(sys.space.DefaultConfig())
	if rt >= def {
		t.Fatalf("trial-and-error did not improve: %v vs default %v", rt, def)
	}
	// On a separable bowl, coordinate descent should come close to the
	// optimum (0.2 floor).
	if rt > 0.35 {
		t.Fatalf("coordinate descent ended at %v", rt)
	}
}

func TestHillClimbImproves(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewHillClimbAgent(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	def := sys.rt(sys.space.DefaultConfig())
	var last StepResult
	for i := 0; i < 120; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if sys.rt(agent.cur) >= def {
		t.Fatalf("hill climbing did not improve: %v vs %v", sys.rt(agent.cur), def)
	}
	_ = last
}

func TestBaselineValidation(t *testing.T) {
	if _, err := NewTrialAndErrorAgent(nil, Options{}); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := NewHillClimbAgent(nil, Options{}); err == nil {
		t.Fatal("nil system accepted")
	}
}

func TestApproxAgentLearnsOnBowl(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewApproxAgent(sys, Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	start := sys.rt(sys.Config())
	var early, late float64
	for i := 0; i < 120; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Iteration != i+1 {
			t.Fatalf("iteration %d", res.Iteration)
		}
		if i < 30 {
			early += res.MeanRT
		}
		if i >= 90 {
			late += res.MeanRT
		}
	}
	early, late = early/30, late/30
	// Without any initialization the approximator learns more slowly than
	// the seeded tabular agent, but it must trend downhill and end below
	// the static default's response time.
	if late >= start {
		t.Fatalf("approx agent did not improve on the default: %v vs %v", late, start)
	}
	if late > early+0.05 {
		t.Fatalf("approx agent regressed: early %v late %v", early, late)
	}
}

func TestApproxAgentValidation(t *testing.T) {
	if _, err := NewApproxAgent(nil, Options{}, 1); err == nil {
		t.Fatal("nil system accepted")
	}
	bad := DefaultOptions()
	bad.SLASeconds = 0
	if _, err := NewApproxAgent(newBowlSystem(bowlTargets), bad, 1); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestApproxAgentMovesOneStep(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewApproxAgent(sys, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := sys.Config()
	for i := 0; i < 20; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		diffs := 0
		for j := range res.Config {
			if res.Config[j] != prev[j] {
				diffs++
			}
		}
		if diffs > 1 {
			t.Fatalf("step %d changed %d parameters", i, diffs)
		}
		prev = res.Config
	}
}

func TestTrialAndErrorWrapsIntoNewRound(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewTrialAndErrorAgent(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range sys.Space().Defs() {
		total += d.Levels()
	}
	// One full round plus one step: the schedule must wrap to parameter 0.
	for i := 0; i < total; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Action.ParamIndex != 0 {
		t.Fatalf("round did not wrap: tuning parameter %d", res.Action.ParamIndex)
	}
	// The environment drifts (context change): a second round must adapt the
	// fixed values rather than freeze forever.
	sys.targets = []float64{100, 3, 15, 85}
	for i := 0; i < total; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	rt := sys.rt(agent.Config())
	if rt > sys.rt(sys.space.DefaultConfig()) {
		t.Fatalf("second round did not adapt: rt %v", rt)
	}
}

func TestStaticAgentRewardTracksMetrics(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	agent, err := NewStaticAgent(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultOptions().SLASeconds - res.MeanRT
	if res.Reward != want {
		t.Fatalf("reward %v, want %v", res.Reward, want)
	}
	if res.Throughput != 50 {
		t.Fatalf("throughput %v not propagated", res.Throughput)
	}
}
