package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/parallel"
	"github.com/rac-project/rac/internal/regression"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/telemetry"
)

// Sampler measures the mean response time of one configuration. Policy
// initialization drives it over the coarse grouped sublattice; it is usually
// backed by system.System (apply + measure) or, for fast approximate
// policies, by the analytic queueing model. With InitOptions.Procs beyond 1
// the sampler is called from multiple goroutines and must be safe for
// concurrent use; stateful samplers should use StreamSampler instead.
type Sampler func(cfg config.Config) (float64, error)

// StreamSampler measures one configuration using a dedicated RNG stream.
// Streams are split from the initialization seed before any sampling is
// dispatched (one per coarse configuration, in enumeration order), so a
// sampler that derives all of its randomness — simulator seeds included —
// from the supplied stream produces bit-identical results for any
// InitOptions.Procs, including 1. The function must not touch shared mutable
// state when Procs exceeds 1.
type StreamSampler func(cfg config.Config, rng *sim.RNG) (float64, error)

// BatchSampler measures a contiguous chunk of coarse configurations in one
// call, writing out[i] for cfgs[i] (len(out) == len(cfgs) == len(streams)).
// Batching exists so array-shaped backends — the analytic queueing surface
// above all — can reuse solver scratch buffers across a whole chunk instead
// of allocating per configuration. A batch sampler must return exactly the
// values the equivalent StreamSampler would (bit for bit): chunk boundaries
// are an implementation detail of the dispatch and must never show in the
// output. streams[i] is cfgs[i]'s pre-split RNG stream, as in StreamSampler.
type BatchSampler func(cfgs []config.Config, streams []*sim.RNG, out []float64) error

// batchChunkSize is the number of coarse configurations handed to one
// BatchSampler call. Small enough that even a quick-mode sweep (3^G points)
// fans out across workers, large enough to amortize per-chunk solver setup.
const batchChunkSize = 16

// InitOptions configure LearnPolicy.
type InitOptions struct {
	// CoarseLevels is the number of coarse sample values per parameter
	// group (paper §4.1 "coarse granularity"); at least 2, default 4.
	CoarseLevels int
	// Batch configures the offline RL pass over the group lattice; zero
	// value uses mdp.DefaultBatchConfig with the paper's offline
	// hyper-parameters (α=0.1, γ=0.9, ε=0.1).
	Batch mdp.BatchConfig
	// SLASeconds is the reward reference; default 2 s (DefaultOptions).
	SLASeconds float64
	// Seed drives the offline training exploration and the per-sample RNG
	// streams handed to a StreamSampler.
	Seed uint64
	// Procs bounds the worker goroutines sampling the coarse sublattice.
	// Zero or negative uses every CPU; 1 samples sequentially. Results are
	// identical for every value when the sampler honors its contract.
	Procs int
	// BatchSampler, when non-nil, replaces the per-configuration sampler for
	// the coarse sweep: the sublattice is split into contiguous chunks
	// dispatched on the worker pool, one BatchSampler call per chunk. It must
	// be bit-identical to the StreamSampler (see the type's contract); the
	// per-configuration sampler may then be nil.
	BatchSampler BatchSampler
	// Telemetry, when non-nil, receives the parallel pool's instruments
	// (rac_parallel_*) for the sampling sweep.
	Telemetry *telemetry.Registry
}

// LearnPolicy runs the paper's policy-initialization procedure (Algorithm 2)
// for one system context:
//
//  1. group parameters with similar characteristics,
//  2. sample the performance of coarse grouped configurations,
//  3. fit a polynomial regression predicting unvisited configurations,
//  4. train an initial Q-table offline over the group lattice.
//
// The sampler is invoked once per coarse grouped configuration
// (CoarseLevels^G calls), concurrently when opts.Procs allows.
func LearnPolicy(name string, space *config.Space, sample Sampler, opts InitOptions) (*Policy, error) {
	if sample == nil {
		return nil, errors.New("core: nil sampler")
	}
	return LearnPolicyStream(name, space, func(cfg config.Config, _ *sim.RNG) (float64, error) {
		return sample(cfg)
	}, opts)
}

// LearnPolicyStream is LearnPolicy for samplers that consume randomness: each
// coarse configuration is measured with its own pre-split RNG stream, making
// the sweep's output independent of opts.Procs and of sampling order.
func LearnPolicyStream(name string, space *config.Space, sample StreamSampler, opts InitOptions) (*Policy, error) {
	if space == nil {
		return nil, errors.New("core: nil space")
	}
	if sample == nil && opts.BatchSampler == nil {
		return nil, errors.New("core: nil sampler")
	}
	k := opts.CoarseLevels
	if k == 0 {
		k = 4
	}
	if k < 2 {
		return nil, fmt.Errorf("core: need at least 2 coarse levels, got %d", k)
	}
	sla := opts.SLASeconds
	if sla == 0 {
		sla = DefaultOptions().SLASeconds
	}
	if sla <= 0 {
		return nil, fmt.Errorf("core: non-positive SLA %v", sla)
	}

	defs, err := groupDefs(space)
	if err != nil {
		return nil, err
	}

	// 1–2. Enumerate the coarse grouped sublattice, then sample it through
	// the worker pool. Streams are split per configuration before dispatch
	// (the determinism contract), and xs/ys keep enumeration order, so the
	// regression input is the same for any worker count.
	coarse := make([][]int, len(defs))
	for gi, d := range defs {
		vals, err := config.CoarseValues(space, d.group, k)
		if err != nil {
			return nil, err
		}
		coarse[gi] = vals
	}
	var (
		cfgs []config.Config
		xs   [][]float64
	)
	assign := make(map[config.Group]int, len(defs))
	var walk func(gi int) error
	walk = func(gi int) error {
		if gi == len(defs) {
			cfg, err := config.GroupedConfig(space, assign)
			if err != nil {
				return err
			}
			vec := make([]float64, len(defs))
			for i, d := range defs {
				vec[i] = float64(assign[d.group])
			}
			cfgs = append(cfgs, cfg)
			xs = append(xs, vec)
			return nil
		}
		for _, v := range coarse[gi] {
			assign[defs[gi].group] = v
			if err := walk(gi + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	streams := sim.NewRNG(opts.Seed ^ 0x5a3b9d2e8c71f604).SplitN(len(cfgs))
	popts := parallel.Options{Procs: opts.Procs, Telemetry: opts.Telemetry}
	var ys []float64
	if opts.BatchSampler != nil {
		// Chunked dispatch: workers write disjoint sub-slices of ys, so the
		// result layout is enumeration order regardless of chunk scheduling.
		ys = make([]float64, len(cfgs))
		nChunks := (len(cfgs) + batchChunkSize - 1) / batchChunkSize
		err = parallel.ForEach(popts, nChunks, func(c int) error {
			lo := c * batchChunkSize
			hi := lo + batchChunkSize
			if hi > len(cfgs) {
				hi = len(cfgs)
			}
			if err := opts.BatchSampler(cfgs[lo:hi], streams[lo:hi], ys[lo:hi]); err != nil {
				return fmt.Errorf("core: sample chunk [%d,%d): %w", lo, hi, err)
			}
			return nil
		})
	} else {
		ys, err = parallel.Map(popts, len(cfgs), func(i int) (float64, error) {
			rt, err := sample(cfgs[i], streams[i])
			if err != nil {
				return 0, fmt.Errorf("core: sample %s: %w", cfgs[i].Key(), err)
			}
			return rt, nil
		})
	}
	if err != nil {
		return nil, err
	}

	// 3. Regression-based prediction of unvisited configurations. The fit is
	// done in log space: response times span orders of magnitude once a
	// sampled configuration hits an overload cliff, and a log-space quadratic
	// stays positive and keeps resolution in the well-configured region.
	logYs := make([]float64, len(ys))
	for i, y := range ys {
		logYs[i] = math.Log(math.Max(y, 1e-3))
	}
	quad, err := regression.FitQuadratic(xs, logYs)
	if err != nil {
		return nil, fmt.Errorf("core: regression fit: %w", err)
	}
	floor := minSample(ys) * 0.25
	if floor <= 0 {
		floor = 0.01
	}
	predict := func(vals []int) float64 {
		vec := make([]float64, len(vals))
		for i, v := range vals {
			vec[i] = float64(v)
		}
		rt := math.Exp(quad.Eval(vec))
		if rt < floor {
			rt = floor
		}
		return rt
	}

	// 4. Offline RL over the group lattice. The offline pass runs many more
	// sweeps than the per-interval retraining: seeded Q values must sit on
	// the same asymptotic scale (≈ r/(1−γ)) as the values the online agent
	// keeps refreshing, or unvisited states would look artificially poor and
	// the agent would cling to its visited region.
	lat := newGroupLattice(defs)
	model := newGroupModel(lat, predict, sla)
	batch := opts.Batch
	if batch.MaxSweeps == 0 {
		batch = mdp.DefaultBatchConfig()
		batch.MaxSweeps = 400
		batch.Theta = 0.005
	}
	q := mdp.NewQTable(model.Actions(), 0)
	if _, err := mdp.BatchTrain(q, model, batch, sim.NewRNG(opts.Seed|1)); err != nil {
		return nil, fmt.Errorf("core: offline training: %w", err)
	}

	paramGroup := make([]int, space.Len())
	for gi, d := range defs {
		for _, i := range d.members {
			paramGroup[i] = gi
		}
	}
	return &Policy{
		name:       name,
		space:      space,
		defs:       defs,
		lat:        lat,
		paramGroup: paramGroup,
		q:          q,
		quad:       quad,
		sla:        sla,
		floorRT:    floor,
		intern:     &policyIntern{},
	}, nil
}

func minSample(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	m := ys[0]
	for _, y := range ys[1:] {
		if y < m {
			m = y
		}
	}
	return m
}
