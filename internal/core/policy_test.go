package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
)

func TestGroupDefs(t *testing.T) {
	space := config.Default()
	defs, err := groupDefs(space)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 4 {
		t.Fatalf("got %d groups", len(defs))
	}
	for _, d := range defs {
		if d.max < d.min || d.step <= 0 {
			t.Fatalf("group %s lattice [%d,%d] step %d", d.group, d.min, d.max, d.step)
		}
		if (d.max-d.min)%d.step != 0 {
			t.Fatalf("group %s lattice not aligned", d.group)
		}
		if len(d.members) == 0 {
			t.Fatalf("group %s has no members", d.group)
		}
	}
	// Capacity group intersects MaxClients and MaxThreads: [50,600] step 50.
	cap := defs[0]
	if cap.group != config.GroupCapacity || cap.min != 50 || cap.max != 600 || cap.step != 50 {
		t.Fatalf("capacity lattice %+v", cap)
	}
	// Timeout group intersects [1,21] at step 2.
	to := defs[1]
	if to.group != config.GroupTimeout || to.min != 1 || to.max != 21 || to.step != 2 {
		t.Fatalf("timeout lattice %+v", to)
	}
}

func TestGroupDefClamp(t *testing.T) {
	d := groupDef{min: 50, max: 600, step: 50}
	tests := []struct{ in, want int }{
		{0, 50}, {50, 50}, {74, 50}, {76, 100}, {600, 600}, {999, 600},
	}
	for _, tt := range tests {
		if got := d.clamp(tt.in); got != tt.want {
			t.Errorf("clamp(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestGroupModelEnumeration(t *testing.T) {
	space := config.Default()
	defs, err := groupDefs(space)
	if err != nil {
		t.Fatal(err)
	}
	model := newGroupModel(newGroupLattice(defs), func(vals []int) float64 { return 1 }, 2)
	want := 1
	for _, d := range defs {
		want *= d.levels()
	}
	if len(model.States()) != want {
		t.Fatalf("enumerated %d states, want %d", len(model.States()), want)
	}
	if model.Actions() != 2*len(defs)+1 {
		t.Fatalf("actions = %d", model.Actions())
	}
}

func TestGroupModelTransitions(t *testing.T) {
	space := config.Default()
	defs, _ := groupDefs(space)
	model := newGroupModel(newGroupLattice(defs), func(vals []int) float64 { return 0 }, 2)

	start := model.States()[0] // all-minimum state
	// Keep stays.
	if next, ok := model.Next(start, 0); !ok || next != start {
		t.Fatal("keep moved")
	}
	// Increase group 0 moves one step.
	next, ok := model.Next(start, 1)
	if !ok {
		t.Fatal("increase infeasible at minimum")
	}
	vals, err := parseGroupKey(next, len(defs))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != defs[0].min+defs[0].step {
		t.Fatalf("increase moved to %d", vals[0])
	}
	// Decrease group 0 at minimum is infeasible.
	if _, ok := model.Next(start, 2); ok {
		t.Fatal("decrease below minimum allowed")
	}
	// Rewards reflect the predictor: SLA − rt.
	if got := model.Reward(start); got != 2 {
		t.Fatalf("reward %v, want 2", got)
	}
}

func TestLearnPolicyAndSeeder(t *testing.T) {
	space := config.Default()
	// Synthetic surface: quadratic bowl in the group means with minimum at
	// capacity 300, timeout 11, minspare 45, maxspare 55.
	targets := []float64{300, 11, 45, 55}
	sampler := func(cfg config.Config) (float64, error) {
		vec := config.GroupVector(space, cfg)
		rt := 0.2
		for i, v := range vec {
			d := (v - targets[i]) / 100
			rt += d * d
		}
		return rt, nil
	}
	p, err := LearnPolicy("test-ctx", space, sampler, InitOptions{CoarseLevels: 4, Seed: 3, Batch: mdp.DefaultBatchConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "test-ctx" {
		t.Fatalf("name %q", p.Name())
	}

	// The regression surface must recover the bowl's ordering.
	nearOpt, _ := config.GroupedConfig(space, map[config.Group]int{
		config.GroupCapacity: 300, config.GroupTimeout: 11,
		config.GroupMinSpare: 45, config.GroupMaxSpare: 55,
	})
	far, _ := config.GroupedConfig(space, map[config.Group]int{
		config.GroupCapacity: 600, config.GroupTimeout: 21,
		config.GroupMinSpare: 85, config.GroupMaxSpare: 95,
	})
	if p.PredictRT(nearOpt) >= p.PredictRT(far) {
		t.Fatalf("predictor inverted: near %v, far %v", p.PredictRT(nearOpt), p.PredictRT(far))
	}

	// The seeder produces full-width rows steering toward the optimum.
	seeder := p.Seeder()
	row := seeder(far.Key())
	if len(row) != 2*space.Len()+1 {
		t.Fatalf("seed row has %d actions", len(row))
	}
	// From the all-max corner, decreasing MaxClients (toward 300) must beat
	// increasing... increasing is infeasible at the edge but still seeded;
	// compare decrease vs keep instead.
	idx, _ := space.Lookup(config.MaxClients)
	if row[2+2*idx] <= row[0] {
		t.Fatalf("decrease (%v) not preferred over keep (%v) at the far corner",
			row[2+2*idx], row[0])
	}
	// Garbage states yield nil seeds.
	if seeder("not-a-key") != nil {
		t.Fatal("garbage state seeded")
	}
}

func TestLearnPolicyValidation(t *testing.T) {
	space := config.Default()
	ok := func(config.Config) (float64, error) { return 1, nil }
	if _, err := LearnPolicy("x", nil, ok, InitOptions{}); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := LearnPolicy("x", space, nil, InitOptions{}); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if _, err := LearnPolicy("x", space, ok, InitOptions{CoarseLevels: 1}); err == nil {
		t.Fatal("one coarse level accepted")
	}
	if _, err := LearnPolicy("x", space, ok, InitOptions{SLASeconds: -1}); err == nil {
		t.Fatal("negative SLA accepted")
	}
}

func TestPolicyPredictRTFloor(t *testing.T) {
	space := config.Default()
	// A wildly sloped surface would extrapolate negative; the floor guards.
	sampler := func(cfg config.Config) (float64, error) {
		vec := config.GroupVector(space, cfg)
		return math.Max(0.05, 5-vec[0]/100), nil
	}
	p, err := LearnPolicy("floor", space, sampler, InitOptions{CoarseLevels: 3, Seed: 1, Batch: mdp.DefaultBatchConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for _, corner := range []map[config.Group]int{
		{config.GroupCapacity: 600, config.GroupTimeout: 21, config.GroupMinSpare: 85, config.GroupMaxSpare: 95},
		{config.GroupCapacity: 50, config.GroupTimeout: 1, config.GroupMinSpare: 5, config.GroupMaxSpare: 15},
	} {
		cfg, _ := config.GroupedConfig(space, corner)
		if p.PredictRT(cfg) <= 0 {
			t.Fatalf("non-positive prediction at %v", corner)
		}
	}
}

func TestParseGroupKeyErrors(t *testing.T) {
	if _, err := parseGroupKey("1,2", 3); err == nil {
		t.Fatal("wrong arity parsed")
	}
	if _, err := parseGroupKey("1,x,3", 3); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	space := config.Default()
	p := bowlPolicyForPersist(t, space)

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicy(bytes.NewReader(buf.Bytes()), space)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != p.Name() || loaded.SLA() != p.SLA() {
		t.Fatalf("metadata changed: %q/%v", loaded.Name(), loaded.SLA())
	}
	// Predictions and seeds must survive the round trip exactly.
	probe := space.DefaultConfig()
	if got, want := loaded.PredictRT(probe), p.PredictRT(probe); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PredictRT changed: %v vs %v", got, want)
	}
	s1 := p.Seeder()(probe.Key())
	s2 := loaded.Seeder()(probe.Key())
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-12 {
			t.Fatalf("seed row changed at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func bowlPolicyForPersist(t *testing.T, space *config.Space) *Policy {
	t.Helper()
	sampler := func(cfg config.Config) (float64, error) {
		vec := config.GroupVector(space, cfg)
		rt := 0.3
		for i, v := range vec {
			d := (v - []float64{300, 11, 45, 55}[i]) / 120
			rt += d * d
		}
		return rt, nil
	}
	p, err := LearnPolicy("persist", space, sampler, InitOptions{CoarseLevels: 3, Seed: 9, Batch: mdp.DefaultBatchConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadPolicyRejectsGarbage(t *testing.T) {
	space := config.Default()
	if _, err := LoadPolicy(bytes.NewBufferString("not json"), space); err == nil {
		t.Fatal("garbage loaded")
	}
	if _, err := LoadPolicy(bytes.NewBufferString(`{"name":"x","slaSeconds":2,"groups":[]}`), space); err == nil {
		t.Fatal("group mismatch loaded")
	}
	if _, err := LoadPolicy(bytes.NewBufferString("{}"), nil); err == nil {
		t.Fatal("nil space accepted")
	}
}
