package core

import (
	"errors"
	"math"
	"sync"

	"github.com/rac-project/rac/internal/config"
)

// PolicyStore holds initial policies trained offline for different system
// contexts. When the online agent detects a context change it asks the store
// for the policy whose predicted performance best matches what it is
// currently measuring (paper §4.3: "switch to a most suitable initial policy
// according to the current performance").
//
// All methods are safe for concurrent use, so parallel per-context training
// can publish into one store while agents read from it. Match ties break
// toward the earliest added policy; publish in a deterministic order when
// reproducibility matters.
type PolicyStore struct {
	mu       sync.RWMutex
	policies []*Policy
}

// NewPolicyStore builds a store from the given policies.
func NewPolicyStore(policies ...*Policy) *PolicyStore {
	s := &PolicyStore{}
	for _, p := range policies {
		if p != nil {
			s.policies = append(s.policies, p)
		}
	}
	return s
}

// Add appends a policy.
func (s *PolicyStore) Add(p *Policy) {
	if p == nil {
		return
	}
	s.mu.Lock()
	s.policies = append(s.policies, p)
	s.mu.Unlock()
}

// Len returns the number of stored policies.
func (s *PolicyStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.policies)
}

// Policies returns the stored policies.
func (s *PolicyStore) Policies() []*Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Policy, len(s.policies))
	copy(out, s.policies)
	return out
}

// Match returns the policy whose predicted response time at cfg is closest
// to the measured value.
func (s *PolicyStore) Match(cfg config.Config, measuredRT float64) (*Policy, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.policies) == 0 {
		return nil, errors.New("core: empty policy store")
	}
	best := s.policies[0]
	bestDiff := math.Abs(best.PredictRT(cfg) - measuredRT)
	for _, p := range s.policies[1:] {
		if d := math.Abs(p.PredictRT(cfg) - measuredRT); d < bestDiff {
			best, bestDiff = p, d
		}
	}
	return best, nil
}

// ByName returns the stored policy with the given name, or nil.
func (s *PolicyStore) ByName(name string) *Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.policies {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
