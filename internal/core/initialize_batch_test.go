package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/sim"
)

// batchTestSample is a synthetic surface that consumes one draw from the
// sample's RNG stream, so the test catches a dispatcher that mis-threads
// streams through chunk boundaries.
func batchTestSample(space *config.Space, cfg config.Config, rng *sim.RNG) float64 {
	vec := config.GroupVector(space, cfg)
	rt := 0.3
	for i, v := range vec {
		d := (v - 100*float64(i+1)) / 150
		rt += d * d
	}
	// Deterministic per-stream jitter: same stream → same draw → same value.
	return rt + float64(rng.Uint64()%97)/1e4
}

func learnedPolicyBytes(t *testing.T, space *config.Space, batch bool, procs int) []byte {
	t.Helper()
	opts := InitOptions{CoarseLevels: 3, Seed: 11, Procs: procs}
	var sampler StreamSampler
	if batch {
		opts.BatchSampler = func(cfgs []config.Config, streams []*sim.RNG, out []float64) error {
			for i, cfg := range cfgs {
				out[i] = batchTestSample(space, cfg, streams[i])
			}
			return nil
		}
	} else {
		sampler = func(cfg config.Config, rng *sim.RNG) (float64, error) {
			return batchTestSample(space, cfg, rng), nil
		}
	}
	p, err := LearnPolicyStream("batch-ctx", space, sampler, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLearnPolicyBatchMatchesStream pins the BatchSampler contract: chunked
// dispatch must produce a policy byte-identical to per-configuration
// sampling, at any worker count.
func TestLearnPolicyBatchMatchesStream(t *testing.T) {
	space := config.Default()
	want := learnedPolicyBytes(t, space, false, 1)
	for _, procs := range []int{1, 8} {
		if got := learnedPolicyBytes(t, space, true, procs); !bytes.Equal(got, want) {
			t.Errorf("batch-sampled policy (Procs=%d) differs from stream-sampled", procs)
		}
	}
	// The stream path itself must also be procs-independent.
	if got := learnedPolicyBytes(t, space, false, 8); !bytes.Equal(got, want) {
		t.Error("stream-sampled policy differs across worker counts")
	}
}

// TestLearnPolicyBatchErrors covers the batch dispatcher's error paths: a
// failing chunk surfaces with its range, and a batch sampler alone (nil
// per-configuration sampler) is accepted.
func TestLearnPolicyBatchErrors(t *testing.T) {
	space := config.Default()
	boom := errors.New("boom")
	_, err := LearnPolicyStream("x", space, nil, InitOptions{
		CoarseLevels: 3, Seed: 1,
		BatchSampler: func(cfgs []config.Config, _ []*sim.RNG, _ []float64) error {
			return boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("chunk error not surfaced: %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "chunk") {
		t.Fatalf("error %v does not identify the chunk", err)
	}

	if _, err := LearnPolicyStream("x", space, nil, InitOptions{CoarseLevels: 3}); err == nil {
		t.Fatal("nil sampler and nil batch sampler accepted")
	}
}
