package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/rac-project/rac/internal/telemetry"
)

// queuedAgentRun drives an agent (queue depth 0 = synchronous) through a
// schedule that includes a mid-run context change, returning every StepResult
// and the final exported state.
func queuedAgentRun(t *testing.T, depth int) ([]StepResult, []byte) {
	t.Helper()
	sys := newBowlSystem(bowlTargets)
	pA := bowlPolicy(t, bowlTargets, "ctx-A")
	otherTargets := []float64{100, 3, 15, 85}
	pB := bowlPolicy(t, otherTargets, "ctx-B")
	agent, err := NewAgent(sys, AgentOptions{
		Policy:          pA,
		Store:           NewPolicyStore(pA, pB),
		Seed:            19,
		ExperienceQueue: depth,
		Trace:           telemetry.NewTrace(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	var results []StepResult
	for i := 0; i < 24; i++ {
		if i == 12 {
			// Relocate the bowl mid-run so the queued path also covers
			// policy switching (resetQ while a learner goroutine exists).
			sys.targets = otherTargets
			sys.shift = 3
		}
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	st, err := agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := agent.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	return results, blob
}

// TestAgentExperienceQueueMatchesSync pins the experience queue's invariant:
// deferring record+retrain to the background learner changes nothing
// observable — every StepResult and the complete exported state (Q-table,
// samples, both RNG streams) are byte-identical to the synchronous agent's.
func TestAgentExperienceQueueMatchesSync(t *testing.T) {
	syncResults, syncState := queuedAgentRun(t, 0)
	for _, depth := range []int{1, 4} {
		results, state := queuedAgentRun(t, depth)
		if !reflect.DeepEqual(results, syncResults) {
			t.Errorf("queue depth %d: step results diverge from synchronous agent", depth)
		}
		if !bytes.Equal(state, syncState) {
			t.Errorf("queue depth %d: exported state diverges from synchronous agent", depth)
		}
	}
}

// TestAgentQueueDrainsOnReads asserts the drain discipline at the API
// surface: QTable and ExportState must observe the enqueued retrain of the
// step that just returned.
func TestAgentQueueDrainsOnReads(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	reg := telemetry.NewRegistry()
	agent, err := NewAgent(sys, AgentOptions{
		Policy:          bowlPolicy(t, bowlTargets, "bowl"),
		Seed:            7,
		ExperienceQueue: 2,
		Telemetry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	res, err := agent.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// QTable drains: the visited state's row must exist after one step.
	if agent.QTable().MaxValue(res.Config.Key()) == 0 && agent.QTable().Len() == 0 {
		t.Fatal("Q-table empty after a drained step")
	}
	if got := reg.Counter("rac_agent_queued_experiences_total", "", nil).Value(); got != 1 {
		t.Fatalf("queued counter = %d, want 1", got)
	}
	if got := reg.Counter("rac_agent_retrains_total", "", nil).Value(); got != 1 {
		t.Fatalf("retrain counter = %d after drain, want 1", got)
	}
}
