package core

import (
	"sort"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
)

// regionModel is the bounded configuration MDP the agent retrains over each
// interval: every state it has measured plus the one-action frontier around
// them. Rewards come from measurements where available and from the current
// policy's regression predictor elsewhere, which is how fresh observations
// propagate to neighbouring states during batch training (paper §4.2).
//
// The full Table 1 lattice has ~1.9·10⁸ states, so sweeping all of it — as a
// literal reading of Algorithm 1 would — is infeasible for either the paper's
// testbed or this reproduction; the bounded region keeps retraining O(visited
// states) while the Seeder generalizes the offline policy everywhere else.
//
// States are densely indexed in discovery order and the per-action transition
// table is resolved once at construction, so the model implements
// mdp.IndexedModel: the retraining sweeps run on the dense fast path instead
// of rebuilding configuration key strings per step.
type regionModel struct {
	space   *config.Space
	actions []config.Action
	states  []string
	index   map[string]int // state key -> dense index
	rewards []float64      // by dense index
	// next[s*len(actions)+a] is the dense successor index, or -1 when the
	// action is infeasible or leaves the region.
	next []int32
}

var _ mdp.IndexedModel = (*regionModel)(nil)

// newRegionModel builds the region from the measured samples. predict may be
// nil, in which case frontier states fall back to the SLA-neutral reward 0.
func newRegionModel(space *config.Space, samples map[string]float64,
	predict func(config.Config) float64, sla float64) *regionModel {

	actions := config.Actions(space)
	m := &regionModel{
		space:   space,
		actions: actions,
		index:   make(map[string]int, len(samples)*len(actions)),
	}
	var cfgs []config.Config
	add := func(key string, cfg config.Config) {
		if _, ok := m.index[key]; ok {
			return
		}
		m.index[key] = len(m.states)
		m.states = append(m.states, key)
		cfgs = append(cfgs, cfg)
	}
	// Iterate samples in sorted order: the sweep order drives the learner's
	// RNG stream, and experiments must be reproducible from their seeds.
	keys := make([]string, 0, len(samples))
	for key := range samples {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cfg, err := config.ParseKey(key)
		if err != nil || space.Validate(cfg) != nil {
			continue
		}
		add(key, cfg)
		for _, a := range m.actions {
			next, ok := a.Apply(space, cfg)
			if !ok {
				continue
			}
			add(next.Key(), next)
		}
	}
	m.rewards = make([]float64, len(m.states))
	m.next = make([]int32, len(m.states)*len(actions))
	for s, key := range m.states {
		cfg := cfgs[s]
		if rt, ok := samples[key]; ok {
			m.rewards[s] = sla - rt
		} else if predict != nil {
			m.rewards[s] = sla - predict(cfg)
		}
		base := s * len(actions)
		for ai, a := range m.actions {
			m.next[base+ai] = -1
			next, ok := a.Apply(space, cfg)
			if !ok {
				continue
			}
			if t, in := m.index[next.Key()]; in {
				m.next[base+ai] = int32(t)
			}
		}
	}
	return m
}

func (m *regionModel) States() []string { return m.states }

func (m *regionModel) Actions() int { return len(m.actions) }

func (m *regionModel) Reward(state string) float64 {
	s, ok := m.index[state]
	if !ok {
		return 0
	}
	return m.rewards[s]
}

func (m *regionModel) Next(state string, action int) (string, bool) {
	s, ok := m.index[state]
	if !ok || action < 0 || action >= len(m.actions) {
		return state, false
	}
	t := m.next[s*len(m.actions)+action]
	if t < 0 {
		return state, false
	}
	return m.states[t], true
}

func (m *regionModel) NextIndex(s, action int) int { return int(m.next[s*len(m.actions)+action]) }

func (m *regionModel) RewardIndex(s int) float64 { return m.rewards[s] }
