package core

import (
	"sort"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
)

// regionModel is the bounded configuration MDP the agent retrains over each
// interval: every state it has measured plus the one-action frontier around
// them. Rewards come from measurements where available and from the current
// policy's regression predictor elsewhere, which is how fresh observations
// propagate to neighbouring states during batch training (paper §4.2).
//
// The full Table 1 lattice has ~1.9·10⁸ states, so sweeping all of it — as a
// literal reading of Algorithm 1 would — is infeasible for either the paper's
// testbed or this reproduction; the bounded region keeps retraining O(visited
// states) while the Seeder generalizes the offline policy everywhere else.
type regionModel struct {
	space   *config.Space
	actions []config.Action
	region  map[string]config.Config
	states  []string
	reward  map[string]float64
}

var _ mdp.Model = (*regionModel)(nil)

// newRegionModel builds the region from the measured samples. predict may be
// nil, in which case frontier states fall back to the SLA-neutral reward 0.
func newRegionModel(space *config.Space, samples map[string]float64,
	predict func(config.Config) float64, sla float64) *regionModel {

	m := &regionModel{
		space:   space,
		actions: config.Actions(space),
		region:  make(map[string]config.Config, len(samples)*len(config.Actions(space))),
		reward:  make(map[string]float64),
	}
	add := func(key string, cfg config.Config) {
		if _, ok := m.region[key]; ok {
			return
		}
		m.region[key] = cfg
		m.states = append(m.states, key)
	}
	// Iterate samples in sorted order: the sweep order drives the learner's
	// RNG stream, and experiments must be reproducible from their seeds.
	keys := make([]string, 0, len(samples))
	for key := range samples {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cfg, err := config.ParseKey(key)
		if err != nil || space.Validate(cfg) != nil {
			continue
		}
		add(key, cfg)
		for _, a := range m.actions {
			next, ok := a.Apply(space, cfg)
			if !ok {
				continue
			}
			add(next.Key(), next)
		}
	}
	for key, cfg := range m.region {
		if rt, ok := samples[key]; ok {
			m.reward[key] = sla - rt
		} else if predict != nil {
			m.reward[key] = sla - predict(cfg)
		}
	}
	return m
}

func (m *regionModel) States() []string { return m.states }

func (m *regionModel) Actions() int { return len(m.actions) }

func (m *regionModel) Reward(state string) float64 { return m.reward[state] }

func (m *regionModel) Next(state string, action int) (string, bool) {
	cfg, ok := m.region[state]
	if !ok {
		return state, false
	}
	next, ok := m.actions[action].Apply(m.space, cfg)
	if !ok {
		return state, false
	}
	key := next.Key()
	if _, in := m.region[key]; !in {
		return state, false
	}
	return key, true
}
