package core

import (
	"sort"
	"strings"
	"sync"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
)

// regionShape is the immutable skeleton of the bounded configuration MDP the
// agent retrains over: every state it has measured plus the one-action
// frontier around them, densely indexed in discovery order, with the
// per-action transition table resolved once at construction. The shape
// depends only on the set of measured state keys — not on the measured
// values — so it is rebuilt only when a new state is visited, reused across
// the retraining calls in between, and interned per policy so tenants tuning
// the same context share one copy (their early trajectories visit the same
// states).
type regionShape struct {
	space   *config.Space
	actions []config.Action
	states  []string
	cfgs    []config.Config // parsed configuration per dense index
	index   map[string]int  // state key -> dense index
	// next[s*len(actions)+a] is the dense successor index, or -1 when the
	// action is infeasible or leaves the region.
	next []int32

	structOnce sync.Once
	structure  *mdp.Structure
	structErr  error
}

// validSampleKeys returns the sample keys that parse and validate against the
// space, sorted, with their parsed configurations. The sorted order drives
// the learner's RNG stream, so experiments stay reproducible from their
// seeds.
func validSampleKeys(space *config.Space, samples map[string]float64) ([]string, []config.Config) {
	keys := make([]string, 0, len(samples))
	for key := range samples {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	valid := keys[:0]
	cfgs := make([]config.Config, 0, len(keys))
	for _, key := range keys {
		cfg, err := config.ParseKey(key)
		if err != nil || space.Validate(cfg) != nil {
			continue
		}
		valid = append(valid, key)
		cfgs = append(cfgs, cfg)
	}
	return valid, cfgs
}

// newRegionShape builds the region skeleton from the valid sample keys (as
// returned by validSampleKeys: sorted, parsed, validated).
func newRegionShape(space *config.Space, keys []string, cfgs []config.Config) *regionShape {
	actions := config.Actions(space)
	sh := &regionShape{
		space:   space,
		actions: actions,
		index:   make(map[string]int, len(keys)*len(actions)),
	}
	add := func(key string, cfg config.Config) {
		if _, ok := sh.index[key]; ok {
			return
		}
		sh.index[key] = len(sh.states)
		sh.states = append(sh.states, key)
		sh.cfgs = append(sh.cfgs, cfg)
	}
	for i, key := range keys {
		add(key, cfgs[i])
		for _, a := range actions {
			next, ok := a.Apply(space, cfgs[i])
			if !ok {
				continue
			}
			add(next.Key(), next)
		}
	}
	sh.next = make([]int32, len(sh.states)*len(actions))
	for s := range sh.states {
		cfg := sh.cfgs[s]
		base := s * len(actions)
		for ai, a := range actions {
			sh.next[base+ai] = -1
			next, ok := a.Apply(space, cfg)
			if !ok {
				continue
			}
			if t, in := sh.index[next.Key()]; in {
				sh.next[base+ai] = int32(t)
			}
		}
	}
	return sh
}

// model binds per-interval rewards to the shape: measurements where
// available, the policy's regression predictor elsewhere — which is how fresh
// observations propagate to neighbouring states during batch training (paper
// §4.2). predict may be nil, in which case frontier states fall back to the
// SLA-neutral reward 0.
func (sh *regionShape) model(samples map[string]float64,
	predict func(config.Config) float64, sla float64) *regionModel {

	m := &regionModel{shape: sh, rewards: make([]float64, len(sh.states))}
	for s, key := range sh.states {
		if rt, ok := samples[key]; ok {
			m.rewards[s] = sla - rt
		} else if predict != nil {
			m.rewards[s] = sla - predict(sh.cfgs[s])
		}
	}
	return m
}

// regionModel is the bounded configuration MDP the agent retrains over each
// interval: a shared immutable shape plus this interval's rewards.
//
// The full Table 1 lattice has ~1.9·10⁸ states, so sweeping all of it — as a
// literal reading of Algorithm 1 would — is infeasible for either the paper's
// testbed or this reproduction; the bounded region keeps retraining O(visited
// states) while the Seeder generalizes the offline policy everywhere else.
//
// The model implements mdp.Structured: the retraining sweeps run on the dense
// fast path, and the transition/feasibility arrays are built once per shape
// (cached under structOnce) rather than once per retraining call.
type regionModel struct {
	shape   *regionShape
	rewards []float64 // by dense index
}

var _ mdp.Structured = (*regionModel)(nil)

// newRegionModel builds the region from the measured samples without shape
// reuse — the single-shot construction used by tests and by agents without a
// cached shape.
func newRegionModel(space *config.Space, samples map[string]float64,
	predict func(config.Config) float64, sla float64) *regionModel {

	keys, cfgs := validSampleKeys(space, samples)
	return newRegionShape(space, keys, cfgs).model(samples, predict, sla)
}

func (m *regionModel) States() []string { return m.shape.states }

func (m *regionModel) Actions() int { return len(m.shape.actions) }

func (m *regionModel) Reward(state string) float64 {
	s, ok := m.shape.index[state]
	if !ok {
		return 0
	}
	return m.rewards[s]
}

func (m *regionModel) Next(state string, action int) (string, bool) {
	sh := m.shape
	s, ok := sh.index[state]
	if !ok || action < 0 || action >= len(sh.actions) {
		return state, false
	}
	t := sh.next[s*len(sh.actions)+action]
	if t < 0 {
		return state, false
	}
	return sh.states[t], true
}

func (m *regionModel) NextIndex(s, action int) int {
	return int(m.shape.next[s*len(m.shape.actions)+action])
}

func (m *regionModel) RewardIndex(s int) float64 { return m.rewards[s] }

// Structure exposes the shape's dense transition arrays to mdp.BatchTrain,
// built once per shape and shared by every model (and agent) using it.
func (m *regionModel) Structure() (*mdp.Structure, error) {
	sh := m.shape
	sh.structOnce.Do(func() {
		sh.structure, sh.structErr = mdp.NewStructure(m)
	})
	return sh.structure, sh.structErr
}

// regionShapeCacheCap bounds the per-policy shape intern cache. Tenants of a
// context share shapes while their trajectories coincide (always true on the
// first intervals after a warm start); once histories diverge past the cap,
// shapes are built per agent without being published.
const regionShapeCacheCap = 64

// regionShapeFor returns the canonical shape for the sample-key set, interned
// on the policy so agents sharing the context share the skeleton (and its
// cached mdp.Structure). Safe for concurrent use.
func (p *Policy) regionShapeFor(samples map[string]float64) *regionShape {
	keys, cfgs := validSampleKeys(p.space, samples)
	ck := strings.Join(keys, "|")
	in := p.intern
	in.shapeMu.Lock()
	if sh, ok := in.shapes[ck]; ok {
		in.shapeMu.Unlock()
		return sh
	}
	in.shapeMu.Unlock()
	sh := newRegionShape(p.space, keys, cfgs)
	in.shapeMu.Lock()
	defer in.shapeMu.Unlock()
	if cur, ok := in.shapes[ck]; ok {
		return cur
	}
	if in.shapes == nil {
		in.shapes = make(map[string]*regionShape)
	}
	if len(in.shapes) < regionShapeCacheCap {
		in.shapes[ck] = sh
	}
	return sh
}
