package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
)

// flakySystem scripts failures and measurement overrides on top of a
// bowlSystem: each Apply/Measure call pops the head of its error queue (nil =
// succeed), and Measure pops nextMetrics overrides before falling back to the
// bowl surface.
type flakySystem struct {
	*bowlSystem
	applyErrs   []error
	measureErrs []error
	nextMetrics []system.Metrics
}

func (f *flakySystem) Apply(ctx context.Context, cfg config.Config) error {
	if len(f.applyErrs) > 0 {
		err := f.applyErrs[0]
		f.applyErrs = f.applyErrs[1:]
		if err != nil {
			return err
		}
	}
	return f.bowlSystem.Apply(ctx, cfg)
}

func (f *flakySystem) Measure(ctx context.Context) (system.Metrics, error) {
	if len(f.measureErrs) > 0 {
		err := f.measureErrs[0]
		f.measureErrs = f.measureErrs[1:]
		if err != nil {
			return system.Metrics{}, err
		}
	}
	if len(f.nextMetrics) > 0 {
		m := f.nextMetrics[0]
		f.nextMetrics = f.nextMetrics[1:]
		return m, nil
	}
	return f.bowlSystem.Measure(context.Background())
}

func resilientAgent(t *testing.T, sys system.System, res Resilience, extra AgentOptions) *Agent {
	t.Helper()
	o := DefaultOptions()
	o.Resilience = res
	extra.Options = o
	if extra.Seed == 0 {
		extra.Seed = 9
	}
	a, err := NewAgent(sys, extra)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStepRetriesTransientApply(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	sys.applyErrs = []error{
		system.Transient(errors.New("reconfig glitch")),
		system.Transient(errors.New("reconfig glitch")),
	}
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(32)
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 3}, AgentOptions{Telemetry: reg, Trace: trace})
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatalf("step with retries left: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", res.Attempts)
	}
	if res.Invalid || res.Degraded {
		t.Fatalf("recovered step marked bad: %+v", res)
	}
	if got := counterValue(t, reg, "rac_agent_retries_total"); got != 2 {
		t.Fatalf("retries counter = %v, want 2", got)
	}
	if n := countTraceKind(trace, telemetry.KindRetry); n != 2 {
		t.Fatalf("%d retry trace events, want 2", n)
	}
}

func TestStepFatalApplyStillAborts(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	sys.applyErrs = []error{errors.New("config rejected")}
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 5}, AgentOptions{})
	if _, err := a.Step(context.Background()); err == nil {
		t.Fatal("fatal apply error swallowed by the resilience layer")
	}
	if sys.applied != 0 {
		t.Fatal("fatal apply reached the system")
	}
}

func TestStepHoldsConfigWhenApplyExhausted(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	te := system.Transient(errors.New("controller down"))
	sys.applyErrs = []error{te, te, te}
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 3}, AgentOptions{})
	before := a.Config()
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatalf("exhausted transient apply aborted the step: %v", err)
	}
	if !res.Config.Equal(before) {
		t.Fatalf("step moved to %s despite failed apply", res.Config.Key())
	}
	if res.Action.Dir != 0 {
		t.Fatalf("action %+v, want keep", res.Action)
	}
	if sys.applied != 0 {
		t.Fatal("apply reached the system despite scripted failures")
	}
}

func TestStepDegradesWhenMeasureExhausted(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	reg := telemetry.NewRegistry()
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 2}, AgentOptions{Telemetry: reg})
	// One clean step to establish a believable response time.
	first, err := a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	te := system.Transient(errors.New("monitor wedged"))
	sys.measureErrs = []error{te, te}
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatalf("degraded step aborted: %v", err)
	}
	if !res.Degraded || !res.Invalid || res.InvalidReason != "no-data" {
		t.Fatalf("step not marked degraded: %+v", res)
	}
	if res.MeanRT != first.MeanRT {
		t.Fatalf("degraded MeanRT = %v, want last believable %v", res.MeanRT, first.MeanRT)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	if got := counterValue(t, reg, "rac_agent_degraded_intervals_total"); got != 1 {
		t.Fatalf("degraded counter = %v, want 1", got)
	}
	// The next interval is clean again and the agent keeps tuning.
	if _, err := a.Step(context.Background()); err != nil {
		t.Fatalf("step after degradation: %v", err)
	}
}

// TestErrorBurstIntervalNotLearned is the reward-validity fix: an interval
// that mostly errored must not feed its misleading MeanRT into the window,
// the sample table or the Q-table.
func TestErrorBurstIntervalNotLearned(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(32)
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 3, MinCompleted: 10, MaxErrorRatio: 0.5},
		AgentOptions{Telemetry: reg, Trace: trace})
	// The burst interval: 3 survivors with a great-looking MeanRT, 997 errors.
	sys.nextMetrics = []system.Metrics{{MeanRT: 0.05, Throughput: 0.1, Completed: 3, Errors: 997, IntervalSeconds: 300}}
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid || res.InvalidReason != "low-completion" {
		t.Fatalf("burst interval not rejected: %+v", res)
	}
	if res.MeanRT != 0.05 {
		t.Fatalf("raw MeanRT not reported: %v", res.MeanRT)
	}
	if len(a.samples) != 0 {
		t.Fatalf("rejected interval entered the sample table: %v", a.samples)
	}
	if a.window.Len() != 0 {
		t.Fatal("rejected interval entered the reference window")
	}
	if got := counterValue(t, reg, "rac_agent_invalid_intervals_total"); got != 1 {
		t.Fatalf("invalid counter = %v, want 1", got)
	}
	if n := countTraceKind(trace, telemetry.KindInvalid); n != 1 {
		t.Fatalf("%d invalid trace events, want 1", n)
	}
	// High error ratio with plenty of completions is rejected too.
	sys.nextMetrics = []system.Metrics{{MeanRT: 0.05, Throughput: 5, Completed: 300, Errors: 700, IntervalSeconds: 300}}
	res, err = a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid || res.InvalidReason != "error-ratio" {
		t.Fatalf("error-ratio interval not rejected: %+v", res)
	}
}

// TestRejectionHeavyIntervalStillLearned pins the rejected ≠ error
// distinction inside the invalid-interval logic: an interval where the
// admission gate turned most arrivals away (plus a few stray errors) is the
// gate doing its job — valid learning signal, not a poisoned measurement —
// so it must enter the sample table and the reference window like any clean
// interval.
func TestRejectionHeavyIntervalStillLearned(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 3, MinCompleted: 10, MaxErrorRatio: 0.5},
		AgentOptions{})
	// 40 completions, 900 gate rejections, 5 genuine errors: under the old
	// conflated accounting the 5 errors plus the low completion count would
	// have invalidated the interval outright.
	sys.nextMetrics = []system.Metrics{{
		MeanRT: 0.3, Throughput: 0.13, Completed: 40, Rejected: 900, Errors: 5,
		IntervalSeconds: 300,
	}}
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalid {
		t.Fatalf("rejection-heavy interval misclassified invalid: %+v", res)
	}
	if len(a.samples) != 1 {
		t.Fatalf("rejection-heavy interval produced no Q-update (samples=%d)", len(a.samples))
	}
	if a.window.Len() != 1 {
		t.Fatal("rejection-heavy interval did not enter the reference window")
	}
	// The same interval with the rejections recast as errors is still thrown
	// out — the distinction, not a loosened threshold, is what changed.
	sys.nextMetrics = []system.Metrics{{
		MeanRT: 0.3, Throughput: 0.13, Completed: 40, Errors: 905,
		IntervalSeconds: 300,
	}}
	res, err = a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid || res.InvalidReason != "error-ratio" {
		t.Fatalf("error-heavy interval not rejected: %+v", res)
	}
}

func TestOutlierMeasurementRejected(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 3, OutlierFactor: 6}, AgentOptions{})
	// Fill the reference window with believable measurements.
	for i := 0; i < 4; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	base := sys.rt(sys.Config())
	sys.nextMetrics = []system.Metrics{{MeanRT: 20 * base, Throughput: 50, Completed: 5000, IntervalSeconds: 300}}
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid || res.InvalidReason != "outlier" {
		t.Fatalf("20x outlier not rejected: %+v", res)
	}
}

func TestProducerFlaggedMeasurementRejected(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 1}, AgentOptions{})
	sys.nextMetrics = []system.Metrics{{MeanRT: 1, Completed: 100, Invalid: true, InvalidReason: "degraded-driver", IntervalSeconds: 300}}
	res, err := a.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid || res.InvalidReason != "degraded-driver" {
		t.Fatalf("producer-flagged interval not honored: %+v", res)
	}
}

func TestRollbackToLastKnownGood(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(64)
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 3, RollbackAfter: 2},
		AgentOptions{Telemetry: reg, Trace: trace})
	// Healthy phase: establishes a last-known-good configuration.
	for i := 0; i < 5; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if a.lastGood == nil {
		t.Fatal("healthy steps did not record a last-known-good config")
	}
	good := a.lastGood.Clone()
	// Context collapses: every configuration now violates the SLA.
	sys.shift = 50
	rolled := false
	for i := 0; i < 6 && !rolled; i++ {
		res, err := a.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rolled = res.RolledBack
	}
	if !rolled {
		t.Fatal("safety guard never rolled back under sustained violation")
	}
	if !a.Config().Equal(good) {
		t.Fatalf("agent at %s after rollback, want %s", a.Config().Key(), good.Key())
	}
	if !sys.Config().Equal(good) {
		t.Fatal("rollback did not reach the system")
	}
	if got := counterValue(t, reg, "rac_agent_rollbacks_total"); got < 1 {
		t.Fatal("rollback counter not incremented")
	}
	if n := countTraceKind(trace, telemetry.KindRollback); n < 1 {
		t.Fatal("no rollback trace event")
	}
}

func TestRetryBackoffDoublesThroughSleepHook(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	te := system.Transient(errors.New("glitch"))
	sys.applyErrs = []error{te, te, te}
	var pauses []time.Duration
	a := resilientAgent(t, sys, Resilience{MaxAttempts: 4, RetryBackoff: 100 * time.Millisecond},
		AgentOptions{Sleep: func(d time.Duration) { pauses = append(pauses, d) }})
	if _, err := a.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(pauses) != len(want) {
		t.Fatalf("pauses %v, want %v", pauses, want)
	}
	for i := range want {
		if pauses[i] != want[i] {
			t.Fatalf("pauses %v, want %v", pauses, want)
		}
	}
}

// TestZeroResilienceAbortsLikeLegacy pins the compatibility contract: with
// the zero policy, a transient failure still aborts the step.
func TestZeroResilienceAbortsLikeLegacy(t *testing.T) {
	sys := &flakySystem{bowlSystem: newBowlSystem(bowlTargets)}
	sys.applyErrs = []error{system.Transient(errors.New("glitch"))}
	a := resilientAgent(t, sys, Resilience{}, AgentOptions{})
	if _, err := a.Step(context.Background()); err == nil {
		t.Fatal("zero resilience policy swallowed a transient error")
	}
}

// TestResilientTrajectoryMatchesLegacyOnCleanRuns pins the byte-identity
// contract: on a fault-free system the resilient defaults change nothing.
func TestResilientTrajectoryMatchesLegacyOnCleanRuns(t *testing.T) {
	run := func(res Resilience) []StepResult {
		o := DefaultOptions()
		o.Resilience = res
		a, err := NewAgent(newBowlSystem(bowlTargets), AgentOptions{Options: o, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var out []StepResult
		for i := 0; i < 20; i++ {
			r, err := a.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}
	legacy := run(Resilience{})
	resilient := run(DefaultResilience())
	for i := range legacy {
		l, r := legacy[i], resilient[i]
		if l.MeanRT != r.MeanRT || l.Reward != r.Reward || !l.Config.Equal(r.Config) || l.Action != r.Action {
			t.Fatalf("step %d diverged on a clean run:\n legacy    %+v\n resilient %+v", i+1, l, r)
		}
	}
}

func counterValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func countTraceKind(trace *telemetry.Trace, kind telemetry.EventKind) int {
	n := 0
	for _, ev := range trace.Snapshot() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
