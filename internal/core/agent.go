package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/stats"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
)

// StepResult reports one trial-and-error iteration of an agent.
type StepResult struct {
	// Iteration counts steps from 1.
	Iteration int
	// Action is the reconfiguration taken this step (Keep for agents that
	// did not move).
	Action config.Action
	// Config is the configuration measured this step.
	Config config.Config
	// MeanRT is the measured mean response time in seconds.
	MeanRT float64
	// P99RT is the measured 99th-percentile response time in seconds (0 when
	// the system does not track it).
	P99RT float64
	// Throughput is the measured completion rate in requests/second.
	Throughput float64
	// Goodput is the measured SLO-goodput in requests/second (0 when the
	// system has no SLO threshold configured).
	Goodput float64
	// Reward is the immediate reward SLA − MeanRT.
	Reward float64
	// Level names the VM provisioning level in effect during the step's
	// interval (empty when untracked) and CapacityUnits its capacity cost in
	// VM-level units — see system.Metrics.
	Level         string
	CapacityUnits int
	// Switched reports that the agent detected a context change and swapped
	// its initial policy this step.
	Switched bool
	// PolicyName is the active initial policy, if any.
	PolicyName string
	// Violations is the current consecutive-violation count.
	Violations int
	// Attempts is the largest Apply/Measure try count the step needed (1 on a
	// clean step; higher when transient faults were retried).
	Attempts int
	// Invalid reports that the measurement was discarded instead of learned
	// from; InvalidReason says why (e.g. "error-ratio", "outlier", "no-data").
	Invalid       bool
	InvalidReason string
	// Degraded reports that no measurement was obtained at all and MeanRT is
	// the last believable value carried forward.
	Degraded bool
	// RolledBack reports that the SLA safety guard re-applied the
	// last-known-good configuration at the end of this step.
	RolledBack bool
}

// Tuner is a configuration agent driven in discrete iterations. All agents
// in this package (RAC, static default, trial-and-error, hill climbing)
// implement it, so the experiment harness runs them interchangeably.
type Tuner interface {
	// Step measures one interval, possibly reconfiguring first, and reports
	// the outcome. Canceling ctx aborts the in-flight Apply/Measure and
	// returns the context's error; the aborted interval is never learned
	// from and never retried.
	Step(ctx context.Context) (StepResult, error)
}

// Agent is the RAC online agent (paper Algorithm 3): ε-greedy actions from a
// Q-table seeded by an initial policy, per-interval batch retraining over the
// measured region, and context-change detection with policy switching.
type Agent struct {
	sys     system.System
	space   *config.Space
	opts    Options
	actions []config.Action
	rng     *sim.RNG

	q       *mdp.QTable
	learner *mdp.Learner
	policy  *Policy
	store   *PolicyStore
	frozen  bool

	cur        config.Config
	samples    map[string]float64
	window     *stats.Window
	violations int
	iteration  int

	// region caches the retraining region's skeleton between intervals; it is
	// invalidated when a new state is measured or the policy switches (the
	// shape depends only on the sample-key set).
	region *regionShape

	// Resilience state: the last configuration that satisfied the SLA, the
	// last believable response time (carried into degraded intervals), and
	// how many consecutive intervals violated the SLA or yielded no data.
	lastGood  config.Config
	lastRT    float64
	slaStreak int
	sleep     func(time.Duration) // nil = never block (simulated time)

	// queue, when non-nil, runs each interval's record+retrain on a
	// background learner goroutine (AgentOptions.ExperienceQueue).
	queue *experienceQueue

	tel   *agentInstruments
	trace *telemetry.Trace
}

// agentInstruments are the agent's registry metrics; nil when telemetry is
// not wired.
type agentInstruments struct {
	steps      *telemetry.Counter
	switches   *telemetry.Counter
	retrains   *telemetry.Counter
	queued     *telemetry.Counter
	retries    *telemetry.Counter
	rollbacks  *telemetry.Counter
	invalids   *telemetry.Counter
	degradeds  *telemetry.Counter
	epsilon    *telemetry.Gauge
	violations *telemetry.Gauge
	reward     *telemetry.Gauge
	qDelta     *telemetry.Gauge
}

// newAgentInstruments registers the agent's instruments on reg.
func newAgentInstruments(reg *telemetry.Registry) *agentInstruments {
	return &agentInstruments{
		steps: reg.Counter("rac_agent_steps_total",
			"Tuning iterations the agent has run (paper Algorithm 3).", nil),
		switches: reg.Counter("rac_agent_policy_switches_total",
			"Context changes detected: initial-policy switches after s_thr consecutive violations.", nil),
		retrains: reg.Counter("rac_agent_retrains_total",
			"Per-interval batch Q-table retraining passes.", nil),
		queued: reg.Counter("rac_agent_queued_experiences_total",
			"Measured intervals handed to the experience queue's background learner.", nil),
		retries: reg.Counter("rac_agent_retries_total",
			"Transient Apply/Measure failures retried by the resilience policy.", nil),
		rollbacks: reg.Counter("rac_agent_rollbacks_total",
			"SLA safety-guard rollbacks to the last-known-good configuration.", nil),
		invalids: reg.Counter("rac_agent_invalid_intervals_total",
			"Measurement intervals discarded instead of learned from.", nil),
		degradeds: reg.Counter("rac_agent_degraded_intervals_total",
			"Intervals that yielded no measurement at all after retries.", nil),
		epsilon: reg.Gauge("rac_agent_epsilon",
			"Exploration rate in force for online action selection.", nil),
		violations: reg.Gauge("rac_agent_consecutive_violations",
			"Current consecutive SLA-deviation count feeding context-change detection.", nil),
		reward: reg.Gauge("rac_agent_last_reward",
			"Immediate reward of the most recent step (SLA − meanRT).", nil),
		qDelta: reg.Gauge("rac_agent_last_q_delta",
			"Change of the visited state's best Q-value across the last retrain.", nil),
	}
}

var _ Tuner = (*Agent)(nil)

// AgentOptions configure NewAgent.
type AgentOptions struct {
	// Options are the hyper-parameters; zero value uses DefaultOptions.
	Options Options
	// Policy is the initial policy (nil = no initialization: the agent
	// starts from a zero Q-table, paper §5.4's "w/o init" configuration).
	Policy *Policy
	// Store enables adaptive policy switching on context changes (nil =
	// static initialization: the agent keeps its initial policy, §5.4's
	// "static init").
	Store *PolicyStore
	// Frozen disables online learning (paper §5.3 "w/o online learning"):
	// the agent follows the initial policy greedily and never retrains.
	Frozen bool
	// Seed drives exploration.
	Seed uint64
	// Telemetry, when non-nil, receives the agent's step/retrain/policy-
	// switch counters and gauges. Sharing the live server's registry puts
	// them on the same /metrics page as the request histograms.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives one structured decision event per step,
	// retrain and policy switch (exposed by the live server's /admin/trace).
	Trace *telemetry.Trace
	// Sleep, when non-nil, blocks between retry attempts for
	// Resilience.RetryBackoff-driven pacing (live runs pass time.Sleep).
	// Nil keeps retries instantaneous — right for simulated time.
	Sleep func(time.Duration)
	// ExperienceQueue, when positive, bounds a queue between measurement and
	// learning: Step hands each measured interval to a background learner
	// goroutine and returns, so the Q-table retraining overlaps the caller's
	// between-step work (a live agent's wall-clock measurement wait). Updates
	// apply in step order and every Q-table read waits for the queue to
	// drain, so the learned state is byte-identical to a synchronous agent's
	// (zero, the default). Queued agents should be Closed when done.
	ExperienceQueue int
}

// NewAgent builds a RAC agent tuning the given system.
func NewAgent(sys system.System, opts AgentOptions) (*Agent, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	o := opts.Options
	if o == (Options{}) {
		o = DefaultOptions()
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	space := sys.Space()
	if opts.Policy != nil && opts.Policy.Space() != space {
		// Policies must be trained on the same space object to guarantee
		// identical action ordering.
		if opts.Policy.Space().Len() != space.Len() {
			return nil, fmt.Errorf("core: policy space has %d parameters, system %d",
				opts.Policy.Space().Len(), space.Len())
		}
	}
	rng := sim.NewRNG(opts.Seed | 1)
	if opts.Frozen {
		o.Online.Epsilon = 0
	}
	a := &Agent{
		sys:     sys,
		space:   space,
		opts:    o,
		actions: config.Actions(space),
		rng:     rng,
		policy:  opts.Policy,
		store:   opts.Store,
		frozen:  opts.Frozen,
		cur:     sys.Config(),
		samples: make(map[string]float64),
		window:  stats.NewWindow(o.Window),
		sleep:   opts.Sleep,
		trace:   opts.Trace,
	}
	if opts.Telemetry != nil {
		a.tel = newAgentInstruments(opts.Telemetry)
		a.tel.epsilon.Set(o.Online.Epsilon)
	}
	a.resetQ()
	if opts.ExperienceQueue > 0 {
		a.queue = newExperienceQueue(opts.ExperienceQueue)
	}
	return a, nil
}

// resetQ rebuilds the online Q-table, seeded by the active policy through its
// shared copy-on-write row store: unvisited states read the policy's memoized
// seeded rows (one copy per context, shared by every agent on the policy) and
// the table holds only this agent's learned deltas.
func (a *Agent) resetQ() {
	a.q = mdp.NewQTable(len(a.actions), 0)
	a.region = nil
	if a.policy != nil {
		a.q.SetShared(a.policy.SharedRows())
	}
	learner, err := mdp.NewLearner(a.q, a.opts.Online, a.rng.Split())
	if err != nil {
		// Options were validated in NewAgent; this cannot fail.
		panic(err)
	}
	a.learner = learner
}

// Policy returns the active initial policy (nil when uninitialized).
func (a *Agent) Policy() *Policy { return a.policy }

// Config returns the agent's current configuration.
func (a *Agent) Config() config.Config { return a.cur.Clone() }

// QTable exposes the online Q-table for diagnostics, draining the experience
// queue first so the table reflects every completed step. A deferred learning
// error stays queued and surfaces on the next Step or Close.
func (a *Agent) QTable() *mdp.QTable {
	_ = a.drainQueue()
	return a.q
}

// Step performs one iteration of Algorithm 3: issue a reconfiguration action
// from the current Q-table, measure, detect context changes (switching the
// initial policy after s_thr consecutive violations), then retrain the
// Q-table in batch over the measured region.
//
// When Options.Resilience is enabled, the step additionally survives the
// failures a live system throws at it: transient Apply/Measure errors are
// retried with bounded backoff (an exhausted Apply holds the current
// configuration, an exhausted Measure degrades the interval instead of
// aborting the run), measurements failing the resilience policy's validity
// checks are reported but not learned from, and after RollbackAfter
// consecutive bad intervals the agent re-applies the last configuration that
// satisfied the SLA.
func (a *Agent) Step(ctx context.Context) (StepResult, error) {
	// Apply everything the experience queue still holds before reading the
	// Q-table: action selection must see the previous interval's retrain, or
	// queued and synchronous agents would diverge.
	if err := a.drainQueue(); err != nil {
		return StepResult{}, err
	}
	a.iteration++
	r := a.opts.Resilience

	// 1. Issue a reconfiguration action (ε-greedy over feasible actions).
	feasible := a.feasibleActions(a.cur)
	choice := a.learner.SelectAction(a.cur.Key(), feasible)
	action := a.actions[choice]
	next, _ := action.Apply(a.space, a.cur)
	applyTries, err := a.attempt(ctx, "apply", next.Key(), func() error { return a.sys.Apply(ctx, next) })
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return StepResult{}, cerr
		}
		if !r.enabled() || !system.IsTransient(err) {
			return StepResult{}, fmt.Errorf("core: apply %s: %w", next.Key(), err)
		}
		// Out of attempts on a transient failure: hold the current
		// configuration this interval instead of aborting the run.
		action = config.Action{Dir: config.Keep}
		next = a.cur.Clone()
	}

	// 2. Measure the new configuration.
	var m system.Metrics
	measureTries, merr := a.attempt(ctx, "measure", next.Key(), func() error {
		var e error
		m, e = a.sys.Measure(ctx)
		return e
	})
	attempts := applyTries
	if measureTries > attempts {
		attempts = measureTries
	}
	if merr != nil {
		if err := ctx.Err(); err != nil {
			// A canceled step is the caller draining, not a flaky interval:
			// surface the cancellation itself, undecorated and unlearned.
			return StepResult{}, err
		}
		if !r.enabled() || !system.IsTransient(merr) {
			return StepResult{}, fmt.Errorf("core: measure: %w", merr)
		}
		return a.degradedStep(ctx, next, action, attempts, merr), nil
	}

	rt := m.MeanRT
	reward := a.opts.RewardOf(m)

	res := StepResult{
		Iteration:     a.iteration,
		Action:        action,
		Config:        next.Clone(),
		MeanRT:        rt,
		P99RT:         m.P99RT,
		Throughput:    m.Throughput,
		Goodput:       m.Goodput,
		Reward:        reward,
		Attempts:      attempts,
		Level:         m.Level,
		CapacityUnits: m.CapacityUnits,
	}

	// Resilience: an interval failing the validity checks is reported but not
	// learned from — no window update, no context detection, no retraining.
	if r.enabled() {
		if reason, bad := r.Invalidates(m, a.window.Mean(), a.window.Len() >= 3); bad {
			res.Invalid = true
			res.InvalidReason = reason
			return a.finishInvalid(ctx, res, next), nil
		}
	}

	// 3. Context-change detection against the recent average.
	if a.window.Len() >= 3 {
		pvar := stats.RelChange(rt, a.window.Mean())
		if pvar >= a.opts.ViolationThreshold {
			a.violations++
		} else {
			a.violations = 0
		}
	}
	a.window.Add(rt)
	res.Violations = a.violations

	// 4. Policy switching.
	if a.violations >= a.opts.SwitchThreshold && a.store != nil && a.store.Len() > 0 {
		if p, err := a.store.Match(next, rt); err == nil && p != nil {
			oldName := ""
			if a.policy != nil {
				oldName = a.policy.Name()
			}
			a.policy = p
			a.resetQ()
			// Context changed: previous measurements describe the old
			// context.
			a.samples = make(map[string]float64)
			a.window.Reset()
			a.violations = 0
			res.Switched = true
			if a.tel != nil {
				a.tel.switches.Inc()
			}
			if a.trace != nil {
				a.trace.Add(telemetry.Event{
					Kind:      telemetry.KindPolicySwitch,
					Iteration: a.iteration,
					State:     next.Key(),
					MeanRT:    rt,
					Policy:    p.Name(),
					Detail:    oldName + " -> " + p.Name(),
				})
			}
		}
	}
	if a.policy != nil {
		res.PolicyName = a.policy.Name()
	}

	// Step-level telemetry that does not depend on the retrain outcome is
	// emitted here; the qDelta gauge and the trace events ride with the
	// learning itself (learn), so the queued path reports real deltas rather
	// than zeros.
	if a.tel != nil {
		a.tel.steps.Inc()
		a.tel.epsilon.Set(a.learner.Params().Epsilon)
		a.tel.violations.Set(float64(a.violations))
		a.tel.reward.Set(reward)
	}
	stepEv := telemetry.Event{
		Kind:       telemetry.KindStep,
		Iteration:  a.iteration,
		State:      next.Key(),
		Action:     action.Describe(a.space),
		MeanRT:     rt,
		Reward:     reward,
		Epsilon:    a.learner.Params().Epsilon,
		Violations: a.violations,
		Policy:     res.PolicyName,
		Level:      m.Level,
	}

	// 5. Record the measurement and retrain the Q-table over the region —
	// inline, or on the experience queue's learner goroutine so the retrain
	// overlaps the caller's between-step work (skipped entirely when online
	// learning is disabled).
	switch {
	case a.frozen:
		if a.trace != nil {
			a.trace.Add(stepEv)
		}
	case a.queue == nil:
		if err := a.learn(next.Key(), rt, stepEv); err != nil {
			return StepResult{}, err
		}
	default:
		key := next.Key()
		if a.tel != nil {
			a.tel.queued.Inc()
		}
		a.queue.enqueue(func() error { return a.learn(key, rt, stepEv) })
	}

	a.cur = next

	// 6. SLA bookkeeping and the rollback safety guard.
	if r.enabled() {
		if reward >= 0 {
			a.lastGood = next.Clone()
			a.lastRT = rt
			a.slaStreak = 0
		} else {
			a.lastRT = rt
			a.slaStreak++
		}
		a.maybeRollback(ctx, &res)
	}
	return res, nil
}

// attempt runs fn under the resilience policy's bounded retry, returning how
// many tries it took and the final error. With resilience disabled (or
// MaxAttempts 1) fn runs exactly once, preserving the pre-resilience step
// byte for byte. Only transient failures are retried — and never once ctx is
// canceled, so a drain is not mistaken for a flaky system.
func (a *Agent) attempt(ctx context.Context, op, state string, fn func() error) (int, error) {
	maxTries := a.opts.Resilience.MaxAttempts
	if maxTries < 1 {
		maxTries = 1
	}
	backoff := a.opts.Resilience.RetryBackoff
	for tries := 1; ; tries++ {
		err := fn()
		if err == nil {
			return tries, nil
		}
		if tries >= maxTries || !system.IsTransient(err) || ctx.Err() != nil {
			return tries, err
		}
		if a.tel != nil {
			a.tel.retries.Inc()
		}
		if a.trace != nil {
			a.trace.Add(telemetry.Event{
				Kind:      telemetry.KindRetry,
				Iteration: a.iteration,
				State:     state,
				Attempts:  tries,
				Detail:    op + ": " + err.Error(),
			})
		}
		if a.sleep != nil && backoff > 0 {
			a.sleep(backoff)
			backoff *= 2
		}
	}
}

// finishInvalid completes a step whose measurement was rejected: the raw
// values are reported for figures, nothing is learned, and the bad interval
// feeds the rollback streak.
func (a *Agent) finishInvalid(ctx context.Context, res StepResult, next config.Config) StepResult {
	res.Violations = a.violations
	if a.policy != nil {
		res.PolicyName = a.policy.Name()
	}
	if a.tel != nil {
		a.tel.steps.Inc()
		a.tel.invalids.Inc()
		a.tel.reward.Set(res.Reward)
	}
	if a.trace != nil && !res.Degraded { // degradedStep already traced its cause
		a.trace.Add(telemetry.Event{
			Kind:      telemetry.KindInvalid,
			Iteration: a.iteration,
			State:     next.Key(),
			MeanRT:    res.MeanRT,
			Detail:    res.InvalidReason,
		})
	}
	a.cur = next
	a.slaStreak++
	a.maybeRollback(ctx, &res)
	return res
}

// degradedStep completes a step that obtained no measurement at all: the last
// believable response time is carried forward, marked invalid so nothing
// downstream learns from it.
func (a *Agent) degradedStep(ctx context.Context, next config.Config, action config.Action, attempts int, cause error) StepResult {
	rt := a.lastRT
	if rt == 0 {
		rt = a.opts.SLASeconds // no history yet: a neutral, zero-reward guess
	}
	res := StepResult{
		Iteration:     a.iteration,
		Action:        action,
		Config:        next.Clone(),
		MeanRT:        rt,
		Reward:        a.opts.Reward(rt),
		Attempts:      attempts,
		Invalid:       true,
		InvalidReason: "no-data",
		Degraded:      true,
	}
	if a.tel != nil {
		a.tel.degradeds.Inc()
	}
	if a.trace != nil {
		a.trace.Add(telemetry.Event{
			Kind:      telemetry.KindInvalid,
			Iteration: a.iteration,
			State:     next.Key(),
			Attempts:  attempts,
			Detail:    "no-data: " + cause.Error(),
		})
	}
	return a.finishInvalid(ctx, res, next)
}

// maybeRollback re-applies the last-known-good configuration once the
// consecutive bad-interval streak reaches the policy threshold. A transient
// failure of the rollback itself leaves the streak in place, so the guard
// tries again next step.
func (a *Agent) maybeRollback(ctx context.Context, res *StepResult) {
	r := a.opts.Resilience
	if r.RollbackAfter <= 0 || a.slaStreak < r.RollbackAfter || a.lastGood == nil {
		return
	}
	if a.lastGood.Equal(a.cur) {
		return // already at the safest known point
	}
	if _, err := a.attempt(ctx, "rollback", a.lastGood.Key(), func() error { return a.sys.Apply(ctx, a.lastGood) }); err != nil {
		return
	}
	a.cur = a.lastGood.Clone()
	a.slaStreak = 0
	res.RolledBack = true
	if a.tel != nil {
		a.tel.rollbacks.Inc()
	}
	if a.trace != nil {
		a.trace.Add(telemetry.Event{
			Kind:      telemetry.KindRollback,
			Iteration: a.iteration,
			State:     a.cur.Key(),
			Detail:    "reverted to last configuration satisfying the SLA",
		})
	}
}

// learn folds one measured interval into the sample table, retrains the
// Q-table over the region, and emits the learning-dependent telemetry: the
// retrain counter and qDelta gauge, the retrain trace event, and the step
// event itself (whose QDelta is only known here). It runs on the agent's
// goroutine for synchronous agents and on the experience queue's learner
// goroutine otherwise; the drain-before-any-Q-read discipline guarantees it
// never runs concurrently with other access to the Q-table, the sample table
// or the agent RNG.
func (a *Agent) learn(key string, rt float64, stepEv telemetry.Event) error {
	a.record(key, rt)
	qBefore := a.q.MaxValue(key)
	batch, err := a.retrain()
	if err != nil {
		return err
	}
	qDelta := a.q.MaxValue(key) - qBefore
	if a.tel != nil {
		a.tel.retrains.Inc()
		a.tel.qDelta.Set(qDelta)
	}
	if a.trace != nil {
		a.trace.Add(telemetry.Event{
			Kind:      telemetry.KindRetrain,
			Iteration: stepEv.Iteration,
			State:     key,
			QDelta:    qDelta,
			Sweeps:    batch.Sweeps,
			Converged: batch.Converged,
		})
		stepEv.QDelta = qDelta
		a.trace.Add(stepEv)
	}
	return nil
}

// record folds a measurement into the per-state sample table. A first visit
// to a state grows the retraining region, so the cached shape is dropped.
func (a *Agent) record(key string, rt float64) {
	if old, ok := a.samples[key]; ok {
		a.samples[key] = 0.5*old + 0.5*rt
	} else {
		a.samples[key] = rt
		a.region = nil
	}
}

// retrain runs the per-interval batch training pass (Algorithm 3 step 9) and
// reports how it converged.
func (a *Agent) retrain() (mdp.BatchResult, error) {
	var predict func(config.Config) float64
	if a.policy != nil {
		predict = a.policy.PredictRT
	}
	if a.region == nil {
		if a.policy != nil && a.policy.Space() == a.space {
			a.region = a.policy.regionShapeFor(a.samples)
		} else {
			keys, cfgs := validSampleKeys(a.space, a.samples)
			a.region = newRegionShape(a.space, keys, cfgs)
		}
	}
	model := a.region.model(a.samples, predict, a.opts.SLASeconds)
	cfg := mdp.BatchConfig{
		Params:        a.opts.Batch,
		StepsPerState: a.opts.BatchStepsPerState,
		MaxSweeps:     a.opts.BatchSweeps,
		Theta:         a.opts.BatchTheta,
	}
	batch, err := mdp.BatchTrain(a.q, model, cfg, a.rng.Split())
	if err != nil {
		return mdp.BatchResult{}, fmt.Errorf("core: retrain: %w", err)
	}
	return batch, nil
}

// feasibleActions lists action indices applicable at cfg.
func (a *Agent) feasibleActions(cfg config.Config) []int {
	out := make([]int, 0, len(a.actions))
	for i, act := range a.actions {
		if _, ok := act.Apply(a.space, cfg); ok {
			out = append(out, i)
		}
	}
	return out
}
