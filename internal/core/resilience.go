package core

import (
	"fmt"
	"time"

	"github.com/rac-project/rac/internal/system"
)

// Resilience is the agent's fault-handling policy: bounded retry with
// exponential backoff for transient Apply/Measure failures, rejection of
// measurements that must not be learned from, and an SLA safety guard that
// rolls the system back to the last configuration known to satisfy the SLA.
//
// The zero value disables every behavior, reproducing the pre-resilience
// agent exactly: any Apply or Measure error aborts the step, and every
// measurement is learned from. All fields are comparable so Options keeps
// working with ==.
type Resilience struct {
	// MaxAttempts bounds how often a step tries a failing Apply or Measure,
	// including the first try. 0 disables resilience entirely (errors
	// propagate, nothing is classified); 1 survives transient failures
	// without retrying them.
	MaxAttempts int
	// RetryBackoff is the pause before the first retry, doubling per attempt.
	// It is only honored when the agent has a sleep hook (AgentOptions.Sleep);
	// simulated experiments leave it at 0 to keep runs instantaneous.
	RetryBackoff time.Duration
	// RollbackAfter is how many consecutive intervals may violate the SLA (or
	// yield no valid data) before the agent re-applies the last-known-good
	// configuration. 0 disables the safety guard.
	RollbackAfter int
	// MinCompleted marks an interval invalid when it saw errors and fewer
	// completions than this — too little signal to average a response time
	// from. 0 disables the check.
	MinCompleted int
	// MaxErrorRatio marks an interval invalid when errors/(errors+completed)
	// exceeds it: the measured MeanRT then describes the surviving minority of
	// requests, not the system. 0 disables the check.
	MaxErrorRatio float64
	// OutlierFactor rejects a measurement whose MeanRT exceeds this multiple
	// of the recent-window mean (needs ≥3 window entries). 0 disables; values
	// in (0,1] are invalid — a rejection threshold below the mean would
	// discard healthy intervals.
	OutlierFactor float64
}

// DefaultResilience is the profile fault-injection experiments run with:
// bounded retries, degraded-interval rejection, outlier rejection, and
// rollback-to-safe after four bad intervals in a row.
func DefaultResilience() Resilience {
	return Resilience{
		MaxAttempts:   3,
		RollbackAfter: 4,
		MinCompleted:  10,
		MaxErrorRatio: 0.5,
		OutlierFactor: 6,
	}
}

// Validate checks the policy.
func (r Resilience) Validate() error {
	if r.MaxAttempts < 0 {
		return fmt.Errorf("core: negative retry attempts %d", r.MaxAttempts)
	}
	if r.RetryBackoff < 0 {
		return fmt.Errorf("core: negative retry backoff %v", r.RetryBackoff)
	}
	if r.RollbackAfter < 0 {
		return fmt.Errorf("core: negative rollback threshold %d", r.RollbackAfter)
	}
	if r.MinCompleted < 0 {
		return fmt.Errorf("core: negative completion floor %d", r.MinCompleted)
	}
	if r.MaxErrorRatio < 0 || r.MaxErrorRatio > 1 {
		return fmt.Errorf("core: error ratio %v outside [0,1]", r.MaxErrorRatio)
	}
	if r.OutlierFactor != 0 && r.OutlierFactor <= 1 {
		return fmt.Errorf("core: outlier factor %v must be 0 (off) or > 1", r.OutlierFactor)
	}
	return nil
}

// enabled reports whether any resilience behavior is active.
func (r Resilience) enabled() bool { return r.MaxAttempts > 0 }

// Invalidates decides whether a measurement must be discarded instead of
// learned from, returning the reason. windowMean is the recent-window mean
// response time; windowed reports whether enough history exists for the
// outlier check.
func (r Resilience) Invalidates(m system.Metrics, windowMean float64, windowed bool) (string, bool) {
	if m.Invalid {
		if m.InvalidReason != "" {
			return m.InvalidReason, true
		}
		return "producer-flagged", true
	}
	if m.Errors > 0 {
		// Rejections count as deliberately handled load, not as missing
		// signal: an interval where the admission gate turned most arrivals
		// away is the gate doing its job, and its MeanRT (over the admitted
		// requests) is exactly the quantity the agent tunes for. Only errors
		// — the system failing — poison a measurement.
		handled := m.Completed + m.Rejected
		if r.MinCompleted > 0 && handled < r.MinCompleted {
			return "low-completion", true
		}
		if r.MaxErrorRatio > 0 {
			if ratio := float64(m.Errors) / float64(m.Errors+handled); ratio > r.MaxErrorRatio {
				return "error-ratio", true
			}
		}
	}
	if r.OutlierFactor > 0 && windowed && windowMean > 0 && m.MeanRT > r.OutlierFactor*windowMean {
		return "outlier", true
	}
	return "", false
}
