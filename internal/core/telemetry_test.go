package core

import (
	"context"
	"testing"

	"github.com/rac-project/rac/internal/telemetry"
)

func TestAgentEmitsTelemetry(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(256)
	agent, err := NewAgent(sys, AgentOptions{Seed: 7, Telemetry: reg, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 8
	for i := 0; i < iters; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	if got := reg.Counter("rac_agent_steps_total", "", nil).Value(); got != iters {
		t.Errorf("steps counter = %d, want %d", got, iters)
	}
	if got := reg.Counter("rac_agent_retrains_total", "", nil).Value(); got != iters {
		t.Errorf("retrains counter = %d, want %d", got, iters)
	}
	if got := reg.Gauge("rac_agent_epsilon", "", nil).Value(); got != agent.opts.Online.Epsilon {
		t.Errorf("epsilon gauge = %v, want %v", got, agent.opts.Online.Epsilon)
	}

	// Each iteration emits one retrain and one step event, in that order.
	events := trace.Snapshot()
	if len(events) != 2*iters {
		t.Fatalf("trace has %d events, want %d", len(events), 2*iters)
	}
	for i := 0; i < iters; i++ {
		re, st := events[2*i], events[2*i+1]
		if re.Kind != telemetry.KindRetrain || st.Kind != telemetry.KindStep {
			t.Fatalf("event pair %d = %s,%s, want retrain,step", i, re.Kind, st.Kind)
		}
		if st.Iteration != i+1 || re.Iteration != i+1 {
			t.Errorf("event pair %d iteration = %d/%d, want %d", i, re.Iteration, st.Iteration, i+1)
		}
		if st.State == "" || st.Action == "" {
			t.Errorf("step event %d missing state/action: %+v", i, st)
		}
	}
}

func TestAgentTracesPolicySwitch(t *testing.T) {
	sys := newBowlSystem(bowlTargets)
	pA := bowlPolicy(t, bowlTargets, "ctx-A")
	otherTargets := []float64{100, 3, 15, 85}
	pB := bowlPolicy(t, otherTargets, "ctx-B")
	store := NewPolicyStore(pA, pB)
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(1024)

	agent, err := NewAgent(sys, AgentOptions{
		Policy: pA, Store: store, Seed: 19, Telemetry: reg, Trace: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := agent.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	sys.targets = otherTargets
	sys.shift = 3
	switched := false
	for i := 0; i < 15 && !switched; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		switched = res.Switched
	}
	if !switched {
		t.Fatal("agent never switched policy")
	}

	if got := reg.Counter("rac_agent_policy_switches_total", "", nil).Value(); got != 1 {
		t.Errorf("switch counter = %d, want 1", got)
	}
	var ev *telemetry.Event
	for _, e := range trace.Snapshot() {
		if e.Kind == telemetry.KindPolicySwitch {
			e := e
			ev = &e
		}
	}
	if ev == nil {
		t.Fatal("no policy-switch event in trace")
	}
	if ev.Policy != "ctx-B" || ev.Detail != "ctx-A -> ctx-B" {
		t.Errorf("switch event = %+v, want policy ctx-B, detail ctx-A -> ctx-B", ev)
	}
}
