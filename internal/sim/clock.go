package sim

import "time"

// Clock is a virtual clock measured from the start of a simulation run.
// The zero value reads as time zero.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so a
// clock can never run backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Seconds returns the current virtual time in seconds.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }
