package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diverged := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestRNGSplitNMatchesSequentialSplits(t *testing.T) {
	// SplitN(n) is exactly n Split calls, and the derived streams do not
	// depend on the order they are later consumed in.
	a := NewRNG(11)
	b := NewRNG(11)
	children := a.SplitN(8)
	for i := 0; i < 8; i++ {
		want := b.Split().Uint64()
		if got := children[i].Uint64(); got != want {
			t.Fatalf("child %d: got %d, want %d", i, got, want)
		}
	}
	// Consuming children back-to-front yields the same per-child values as
	// front-to-back: each stream is fully determined at split time.
	fwd := NewRNG(13).SplitN(5)
	rev := NewRNG(13).SplitN(5)
	var fwdVals, revVals [5]uint64
	for i := 0; i < 5; i++ {
		fwdVals[i] = fwd[i].Uint64()
	}
	for i := 4; i >= 0; i-- {
		revVals[i] = rev[i].Uint64()
	}
	if fwdVals != revVals {
		t.Fatalf("consumption order changed streams: %v vs %v", fwdVals, revVals)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const mean = 7.0
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.03 {
		t.Fatalf("exponential mean %v, want ~%v", got, mean)
	}
}

func TestExpFloat64NonPositiveMean(t *testing.T) {
	r := NewRNG(1)
	if v := r.ExpFloat64(0); v != 0 {
		t.Fatalf("ExpFloat64(0) = %v, want 0", v)
	}
	if v := r.ExpFloat64(-1); v != 0 {
		t.Fatalf("ExpFloat64(-1) = %v, want 0", v)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const (
		mean = 3.0
		std  = 2.0
		n    = 100000
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64(mean, std)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean) > 0.05 {
		t.Fatalf("normal mean %v, want ~%v", gotMean, mean)
	}
	if math.Abs(math.Sqrt(gotVar)-std) > 0.05 {
		t.Fatalf("normal std %v, want ~%v", math.Sqrt(gotVar), std)
	}
}

func TestLogNormFloat64UnitMean(t *testing.T) {
	r := NewRNG(19)
	const sigma = 0.35
	mu := -sigma * sigma / 2
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.LogNormFloat64(mu, sigma)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("lognormal mean %v, want ~1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := NewRNG(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("picked zero-weight index %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestPickDegenerateWeights(t *testing.T) {
	r := NewRNG(1)
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("Pick(all-zero) = %d, want 0", got)
	}
	if got := r.Pick([]float64{-1, -2}); got != 0 {
		t.Fatalf("Pick(all-negative) = %d, want 0", got)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock not at zero")
	}
	c.Advance(1500 * 1e6) // 1.5s in ns
	if got := c.Seconds(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	c.Advance(-5)
	if got := c.Seconds(); math.Abs(got-1.5) > 1e-9 {
		t.Fatal("negative Advance changed the clock")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(99)
	z := NewZipf(rng, 1.0, 100)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate and the distribution must be monotone-ish:
	// compare decile mass rather than individual ranks to tolerate noise.
	if counts[0] < counts[10] {
		t.Fatal("rank 0 not more popular than rank 10")
	}
	firstDecile, lastDecile := 0, 0
	for i := 0; i < 10; i++ {
		firstDecile += counts[i]
		lastDecile += counts[90+i]
	}
	if firstDecile < 5*lastDecile {
		t.Fatalf("insufficient skew: first decile %d vs last %d", firstDecile, lastDecile)
	}
	// Zipf(1) over 100 ranks: rank 0 carries ~1/H(100) ≈ 19% of the mass.
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.19) > 0.03 {
		t.Fatalf("rank-0 mass %v, want ~0.19", p0)
	}
}

func TestZipfPanics(t *testing.T) {
	rng := NewRNG(1)
	for _, tt := range []struct {
		s float64
		n int
	}{{1, 0}, {0, 10}, {-1, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%v,n=%d) did not panic", tt.s, tt.n)
				}
			}()
			NewZipf(rng, tt.s, tt.n)
		}()
	}
}
