// Package sim provides the deterministic simulation primitives shared by the
// workload generator and the web-system model: a seedable random number
// generator with independent derivable streams, a virtual clock, and the
// probability distributions used by the TPC-W traffic model.
//
// All randomness in the repository flows through sim.RNG so that every
// experiment is reproducible from a single seed.
package sim

import "math"

// RNG is a small, fast, seedable pseudo-random number generator based on
// SplitMix64. It is deliberately not safe for concurrent use; derive one
// stream per goroutine with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream from the current generator state.
// The parent stream advances by one step, so repeated Split calls yield
// distinct children.
func (r *RNG) Split() *RNG {
	// Mix the next output back through the finalizer so child streams do not
	// overlap the parent sequence.
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// State returns the generator's internal state. Together with RestoreRNG it
// lets checkpoints capture a stream mid-sequence and resume it later with the
// exact same future outputs — the fleet layer's warm-restart contract.
func (r *RNG) State() uint64 { return r.state }

// RestoreRNG reconstructs a generator from a state previously returned by
// State. The restored stream continues precisely where the captured one
// stopped (unlike NewRNG, which treats its argument as a fresh seed).
func RestoreRNG(state uint64) *RNG {
	return &RNG{state: state}
}

// SplitN derives n independent child streams, advancing the parent by n
// steps. All children exist before any is consumed, so handing one stream to
// each unit of a parallel.Map keeps results independent of execution order —
// the repository's determinism contract for parallel sweeps.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching the
// contract of math/rand.Intn.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with the given mean.
// A non-positive mean yields zero.
func (r *RNG) ExpFloat64(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// NormFloat64 returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) NormFloat64(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormFloat64 returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (r *RNG) LogNormFloat64(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64(mu, sigma))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns an index in [0, len(weights)) with probability proportional to
// the weight at that index. Weights must be non-negative with a positive sum;
// otherwise Pick returns 0.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf draws from a Zipf(s) distribution over [0, n): rank 0 is the most
// popular. It uses inverse-CDF sampling over precomputed cumulative weights;
// construct once with NewZipf and reuse.
type Zipf struct {
	cum []float64
	rng *RNG
}

// NewZipf prepares a Zipf sampler with exponent s > 0 over n ranks, drawing
// from rng. It panics for n < 1 or s <= 0, matching the construction-time
// contract of the standard library's rand.Zipf.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n < 1 {
		panic("sim: Zipf needs at least one rank")
	}
	if s <= 0 {
		panic("sim: Zipf exponent must be positive")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Next returns the next rank in [0, len).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
