package vmenv

import "testing"

func TestPaperLevels(t *testing.T) {
	tests := []struct {
		level Level
		cpus  int
		mem   int
	}{
		{Level1, 4, 4096},
		{Level2, 3, 3072},
		{Level3, 2, 2048},
	}
	for _, tt := range tests {
		if tt.level.VCPUs != tt.cpus || tt.level.MemoryMB != tt.mem {
			t.Errorf("%s = %+v, want %d vCPUs / %d MB", tt.level.Name, tt.level, tt.cpus, tt.mem)
		}
	}
}

func TestLevelsOrderedByCapacity(t *testing.T) {
	ls := Levels()
	if len(ls) != 3 {
		t.Fatalf("got %d levels", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].CPUCapacity() >= ls[i-1].CPUCapacity() {
			t.Fatal("levels not in decreasing capacity order")
		}
	}
}

func TestByName(t *testing.T) {
	l, err := ByName("Level-2")
	if err != nil || l != Level2 {
		t.Fatalf("ByName(Level-2) = %+v, %v", l, err)
	}
	if _, err := ByName("Level-9"); err == nil {
		t.Fatal("unknown level found")
	}
}

func TestLevelValid(t *testing.T) {
	if !Level1.Valid() {
		t.Fatal("Level1 invalid")
	}
	if (Level{VCPUs: 0, MemoryMB: 100}).Valid() {
		t.Fatal("zero-CPU level valid")
	}
	if (Level{VCPUs: 1, MemoryMB: 0}).Valid() {
		t.Fatal("zero-memory level valid")
	}
}

func TestVMReallocate(t *testing.T) {
	vm, err := NewVM("appdb", Level1)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Name() != "appdb" || vm.Level() != Level1 {
		t.Fatalf("fresh VM %+v", vm)
	}
	if err := vm.Reallocate(Level3); err != nil {
		t.Fatal(err)
	}
	if vm.Level() != Level3 {
		t.Fatal("reallocation did not take")
	}
	if err := vm.Reallocate(Level{}); err == nil {
		t.Fatal("invalid level accepted")
	}
	if vm.Level() != Level3 {
		t.Fatal("failed reallocation changed the level")
	}
}

func TestNewVMRejectsInvalid(t *testing.T) {
	if _, err := NewVM("x", Level{}); err == nil {
		t.Fatal("invalid level accepted at construction")
	}
}

func TestCPUCapacity(t *testing.T) {
	if Level1.CPUCapacity() != 4 || Level3.CPUCapacity() != 2 {
		t.Fatal("capacity does not match vCPU count")
	}
}

func TestOrdinalRoundTrip(t *testing.T) {
	for n := MinOrdinal; n <= MaxOrdinal; n++ {
		l, err := ByOrdinal(n)
		if err != nil {
			t.Fatal(err)
		}
		if Ordinal(l) != n {
			t.Fatalf("Ordinal(ByOrdinal(%d)) = %d", n, Ordinal(l))
		}
	}
	if Ordinal(Level1) != 3 || Ordinal(Level3) != 1 {
		t.Fatal("ordinals not ranked by capacity")
	}
	if Ordinal(Level{Name: "Level-9"}) != 0 {
		t.Fatal("unknown level has an ordinal")
	}
	if _, err := ByOrdinal(0); err == nil {
		t.Fatal("ordinal 0 accepted")
	}
	if _, err := ByOrdinal(4); err == nil {
		t.Fatal("ordinal 4 accepted")
	}
}

func TestElasticScaleUpDelay(t *testing.T) {
	e, err := NewElastic(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Request(3); err != nil {
		t.Fatal(err)
	}
	// Two delay ticks, then the third tick applies the new level.
	for i := 0; i < 2; i++ {
		if lvl, changed := e.Tick(); changed || lvl != Level3 {
			t.Fatalf("tick %d: level %s changed=%v during provisioning", i, lvl, changed)
		}
	}
	lvl, changed := e.Tick()
	if !changed || lvl != Level1 {
		t.Fatalf("scale-up did not mature: level %s changed=%v", lvl, changed)
	}
	if e.ScaleUps() != 1 || e.ScaleDowns() != 0 {
		t.Fatalf("counters ups=%d downs=%d", e.ScaleUps(), e.ScaleDowns())
	}
	// Cost: two provisioning ticks at ordinal 1, then the maturing tick's
	// interval runs — and is billed — at ordinal 3.
	if e.TotalCost() != 5 {
		t.Fatalf("total cost %d, want 5", e.TotalCost())
	}
}

func TestElasticScaleDownImmediate(t *testing.T) {
	e, err := NewElastic(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Request(1); err != nil {
		t.Fatal(err)
	}
	lvl, changed := e.Tick()
	if !changed || lvl != Level3 {
		t.Fatalf("scale-down not immediate: level %s changed=%v", lvl, changed)
	}
	if e.ScaleDowns() != 1 {
		t.Fatalf("scale-downs %d", e.ScaleDowns())
	}
	// The scale-down interval already runs at the cheaper ordinal.
	if e.TotalCost() != 1 {
		t.Fatalf("total cost %d, want 1", e.TotalCost())
	}
}

func TestElasticRequestCurrentCancelsPending(t *testing.T) {
	e, err := NewElastic(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Request(3); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending %d", e.Pending())
	}
	if err := e.Request(2); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatal("requesting the current ordinal did not cancel the pending one")
	}
	if _, changed := e.Tick(); changed {
		t.Fatal("cancelled request still applied")
	}
	if e.Ordinal() != 2 {
		t.Fatalf("ordinal %d", e.Ordinal())
	}
}

func TestElasticRejectsBadInputs(t *testing.T) {
	if _, err := NewElastic(0, 1); err == nil {
		t.Fatal("ordinal 0 accepted")
	}
	if _, err := NewElastic(1, -1); err == nil {
		t.Fatal("negative delay accepted")
	}
	e, _ := NewElastic(1, 0)
	if err := e.Request(9); err == nil {
		t.Fatal("ordinal 9 accepted")
	}
}
