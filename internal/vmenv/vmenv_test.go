package vmenv

import "testing"

func TestPaperLevels(t *testing.T) {
	tests := []struct {
		level Level
		cpus  int
		mem   int
	}{
		{Level1, 4, 4096},
		{Level2, 3, 3072},
		{Level3, 2, 2048},
	}
	for _, tt := range tests {
		if tt.level.VCPUs != tt.cpus || tt.level.MemoryMB != tt.mem {
			t.Errorf("%s = %+v, want %d vCPUs / %d MB", tt.level.Name, tt.level, tt.cpus, tt.mem)
		}
	}
}

func TestLevelsOrderedByCapacity(t *testing.T) {
	ls := Levels()
	if len(ls) != 3 {
		t.Fatalf("got %d levels", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].CPUCapacity() >= ls[i-1].CPUCapacity() {
			t.Fatal("levels not in decreasing capacity order")
		}
	}
}

func TestByName(t *testing.T) {
	l, err := ByName("Level-2")
	if err != nil || l != Level2 {
		t.Fatalf("ByName(Level-2) = %+v, %v", l, err)
	}
	if _, err := ByName("Level-9"); err == nil {
		t.Fatal("unknown level found")
	}
}

func TestLevelValid(t *testing.T) {
	if !Level1.Valid() {
		t.Fatal("Level1 invalid")
	}
	if (Level{VCPUs: 0, MemoryMB: 100}).Valid() {
		t.Fatal("zero-CPU level valid")
	}
	if (Level{VCPUs: 1, MemoryMB: 0}).Valid() {
		t.Fatal("zero-memory level valid")
	}
}

func TestVMReallocate(t *testing.T) {
	vm, err := NewVM("appdb", Level1)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Name() != "appdb" || vm.Level() != Level1 {
		t.Fatalf("fresh VM %+v", vm)
	}
	if err := vm.Reallocate(Level3); err != nil {
		t.Fatal(err)
	}
	if vm.Level() != Level3 {
		t.Fatal("reallocation did not take")
	}
	if err := vm.Reallocate(Level{}); err == nil {
		t.Fatal("invalid level accepted")
	}
	if vm.Level() != Level3 {
		t.Fatal("failed reallocation changed the level")
	}
}

func TestNewVMRejectsInvalid(t *testing.T) {
	if _, err := NewVM("x", Level{}); err == nil {
		t.Fatal("invalid level accepted at construction")
	}
}

func TestCPUCapacity(t *testing.T) {
	if Level1.CPUCapacity() != 4 || Level3.CPUCapacity() != 2 {
		t.Fatal("capacity does not match vCPU count")
	}
}
