// Package vmenv models the virtualized hosting environment of the paper's
// testbed: Xen-style VMs whose CPU and memory allocations change at runtime.
// The paper provisions the VM hosting the application and database tiers at
// three levels (§2.2); reallocation shifts the whole response-time surface
// and is one of the two dynamics the RAC agent must adapt to.
package vmenv

import "fmt"

// Level is a VM resource allocation: virtual CPUs and memory.
type Level struct {
	Name     string
	VCPUs    int
	MemoryMB int
}

// The paper's three provisioning levels (§2.2): Level-1 (4 vCPU, 4 GB),
// Level-2 (3 vCPU, 3 GB), Level-3 (2 vCPU, 2 GB).
var (
	Level1 = Level{Name: "Level-1", VCPUs: 4, MemoryMB: 4096}
	Level2 = Level{Name: "Level-2", VCPUs: 3, MemoryMB: 3072}
	Level3 = Level{Name: "Level-3", VCPUs: 2, MemoryMB: 2048}
)

// Levels returns the paper's three levels in decreasing capacity order.
func Levels() []Level { return []Level{Level1, Level2, Level3} }

// ByName returns the level with the given name.
func ByName(name string) (Level, error) {
	for _, l := range Levels() {
		if l.Name == name {
			return l, nil
		}
	}
	return Level{}, fmt.Errorf("vmenv: unknown level %q", name)
}

// String returns the level name.
func (l Level) String() string { return l.Name }

// CPUCapacity returns the level's aggregate processing capacity in work
// units per second, where one work unit is one second of a single reference
// vCPU. A Level-1 VM therefore processes 4 units/s.
func (l Level) CPUCapacity() float64 { return float64(l.VCPUs) }

// Valid reports whether the level describes a usable VM.
func (l Level) Valid() bool { return l.VCPUs > 0 && l.MemoryMB > 0 }

// Capacity ordinals rank the paper's levels by size so a lattice parameter
// can express "more capacity" as a larger integer: 1 = Level-3 (smallest),
// 3 = Level-1 (largest).
const (
	MinOrdinal = 1
	MaxOrdinal = 3
)

// Ordinal returns the level's capacity rank (MinOrdinal..MaxOrdinal), or 0
// for an unknown level.
func Ordinal(l Level) int {
	switch l.Name {
	case Level3.Name:
		return 1
	case Level2.Name:
		return 2
	case Level1.Name:
		return 3
	default:
		return 0
	}
}

// ByOrdinal returns the level with the given capacity rank.
func ByOrdinal(n int) (Level, error) {
	switch n {
	case 1:
		return Level3, nil
	case 2:
		return Level2, nil
	case 3:
		return Level1, nil
	default:
		return Level{}, fmt.Errorf("vmenv: ordinal %d outside [%d,%d]", n, MinOrdinal, MaxOrdinal)
	}
}

// Elastic is the programmatic scale interface over the three provisioning
// levels: it holds the level currently in effect, a pending request that
// matures after a provisioning delay, and the cumulative capacity cost.
//
// Scale-ups take ProvisionDelay ticks to come online (booting a bigger VM is
// slow); scale-downs apply on the next tick (releasing capacity is
// immediate). One Tick per measurement interval accrues cost equal to the
// ordinal in effect, so cost units are VM-level·intervals. Elastic is pure
// bookkeeping — no clock, no RNG — so any driver stays deterministic.
type Elastic struct {
	current int // ordinal in effect
	pending int // requested ordinal not yet in effect (0 = none)
	wait    int // ticks remaining until pending matures
	delay   int // provisioning delay for scale-ups, in ticks

	totalCost  int
	scaleUps   int
	scaleDowns int
}

// NewElastic returns a scaler starting at the given ordinal with the given
// scale-up provisioning delay in ticks (0 = next tick).
func NewElastic(initial, provisionDelay int) (*Elastic, error) {
	if _, err := ByOrdinal(initial); err != nil {
		return nil, err
	}
	if provisionDelay < 0 {
		return nil, fmt.Errorf("vmenv: negative provision delay %d", provisionDelay)
	}
	return &Elastic{current: initial, delay: provisionDelay}, nil
}

// Request asks for the given ordinal. Requesting the current (or already
// pending) ordinal is a no-op; a new target replaces any pending one, with
// the provisioning delay charged only in the scale-up direction.
func (e *Elastic) Request(ordinal int) error {
	if _, err := ByOrdinal(ordinal); err != nil {
		return err
	}
	if ordinal == e.current {
		e.pending = 0
		e.wait = 0
		return nil
	}
	if ordinal == e.pending {
		return nil
	}
	e.pending = ordinal
	if ordinal > e.current {
		e.wait = e.delay
	} else {
		e.wait = 0
	}
	return nil
}

// Snap forces the given ordinal into effect immediately, clearing any
// pending request. The cumulative cost and scale counters are preserved — a
// driver override or fault-injected reallocation is not a billing reset.
func (e *Elastic) Snap(ordinal int) error {
	if _, err := ByOrdinal(ordinal); err != nil {
		return err
	}
	e.current = ordinal
	e.pending = 0
	e.wait = 0
	return nil
}

// RestoreAccounting overwrites the cumulative cost and scale counters with
// checkpointed values. Checkpoint restore only.
func (e *Elastic) RestoreAccounting(totalCost, scaleUps, scaleDowns int) {
	e.totalCost = totalCost
	e.scaleUps = scaleUps
	e.scaleDowns = scaleDowns
}

// Tick advances one measurement interval: a matured pending request takes
// effect first, then the interval's capacity cost accrues at the level now
// in force — the interval starting at this tick runs, and is billed, at the
// new level. It returns the level in effect and whether the tick changed it.
func (e *Elastic) Tick() (Level, bool) {
	changed := false
	if e.pending != 0 {
		if e.wait > 0 {
			e.wait--
		} else {
			if e.pending > e.current {
				e.scaleUps++
			} else {
				e.scaleDowns++
			}
			e.current = e.pending
			e.pending = 0
			changed = true
		}
	}
	e.totalCost += e.current
	lvl, _ := ByOrdinal(e.current)
	return lvl, changed
}

// Ordinal returns the capacity rank currently in effect.
func (e *Elastic) Ordinal() int { return e.current }

// Pending returns the requested-but-not-yet-effective ordinal (0 = none).
func (e *Elastic) Pending() int { return e.pending }

// Level returns the level currently in effect.
func (e *Elastic) Level() Level {
	lvl, _ := ByOrdinal(e.current)
	return lvl
}

// TotalCost returns the cumulative capacity cost in VM-level·intervals.
func (e *Elastic) TotalCost() int { return e.totalCost }

// ScaleUps returns how many scale-ups have taken effect.
func (e *Elastic) ScaleUps() int { return e.scaleUps }

// ScaleDowns returns how many scale-downs have taken effect.
func (e *Elastic) ScaleDowns() int { return e.scaleDowns }

// VM is a virtual machine with a mutable resource allocation. It models the
// driver-domain view: the hosted tiers read capacity and memory from it each
// simulation tick, so a reallocation takes effect immediately, exactly like a
// Xen credit-scheduler or balloon adjustment.
type VM struct {
	name  string
	level Level
}

// NewVM returns a VM with the given initial allocation.
func NewVM(name string, level Level) (*VM, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("vmenv: invalid level %+v", level)
	}
	return &VM{name: name, level: level}, nil
}

// Name returns the VM's name.
func (v *VM) Name() string { return v.name }

// Level returns the current allocation.
func (v *VM) Level() Level { return v.level }

// Reallocate changes the VM's resource allocation.
func (v *VM) Reallocate(level Level) error {
	if !level.Valid() {
		return fmt.Errorf("vmenv: invalid level %+v", level)
	}
	v.level = level
	return nil
}
