// Package vmenv models the virtualized hosting environment of the paper's
// testbed: Xen-style VMs whose CPU and memory allocations change at runtime.
// The paper provisions the VM hosting the application and database tiers at
// three levels (§2.2); reallocation shifts the whole response-time surface
// and is one of the two dynamics the RAC agent must adapt to.
package vmenv

import "fmt"

// Level is a VM resource allocation: virtual CPUs and memory.
type Level struct {
	Name     string
	VCPUs    int
	MemoryMB int
}

// The paper's three provisioning levels (§2.2): Level-1 (4 vCPU, 4 GB),
// Level-2 (3 vCPU, 3 GB), Level-3 (2 vCPU, 2 GB).
var (
	Level1 = Level{Name: "Level-1", VCPUs: 4, MemoryMB: 4096}
	Level2 = Level{Name: "Level-2", VCPUs: 3, MemoryMB: 3072}
	Level3 = Level{Name: "Level-3", VCPUs: 2, MemoryMB: 2048}
)

// Levels returns the paper's three levels in decreasing capacity order.
func Levels() []Level { return []Level{Level1, Level2, Level3} }

// ByName returns the level with the given name.
func ByName(name string) (Level, error) {
	for _, l := range Levels() {
		if l.Name == name {
			return l, nil
		}
	}
	return Level{}, fmt.Errorf("vmenv: unknown level %q", name)
}

// String returns the level name.
func (l Level) String() string { return l.Name }

// CPUCapacity returns the level's aggregate processing capacity in work
// units per second, where one work unit is one second of a single reference
// vCPU. A Level-1 VM therefore processes 4 units/s.
func (l Level) CPUCapacity() float64 { return float64(l.VCPUs) }

// Valid reports whether the level describes a usable VM.
func (l Level) Valid() bool { return l.VCPUs > 0 && l.MemoryMB > 0 }

// VM is a virtual machine with a mutable resource allocation. It models the
// driver-domain view: the hosted tiers read capacity and memory from it each
// simulation tick, so a reallocation takes effect immediately, exactly like a
// Xen credit-scheduler or balloon adjustment.
type VM struct {
	name  string
	level Level
}

// NewVM returns a VM with the given initial allocation.
func NewVM(name string, level Level) (*VM, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("vmenv: invalid level %+v", level)
	}
	return &VM{name: name, level: level}, nil
}

// Name returns the VM's name.
func (v *VM) Name() string { return v.name }

// Level returns the current allocation.
func (v *VM) Level() Level { return v.level }

// Reallocate changes the VM's resource allocation.
func (v *VM) Reallocate(level Level) error {
	if !level.Valid() {
		return fmt.Errorf("vmenv: invalid level %+v", level)
	}
	v.level = level
	return nil
}
