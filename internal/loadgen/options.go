package loadgen

import (
	"errors"
	"fmt"
	"net/url"
	"time"

	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/workload"
)

// Validation sentinels. Callers branch on these with errors.Is instead of
// matching message strings; every constructor error wraps exactly one.
var (
	// ErrBadURL marks an unparsable or empty base URL.
	ErrBadURL = errors.New("loadgen: invalid base url")
	// ErrBadWorkload marks an invalid traffic mix or client population.
	ErrBadWorkload = errors.New("loadgen: invalid workload")
	// ErrBadRate marks a negative offered rate.
	ErrBadRate = errors.New("loadgen: invalid rate")
	// ErrBadArrival marks an unknown arrival process.
	ErrBadArrival = errors.New("loadgen: invalid arrival process")
	// ErrBadShards marks a negative shard count.
	ErrBadShards = errors.New("loadgen: invalid shard count")
	// ErrBadInFlight marks a negative in-flight bound.
	ErrBadInFlight = errors.New("loadgen: invalid in-flight bound")
	// ErrBadTimeout marks a negative per-request timeout.
	ErrBadTimeout = errors.New("loadgen: invalid timeout")
)

// Arrival selects the open-loop arrival process.
type Arrival string

// The supported arrival processes.
const (
	// ArrivalPoisson spaces arrivals with exponential gaps — the memoryless
	// process heavy web traffic is usually modeled by. The default.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalUniform spaces arrivals evenly — a constant-rate probe that
	// isolates service-time variance from arrival variance.
	ArrivalUniform Arrival = "uniform"
)

// ParseArrival resolves an arrival-process name, accepting the empty string
// as the default (Poisson).
func ParseArrival(name string) (Arrival, error) {
	switch Arrival(name) {
	case "", ArrivalPoisson:
		return ArrivalPoisson, nil
	case ArrivalUniform:
		return ArrivalUniform, nil
	}
	return "", fmt.Errorf("%w: %q (want poisson or uniform)", ErrBadArrival, name)
}

// Options configure a Driver, in the same validated-struct idiom as
// system.SimulatedOptions and core.AgentOptions. The zero values of the
// open-loop fields select the closed-loop emulated-browser driver, which
// behaves byte-identically to the historical positional constructor.
type Options struct {
	// BaseURL is the stack under test ("http://127.0.0.1:port"). Required.
	BaseURL string
	// Workload is the traffic mix and, for the closed loop, the emulated
	// browser population. Open-loop runs use only the mix. Required.
	Workload tpcw.Workload
	// Seed drives every random draw (think times, classes, arrival gaps).
	Seed uint64

	// Rate switches the driver to the open-loop engine when positive: the
	// offered load in paper-scale requests per second (the same unit every
	// reported Throughput uses), independent of how fast the system answers.
	// Zero keeps the closed loop.
	Rate float64
	// Schedule also selects the open-loop engine, driving it from a compiled
	// workload scenario or a replayed trace instead of the static Rate: each
	// Run consumes the next interval-sized window of the schedule, so offered
	// load varies across intervals exactly as the scenario scripts. Mutually
	// exclusive with Rate; the schedule's own per-window mix and arrival
	// process override Workload.Mix and ArrivalProcess.
	Schedule workload.Source
	// ArrivalProcess spaces the open-loop arrivals; empty means Poisson.
	ArrivalProcess Arrival
	// Shards is the number of independent accounting shards (own latency
	// histogram, own counters) the open-loop engine fans out over. More
	// shards cut contention at high rates; results are byte-identical for
	// any value. Zero means 4.
	Shards int
	// MaxInFlight bounds concurrently outstanding requests across all
	// shards — the engine's admission control. Arrivals that cannot be
	// issued within ShedGrace of their scheduled time are counted as shed
	// rather than silently delayed. Zero means 64.
	MaxInFlight int
	// ShedGrace is how far behind schedule an arrival may start before the
	// engine sheds it (wall clock). Zero means 10ms — one paper-scale
	// second under the 100× compression.
	ShedGrace time.Duration
	// Timeout bounds one request (wall clock). Zero means 5s, matching the
	// closed-loop browsers.
	Timeout time.Duration
}

// withDefaults validates opts and resolves the zero values.
func (o Options) withDefaults() (Options, error) {
	if o.BaseURL == "" {
		return o, fmt.Errorf("%w: empty", ErrBadURL)
	}
	if _, err := url.Parse(o.BaseURL); err != nil {
		return o, fmt.Errorf("%w: %v", ErrBadURL, err)
	}
	if err := o.Workload.Validate(); err != nil {
		return o, fmt.Errorf("%w: %v", ErrBadWorkload, err)
	}
	if o.Rate < 0 {
		return o, fmt.Errorf("%w: %g req/s", ErrBadRate, o.Rate)
	}
	if o.Schedule != nil && o.Rate > 0 {
		return o, fmt.Errorf("%w: a schedule and a static rate are mutually exclusive", ErrBadRate)
	}
	arr, err := ParseArrival(string(o.ArrivalProcess))
	if err != nil {
		return o, err
	}
	o.ArrivalProcess = arr
	if o.Shards < 0 {
		return o, fmt.Errorf("%w: %d", ErrBadShards, o.Shards)
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.MaxInFlight < 0 {
		return o, fmt.Errorf("%w: %d", ErrBadInFlight, o.MaxInFlight)
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 64
	}
	if o.MaxInFlight < o.Shards {
		o.MaxInFlight = o.Shards // at least one worker per shard
	}
	if o.Timeout < 0 {
		return o, fmt.Errorf("%w: %v", ErrBadTimeout, o.Timeout)
	}
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.ShedGrace < 0 {
		return o, fmt.Errorf("%w: negative shed grace %v", ErrBadTimeout, o.ShedGrace)
	}
	if o.ShedGrace == 0 {
		o.ShedGrace = 10 * time.Millisecond
	}
	return o, nil
}
