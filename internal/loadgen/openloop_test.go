package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rac-project/rac/internal/tpcw"
)

func validOptions() Options {
	return Options{
		BaseURL:  "http://127.0.0.1:1",
		Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 1},
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
		want   error
	}{
		{"empty url", func(o *Options) { o.BaseURL = "" }, ErrBadURL},
		{"bad workload", func(o *Options) { o.Workload = tpcw.Workload{} }, ErrBadWorkload},
		{"negative rate", func(o *Options) { o.Rate = -1 }, ErrBadRate},
		{"bad arrival", func(o *Options) { o.ArrivalProcess = "bursty" }, ErrBadArrival},
		{"negative shards", func(o *Options) { o.Shards = -1 }, ErrBadShards},
		{"negative inflight", func(o *Options) { o.MaxInFlight = -2 }, ErrBadInFlight},
		{"negative timeout", func(o *Options) { o.Timeout = -time.Second }, ErrBadTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			if _, err := New(o); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	d, err := New(validOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := d.Options()
	if o.Shards != 4 || o.MaxInFlight != 64 {
		t.Fatalf("shards/inflight defaults: %d/%d", o.Shards, o.MaxInFlight)
	}
	if o.ArrivalProcess != ArrivalPoisson {
		t.Fatalf("arrival default: %q", o.ArrivalProcess)
	}
	if o.Timeout != 5*time.Second || o.ShedGrace != 10*time.Millisecond {
		t.Fatalf("timeout/grace defaults: %v/%v", o.Timeout, o.ShedGrace)
	}
	// An in-flight bound below the shard count is raised, not rejected.
	o2 := validOptions()
	o2.Shards = 8
	o2.MaxInFlight = 2
	d2, err := New(o2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Options().MaxInFlight; got != 8 {
		t.Fatalf("MaxInFlight not raised to shard count: %d", got)
	}
}

func TestParseArrival(t *testing.T) {
	for name, want := range map[string]Arrival{
		"":        ArrivalPoisson,
		"poisson": ArrivalPoisson,
		"uniform": ArrivalUniform,
	} {
		got, err := ParseArrival(name)
		if err != nil || got != want {
			t.Fatalf("ParseArrival(%q) = %q, %v", name, got, err)
		}
	}
	if _, err := ParseArrival("bursty"); !errors.Is(err, ErrBadArrival) {
		t.Fatalf("bad arrival error: %v", err)
	}
}

func TestBuildSchedule(t *testing.T) {
	for _, arr := range []Arrival{ArrivalPoisson, ArrivalUniform} {
		t.Run(string(arr), func(t *testing.T) {
			o := validOptions()
			o.Rate = 5 // paper req/s → 5·2·100 = 1000 arrivals over 2 s wall
			o.ArrivalProcess = arr
			o.Seed = 99
			dur := 2 * time.Second
			sched := buildSchedule(o, o.Rate, tpcw.Shopping, dur)
			if len(sched) != 1000 {
				t.Fatalf("schedule length %d, want 1000", len(sched))
			}
			prev := 0.0
			for k, a := range sched {
				if a.at < prev || a.at >= dur.Seconds() {
					t.Fatalf("arrival %d at %v out of order or past interval end", k, a.at)
				}
				prev = a.at
			}
			again := buildSchedule(o, o.Rate, tpcw.Shopping, dur)
			if !reflect.DeepEqual(sched, again) {
				t.Fatal("schedule not deterministic")
			}
		})
	}
}

// openLoopRun drives the open-loop engine through the pure exec hook — no
// pacing, no HTTP — so the sharded accounting path can be checked for exact
// determinism. Latencies are dyadic rationals: every float sum is exact, so
// the result cannot depend on which shard or goroutine summed what.
func openLoopRun(t *testing.T, shards, inFlight int) Result {
	t.Helper()
	o := validOptions()
	o.Seed = 42
	o.Rate = 50 // 50·2·100 = 10000 slots
	o.Shards = shards
	o.MaxInFlight = inFlight
	d, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	d.exec = func(k int, class tpcw.Class) (float64, reqStatus) {
		switch {
		case k%7 == 0:
			return 0, reqError
		case k%11 == 0:
			return 0, reqRejected // admission-gate 503s
		default:
			return 0.25 + float64(k%16)*0.25, reqOK
		}
	}
	res, err := d.Run(context.Background(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOpenLoopShardInvariance(t *testing.T) {
	base := openLoopRun(t, 1, 1)
	if base.Offered != 10000 {
		t.Fatalf("offered %d, want 10000", base.Offered)
	}
	if base.Completed == 0 || base.Errors == 0 || base.Rejected == 0 {
		t.Fatalf("degenerate baseline %+v", base)
	}
	// Exact accounting identity: every offered slot is completed, errored, or
	// rejected (nothing sheds through the pure exec hook) — and 503s land in
	// Rejected, never in Errors.
	if base.Completed+base.Errors+base.Rejected != base.Offered {
		t.Fatalf("accounting identity broken: %+v", base)
	}
	for _, tc := range []struct{ shards, inFlight int }{
		{1, 8}, {2, 6}, {4, 64}, {8, 64}, {16, 16},
	} {
		got := openLoopRun(t, tc.shards, tc.inFlight)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("shards=%d inflight=%d: %+v != baseline %+v",
				tc.shards, tc.inFlight, got, base)
		}
	}
}

// TestOpenLoopAccountingRace hammers the sharded accounting concurrently; its
// value is under `go test -race`, where any unsynchronized counter or
// histogram write in the hot path fails the run.
func TestOpenLoopAccountingRace(t *testing.T) {
	t.Parallel()
	for i := 0; i < 3; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			res := openLoopRun(t, 8, 64)
			if res.Completed+res.Errors+res.Rejected != res.Offered {
				t.Fatalf("run %d lost slots: %+v", i, res)
			}
		})
	}
}

func TestOpenLoopBackpressureSheds(t *testing.T) {
	// A backend slower than the offered rate under a tight in-flight bound:
	// the engine must shed late arrivals and account for every slot, rather
	// than issue them late (coordinated omission) or lose them.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
	}))
	defer srv.Close()

	o := validOptions()
	o.BaseURL = srv.URL
	o.Seed = 7
	o.Rate = 4 // 4·0.5·100 = 200 arrivals in 0.5 s wall = 400 req/s offered
	o.Shards = 2
	o.MaxInFlight = 4 // capacity ≈ 4/20ms = 200 req/s — half the offered load
	d, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("no arrivals shed against a saturated backend: %+v", res)
	}
	if res.Completed+res.Errors+res.Shed != res.Offered {
		t.Fatalf("slots unaccounted for: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
}

// TestOpenLoop503CountsRejected is the admission-gate accounting regression:
// a server answering 503 must land those requests in Rejected — not Errors —
// through the real HTTP path, and the offered = completed + errors + shed +
// rejected identity must stay exact.
func TestOpenLoop503CountsRejected(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			http.Error(w, "admission gate", http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	o := validOptions()
	o.BaseURL = srv.URL
	o.Seed = 11
	o.Rate = 2 // 2·0.5·100 = 100 arrivals over 0.5 s wall
	d, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatalf("503s not counted as rejected: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("503s leaked into Errors: %+v", res)
	}
	if res.Completed+res.Errors+res.Shed+res.Rejected != res.Offered {
		t.Fatalf("slots unaccounted for: %+v", res)
	}
}

func TestOpenLoopAgainstLiveStack(t *testing.T) {
	srv, base := startStack(t)
	o := validOptions()
	o.BaseURL = base
	o.Seed = 21
	o.Rate = 2 // 2·0.5·100 = 100 arrivals over 0.5 s wall
	d, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 100 {
		t.Fatalf("offered %d, want 100", res.Offered)
	}
	if res.Completed == 0 || res.MeanRT <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if srv.Stats().Served == 0 {
		t.Fatal("server saw no traffic")
	}
}

func TestOpenLoopCancellation(t *testing.T) {
	_, base := startStack(t)
	o := validOptions()
	o.BaseURL = base
	o.Rate = 1
	d, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Run(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v", err)
	}
}

// The acceptance benchmark pair: sustained completed-request throughput of
// the seed closed-loop browser driver versus the open-loop engine against the
// same live stack. Compare the req/s metrics:
//
//	go test ./internal/loadgen -bench Sustained -benchtime 3x
func benchSustained(b *testing.B, opts Options) {
	srv, base := startStack(b)
	opts.BaseURL = base
	d, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	const interval = 250 * time.Millisecond
	var completed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Run(context.Background(), interval)
		if err != nil {
			b.Fatal(err)
		}
		completed += res.Completed
	}
	b.StopTimer()
	elapsed := float64(b.N) * interval.Seconds()
	b.ReportMetric(float64(completed)/elapsed, "req/s")
	b.ReportMetric(float64(srv.Stats().Served), "served")
}

func BenchmarkClosedLoopSustained(b *testing.B) {
	benchSustained(b, Options{
		Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 20},
		Seed:     3,
	})
}

func BenchmarkOpenLoopSustained(b *testing.B) {
	benchSustained(b, Options{
		Workload:    tpcw.Workload{Mix: tpcw.Shopping, Clients: 20},
		Seed:        3,
		Rate:        40, // paper req/s → 40·TimeScale = 4000 wall req/s offered
		Shards:      8,
		MaxInFlight: 128,
	})
}
