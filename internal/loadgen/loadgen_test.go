package loadgen

import (
	"context"
	"testing"
	"time"

	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
)

func startStack(t testing.TB) (*httpd.Server, string) {
	t.Helper()
	srv, err := httpd.NewServer(webtier.DefaultParams(), vmenv.Level1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, "http://" + addr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{BaseURL: "http://x", Workload: tpcw.Workload{}, Seed: 1}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestDriverGeneratesTraffic(t *testing.T) {
	srv, base := startStack(t)
	d, err := New(Options{BaseURL: base, Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 20}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if res.MeanRT <= 0 {
		t.Fatalf("MeanRT %v", res.MeanRT)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if srv.Stats().Served == 0 {
		t.Fatal("server saw no traffic")
	}
}

func TestDriverRejectsNonPositiveDuration(t *testing.T) {
	_, base := startStack(t)
	d, err := New(Options{BaseURL: base, Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background(), 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestDriverSetWorkload(t *testing.T) {
	_, base := startStack(t)
	d, err := New(Options{BaseURL: base, Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetWorkload(tpcw.Workload{Mix: tpcw.Ordering, Clients: 10}); err != nil {
		t.Fatal(err)
	}
	if d.Workload().Mix != tpcw.Ordering {
		t.Fatal("workload not applied")
	}
	if err := d.SetWorkload(tpcw.Workload{}); err == nil {
		t.Fatal("bad workload accepted")
	}
}

func TestDriverCountsErrors(t *testing.T) {
	// Point at a dead address: every request fails, none complete.
	d, err := New(Options{BaseURL: "http://127.0.0.1:1", Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 5}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d against a dead server", res.Completed)
	}
	if res.Errors == 0 {
		t.Fatal("no errors recorded against a dead server")
	}
}

func TestLiveSystemEndToEnd(t *testing.T) {
	srv, base := startStack(t)
	d, err := New(Options{BaseURL: base, Workload: tpcw.Workload{Mix: tpcw.Shopping, Clients: 25}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	live, err := httpd.NewLive(nil, srv, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	live.Interval = time.Second

	m, err := live.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanRT <= 0 || m.Completed == 0 {
		t.Fatalf("metrics %+v", m)
	}

	// Reconfigure through the System interface.
	space := live.Space()
	cfg := live.Config()
	idx := 0
	cfg[idx] = space.Def(idx).Min
	if err := live.Apply(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if srv.Params().MaxClients != space.Def(idx).Min {
		t.Fatal("Apply did not reach the server")
	}

	// Context controls.
	if err := live.SetAppLevel(vmenv.Level3); err != nil {
		t.Fatal(err)
	}
	if live.AppLevel() != vmenv.Level3 {
		t.Fatal("level not propagated")
	}
	if err := live.SetWorkload(tpcw.Workload{Mix: tpcw.Ordering, Clients: 10}); err != nil {
		t.Fatal(err)
	}
	if live.Workload().Mix != tpcw.Ordering {
		t.Fatal("workload not propagated")
	}
}

func TestLiveWeakerLevelSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("live load test")
	}
	srv, base := startStack(t)
	d, err := New(Options{BaseURL: base, Workload: tpcw.Workload{Mix: tpcw.Ordering, Clients: 30}, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	live, err := httpd.NewLive(nil, srv, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	live.Interval = 1500 * time.Millisecond

	m1, err := live.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := live.SetAppLevel(vmenv.Level3); err != nil {
		t.Fatal(err)
	}
	m3, err := live.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m3.MeanRT <= m1.MeanRT {
		t.Fatalf("Level-3 live RT %v not worse than Level-1 %v", m3.MeanRT, m1.MeanRT)
	}
}
