// Package loadgen drives HTTP load against the live three-tier stack in one
// of two modes. The closed loop emulates TPC-W browsers — think → request →
// think with mix-weighted interaction classes and per-browser cookie jars —
// so concurrency equals the emulated population. The open loop (Options.Rate
// > 0) offers load on a fixed arrival schedule regardless of how fast the
// system answers: a sharded worker engine paces Poisson or uniform arrivals
// from one deterministic schedule, accounts every response into per-shard
// latency histograms without allocating, and sheds arrivals it cannot admit
// on time instead of silently delaying them (no coordinated omission). Both
// modes run on the same compressed time scale as package httpd.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"sync"
	"time"

	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/stats"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/workload"
)

// classPath maps interaction classes to server routes.
func classPath(c tpcw.Class) string {
	switch c {
	case tpcw.ClassHome:
		return "/home"
	case tpcw.ClassProductDetail:
		return "/detail?q=widget"
	case tpcw.ClassSearch:
		return "/search?q=systems"
	case tpcw.ClassShoppingCart:
		return "/cart"
	case tpcw.ClassBuyConfirm:
		return "/buy"
	default:
		return "/admin-task"
	}
}

// Result is one measurement interval of generated load. Response times are
// reported in *paper-scale* seconds (wall-clock times multiplied back by
// httpd.TimeScale) so they are directly comparable with the simulator's
// metrics; the alias makes Driver satisfy httpd.LoadDriver.
type Result = httpd.MeasureResult

// Driver generates load against a base URL, in closed- or open-loop mode
// depending on its Options.
type Driver struct {
	opts Options
	base string
	seed uint64

	// mu guards the mutable load shape — workload, rate, and the schedule
	// cursor — against swaps racing an in-flight Run. Run snapshots under mu
	// once per interval; an in-flight interval keeps the shape it started
	// with and the next Run sees the swap.
	mu       sync.Mutex
	workload tpcw.Workload
	rate     float64
	sched    workload.Source
	schedRNG *sim.RNG
	pos      float64 // scenario seconds already consumed from the schedule

	// exec, when non-nil, replaces the HTTP request + pacing of the
	// open-loop engine with a pure function of the arrival (tests use it to
	// make the sharded accounting path fully deterministic).
	exec func(k int, class tpcw.Class) (rt float64, status reqStatus)

	// Optional instruments (see SetTelemetry); nil when unwired.
	issued   *telemetry.Counter
	errored  *telemetry.Counter
	offered  *telemetry.Counter
	shed     *telemetry.Counter
	rejected *telemetry.Counter
}

// reqStatus classifies one request's outcome. The three-way split is the
// accounting contract: an error is the system failing, a rejection is the
// server's SLO admission gate deliberately answering 503, and neither is a
// latency sample.
type reqStatus int

const (
	reqOK reqStatus = iota
	reqRejected
	reqError
)

// New builds a driver from validated options.
func New(opts Options) (*Driver, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Driver{opts: o, base: o.BaseURL, workload: o.Workload, seed: o.Seed,
		rate: o.Rate, sched: o.Schedule}
	if d.sched != nil {
		// One sequential arrival stream for the whole run: every interval's
		// window draws from it front to back, so a replay at any shard count
		// — or from a trace recorded with the same seed — is byte-identical.
		d.schedRNG = workload.ScheduleRNG(o.Seed)
	}
	return d, nil
}

// Options returns the driver's resolved options (defaults filled in).
func (d *Driver) Options() Options { return d.opts }

// SetTelemetry registers the driver's request counters on reg (typically the
// live server's registry, so generator-side counts sit next to the
// server-side ones on /metrics). Call before Run.
func (d *Driver) SetTelemetry(reg *telemetry.Registry) {
	d.issued = reg.Counter("loadgen_requests_total",
		"Requests issued by the emulated browsers.", nil)
	d.errored = reg.Counter("loadgen_request_errors_total",
		"Issued requests that failed, timed out, or returned a non-200 status.", nil)
	d.offered = reg.Counter("loadgen_offered_total",
		"Requests the open-loop schedule offered.", nil)
	d.shed = reg.Counter("loadgen_shed_total",
		"Offered requests shed by open-loop admission control instead of issued late.", nil)
	d.rejected = reg.Counter("loadgen_rejected_total",
		"Issued requests the server's SLO admission gate answered with 503.", nil)
}

// SetWorkload changes the emulated population for subsequent runs. An
// in-flight Run keeps the workload it snapshotted at interval start.
func (d *Driver) SetWorkload(w tpcw.Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	d.workload = w
	d.mu.Unlock()
	return nil
}

// Workload returns the current workload.
func (d *Driver) Workload() tpcw.Workload {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.workload
}

// SetRate changes the open-loop offered rate for subsequent runs (ignored
// while a Schedule drives the rate). A negative rate is rejected; zero drops
// back to the closed loop.
func (d *Driver) SetRate(rate float64) error {
	if rate < 0 {
		return fmt.Errorf("%w: %g req/s", ErrBadRate, rate)
	}
	d.mu.Lock()
	d.rate = rate
	d.mu.Unlock()
	return nil
}

// Run generates load for the given wall-clock duration and returns interval
// statistics. It is synchronous; every worker goroutine exits before Run
// returns. With a positive rate or a Schedule it runs the open-loop engine;
// otherwise the closed-loop emulated browsers.
func (d *Driver) Run(ctx context.Context, duration time.Duration) (Result, error) {
	if duration <= 0 {
		return Result{}, errors.New("loadgen: non-positive duration")
	}
	d.mu.Lock()
	w := d.workload
	rate := d.rate
	open := rate > 0 || d.sched != nil
	d.mu.Unlock()
	if open {
		return d.runOpen(ctx, duration, w.Mix, rate)
	}
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var (
		mu   sync.Mutex
		rts  []float64
		nErr int
		nRej int
	)
	record := func(rt float64, status reqStatus) {
		mu.Lock()
		defer mu.Unlock()
		switch status {
		case reqError:
			nErr++
		case reqRejected:
			nRej++
		default:
			rts = append(rts, rt)
		}
	}

	root := sim.NewRNG(d.seed)
	var wg sync.WaitGroup
	for i := 0; i < w.Clients; i++ {
		rng := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.browser(runCtx, w.Mix, rng, record)
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	res := Result{Completed: len(rts), Errors: nErr, Rejected: nRej}
	if len(rts) > 0 {
		sum := stats.Summarize(rts)
		res.MeanRT = sum.Mean
		res.P95RT = sum.P95
	}
	paperSeconds := duration.Seconds() * httpd.TimeScale
	if paperSeconds > 0 {
		res.Throughput = float64(len(rts)) / paperSeconds
	}
	return res, nil
}

// browser runs one emulated browser until the context ends.
func (d *Driver) browser(ctx context.Context, mix tpcw.Mix, rng *sim.RNG, record func(float64, reqStatus)) {
	gen, err := tpcw.NewGenerator(mix, rng)
	if err != nil {
		return
	}
	jar, err := cookiejar.New(nil)
	if err != nil {
		return
	}
	client := &http.Client{
		Jar:     jar,
		Timeout: 5 * time.Second,
	}
	defer client.CloseIdleConnections()

	for {
		// Think (compressed time scale).
		think := time.Duration(gen.ThinkTime() / httpd.TimeScale * float64(time.Second))
		select {
		case <-ctx.Done():
			return
		case <-time.After(think):
		}

		class := gen.NextClass()
		if d.issued != nil {
			d.issued.Inc()
		}
		start := time.Now()
		status := d.request(ctx, client, class)
		if ctx.Err() != nil {
			return // do not record requests cut off by the interval end
		}
		switch status {
		case reqError:
			if d.errored != nil {
				d.errored.Inc()
			}
		case reqRejected:
			if d.rejected != nil {
				d.rejected.Inc()
			}
		}
		elapsed := time.Since(start).Seconds() * httpd.TimeScale
		record(elapsed, status)

		if gen.SessionOver() {
			// New user: drop cookies and the connection.
			jar, err = cookiejar.New(nil)
			if err != nil {
				return
			}
			client.CloseIdleConnections()
			client.Jar = jar
		}
	}
}

// request performs one interaction and classifies its outcome. A 503 is the
// server's admission gate deliberately rejecting the request; every other
// non-200 outcome (including transport errors) is an error.
func (d *Driver) request(ctx context.Context, client *http.Client, class tpcw.Class) reqStatus {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+classPath(class), nil)
	if err != nil {
		return reqError
	}
	resp, err := client.Do(req)
	if err != nil {
		return reqError
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return reqError
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return reqOK
	case http.StatusServiceUnavailable:
		return reqRejected
	default:
		return reqError
	}
}
