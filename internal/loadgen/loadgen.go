// Package loadgen drives HTTP load against the live three-tier stack with
// TPC-W-style emulated browsers: each browser loops think → request → think
// with mix-weighted interaction classes and per-browser cookie jars, on the
// same compressed time scale as package httpd.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"sync"
	"time"

	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/stats"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
)

// classPath maps interaction classes to server routes.
func classPath(c tpcw.Class) string {
	switch c {
	case tpcw.ClassHome:
		return "/home"
	case tpcw.ClassProductDetail:
		return "/detail?q=widget"
	case tpcw.ClassSearch:
		return "/search?q=systems"
	case tpcw.ClassShoppingCart:
		return "/cart"
	case tpcw.ClassBuyConfirm:
		return "/buy"
	default:
		return "/admin-task"
	}
}

// Result is one measurement interval of generated load. Response times are
// reported in *paper-scale* seconds (wall-clock times multiplied back by
// httpd.TimeScale) so they are directly comparable with the simulator's
// metrics; the alias makes Driver satisfy httpd.LoadDriver.
type Result = httpd.MeasureResult

// Driver generates load against a base URL.
type Driver struct {
	base     string
	workload tpcw.Workload
	seed     uint64

	// Optional instruments (see SetTelemetry); nil when unwired.
	issued  *telemetry.Counter
	errored *telemetry.Counter
}

// New builds a driver for the base URL ("http://127.0.0.1:port").
func New(base string, workload tpcw.Workload, seed uint64) (*Driver, error) {
	if _, err := url.Parse(base); err != nil {
		return nil, fmt.Errorf("loadgen: base url: %w", err)
	}
	if err := workload.Validate(); err != nil {
		return nil, err
	}
	return &Driver{base: base, workload: workload, seed: seed}, nil
}

// SetTelemetry registers the driver's issued/errored request counters on
// reg (typically the live server's registry, so generator-side counts sit
// next to the server-side ones on /metrics). Call before Run.
func (d *Driver) SetTelemetry(reg *telemetry.Registry) {
	d.issued = reg.Counter("loadgen_requests_total",
		"Requests issued by the emulated browsers.", nil)
	d.errored = reg.Counter("loadgen_request_errors_total",
		"Issued requests that failed, timed out, or returned a non-200 status.", nil)
}

// SetWorkload changes the emulated population for subsequent runs.
func (d *Driver) SetWorkload(w tpcw.Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	d.workload = w
	return nil
}

// Workload returns the current workload.
func (d *Driver) Workload() tpcw.Workload { return d.workload }

// Run generates load for the given wall-clock duration and returns interval
// statistics. It is synchronous; every browser goroutine exits before Run
// returns.
func (d *Driver) Run(ctx context.Context, duration time.Duration) (Result, error) {
	if duration <= 0 {
		return Result{}, errors.New("loadgen: non-positive duration")
	}
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var (
		mu   sync.Mutex
		rts  []float64
		nErr int
	)
	record := func(rt float64, failed bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed {
			nErr++
			return
		}
		rts = append(rts, rt)
	}

	root := sim.NewRNG(d.seed)
	var wg sync.WaitGroup
	for i := 0; i < d.workload.Clients; i++ {
		rng := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.browser(runCtx, rng, record)
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	res := Result{Completed: len(rts), Errors: nErr}
	if len(rts) > 0 {
		sum := stats.Summarize(rts)
		res.MeanRT = sum.Mean
		res.P95RT = sum.P95
	}
	paperSeconds := duration.Seconds() * httpd.TimeScale
	if paperSeconds > 0 {
		res.Throughput = float64(len(rts)) / paperSeconds
	}
	return res, nil
}

// browser runs one emulated browser until the context ends.
func (d *Driver) browser(ctx context.Context, rng *sim.RNG, record func(float64, bool)) {
	gen, err := tpcw.NewGenerator(d.workload.Mix, rng)
	if err != nil {
		return
	}
	jar, err := cookiejar.New(nil)
	if err != nil {
		return
	}
	client := &http.Client{
		Jar:     jar,
		Timeout: 5 * time.Second,
	}
	defer client.CloseIdleConnections()

	for {
		// Think (compressed time scale).
		think := time.Duration(gen.ThinkTime() / httpd.TimeScale * float64(time.Second))
		select {
		case <-ctx.Done():
			return
		case <-time.After(think):
		}

		class := gen.NextClass()
		if d.issued != nil {
			d.issued.Inc()
		}
		start := time.Now()
		ok := d.request(ctx, client, class)
		if ctx.Err() != nil {
			return // do not record requests cut off by the interval end
		}
		if !ok && d.errored != nil {
			d.errored.Inc()
		}
		elapsed := time.Since(start).Seconds() * httpd.TimeScale
		record(elapsed, !ok)

		if gen.SessionOver() {
			// New user: drop cookies and the connection.
			jar, err = cookiejar.New(nil)
			if err != nil {
				return
			}
			client.CloseIdleConnections()
			client.Jar = jar
		}
	}
}

// request performs one interaction; it reports success.
func (d *Driver) request(ctx context.Context, client *http.Client, class tpcw.Class) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+classPath(class), nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK
}
