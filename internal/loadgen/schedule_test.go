package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/workload"
)

// varyingScenario is a deliberately non-stationary schedule: a sinusoidal
// "diurnal" phase followed by an ordering phase with an embedded flash-crowd
// spike. Four 1 s wall intervals (100 scenario seconds each) cover it.
func varyingScenario(t testing.TB) *workload.Schedule {
	t.Helper()
	s, err := workload.Compile(workload.Scenario{
		Name: "varying",
		Phases: []workload.Phase{
			{Name: "diurnal", DurationSeconds: 200, Rate: 40, Mix: "shopping",
				Modulate: []workload.Modulation{
					{Op: workload.OpSinusoid, PeriodSeconds: 200, Amplitude: 0.5},
				}},
			{Name: "crowd", DurationSeconds: 200, Rate: 60, Mix: "ordering",
				Modulate: []workload.Modulation{
					{Op: workload.OpSpike, AtSeconds: 50, DurationSeconds: 50, Factor: 2},
				}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// scheduleRun drives the open-loop engine through exec-hook intervals of a
// workload schedule, returning one Result per interval. Dyadic-rational
// latencies keep every float sum exact (see openLoopRun).
func scheduleRun(t testing.TB, src workload.Source, shards, inFlight int) []Result {
	t.Helper()
	o := validOptions()
	o.Seed = 42
	o.Schedule = src
	o.Shards = shards
	o.MaxInFlight = inFlight
	d, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	d.exec = func(k int, class tpcw.Class) (float64, reqStatus) {
		switch {
		case k%7 == 0:
			return 0, reqError
		case k%11 == 0:
			return 0, reqRejected
		default:
			return 0.25 + float64(k%16)*0.25 + float64(class)*0.125, reqOK
		}
	}
	results := make([]Result, 4)
	for i := range results {
		res, err := d.Run(context.Background(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	return results
}

// TestScheduleShardInvariance is the time-varying analogue of
// TestOpenLoopShardInvariance: under a diurnal + spike schedule the interval
// results must stay byte-identical for any shard/worker fan-out, because the
// arrivals come from one sequential stream the shards only partition.
func TestScheduleShardInvariance(t *testing.T) {
	base := scheduleRun(t, varyingScenario(t), 1, 1)
	if base[0].Offered == 0 || base[3].Offered == 0 {
		t.Fatalf("degenerate baseline %+v", base)
	}
	// The spike interval [300, 400) must offer visibly more than the last
	// diurnal interval — otherwise the schedule was not actually varying.
	if base[3].Offered < base[1].Offered {
		t.Fatalf("schedule not time-varying: %+v", base)
	}
	for _, tc := range []struct{ shards, inFlight int }{
		{1, 8}, {2, 6}, {4, 64}, {8, 64}, {16, 16},
	} {
		got := scheduleRun(t, varyingScenario(t), tc.shards, tc.inFlight)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("shards=%d inflight=%d: %+v != baseline %+v",
				tc.shards, tc.inFlight, got, base)
		}
	}
}

// TestScheduleTraceRoundTrip records the arrivals a schedule-driven run
// offers, then replays the trace through a fresh driver: every interval's
// Result — and therefore the system.Metrics sequence a live system would
// report — must be identical to the original run's.
func TestScheduleTraceRoundTrip(t *testing.T) {
	src := varyingScenario(t)
	direct := scheduleRun(t, src, 4, 16)

	// Record with the driver's seed and window size: 4 × 1 s wall intervals
	// = 4 × 100 scenario seconds.
	tr, err := workload.RecordTrace(src, 42, 1*httpd.TimeScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	replayed := scheduleRun(t, tr, 4, 16)
	if !reflect.DeepEqual(replayed, direct) {
		t.Fatalf("trace replay diverged:\n%+v\nvs\n%+v", replayed, direct)
	}

	// And a replay of the replay (fresh driver, same trace) is stable too.
	again := scheduleRun(t, tr, 16, 64)
	if !reflect.DeepEqual(again, direct) {
		t.Fatalf("second replay diverged:\n%+v\nvs\n%+v", again, direct)
	}
}

// TestWorkloadSwapDuringRun is the SetWorkload/SetRate race regression: both
// swaps must be safe against an in-flight Run in either mode. Its value is
// under `go test -race`, which fails on the unguarded field writes this
// exercised before the driver mutex.
func TestWorkloadSwapDuringRun(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	swap := func(d *Driver, stop <-chan struct{}) {
		mixes := tpcw.Mixes()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.SetWorkload(tpcw.Workload{Mix: mixes[i%3], Clients: 4 + i%8}); err != nil {
				t.Error(err)
				return
			}
			if err := d.SetRate(float64(1 + i%5)); err != nil {
				t.Error(err)
				return
			}
			d.Workload()
		}
	}

	t.Run("open", func(t *testing.T) {
		o := validOptions()
		o.BaseURL = srv.URL
		o.Rate = 2
		o.Workload.Clients = 4
		d, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); swap(d, stop) }()
		for i := 0; i < 3; i++ {
			if _, err := d.Run(context.Background(), 100*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		wg.Wait()
	})

	t.Run("closed", func(t *testing.T) {
		o := validOptions()
		o.BaseURL = srv.URL
		o.Workload.Clients = 4
		d, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); swap(d, stop) }()
		if _, err := d.Run(context.Background(), 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
	})
}

// TestScheduleOptionExclusive checks the Schedule/Rate exclusivity rule.
func TestScheduleOptionExclusive(t *testing.T) {
	o := validOptions()
	o.Rate = 10
	o.Schedule = varyingScenario(t)
	if _, err := New(o); err == nil {
		t.Fatal("expected Schedule+Rate to be rejected")
	}
}
