package loadgen

import "github.com/rac-project/rac/internal/httpd"

// Driver implements the live system's load-generation contract.
var _ httpd.LoadDriver = (*Driver)(nil)
