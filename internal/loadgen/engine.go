package loadgen

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
)

// arrival is one slot of the open-loop schedule: when to issue (wall-clock
// seconds from interval start) and which interaction class.
type arrival struct {
	at    float64
	class tpcw.Class
}

// buildSchedule lays out the whole interval's offered load up front, from a
// single RNG stream consumed sequentially. Everything downstream — sharding,
// worker count, GOMAXPROCS — only decides who executes each slot, never what
// the slots are, which is what makes an open-loop run byte-identical at any
// shard count.
func buildSchedule(o Options, rate float64, mix tpcw.Mix, duration time.Duration) []arrival {
	wallSeconds := duration.Seconds()
	n := int(rate*wallSeconds*httpd.TimeScale + 0.5)
	if n <= 0 {
		return nil
	}
	rng := sim.NewRNG(o.Seed ^ 0x09E41009)
	sched := make([]arrival, n)

	switch o.ArrivalProcess {
	case ArrivalUniform:
		gap := wallSeconds / float64(n)
		for k := range sched {
			sched[k].at = (float64(k) + 0.5) * gap
		}
	default: // ArrivalPoisson
		// A Poisson process conditioned on n arrivals in [0, D) is n sorted
		// uniforms, generated in order via normalized exponential spacings:
		// t_k = D · S_k/S_{n+1} with S the prefix sums of n+1 Exp(1) draws.
		// Sequential like the uniform case, and never past the interval end.
		gaps := make([]float64, n+1)
		var total float64
		for i := range gaps {
			gaps[i] = rng.ExpFloat64(1)
			total += gaps[i]
		}
		var cum float64
		for k := range sched {
			cum += gaps[k]
			sched[k].at = wallSeconds * cum / total
		}
	}

	probs := tpcw.ClassProbs(mix)
	classes := tpcw.Classes()
	for k := range sched {
		sched[k].class = classes[rng.Pick(probs)]
	}
	return sched
}

// shardAcct is one shard's accounting: a latency histogram for completed
// requests plus error/shed/rejected counters. Workers touch only atomics here
// — the per-request hot path neither locks nor allocates.
type shardAcct struct {
	hist *telemetry.Histogram
	errs atomic.Int64
	shed atomic.Int64
	rej  atomic.Int64
}

// takeWindow builds one interval's schedule. Static rates lay the interval
// out from the per-interval salted stream (every interval offers the same
// load); a workload Schedule consumes its next window from the driver's one
// sequential stream, advancing the cursor, so consecutive intervals trace the
// scenario. Runs under mu: the cursor and stream are driver state a
// concurrent SetWorkload/SetRate must not tear.
func (d *Driver) takeWindow(rate float64, mix tpcw.Mix, duration time.Duration) []arrival {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sched == nil {
		return buildSchedule(d.opts, rate, mix, duration)
	}
	t0 := d.pos
	t1 := t0 + duration.Seconds()*httpd.TimeScale
	d.pos = t1
	win := d.sched.Window(d.schedRNG, t0, t1)
	sched := make([]arrival, len(win))
	for i, a := range win {
		sched[i] = arrival{at: (a.T - t0) / httpd.TimeScale, class: a.Class}
	}
	return sched
}

// runOpen drives the open-loop engine for one interval: pre-built schedule,
// S shards × W pacing workers (bounded in-flight = S·W, each worker owns at
// most one outstanding request), pooled keep-alive connections, per-shard
// accounting merged at interval close.
func (d *Driver) runOpen(ctx context.Context, duration time.Duration, mix tpcw.Mix, rate float64) (Result, error) {
	o := d.opts
	sched := d.takeWindow(rate, mix, duration)
	if d.offered != nil {
		d.offered.Add(int64(len(sched)))
	}

	nShards := o.Shards
	perShard := o.MaxInFlight / nShards
	if perShard < 1 {
		perShard = 1
	}

	shards := make([]*shardAcct, nShards)
	for i := range shards {
		shards[i] = &shardAcct{hist: telemetry.NewHistogram(nil)}
	}

	transport := &http.Transport{
		MaxIdleConns:        2 * o.MaxInFlight,
		MaxIdleConnsPerHost: o.MaxInFlight,
		IdleConnTimeout:     30 * time.Second,
	}
	client := &http.Client{Transport: transport, Timeout: o.Timeout}
	defer transport.CloseIdleConnections()

	start := time.Now()
	var wg sync.WaitGroup
	for si := 0; si < nShards; si++ {
		for w := 0; w < perShard; w++ {
			wg.Add(1)
			go func(si, w int) {
				defer wg.Done()
				d.openWorker(ctx, client, sched, shards[si], si, nShards, w, perShard, start)
			}(si, w)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err // canceled interval: partial data is meaningless
	}

	merged := shards[0].hist.Snapshot()
	var nErr, nShed, nRej int64
	nErr = shards[0].errs.Load()
	nShed = shards[0].shed.Load()
	nRej = shards[0].rej.Load()
	for _, sh := range shards[1:] {
		merged.Merge(sh.hist.Snapshot())
		nErr += sh.errs.Load()
		nShed += sh.shed.Load()
		nRej += sh.rej.Load()
	}

	res := Result{
		Completed: int(merged.Count),
		Errors:    int(nErr),
		Offered:   len(sched),
		Shed:      int(nShed),
		Rejected:  int(nRej),
	}
	if merged.Count > 0 {
		res.MeanRT = merged.Sum / float64(merged.Count)
		res.P95RT = merged.Quantile(0.95)
	}
	if paperSeconds := duration.Seconds() * httpd.TimeScale; paperSeconds > 0 {
		res.Throughput = float64(merged.Count) / paperSeconds
		// The interval's actually-offered rate, so schedule-driven drift is
		// visible per interval, not just the static Rate option.
		res.OfferedRate = float64(len(sched)) / paperSeconds
	}
	return res, nil
}

// openWorker executes its fixed subsequence of the schedule: shard si owns
// global indices k ≡ si (mod nShards), and within the shard worker w owns
// shard-local indices j ≡ w (mod perShard). The assignment is a pure
// function of the indices, so which goroutine runs a slot never changes what
// the slot does.
func (d *Driver) openWorker(ctx context.Context, client *http.Client, sched []arrival,
	acct *shardAcct, si, nShards, w, perShard int, start time.Time) {
	var timer *time.Timer
	for j := w; ; j += perShard {
		k := j*nShards + si
		if k >= len(sched) {
			return
		}
		a := sched[k]

		if d.exec != nil {
			// Test hook: pure function of the arrival, no pacing, no HTTP —
			// exercises exactly the sharded accounting path.
			rt, status := d.exec(k, a.class)
			switch status {
			case reqError:
				acct.errs.Add(1)
			case reqRejected:
				acct.rej.Add(1)
			default:
				acct.hist.Observe(rt)
			}
			continue
		}

		target := start.Add(time.Duration(a.at * float64(time.Second)))
		wait := time.Until(target)
		if wait > 0 {
			if timer == nil {
				timer = time.NewTimer(wait)
				defer timer.Stop()
			} else {
				timer.Reset(wait)
			}
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else if -wait > d.opts.ShedGrace {
			// Too far behind schedule (the previous request on this worker
			// overstayed, or the whole engine is saturated): count the
			// arrival as shed instead of issuing it late and polluting the
			// latency distribution with self-inflicted queueing.
			acct.shed.Add(1)
			if d.shed != nil {
				d.shed.Inc()
			}
			continue
		}
		if ctx.Err() != nil {
			return
		}

		if d.issued != nil {
			d.issued.Inc()
		}
		t0 := time.Now()
		status := d.request(ctx, client, a.class)
		if ctx.Err() != nil {
			return // do not record requests cut off by cancellation
		}
		switch status {
		case reqOK:
			acct.hist.Observe(time.Since(t0).Seconds() * httpd.TimeScale)
		case reqRejected:
			acct.rej.Add(1)
			if d.rejected != nil {
				d.rejected.Inc()
			}
		default:
			acct.errs.Add(1)
			if d.errored != nil {
				d.errored.Inc()
			}
		}
	}
}
