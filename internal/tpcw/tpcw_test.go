package tpcw

import (
	"math"
	"testing"

	"github.com/rac-project/rac/internal/sim"
)

func TestMixStringsAndParse(t *testing.T) {
	for _, m := range Mixes() {
		parsed, err := ParseMix(m.String())
		if err != nil || parsed != m {
			t.Errorf("ParseMix(%q) = %v, %v", m.String(), parsed, err)
		}
	}
	if _, err := ParseMix("nope"); err == nil {
		t.Error("unknown mix parsed")
	}
}

func TestClassProbsSumToOne(t *testing.T) {
	for _, m := range Mixes() {
		probs := ClassProbs(m)
		if len(probs) != len(Classes()) {
			t.Fatalf("%s: %d probs for %d classes", m, len(probs), len(Classes()))
		}
		var sum float64
		for _, p := range probs {
			if p < 0 {
				t.Fatalf("%s: negative probability", m)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: probabilities sum to %v", m, sum)
		}
	}
}

func TestOrderingFractionRises(t *testing.T) {
	// The ordering-path share (cart+buy) must follow TPC-W: browsing 5%,
	// shopping 20%, ordering 50%.
	orderShare := func(m Mix) float64 {
		probs := ClassProbs(m)
		var share float64
		for i, c := range Classes() {
			if c == ClassShoppingCart || c == ClassBuyConfirm {
				share += probs[i]
			}
		}
		return share
	}
	b, s, o := orderShare(Browsing), orderShare(Shopping), orderShare(Ordering)
	if !(b < s && s < o) {
		t.Fatalf("ordering shares not increasing: %v %v %v", b, s, o)
	}
	if math.Abs(b-0.05) > 0.001 || math.Abs(s-0.20) > 0.001 || math.Abs(o-0.50) > 0.001 {
		t.Fatalf("ordering shares %v/%v/%v, want 0.05/0.20/0.50", b, s, o)
	}
}

func TestMeanDemandOrderingHeavier(t *testing.T) {
	b := MeanDemand(Browsing)
	o := MeanDemand(Ordering)
	if o.App <= b.App || o.DB <= b.DB {
		t.Fatalf("ordering should be heavier downstream: %+v vs %+v", o, b)
	}
}

func TestDemandArithmetic(t *testing.T) {
	d := Demand{Web: 1, App: 2, DB: 3, IO: 4}
	if d.Total() != 10 {
		t.Fatalf("Total = %v", d.Total())
	}
	s := d.Scale(2)
	if s.Web != 2 || s.IO != 8 {
		t.Fatalf("Scale = %+v", s)
	}
	sum := d.Add(s)
	if sum.App != 6 || sum.DB != 9 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestClassDemandsPositive(t *testing.T) {
	for _, c := range Classes() {
		d := ClassDemand(c)
		if d.Web <= 0 || d.App <= 0 || d.DB <= 0 || d.IO <= 0 {
			t.Errorf("%s: non-positive demand %+v", c, d)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{Mix: Shopping, Clients: 100}).Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if err := (Workload{Mix: Mix(0), Clients: 100}).Validate(); err == nil {
		t.Fatal("invalid mix accepted")
	}
	if err := (Workload{Mix: Shopping, Clients: 0}).Validate(); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestGeneratorClassDistribution(t *testing.T) {
	gen, err := NewGenerator(Ordering, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[Class]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[gen.NextClass()]++
	}
	probs := ClassProbs(Ordering)
	for i, c := range Classes() {
		got := float64(counts[c]) / n
		if math.Abs(got-probs[i]) > 0.01 {
			t.Errorf("%s: frequency %v, want %v", c, got, probs[i])
		}
	}
}

func TestGeneratorUnknownMix(t *testing.T) {
	if _, err := NewGenerator(Mix(42), sim.NewRNG(1)); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestGeneratorThinkTimeMean(t *testing.T) {
	gen, _ := NewGenerator(Shopping, sim.NewRNG(7))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += gen.ThinkTime()
	}
	mean := sum / n
	if math.Abs(mean-MeanThinkTimeSeconds)/MeanThinkTimeSeconds > 0.05 {
		t.Fatalf("think-time mean %v", mean)
	}
}

func TestGeneratorSessionLength(t *testing.T) {
	gen, _ := NewGenerator(Shopping, sim.NewRNG(11))
	ends := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if gen.SessionOver() {
			ends++
		}
	}
	rate := float64(ends) / n
	want := 1.0 / MeanSessionLength
	if math.Abs(rate-want)/want > 0.1 {
		t.Fatalf("session end rate %v, want %v", rate, want)
	}
}

func TestRequestDemandUnitMean(t *testing.T) {
	gen, _ := NewGenerator(Ordering, sim.NewRNG(13))
	base := ClassDemand(ClassSearch)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		d := gen.RequestDemand(ClassSearch)
		if d.Web <= 0 {
			t.Fatal("non-positive sampled demand")
		}
		sum += d.Total()
	}
	mean := sum / n
	if math.Abs(mean-base.Total())/base.Total() > 0.03 {
		t.Fatalf("sampled demand mean %v, class mean %v", mean, base.Total())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := NewGenerator(Browsing, sim.NewRNG(5))
	b, _ := NewGenerator(Browsing, sim.NewRNG(5))
	for i := 0; i < 100; i++ {
		if a.NextClass() != b.NextClass() {
			t.Fatal("generators with equal seeds diverged")
		}
	}
}
