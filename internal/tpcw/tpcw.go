// Package tpcw generates TPC-W-like web traffic: the three standard workload
// mixes (browsing, shopping, ordering), a catalogue of interaction classes
// with per-tier service demands, and the emulated-browser session model
// (think times, session lengths) that drives both the simulated and the live
// three-tier systems.
//
// The class demand profiles are synthetic but preserve what matters to the
// paper's experiments: ordering-dominated traffic is application- and
// database-heavy while browsing-dominated traffic is lighter and more
// web-tier bound, so each mix prefers a different configuration (paper
// Fig. 1).
package tpcw

import (
	"fmt"

	"github.com/rac-project/rac/internal/sim"
)

// Mix identifies one of the three TPC-W traffic mixes.
type Mix int

// The three mixes defined by TPC-W. Browsing is 95% browse interactions,
// shopping 80%, ordering 50%.
const (
	Browsing Mix = iota + 1
	Shopping
	Ordering
)

// Mixes returns all mixes in definition order.
func Mixes() []Mix { return []Mix{Browsing, Shopping, Ordering} }

// String returns the lowercase mix name.
func (m Mix) String() string {
	switch m {
	case Browsing:
		return "browsing"
	case Shopping:
		return "shopping"
	case Ordering:
		return "ordering"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// ParseMix parses a mix name.
func ParseMix(s string) (Mix, error) {
	for _, m := range Mixes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("tpcw: unknown mix %q", s)
}

// Class identifies an interaction class (a simplified grouping of the 14
// TPC-W web interactions).
type Class int

// Interaction classes, from lightest to heaviest.
const (
	ClassHome Class = iota + 1
	ClassProductDetail
	ClassSearch
	ClassShoppingCart
	ClassBuyConfirm
	ClassAdmin
)

// Classes returns all interaction classes in definition order.
func Classes() []Class {
	return []Class{ClassHome, ClassProductDetail, ClassSearch,
		ClassShoppingCart, ClassBuyConfirm, ClassAdmin}
}

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassHome:
		return "home"
	case ClassProductDetail:
		return "detail"
	case ClassSearch:
		return "search"
	case ClassShoppingCart:
		return "cart"
	case ClassBuyConfirm:
		return "buy"
	case ClassAdmin:
		return "admin"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass parses a class name as produced by Class.String.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("tpcw: unknown class %q", s)
}

// Demand is the work a request needs at each stage: CPU seconds of a single
// reference vCPU (see vmenv.Level.CPUCapacity) for the three tiers, plus
// disk I/O seconds for the database tier at a warm buffer cache. The actual
// I/O performed scales with the cache miss factor, which depends on memory
// pressure on the app/db VM.
type Demand struct {
	Web float64
	App float64
	DB  float64
	IO  float64
}

// Total returns the summed demand across stages.
func (d Demand) Total() float64 { return d.Web + d.App + d.DB + d.IO }

// Scale returns the demand multiplied by f on every stage.
func (d Demand) Scale(f float64) Demand {
	return Demand{Web: d.Web * f, App: d.App * f, DB: d.DB * f, IO: d.IO * f}
}

// Add returns the element-wise sum.
func (d Demand) Add(o Demand) Demand {
	return Demand{Web: d.Web + o.Web, App: d.App + o.App, DB: d.DB + o.DB, IO: d.IO + o.IO}
}

// classDemand is the mean per-stage demand of each interaction class.
// Ordering-path classes (cart, buy) are markedly heavier downstream; web
// demands include serving the page's static content.
func classDemand(c Class) Demand {
	switch c {
	case ClassHome:
		return Demand{Web: 0.0075, App: 0.0022, DB: 0.0025, IO: 0.0100}
	case ClassProductDetail:
		return Demand{Web: 0.0090, App: 0.0018, DB: 0.0029, IO: 0.0150}
	case ClassSearch:
		return Demand{Web: 0.0070, App: 0.0032, DB: 0.0065, IO: 0.0300}
	case ClassShoppingCart:
		return Demand{Web: 0.0080, App: 0.0060, DB: 0.0090, IO: 0.0350}
	case ClassBuyConfirm:
		return Demand{Web: 0.0060, App: 0.0100, DB: 0.0160, IO: 0.0700}
	case ClassAdmin:
		return Demand{Web: 0.0050, App: 0.0016, DB: 0.0022, IO: 0.0100}
	default:
		return Demand{}
	}
}

// ClassDemand returns the mean per-tier demand of an interaction class.
func ClassDemand(c Class) Demand { return classDemand(c) }

// classProbs returns the interaction-class probabilities of each mix, in
// Classes() order. Rows sum to 1.
func classProbs(m Mix) []float64 {
	switch m {
	case Browsing: // 95% browse / 5% order
		return []float64{0.29, 0.22, 0.35, 0.03, 0.02, 0.09}
	case Shopping: // 80% browse / 20% order
		return []float64{0.17, 0.17, 0.30, 0.12, 0.08, 0.16}
	case Ordering: // 50% browse / 50% order
		return []float64{0.10, 0.13, 0.15, 0.27, 0.23, 0.12}
	default:
		return nil
	}
}

// ClassProbs returns a copy of the class probabilities of a mix, in Classes()
// order.
func ClassProbs(m Mix) []float64 {
	p := classProbs(m)
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// MeanDemand returns the probability-weighted per-tier demand of one
// interaction under the mix — the input to the analytical queueing backend.
func MeanDemand(m Mix) Demand {
	probs := classProbs(m)
	var d Demand
	for i, c := range Classes() {
		d = d.Add(classDemand(c).Scale(probs[i]))
	}
	return d
}

// Session-model constants. TPC-W emulated browsers think for an average of
// seven seconds between interactions; sessions run for a geometrically
// distributed number of interactions.
const (
	// MeanThinkTimeSeconds is the mean exponential think time.
	MeanThinkTimeSeconds = 7.0
	// MeanSessionLength is the mean number of interactions per session.
	MeanSessionLength = 20
	// DemandSigma is the lognormal shape of per-request demand noise.
	DemandSigma = 0.35
)

// Workload pairs a traffic mix with a closed population of emulated browsers.
type Workload struct {
	Mix     Mix
	Clients int
}

// Validate checks the workload is usable.
func (w Workload) Validate() error {
	if w.Mix < Browsing || w.Mix > Ordering {
		return fmt.Errorf("tpcw: invalid mix %d", int(w.Mix))
	}
	if w.Clients <= 0 {
		return fmt.Errorf("tpcw: need a positive client population, got %d", w.Clients)
	}
	return nil
}

// String renders the workload.
func (w Workload) String() string {
	return fmt.Sprintf("%s×%d", w.Mix, w.Clients)
}

// Generator draws interaction classes, think times and per-request demands
// for a mix from a seeded RNG stream.
type Generator struct {
	mix     Mix
	probs   []float64
	rng     *sim.RNG
	classes []Class
}

// NewGenerator returns a generator for the mix drawing from rng.
func NewGenerator(mix Mix, rng *sim.RNG) (*Generator, error) {
	probs := classProbs(mix)
	if probs == nil {
		return nil, fmt.Errorf("tpcw: unknown mix %d", int(mix))
	}
	return &Generator{mix: mix, probs: probs, rng: rng, classes: Classes()}, nil
}

// Mix returns the generator's traffic mix.
func (g *Generator) Mix() Mix { return g.mix }

// NextClass samples an interaction class according to the mix probabilities.
func (g *Generator) NextClass() Class {
	return g.classes[g.rng.Pick(g.probs)]
}

// ThinkTime samples an exponential think time in seconds.
func (g *Generator) ThinkTime() float64 {
	return g.rng.ExpFloat64(MeanThinkTimeSeconds)
}

// SessionOver reports whether the session ends after the current interaction
// (geometric with mean MeanSessionLength).
func (g *Generator) SessionOver() bool {
	return g.rng.Bool(1.0 / MeanSessionLength)
}

// RequestDemand samples the per-tier demand of one request of the class:
// the class mean perturbed by lognormal noise with unit-mean.
func (g *Generator) RequestDemand(c Class) Demand {
	base := classDemand(c)
	// exp(N(mu, sigma)) has mean exp(mu + sigma^2/2); pick mu so the factor
	// has mean 1.
	const mu = -DemandSigma * DemandSigma / 2
	f := g.rng.LogNormFloat64(mu, DemandSigma)
	return base.Scale(f)
}
